"""Ablations of CoLES design choices called out in DESIGN.md §6.

Not a paper table — these probe the three implementation decisions the
paper fixes without ablating:

- the unit-norm embedding head (Section 3.3 restricts M to unit vectors);
- the learnt initial GRU state c_0 (Section 3.4);
- the derived time-delta input feature.

Each variant trains the same CoLES pipeline on the age world and reports
the CV metric of its embeddings.
"""

import numpy as np

from repro.augmentations import RandomSlices
from repro.core import ContrastiveTrainer, TrainConfig
from repro.encoders import RnnSeqEncoder, TrxEncoder
from repro.eval import ComparisonTable, cross_val_features
from repro.experiments import gbm_config_for
from repro.experiments.configs import scaled_profile
from repro.losses import ContrastiveLoss
from repro.nn import GRU


def _build_encoder(schema, hidden, normalize, learn_init, time_delta, seed):
    rng = np.random.default_rng(seed)
    trx = TrxEncoder(schema, use_time_delta=time_delta, rng=rng)
    encoder = RnnSeqEncoder(trx, hidden, cell="gru", normalize=normalize,
                            rng=rng)
    if not learn_init:
        encoder.rnn = GRU(trx.output_dim, hidden, learn_init_state=False,
                          rng=rng)
    return encoder


def test_design_choice_ablations(run_once):
    def experiment():
        profile = scaled_profile("age", num_epochs=4)
        dataset = profile.make_dataset(seed=0, labeled_fraction=1.0)
        labels = dataset.label_array()
        variants = {
            "full CoLES": dict(normalize=True, learn_init=True, time_delta=True),
            "no unit-norm head": dict(normalize=False, learn_init=True,
                                      time_delta=True),
            "zero initial state": dict(normalize=True, learn_init=False,
                                       time_delta=True),
            "no time-delta feature": dict(normalize=True, learn_init=True,
                                          time_delta=False),
        }
        table = ComparisonTable(
            "Ablations: CoLES design choices (age, CV accuracy)",
            ["variant", "measured"],
        )
        results = {}
        for name, flags in variants.items():
            scores = []
            for seed in range(2):
                encoder = _build_encoder(dataset.schema, profile.hidden_size,
                                         seed=seed, **flags)
                trainer = ContrastiveTrainer(
                    encoder, ContrastiveLoss(),
                    RandomSlices(profile.slice_min, profile.slice_max,
                                 profile.num_slices),
                    TrainConfig(num_epochs=profile.num_epochs,
                                batch_size=profile.batch_size,
                                learning_rate=profile.learning_rate,
                                seed=seed),
                )
                trainer.fit(dataset)
                from repro.core import embed_dataset

                embeddings = embed_dataset(encoder, dataset)
                scores.append(
                    cross_val_features(embeddings, labels, n_folds=5,
                                       gbm_config=gbm_config_for(profile))
                    .mean()
                )
            results[name] = float(np.mean(scores))
            table.add_row(name, results[name])
        table.print()
        return results

    results = run_once(experiment)
    # Every ablated variant must still learn a usable representation
    # (well above the 0.25 chance level of the 4-class task).  Notable
    # measured finding, recorded in EXPERIMENTS.md: at toy scale the
    # *unnormalised* variant beats the paper's unit-norm head — the
    # embedding magnitude carries activity-level information that the
    # downstream GBM can exploit, whereas the paper adopts the unit norm
    # for negative-sampling efficiency on much larger batches.
    for name, value in results.items():
        assert value > 0.4, name
    # The contrastive objective must not collapse in any variant.
    assert results["no unit-norm head"] > 0.4
