"""Table 6: unsupervised embeddings as features for the downstream GBM.

Paper rows: CoLES performs on par with hand-crafted features and
consistently outperforms SOP/NSP/RTD/CPC on most datasets.
"""

from repro.experiments import run_table6


def test_table6_unsupervised_embeddings(run_once):
    results, table = run_once(run_table6)
    table.print()
    coles_age = results["coles"]["age"][0]
    coles_churn = results["coles"]["churn"][0]
    # CoLES must be well above chance on both tasks.
    assert coles_age > 0.45
    assert coles_churn > 0.6
    # Shape: CoLES beats the weak pair-task baselines (SOP) clearly,
    # as in the paper where SOP is the weakest method.
    assert coles_age > results["sop"]["age"][0]
