"""Figure 3: embedding dimensionality vs downstream quality.

Paper shape: quality rises quickly with dimensionality and then plateaus
(diminishing returns; very large dims even degrade slightly).
"""

from repro.experiments import run_figure3


def test_figure3_embedding_dimensionality(run_once):
    results, table = run_once(run_figure3)
    table.print()
    sizes = sorted(results)
    # The smallest embedding must not be the best (information bottleneck),
    # and mid-size embeddings should capture most of the quality.
    best_size = max(results, key=results.get)
    assert best_size != sizes[0]
    assert results[sizes[-1]] >= results[sizes[0]] - 0.05
