"""Table 4: comparison of contrastive-learning losses.

Paper finding: the classical contrastive (margin) loss is at or near the
top despite being the simplest variant.
"""


from repro.experiments import run_table4


def test_table4_losses(run_once):
    results, table = run_once(run_table4)
    table.print()
    for loss, per_dataset in results.items():
        assert per_dataset["age"] > 0.40, loss
        assert per_dataset["churn"] > 0.55, loss
    # Shape: contrastive is within the toy-scale noise band of the best
    # loss (the paper's qualitative conclusion is that the basic variant
    # remains competitive; variant orderings at this scale carry ~0.05-0.1
    # of seed noise, see EXPERIMENTS.md).
    best_age = max(v["age"] for v in results.values())
    assert results["contrastive"]["age"] >= best_age - 0.15
