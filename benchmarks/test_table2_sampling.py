"""Table 2: comparison of batch-generation strategies.

Paper row: random slices (Algorithm 1) beats random samples and random
disjoint samples on all four public datasets.
"""

from repro.experiments import run_table2


def test_table2_sampling_strategies(run_once):
    results, table = run_once(run_table2)
    table.print()
    # Sanity: every variant trains to a usable representation (well above
    # the 0.25 chance level of the 4-class age task and 0.5 AUROC for churn).
    for variant, per_dataset in results.items():
        assert per_dataset["age"] > 0.45, variant
        assert per_dataset["churn"] > 0.55, variant
