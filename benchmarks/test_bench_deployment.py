"""Section 4.3.1: deployment pipeline benches.

Two production properties of the paper:
- incremental GRU inference (c_{t+k} from c_t) — we time the per-event
  update and verify equality with full recompute;
- uint4 quantization — 8x compression with negligible downstream loss.
"""

import numpy as np

from repro.core import (
    embed_dataset,
    quantize_embeddings,
)
from repro.data.synthetic import make_churn_dataset
from repro.encoders import build_encoder
from repro.eval import ComparisonTable, cross_val_features
from repro.experiments import train_coles
from repro.experiments.configs import scaled_profile
from repro.runtime import EmbeddingStore


def test_incremental_inference(benchmark):
    dataset = make_churn_dataset(num_clients=20, mean_length=60,
                                 min_length=30, max_length=90, seed=0)
    encoder = build_encoder(dataset.schema, 24, "gru",
                            rng=np.random.default_rng(0))
    encoder.eval()
    full = embed_dataset(encoder, dataset)

    seq = dataset[0]
    chunk = seq.slice(0, len(seq) // 2)
    tail = seq.slice(len(seq) // 2, len(seq))

    def update_tail():
        store = EmbeddingStore(encoder)
        store.update(seq.seq_id, chunk, dataset.schema)
        return store.update(seq.seq_id, tail, dataset.schema)

    embedding = benchmark(update_tail)
    np.testing.assert_allclose(embedding, full[0], rtol=1e-8)


def test_quantization_downstream_loss(run_once):
    """Quantized embeddings must keep downstream quality (Section 4.3.1)."""

    def experiment():
        profile = scaled_profile("churn", num_epochs=3)
        dataset = profile.make_dataset(seed=0, labeled_fraction=1.0)
        model = train_coles(profile, dataset, seed=0)
        embeddings = model.embed(dataset)
        labels = dataset.label_array()
        quantized = quantize_embeddings(embeddings, levels=16)
        recovered = quantized.dequantize()
        raw_bytes = embeddings.shape[0] * embeddings.shape[1] * 4
        table = ComparisonTable(
            "Section 4.3.1: uint4 embedding quantization",
            ["representation", "bytes", "CV AUROC"],
        )
        full_score = cross_val_features(embeddings, labels, n_folds=3).mean()
        quant_score = cross_val_features(recovered, labels, n_folds=3).mean()
        table.add_row("float32", str(raw_bytes), full_score)
        table.add_row("uint4 (16 levels)", str(quantized.packed_bytes()),
                      quant_score)
        table.print()
        return full_score, quant_score, raw_bytes, quantized.packed_bytes()

    full_score, quant_score, raw_bytes, packed = run_once(experiment)
    assert packed * 7 < raw_bytes  # ~8x compression
    assert quant_score > full_score - 0.05  # negligible downstream loss
