"""Table 10: CoLES embeddings vs hand-crafted baselines for legal entities.

Paper shape: CoLES embeddings beat the hand-crafted baseline on most
legal-entity tasks (the counterparty structure is hard to hand-engineer),
and the hybrid never loses to the baseline.
"""

from repro.experiments import run_table10


def test_table10_legal_entities(run_once):
    results, table = run_once(run_table10)
    table.print()
    for task, scenario in results.items():
        # Hybrid features should not fall far below the baseline (extra
        # embedding columns add variance but carry the same information).
        assert scenario["hybrid"] >= scenario["baseline"] - 0.08, task
    # The signature claims: on the relationship-structured tasks (insurance
    # leads, holding restoration) the embeddings add real signal beyond
    # what hand-crafted aggregates can reach — the paper's Section 4.3
    # explanation of why legal-entity embeddings show the largest gains.
    assert results["holding_structure"]["coles"] > 0.6
    assert (results["holding_structure"]["coles"]
            > results["holding_structure"]["baseline"] + 0.1)
    assert results["insurance_lead"]["coles"] >= results["insurance_lead"]["baseline"]
