"""Table 3: comparison of encoder types (LSTM / GRU / Transformer).

Paper finding: the encoder choice has little effect, with recurrent
encoders slightly ahead of the transformer.

All three columns train and embed on the fused graph-free engine under
the default ``engine="auto"`` — the transformer column through the fused
attention kernels of :mod:`repro.runtime.attention` since the attention
port, which is what makes this table tractable on CI.
"""

from repro.experiments import run_table3


def test_table3_encoder_types(run_once):
    results, table = run_once(run_table3)
    table.print()
    for encoder, per_dataset in results.items():
        assert per_dataset["age"] > 0.45, encoder
        assert per_dataset["churn"] > 0.55, encoder
    # The paper's coarse shape: recurrent encoders are not worse than the
    # transformer on the churn AUROC task.
    recurrent_best = max(results["gru"]["churn"], results["lstm"]["churn"])
    assert recurrent_best >= results["transformer"]["churn"] - 0.05
