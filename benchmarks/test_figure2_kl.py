"""Figure 2: periodicity and repeatability of the data.

Paper shape: KL between same-sequence slices is far below KL between
different-sequence samples on the transactional datasets (panels a-c),
while the texts control (panel d) shows overlapping histograms.
"""

from repro.experiments import run_figure2


def test_figure2_repeatability(run_once):
    results, table = run_once(run_figure2)
    table.print()
    for name in ("age", "texts"):  # panels (a) and (d)
        print()
        print(results[name]["histogram"])
    for name in ("age", "assessment", "retail"):
        assert results[name]["separation_ratio"] > 1.5, name
        assert results[name]["same_median"] < results[name]["different_median"]
    # The non-repeatable control must not separate.
    assert results["texts"]["separation_ratio"] < 1.6
