"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper and prints a
paper-vs-measured comparison.  Experiments are deterministic and heavy, so
each runs exactly once (``pedantic`` with one round).
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
