"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper and prints a
paper-vs-measured comparison.  Experiments are deterministic and heavy, so
each runs exactly once (``pedantic`` with one round).

Perf benchmarks additionally persist their telemetry through the
``bench_record`` fixture: one ``BENCH_<name>.json`` per benchmark at the
repo root, committed as the baseline that CI's ``bench`` job gates
against (see ``benchmarks/check_bench_regression.py``).
"""

import json
import os

import numpy as np
import pytest

from repro.runtime.engine import DEFAULT_PRECISION

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _blas_vendor():
    """Best-effort BLAS vendor string from ``np.show_config``."""
    try:
        config = np.show_config(mode="dicts")
        blas = config.get("Build Dependencies", {}).get("blas", {})
        name = blas.get("name", "unknown")
        version = blas.get("version", "")
        return ("%s %s" % (name, version)).strip()
    except (TypeError, AttributeError):  # older numpy: no dicts mode
        return "unknown"


def bench_context():
    """Machine/configuration context recorded into every BENCH_*.json.

    Throughput numbers are only comparable against a baseline measured
    under the same dtype policy, thread pinning and BLAS build — this
    subtree makes that context part of the committed artifact, and
    ``check_bench_regression.py`` prints it next to any gate failure.
    """
    return {
        "default_precision": DEFAULT_PRECISION,
        "cpu_count": os.cpu_count(),
        "omp_num_threads": os.environ.get("OMP_NUM_THREADS", "unset"),
        "openblas_num_threads": os.environ.get("OPENBLAS_NUM_THREADS",
                                               "unset"),
        "blas": _blas_vendor(),
        "numpy": np.__version__,
    }


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner


@pytest.fixture
def bench_record():
    """Write one benchmark's results to ``BENCH_<name>.json`` at repo root.

    The single write path for perf telemetry: stable key order and layout,
    so committed baselines diff cleanly across PRs and CI's regression
    gate can parse any of them the same way.  Returns the path written.
    """

    def record(name, results):
        path = os.path.join(REPO_ROOT, "BENCH_%s.json" % name)
        payload = dict(results)
        payload.setdefault("context", bench_context())
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    return record
