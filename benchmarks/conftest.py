"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper and prints a
paper-vs-measured comparison.  Experiments are deterministic and heavy, so
each runs exactly once (``pedantic`` with one round).

Perf benchmarks additionally persist their telemetry through the
``bench_record`` fixture: one ``BENCH_<name>.json`` per benchmark at the
repo root, committed as the baseline that CI's ``bench`` job gates
against (see ``benchmarks/check_bench_regression.py``).
"""

import json
import os

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner


@pytest.fixture
def bench_record():
    """Write one benchmark's results to ``BENCH_<name>.json`` at repo root.

    The single write path for perf telemetry: stable key order and layout,
    so committed baselines diff cleanly across PRs and CI's regression
    gate can parse any of them the same way.  Returns the path written.
    """

    def record(name, results):
        path = os.path.join(REPO_ROOT, "BENCH_%s.json" % name)
        with open(path, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    return record
