"""Table 5: comparison of negative-sampling strategies.

Paper finding: hard negative mining gives a measurable edge over random
negative sampling.
"""

from repro.experiments import run_table5


def test_table5_negative_sampling(run_once):
    results, table = run_once(run_table5)
    table.print()
    for sampler, per_dataset in results.items():
        assert per_dataset["age"] > 0.45, sampler
        assert per_dataset["churn"] > 0.55, sampler
    # Shape: hard mining is not behind random sampling beyond noise.
    assert results["hard"]["age"] >= results["random"]["age"] - 0.08
