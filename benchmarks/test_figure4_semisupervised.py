"""Figure 4: model quality vs number of labeled datapoints.

Paper shape: CoLES fine-tuning dominates supervised-only training, and the
margin grows as labels shrink (self-supervision extracts signal from the
unlabeled pool).
"""

import numpy as np

from repro.experiments import run_figure4


def test_figure4_semisupervised(run_once):
    results, table = run_once(run_figure4)
    table.print()
    counts = sorted(results["coles_finetune"])
    smallest = counts[0]
    # With the fewest labels, self-supervised pre-training must beat
    # supervised-only training (the paper's key semi-supervised claim).
    assert (results["coles_finetune"][smallest]
            >= results["supervised"][smallest] - 0.02)
    # CoLES fine-tuning is competitive with CPC fine-tuning overall.
    coles_mean = np.mean(list(results["coles_finetune"].values()))
    cpc_mean = np.mean(list(results["cpc_finetune"].values()))
    assert coles_mean >= cpc_mean - 0.05
