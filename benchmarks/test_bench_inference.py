"""Serving-path throughput: fused runtime + length-bucketed batch planner.

The deployment story of Section 4.3.1 is a hot bulk-embedding path: all
entities are embedded once, then refreshed incrementally.  This bench
measures ``embed_dataset`` throughput along both axes of the runtime
refactor —

- execution path: autograd ``Tensor`` graph (the seed implementation)
  vs the fused graph-free kernels of :mod:`repro.runtime`;
- batch order: naive collation order (pads every batch to its random
  max) vs the length-bucketed planner of :mod:`repro.data.bucketing`;
- precision policy: the float64 parity-reference path (bit-compatible
  with the tensor graph, asserted at 1e-10) vs the default float32
  policy on packed weight plans (drift-bounded against the same
  reference);
- encoder family: the fused attention kernels
  (:mod:`repro.runtime.attention`) vs the autograd transformer graph —
  the graph-free rewrite matters most here, since the Tensor path builds
  one node per op across every ``(B, heads, T, T)`` attention map;

— plus the per-event cost of incremental refresh through the
:class:`~repro.runtime.EmbeddingStore`.  Results are recorded through the
``bench_record`` fixture to ``BENCH_inference.json`` at the repo root so
the perf trajectory is tracked across PRs (and gated by CI's bench job).

The workload is deliberately length-skewed (light/medium/heavy user
cohorts): that is what production transaction populations look like, and
it is where naive padding wastes the most work.
"""

import time

import numpy as np

from repro.core.inference import embed_dataset
from repro.data.batches import collate
from repro.data.bucketing import padded_step_fraction, plan_batches
from repro.data.sequences import EventSequence, SequenceDataset
from repro.data.synthetic import make_churn_dataset
from repro.encoders import build_encoder
from repro.eval import ComparisonTable
from repro.runtime import EmbeddingStore, FusedEncoderRuntime

# (clients, mean events) cohorts: many light users, a heavy tail.
COHORTS = [(160, 20), (100, 80), (40, 350)]


def _longtail_dataset(seed=0):
    sequences, offset, schema = [], 0, None
    for num_clients, mean_length in COHORTS:
        cohort = make_churn_dataset(num_clients=num_clients,
                                    mean_length=mean_length, min_length=8,
                                    max_length=450, seed=seed + mean_length)
        schema = cohort.schema
        for seq in cohort:
            sequences.append(EventSequence(seq_id=offset + seq.seq_id,
                                           fields=seq.fields, label=seq.label))
        offset += 10_000
    rng = np.random.default_rng(seed)
    rng.shuffle(sequences)
    return SequenceDataset(sequences, schema, name="longtail")


def _best_of(func, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - started)
    return result, best


def _transformer_axis(dataset, events):
    """Fused attention kernels vs the autograd transformer graph.

    The tensor transformer is ~50x slower than the fused kernels on this
    workload, so its reference rate is measured on a 1-in-4 subsample
    (same cohort mix — the stride preserves the length distribution) and
    compared per event; the fused rate is measured on the full dataset.
    Returns ``(fused_rate, tensor_rate)`` in events/s.
    """
    transformer = build_encoder(dataset.schema, 48, "transformer",
                                rng=np.random.default_rng(1))
    transformer.eval()
    sample = SequenceDataset(dataset.sequences[::4], dataset.schema,
                             name="longtail-sample")
    sample_events = int(sample.lengths().sum())
    reference, tensor_s = _best_of(
        lambda: embed_dataset(dataset=sample, encoder=transformer,
                              batch_size=64, runtime="tensor"), repeats=1)
    sample64, _ = _best_of(
        lambda: embed_dataset(dataset=sample, encoder=transformer,
                              batch_size=64, runtime="fused",
                              precision="float64"), repeats=1)
    sample32, _ = _best_of(
        lambda: embed_dataset(dataset=sample, encoder=transformer,
                              batch_size=64, runtime="fused"), repeats=1)
    # float64 is the 1e-10 parity reference; the served float32 policy is
    # drift-bounded like the recurrent path.
    np.testing.assert_allclose(sample64, reference, atol=1e-10)
    np.testing.assert_allclose(sample32, reference, atol=1e-5)
    _, fused_s = _best_of(
        lambda: embed_dataset(dataset=dataset, encoder=transformer,
                              batch_size=64, runtime="fused"))
    return events / fused_s, sample_events / tensor_s


def test_inference_throughput(run_once, bench_record):
    def experiment():
        dataset = _longtail_dataset()
        events = int(dataset.lengths().sum())
        encoder = build_encoder(dataset.schema, 48, "gru",
                                rng=np.random.default_rng(0))
        encoder.eval()
        # float64 pins the historical op order exactly, so this runtime
        # is the 1e-10 parity reference against the tensor graph; the
        # default (float32) policy run below is bounded by the drift
        # property instead.
        runtime_f64 = FusedEncoderRuntime(encoder, precision="float64")

        def fused_naive():
            # Fused kernels, but the seed's arrival-order batches.
            out = np.zeros((len(dataset), encoder.output_dim))
            for start in range(0, len(dataset), 64):
                chunk = dataset.sequences[start:start + 64]
                batch = collate(chunk, dataset.schema)
                out[start:start + len(chunk)] = runtime_f64.embed_batch(batch)
            return out

        def incremental_refresh():
            store = EmbeddingStore(encoder)
            for seq in dataset.sequences[:60]:
                store.update(seq.seq_id, seq, dataset.schema)
            return store

        reference, tensor_s = _best_of(
            lambda: embed_dataset(dataset=dataset, encoder=encoder,
                                  batch_size=64, runtime="tensor"))
        naive_out, fused_naive_s = _best_of(fused_naive)
        fused64_out, fused64_s = _best_of(
            lambda: embed_dataset(dataset=dataset, encoder=encoder,
                                  batch_size=64, runtime="fused",
                                  precision="float64"))
        # The default serving policy: float32 compute on packed plans.
        fused_out, fused_s = _best_of(
            lambda: embed_dataset(dataset=dataset, encoder=encoder,
                                  batch_size=64, runtime="fused"))
        _, incremental_s = _best_of(incremental_refresh)
        incremental_events = int(sum(len(seq)
                                     for seq in dataset.sequences[:60]))
        trx_fused_rate, trx_tensor_rate = _transformer_axis(dataset, events)

        np.testing.assert_allclose(naive_out, reference, atol=1e-10)
        np.testing.assert_allclose(fused64_out, reference, atol=1e-10)
        # float32 drift bound (property-tested in tests/runtime/
        # test_precision.py); observed drift is ~1e-7.
        np.testing.assert_allclose(fused_out, reference, atol=1e-5)

        lengths = dataset.lengths()
        naive_plan = [np.arange(start, min(start + 64, len(dataset)))
                      for start in range(0, len(dataset), 64)]
        results = {
            "workload": {
                "clients": len(dataset),
                "events": events,
                "length_p50": float(np.median(lengths)),
                "length_max": int(lengths.max()),
                "padded_fraction_naive": padded_step_fraction(
                    lengths, naive_plan),
                "padded_fraction_bucketed": padded_step_fraction(
                    lengths, plan_batches(lengths, 64)),
            },
            "events_per_sec": {
                "tensor_naive_seed": events / tensor_s,
                "fused_naive": events / fused_naive_s,
                # The default policy (float32 + packed plans) — the
                # primary gated key.
                "fused_bucketed": events / fused_s,
                "fused_bucketed_f32": events / fused_s,
                # The float64 parity-reference path, still tracked.
                "fused_bucketed_f64": events / fused64_s,
                "incremental_store": incremental_events / incremental_s,
                # The fused attention kernels (gated like the recurrent
                # serving key); its tensor reference lives under
                # baselines, not here, so the gate never tracks it.
                "fused_transformer": trx_fused_rate,
            },
            "baselines": {
                # The autograd transformer graph, measured on a 1-in-4
                # subsample of the same cohorts (per-event rate).
                "transformer_tensor": trx_tensor_rate,
            },
            "speedup": {
                "fused_kernels": tensor_s / fused_naive_s,
                "bucketed_planner": fused_naive_s / fused64_s,
                "precision_policy": fused64_s / fused_s,
                "total_vs_seed": tensor_s / fused_s,
                "fused_transformer_vs_tensor":
                    trx_fused_rate / trx_tensor_rate,
            },
        }
        bench_record("inference", results)

        table = ComparisonTable(
            "Serving throughput: fused runtime + bucketed planner",
            ["path", "events/s", "vs seed"],
        )
        seed_rate = results["events_per_sec"]["tensor_naive_seed"]
        for key in ("tensor_naive_seed", "fused_naive",
                    "fused_bucketed_f64", "fused_bucketed"):
            rate = results["events_per_sec"][key]
            table.add_row(key, "%.0f" % rate, "%.1fx" % (rate / seed_rate))
        table.add_row("incremental_store",
                      "%.0f" % results["events_per_sec"]["incremental_store"],
                      "-")
        table.add_row("transformer_tensor",
                      "%.0f" % trx_tensor_rate, "-")
        table.add_row("fused_transformer", "%.0f" % trx_fused_rate,
                      "%.1fx vs trx" % (trx_fused_rate / trx_tensor_rate))
        table.print()
        return results

    results = run_once(experiment)
    # Typical speedup on this workload is ~4x (recorded in the JSON, which
    # is the artifact that tracks the trajectory); the assert floor is set
    # below that so a noisy shared runner cannot flake the suite, while a
    # real path regression (e.g. losing the packed-kernel fast path,
    # ~1.2x) still fails loudly.
    assert results["speedup"]["total_vs_seed"] >= 2.0
    # The planner axis alone must pay for itself on a skewed workload.
    assert results["speedup"]["bucketed_planner"] > 1.1
    # The float32 policy must beat the float64 reference path outright.
    assert results["speedup"]["precision_policy"] > 1.1
    # The fused attention kernels vs the autograd transformer graph:
    # observed ~50x (graph-free + packed qkv + float32); the floor is the
    # same conservative 2x as the recurrent path.
    assert results["speedup"]["fused_transformer_vs_tensor"] >= 2.0
