"""Table 7: quality of pre-trained models fine-tuned on downstream tasks.

Paper rows: CoLES pre-training + fine-tuning is the best method on all
datasets, ahead of supervised-only training.
"""

from repro.experiments import run_table7


def test_table7_finetuned_models(run_once):
    results, table = run_once(run_table7)
    table.print()
    coles_age = results["coles"]["age"][0]
    supervised_age = results["supervised"]["age"][0]
    assert coles_age > 0.45
    # Shape: pre-training does not hurt relative to supervised-only
    # (the paper's central fine-tuning claim, modulo toy-scale noise).
    assert coles_age >= supervised_age - 0.08
