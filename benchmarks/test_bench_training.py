"""Training-path throughput: fused BPTT engine vs the autograd graph.

``BENCH_inference.json`` and ``BENCH_serving.json`` track the serving
side; this bench tracks the *training* hot path that PR 3 moved onto the
fused kernels (and PR 4 extended to the per-step objectives).  Two
engines run identical optimisation steps (same batches, same initial
weights, same loss/rng):

- **tensor** — the seed implementation: the autograd ``Tensor`` graph,
  one Python node per op per timestep, for forward and backward;
- **fused** — ``engine="fused"`` (the default for recurrent encoders
  since PR 4): graph-free forward + hand-derived BPTT
  (:mod:`repro.runtime.training`); only the objective runs through
  autograd — on the ``(B, H)`` embedding matrix for CoLES, on per-step
  state/event leaves for CPC and RTD.

The fused engine runs twice: ``precision="float64"`` (bit-compatible
with the tensor graph — losses cross-checked at 1e-8) and the mixed
``precision="float32"`` policy (float32 compute and gradients over
float64 master weights and Adam state — losses drift-bounded), which is
the gated ``steps_per_sec.fused`` key.  Gradient equivalence (< 1e-8)
is property-tested in ``tests/runtime/test_fused_training.py``; here
the engines' losses are additionally cross-checked per step while
measuring steps/sec.
Results are recorded through ``bench_record`` to ``BENCH_training.json``
at the repo root (uploaded by CI's bench job, which gates
``steps_per_sec.fused`` and ``steps_per_sec.finetune_fused`` at the
30% budget; the target trajectory is >= 3x steps/sec, the asserted
floor 2x to absorb shared-runner noise).  Three workloads: the CoLES
training step, CPC/RTD per-step pre-training, and supervised
fine-tuning (the classification head moved onto the fused engine in
PR 5).
"""

import time

import numpy as np

from repro.augmentations import RandomSlices
from repro.baselines import CPC, RTD, FineTuneConfig, SequenceClassifier
from repro.baselines.pretrain_common import PretrainConfig
from repro.core import ContrastiveTrainer, TrainConfig, augment_batch
from repro.data.sequences import EventSequence, SequenceDataset
from repro.data.synthetic import make_churn_dataset
from repro.encoders import build_encoder
from repro.eval import ComparisonTable
from repro.losses import ContrastiveLoss
from repro.nn import Adam

# Both benchmarks in this module record into one BENCH_training.json.
# They accumulate here and re-record the merged dict, so the file is
# complete when the whole module runs (the documented way to refresh
# baselines) and loudly partial — never silently stale — when a single
# test is cherry-picked.
_TELEMETRY = {}


def _deep_merge(into, update):
    for key, value in update.items():
        if isinstance(value, dict) and isinstance(into.get(key), dict):
            _deep_merge(into[key], value)
        else:
            into[key] = value


def _record_training(bench_record, update):
    # Recursive merge: tests contribute sibling keys to shared subtrees
    # (steps_per_sec, baselines) regardless of execution order.
    _deep_merge(_TELEMETRY, update)
    return bench_record("training", _TELEMETRY)

# (clients, mean events) cohorts: the length-skewed population the
# inference/serving benches use, scaled to a training-step workload.
COHORTS = [(36, 30), (24, 90), (12, 220)]
NUM_BATCHES = 6
BATCH_ENTITIES = 12
HIDDEN = 48


def _longtail_dataset(seed=0):
    sequences, offset, schema = [], 0, None
    for num_clients, mean_length in COHORTS:
        cohort = make_churn_dataset(num_clients=num_clients,
                                    mean_length=mean_length, min_length=10,
                                    max_length=300, seed=seed + mean_length)
        schema = cohort.schema
        for seq in cohort:
            sequences.append(EventSequence(seq_id=offset + seq.seq_id,
                                           fields=seq.fields, label=seq.label))
        offset += 10_000
    rng = np.random.default_rng(seed)
    rng.shuffle(sequences)
    return SequenceDataset(sequences, schema, name="longtail-train")


def _training_batches(dataset, strategy, rng):
    """A fixed epoch of CoLES batches, pre-built so both engines time the
    optimisation step only (augmentation/collation is engine-independent)."""
    order = rng.permutation(len(dataset))
    batches = []
    for start in range(0, len(order), BATCH_ENTITIES):
        chunk = [dataset[i] for i in order[start:start + BATCH_ENTITIES]]
        if len(chunk) < 2:
            continue
        batch = augment_batch(chunk, dataset.schema, strategy, rng)
        if batch is not None:
            batches.append(batch)
        if len(batches) == NUM_BATCHES:
            break
    assert len(batches) == NUM_BATCHES
    return batches


def _run_engine(engine, dataset, batches, strategy, repeats=3,
                precision="float64"):
    """Best steps/sec of ``repeats`` epochs over the fixed batch list."""
    best, losses = float("inf"), None
    for _ in range(repeats):
        encoder = build_encoder(dataset.schema, HIDDEN, "gru",
                                rng=np.random.default_rng(1))
        trainer = ContrastiveTrainer(
            encoder, ContrastiveLoss(), strategy,
            TrainConfig(num_epochs=1, batch_size=BATCH_ENTITIES,
                        engine=engine, precision=precision))
        optimizer = Adam(encoder.parameters(), lr=0.002)
        rng = np.random.default_rng(9)
        encoder.train()
        started = time.perf_counter()
        run_losses = [trainer.train_step(batch, optimizer, rng)
                      for batch in batches]
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best, losses = elapsed, run_losses
    return losses, best


def test_training_step_throughput_fused_vs_tensor(run_once, bench_record):
    def experiment():
        dataset = _longtail_dataset()
        strategy = RandomSlices(10, 80, 5)
        batches = _training_batches(dataset, strategy,
                                    np.random.default_rng(0))
        events = int(sum(batch.lengths.sum() for batch in batches))
        views = int(sum(batch.batch_size for batch in batches))

        tensor_losses, tensor_s = _run_engine("tensor", dataset, batches,
                                              strategy)
        fused64_losses, fused64_s = _run_engine("fused", dataset, batches,
                                                strategy)
        # Mixed precision: float32 compute/gradients over float64 master
        # weights — the fast policy, and the gated steps_per_sec.fused.
        fused32_losses, fused32_s = _run_engine("fused", dataset, batches,
                                                strategy,
                                                precision="float32")

        # Same optimisation: the float64 engine matches to rounding, the
        # float32 policy within accumulated single-precision drift.
        np.testing.assert_allclose(fused64_losses, tensor_losses, atol=1e-8)
        np.testing.assert_allclose(fused32_losses, tensor_losses,
                                   rtol=1e-3, atol=1e-3)

        results = {
            "workload": {
                "batches": len(batches),
                "entities_per_batch": BATCH_ENTITIES,
                "views": views,
                "events": events,
                "hidden_size": HIDDEN,
            },
            "steps_per_sec": {
                "tensor": len(batches) / tensor_s,
                "fused": len(batches) / fused32_s,
                "fused_f64": len(batches) / fused64_s,
            },
            "events_per_sec": {
                "tensor": events / tensor_s,
                "fused": events / fused32_s,
                "fused_f64": events / fused64_s,
            },
            "speedup": {
                "fused_engine": tensor_s / fused32_s,
                "fused_engine_f64": tensor_s / fused64_s,
                "precision_policy": fused64_s / fused32_s,
            },
        }
        _record_training(bench_record, results)

        table = ComparisonTable(
            "Training throughput: fused BPTT engine vs autograd",
            ["engine", "steps/s", "events/s", "speedup"],
        )
        for engine, seconds in (("tensor", tensor_s),
                                ("fused_f64", fused64_s),
                                ("fused_f32", fused32_s)):
            table.add_row(engine, "%.2f" % (len(batches) / seconds),
                          "%.0f" % (events / seconds),
                          "%.1fx" % (tensor_s / seconds))
        table.print()
        return results

    results = run_once(experiment)
    # Target trajectory is >= 3x (recorded in BENCH_training.json); the
    # asserted floor is 2x so shared-runner noise cannot flake the suite
    # while losing the fused backward (~1x) still fails loudly.
    assert results["speedup"]["fused_engine"] >= 2.0


# ----------------------------------------------------------------------
# per-step objectives: CPC / RTD on both engines
# ----------------------------------------------------------------------

PRETRAIN_CLIENTS = 24
PRETRAIN_BATCH = 8


def _pretrain_dataset(seed=0):
    return make_churn_dataset(num_clients=PRETRAIN_CLIENTS, mean_length=140,
                              min_length=40, max_length=220, seed=seed)


def _run_baseline_engine(kind, dataset, engine, repeats=3):
    """Best steps/sec of ``repeats`` one-epoch fits; returns (history, s)."""
    best, history = float("inf"), None
    for _ in range(repeats):
        if kind == "cpc":
            task = CPC(dataset.schema, hidden_size=HIDDEN, num_horizons=3,
                       seed=1)
        else:
            task = RTD(dataset.schema, hidden_size=HIDDEN, seed=1)
        config = PretrainConfig(num_epochs=1, batch_size=PRETRAIN_BATCH,
                                max_seq_length=150, seed=3, engine=engine)
        started = time.perf_counter()
        task.fit(dataset, config)
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best, history = elapsed, task.history
    return history, best


def test_per_step_baseline_throughput_fused_vs_tensor(run_once, bench_record):
    """CPC/RTD steps/sec on both engines, merged into BENCH_training.json.

    Runs after the CoLES step benchmark above (same file, definition
    order), so its ``baselines`` subtree joins the telemetry that test
    already accumulated in ``_TELEMETRY``.
    """

    def experiment():
        dataset = _pretrain_dataset()
        steps = -(-len(dataset) // PRETRAIN_BATCH)  # batches per epoch
        baselines = {}
        table = ComparisonTable(
            "Per-step pre-training throughput: fused vs autograd",
            ["method", "engine", "steps/s", "speedup"],
        )
        for kind in ("cpc", "rtd"):
            tensor_hist, tensor_s = _run_baseline_engine(kind, dataset,
                                                         "tensor")
            fused_hist, fused_s = _run_baseline_engine(kind, dataset, "fused")
            # Same optimisation on either engine, to rounding.
            np.testing.assert_allclose(fused_hist, tensor_hist, atol=1e-8)
            baselines[kind] = {
                "steps_per_sec": {
                    "tensor": steps / tensor_s,
                    "fused": steps / fused_s,
                },
                "speedup": {"fused_engine": tensor_s / fused_s},
            }
            for engine, seconds in (("tensor", tensor_s), ("fused", fused_s)):
                table.add_row(kind, engine, "%.2f" % (steps / seconds),
                              "%.1fx" % (tensor_s / seconds))
        table.print()

        _record_training(bench_record, {"baselines": baselines})
        return baselines

    baselines = run_once(experiment)
    # Acceptance floor: the fused per-step path must hold >= 2x the
    # tensor engine for both objectives (measured ~4x; 2x absorbs
    # shared-runner noise while a lost fused path still fails loudly).
    for kind, results in baselines.items():
        assert results["speedup"]["fused_engine"] >= 2.0, kind


# ----------------------------------------------------------------------
# supervised fine-tuning: the classification head on both engines
# ----------------------------------------------------------------------

FINETUNE_CLIENTS = 28
FINETUNE_BATCH = 8


def _finetune_dataset(seed=0):
    return make_churn_dataset(num_clients=FINETUNE_CLIENTS, mean_length=120,
                              min_length=40, max_length=200,
                              labeled_fraction=1.0, seed=seed)


def _run_finetune_engine(dataset, engine, repeats=3):
    """Best steps/sec of ``repeats`` one-epoch fine-tunes; (history, s)."""
    best, history = float("inf"), None
    for _ in range(repeats):
        encoder = build_encoder(dataset.schema, HIDDEN, "gru",
                                rng=np.random.default_rng(1))
        classifier = SequenceClassifier(encoder, num_classes=2, seed=2)
        config = FineTuneConfig(num_epochs=1, batch_size=FINETUNE_BATCH,
                                learning_rate=0.002, seed=3, engine=engine)
        started = time.perf_counter()
        classifier.fit(dataset, config)
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best, history = elapsed, classifier.history
    return history, best


def test_finetune_throughput_fused_vs_tensor(run_once, bench_record):
    """Supervised fine-tuning steps/sec: fused vs autograd engine.

    The last recurrent training loop moved onto the fused kernels: the
    whole step — encoder forward, closed-form cross-entropy + head
    backward, BPTT — is graph-free under ``engine="fused"``.  The gated
    key is ``steps_per_sec.finetune_fused`` (top level, next to the
    CoLES step's ``steps_per_sec.fused``); the tensor reference joins
    the CPC/RTD numbers under the ``baselines`` subtree.
    """

    def experiment():
        dataset = _finetune_dataset()
        steps = -(-len(dataset) // FINETUNE_BATCH)  # batches per epoch
        tensor_hist, tensor_s = _run_finetune_engine(dataset, "tensor")
        fused_hist, fused_s = _run_finetune_engine(dataset, "fused")
        # Same optimisation on either engine, to rounding.
        np.testing.assert_allclose(fused_hist, tensor_hist, atol=1e-8)

        finetune = {
            "steps_per_sec": {
                "tensor": steps / tensor_s,
                "fused": steps / fused_s,
            },
            "speedup": {"fused_engine": tensor_s / fused_s},
        }
        _record_training(bench_record, {
            "steps_per_sec": {"finetune_fused": steps / fused_s},
            "baselines": {"finetune": finetune},
        })

        table = ComparisonTable(
            "Fine-tuning throughput: fused classification head vs autograd",
            ["engine", "steps/s", "speedup"],
        )
        for engine, seconds in (("tensor", tensor_s), ("fused", fused_s)):
            table.add_row(engine, "%.2f" % (steps / seconds),
                          "%.1fx" % (tensor_s / seconds))
        table.print()
        return finetune

    finetune = run_once(experiment)
    # Acceptance floor: >= 2x over the tensor engine (measured ~4x; the
    # slack absorbs shared-runner noise, losing the fused path fails).
    assert finetune["speedup"]["fused_engine"] >= 2.0
