"""Section 4.0.4: training throughput.

The paper processes one batch (64 entities x 5 sub-sequences, ~28800
transactions) in 142 ms on a Tesla P-100.  We time the same training step
(scaled batch) on CPU with the pure-numpy substrate and report both
numbers; absolute speed is not expected to match, the bench documents the
gap and guards against performance regressions of the training step.
"""

import time

import numpy as np

from repro.augmentations import RandomSlices
from repro.core import TrainConfig, ContrastiveTrainer, augment_batch
from repro.data.synthetic import make_age_dataset
from repro.encoders import build_encoder
from repro.eval import ComparisonTable
from repro.experiments import paper_numbers
from repro.losses import ContrastiveLoss
from repro.nn import Adam


def test_training_step_throughput(benchmark):
    dataset = make_age_dataset(num_clients=16, mean_length=80, min_length=40,
                               max_length=120, seed=0)
    encoder = build_encoder(dataset.schema, 24, "gru",
                            rng=np.random.default_rng(0))
    trainer = ContrastiveTrainer(encoder, ContrastiveLoss(),
                                 RandomSlices(10, 60, 5),
                                 TrainConfig(num_epochs=1, batch_size=16,
                                             bucket_window=4))
    optimizer = Adam(encoder.parameters(), lr=0.001)
    rng = np.random.default_rng(0)
    batch = augment_batch(dataset.sequences, dataset.schema,
                          trainer.strategy, rng)
    events = int(batch.lengths.sum())

    result = benchmark(trainer.train_step, batch, optimizer, rng)

    # The serving-side counterpart on the same batch: one fused forward.
    encoder.eval()
    runtime = encoder.fused_runtime()
    started = time.perf_counter()
    runtime.embed_batch(batch)
    fused_ms = (time.perf_counter() - started) * 1000
    encoder.train()

    table = ComparisonTable(
        "Section 4.0.4: training throughput",
        ["setup", "events/batch", "ms/batch"],
    )
    table.add_row("paper (P-100 GPU, batch 64x5)", "28800",
                  "%.0f" % paper_numbers.THROUGHPUT_MS_PER_BATCH)
    mean_ms = benchmark.stats["mean"] * 1000
    table.add_row("this repo (CPU, numpy, batch 16x5)", str(events),
                  "%.0f" % mean_ms)
    table.add_row("fused inference fwd (same batch)", str(events),
                  "%.1f" % fused_ms)
    table.print()
    assert np.isfinite(result)
