"""Table 11: CoLES embeddings vs hand-crafted baselines for retail clients.

Paper shape: with card transactions the hand-crafted baseline is strong
(merchant type is an obvious grouping key); CoLES alone can trail it but
the hybrid combination is the best scenario on every task.
"""

from repro.experiments import run_table11


def test_table11_retail_customers(run_once):
    results, table = run_once(run_table11)
    table.print()
    for task, scenario in results.items():
        assert scenario["baseline"] > 0.55, task  # features carry signal
        assert scenario["hybrid"] >= scenario["baseline"] - 0.08, task
    # Paper shape: for retail customers the hand-crafted baseline is hard
    # to beat with embeddings alone (merchant type is an obvious grouping
    # key) — CoLES-alone trails the baseline on credit scoring.
    assert (results["credit_scoring"]["coles"]
            <= results["credit_scoring"]["baseline"] + 0.02)
