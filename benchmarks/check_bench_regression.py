"""CI gate: fail when a recorded throughput regresses vs the baseline.

Compares one dotted key (events/sec) between the committed baseline
``BENCH_*.json`` and a freshly regenerated one::

    python benchmarks/check_bench_regression.py \
        --baseline /tmp/bench_baseline.json \
        --current BENCH_inference.json \
        --key events_per_sec.fused_bucketed \
        --tolerance 0.30

Exits non-zero when ``current < baseline * (1 - tolerance)``.  The
tolerance absorbs shared-runner noise; a real hot-path regression (losing
the packed-kernel fast path, the bucketed plan, or micro-batched ingest)
overshoots 30% by a wide margin.
"""

import argparse
import json
import sys


def lookup(results, dotted_key):
    value = results
    for part in dotted_key.split("."):
        if not isinstance(value, dict) or part not in value:
            raise KeyError("key %r not found (missing part: %r)"
                           % (dotted_key, part))
        value = value[part]
    return float(value)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json to gate against")
    parser.add_argument("--current", required=True,
                        help="freshly regenerated BENCH_*.json")
    parser.add_argument("--key", default="events_per_sec.fused_bucketed",
                        help="dotted path of the throughput to compare")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression (default 0.30)")
    args = parser.parse_args(argv)

    with open(args.baseline) as handle:
        baseline = lookup(json.load(handle), args.key)
    with open(args.current) as handle:
        current = lookup(json.load(handle), args.key)

    floor = baseline * (1.0 - args.tolerance)
    ratio = current / baseline if baseline else float("inf")
    print("%s: baseline %.0f ev/s, current %.0f ev/s (%.2fx), floor %.0f"
          % (args.key, baseline, current, ratio, floor))
    if current < floor:
        print("FAIL: regressed more than %.0f%% vs the committed baseline"
              % (100 * args.tolerance))
        return 1
    print("OK: within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
