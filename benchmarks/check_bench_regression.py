"""CI gate: fail when a recorded benchmark metric regresses vs the baseline.

Compares a freshly regenerated ``BENCH_*.json`` against the committed
baseline.  Gated keys (``--key``, repeatable) carry an optional direction
suffix:

- ``--key events_per_sec.fused_bucketed`` (or ``...=higher``) gates a
  throughput: fail when ``current < baseline * (1 - tolerance)``;
- ``--key bytes_per_entity.memmap_int8=lower`` gates a
  lower-is-better metric (footprints, latencies): fail when
  ``current > baseline * (1 + tolerance)``.

Every *other* numeric metric shared by the two files is printed as a
``trend`` line — on success too — so CI logs double as a perf
trajectory::

    python benchmarks/check_bench_regression.py \
        --baseline /tmp/bench_baseline.json \
        --current BENCH_serving.json \
        --key events_per_sec.microbatched_ingest \
        --key bytes_per_entity.memmap_int8=lower \
        --tolerance 0.30

With no ``--key`` the script prints the trajectory only and exits 0
(useful for files tracked but not yet gated).  The tolerance absorbs
shared-runner noise; a real hot-path regression (losing the packed-kernel
fast path, the bucketed plan, micro-batched ingest, the fused backward,
or the quantized at-rest encoding) overshoots 30% by a wide margin.
"""

import argparse
import json
import sys

DIRECTIONS = ("higher", "lower")


def lookup(results, dotted_key):
    """Resolve ``a.b.c`` in nested dicts; raises KeyError with the miss."""
    value = results
    for part in dotted_key.split("."):
        if not isinstance(value, dict) or part not in value:
            raise KeyError("key %r not found (missing part: %r)"
                           % (dotted_key, part))
        value = value[part]
    return float(value)


def parse_gate(spec):
    """Split a ``--key`` spec into ``(dotted_key, direction)``.

    ``direction`` defaults to ``"higher"`` (throughputs); a ``=lower``
    suffix marks footprint/latency metrics where growth is the
    regression.
    """
    dotted_key, _, direction = spec.partition("=")
    direction = direction or "higher"
    if direction not in DIRECTIONS:
        raise ValueError("unknown gate direction %r in %r (use %s)"
                         % (direction, spec, "/".join(DIRECTIONS)))
    return dotted_key, direction


def numeric_leaves(results, prefix=""):
    """Yield ``(dotted_key, value)`` for every numeric leaf, sorted.

    The ``context`` subtree (machine metadata: cpu count, thread pins,
    BLAS build, dtype policy) is descriptive, not a throughput — it is
    printed by :func:`print_context`, never trended or gated.
    """
    for key in sorted(results):
        value = results[key]
        if not prefix and key == "context":
            continue
        dotted = prefix + key if not prefix else "%s.%s" % (prefix, key)
        if isinstance(value, dict):
            yield from numeric_leaves(value, dotted)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            yield dotted, float(value)


def print_context(label, results):
    """Print a file's recorded machine context (one line per field).

    A regressed gate measured under a different dtype policy, thread
    pinning or BLAS build than its baseline is a measurement-context
    change, not a code regression — surfacing both contexts makes that
    diagnosis a log-read instead of an archaeology session.
    """
    context = results.get("context")
    if not isinstance(context, dict):
        print("context %-8s <not recorded>" % label)
        return
    for key in sorted(context):
        print("context %-8s %-22s %s" % (label, key, context[key]))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json to gate against")
    parser.add_argument("--current", required=True,
                        help="freshly regenerated BENCH_*.json")
    parser.add_argument("--key", action="append", default=None,
                        help="dotted path of a metric to gate, optionally "
                             "suffixed '=higher' (default) or '=lower'; "
                             "repeat for several keys, omit for "
                             "trajectory-only")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression (default 0.30)")
    args = parser.parse_args(argv)

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.current) as handle:
        current = json.load(handle)

    print_context("baseline", baseline)
    print_context("current", current)

    gates = [parse_gate(spec) for spec in args.key or ()]

    # The trajectory: measured-vs-baseline ratio for every tracked metric,
    # printed on success as well as failure.
    current_values = dict(numeric_leaves(current))
    gated = {dotted_key for dotted_key, _ in gates}
    for dotted, base_value in numeric_leaves(baseline):
        if dotted in gated or dotted not in current_values:
            continue
        now = current_values[dotted]
        ratio = now / base_value if base_value else float("inf")
        print("trend  %-45s baseline %12.2f  current %12.2f  (%.2fx)"
              % (dotted, base_value, now, ratio))

    failures = 0
    for dotted_key, direction in gates:
        base_value = lookup(baseline, dotted_key)
        now = lookup(current, dotted_key)
        ratio = now / base_value if base_value else float("inf")
        if direction == "lower":
            limit = base_value * (1.0 + args.tolerance)
            regressed = now > limit
            print("gate   %-45s baseline %12.2f  current %12.2f  (%.2fx), "
                  "ceiling %.2f [lower is better]"
                  % (dotted_key, base_value, now, ratio, limit))
        else:
            limit = base_value * (1.0 - args.tolerance)
            regressed = now < limit
            print("gate   %-45s baseline %12.0f  current %12.0f  (%.2fx), "
                  "floor %.0f" % (dotted_key, base_value, now, ratio, limit))
        if regressed:
            print("FAIL: %s regressed more than %.0f%% vs the committed "
                  "baseline" % (dotted_key, 100 * args.tolerance))
            failures += 1
        else:
            print("OK: %s within the regression budget" % dotted_key)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
