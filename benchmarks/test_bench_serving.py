"""Online-serving throughput: micro-batched ingest vs per-entity updates.

PR 1 measured the *bulk* serving path (``BENCH_inference.json``).  This
bench measures the *online* path that follows it in production: a stream
of small per-entity event chunks arriving interleaved, folded into stored
recurrent states.  Two implementations of the same contract:

- **per-entity loop** — one ``EmbeddingStore.update`` call per chunk (the
  pre-serving-subsystem behaviour): every chunk pays collation, weight
  export, and a batch-of-one kernel launch;
- **micro-batched ingest** — chunks buffer in the
  :class:`~repro.serving.EmbeddingService` and flush as length-bucketed
  fused batches through ``update_many``.

A third path re-runs the micro-batched ingest with ``workers=2`` shard
flushes (the bucket-parallel execution policy) and is recorded as
``events_per_sec.parallel_flush``.  A fourth serves the same stream
**out-of-core**: per-shard :class:`~repro.runtime.MemmapStateBackend`
storage (shard capacity 16, LRU of 2 hot shards — small enough that the
stream forces evictions) with the ``int8`` state codec, recorded as
``events_per_sec.out_of_core_ingest``.

All paths must produce the same embeddings as the cold recompute within
their documented drift bound: the in-RAM paths within the float32 bound
of the default precision policy (the float64 paths are held to 1e-10 in
``tests/``), the quantized out-of-core path within the int8 codec bound
(states round-trip through per-shard linear quantization on every
eviction; observed drift on this workload is ~1e-3, asserted at 0.05),
and the parallel flush must be *bit-identical* to the serial service.

The at-rest state footprint is recorded under ``bytes_per_entity``:
the float64 in-RAM dict baseline, the float32 policy dict, and the
memmap + int8 layout — whose >= 4x reduction vs the float64 baseline is
asserted here and gated (lower-is-better) in CI.  Speedups are recorded
via ``bench_record`` to ``BENCH_serving.json``; CI gates
``events_per_sec.microbatched_ingest``, ``events_per_sec.parallel_flush``
and ``bytes_per_entity.memmap_int8`` at the 30% budget, and the >= 2x
micro-batching floor is asserted below.

``test_million_entity_latency_slo`` is the ROADMAP's million-entity
scale point: a 1M-entity day-0 bulk load, then a live stream pushed
through the :class:`~repro.serving.AsyncIngestPipeline` (bounded queue
+ background flusher) while a concurrent reader thread queries cold
entities.  It records per-op latency percentiles under ``latency_ms``
(``ingest`` = producer-side submit, ``flush`` = fused batch flushes on
the flusher thread, ``query`` = concurrent reads) and asserts the async
contract: the drained state is **bit-identical** to the same stream
ingested synchronously (identical threshold-driven flush sequence; the
concurrent reader only touches cold entities, so it never triggers the
partial flushes that would regroup batches — those are drift-bounded,
not bit-identical, and exercised in ``tests/serving/``).  CI gates
``latency_ms.query.p99`` lower-is-better at the 30% budget.

Both tests merge into one ``BENCH_serving.json`` via the shared
``_TELEMETRY`` dict, so the file is complete when the whole module runs
and loudly partial when a single test is cherry-picked.
"""

import threading
import time

import numpy as np

from repro.core.inference import embed_dataset
from repro.data.sequences import EventSequence, SequenceDataset
from repro.data.synthetic import (make_churn_dataset, make_stress_history,
                                  make_stress_stream)
from repro.encoders import build_encoder
from repro.eval import ComparisonTable
from repro.runtime import DictStateBackend, EmbeddingStore, MemmapStateBackend
from repro.serving import AsyncIngestPipeline, EmbeddingService, build_event_log

# Out-of-core knobs: shard capacity and LRU size are deliberately tiny
# relative to the ~230-client workload so the stream forces evictions
# (states quantize + write back, then page back in) — the bench measures
# the paging path, not an all-hot cache.
OOC_SHARD_CAPACITY = 16
OOC_CACHE_SHARDS = 2
# int8 drift bound for the out-of-core path: each eviction round-trips a
# shard's states through per-dimension linear quantization (error <=
# span/255/2 per dim) and the recurrence contracts older error; observed
# end-to-end drift on this workload is ~1e-3.  50x headroom still
# catches a broken codec outright (identity drift is ~1e-7 here).
OOC_INT8_ATOL = 0.05

# (clients, mean events) cohorts: many light users, a heavy tail.
COHORTS = [(120, 20), (80, 60), (30, 200)]
HISTORY_FRACTION = 0.6  # events embedded in the day-0 bulk load
CHUNK_EVENTS = 6        # mean events per streamed arrival

# Million-entity SLO workload knobs.
SLO_ENTITIES = 1_000_000   # day-0 bulk-load population
SLO_ACTIVE = 50_000        # entities that stream post-load chunks
SLO_HIDDEN = 32            # encoder width (state cost dominates at 1M)
SLO_FLUSH_EVENTS = 4096    # micro-batcher threshold
SLO_MAX_PENDING = 8192     # async queue bound (on_full="block")
SLO_QUERY_BATCH = 512      # cold ids per concurrent reader query

# Both tests in this module record into one BENCH_serving.json; they
# accumulate here and re-record the merged dict (same pattern as
# benchmarks/test_bench_training.py).
_TELEMETRY = {}


def _deep_merge(into, update):
    for key, value in update.items():
        if isinstance(value, dict) and isinstance(into.get(key), dict):
            _deep_merge(into[key], value)
        else:
            into[key] = value


def _record_serving(bench_record, update):
    _deep_merge(_TELEMETRY, update)
    return bench_record("serving", _TELEMETRY)


def _longtail_dataset(seed=0):
    sequences, offset, schema = [], 0, None
    for num_clients, mean_length in COHORTS:
        cohort = make_churn_dataset(num_clients=num_clients,
                                    mean_length=mean_length, min_length=8,
                                    max_length=300, seed=seed + mean_length)
        schema = cohort.schema
        for seq in cohort:
            sequences.append(EventSequence(seq_id=offset + seq.seq_id,
                                           fields=seq.fields, label=seq.label))
        offset += 10_000
    rng = np.random.default_rng(seed)
    rng.shuffle(sequences)
    return SequenceDataset(sequences, schema, name="longtail-stream")


def _best_of(func, repeats=3):
    """Best wall-clock of ``repeats`` runs; returns (result, seconds)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        outcome, elapsed = func()
        if elapsed < best:
            best, result = elapsed, outcome
    return result, best


def test_serving_ingest_throughput(run_once, bench_record, tmp_path):
    def experiment():
        dataset = _longtail_dataset()
        schema = dataset.schema
        history = SequenceDataset(
            [seq.slice(0, max(1, int(HISTORY_FRACTION * len(seq))))
             for seq in dataset], schema, name="history")
        tails = SequenceDataset(
            [seq.slice(max(1, int(HISTORY_FRACTION * len(seq))), len(seq))
             for seq in dataset if int(HISTORY_FRACTION * len(seq)) >= 1
             and len(seq) > int(HISTORY_FRACTION * len(seq))],
            schema, name="stream")
        log = build_event_log(tails, chunk_events=CHUNK_EVENTS, seed=1)
        stream_events = int(sum(len(chunk) for chunk in log))

        encoder = build_encoder(schema, 48, "gru",
                                rng=np.random.default_rng(0))
        encoder.eval()

        def per_entity_loop():
            store = EmbeddingStore(encoder)
            store.bulk_load(history)
            started = time.perf_counter()
            for chunk in log:
                store.update(chunk.seq_id, chunk, schema)
            return store, time.perf_counter() - started

        def microbatched_ingest(workers=1):
            service = EmbeddingService(encoder, schema, num_shards=8,
                                       flush_events=1024, cache_capacity=0,
                                       workers=workers)
            service.bulk_load(history)
            started = time.perf_counter()
            for chunk in log:
                service.ingest(chunk)
            service.flush()
            return service, time.perf_counter() - started

        runs = iter(range(100))

        def out_of_core_ingest():
            # A fresh directory per run: the memmap backend adopts any
            # state bundle already present in its directory.
            root = tmp_path / ("ooc_run%02d" % next(runs))
            service = EmbeddingService(
                encoder, schema, num_shards=4, flush_events=1024,
                cache_capacity=0, codec="int8",
                backend=lambda index: MemmapStateBackend(
                    root / ("state_%04d" % index),
                    shard_capacity=OOC_SHARD_CAPACITY,
                    cache_shards=OOC_CACHE_SHARDS))
            service.bulk_load(history)
            started = time.perf_counter()
            for chunk in log:
                service.ingest(chunk)
            service.flush()
            return service, time.perf_counter() - started

        loop_store, loop_s = _best_of(per_entity_loop)
        service, micro_s = _best_of(microbatched_ingest)
        parallel_service, parallel_s = _best_of(
            lambda: microbatched_ingest(workers=2))
        ooc_service, ooc_s = _best_of(out_of_core_ingest)

        # Same contract: both streaming paths equal the cold recompute
        # within the float32 drift bound of the default precision policy
        # (the float64 paths are held to 1e-10 in tests/; observed f32
        # drift across batch shapes is ~1e-7).
        ids = [seq.seq_id for seq in dataset]
        reference = embed_dataset(encoder, dataset, runtime="fused")
        np.testing.assert_allclose(loop_store.embeddings(ids), reference,
                                   atol=1e-5)
        np.testing.assert_allclose(service.query(ids), reference, atol=1e-5)
        # Parallel flushes are bit-identical to the serial service — the
        # determinism contract of the execution policy, not a tolerance.
        np.testing.assert_array_equal(parallel_service.query(ids),
                                      service.query(ids))
        # The out-of-core path actually paged (LRU evictions happened)
        # and still lands within the documented int8 codec bound.
        evictions = sum(stat["evictions"]
                        for stat in ooc_service.store.backend_stats())
        assert evictions > 0
        np.testing.assert_allclose(ooc_service.query(ids), reference,
                                   atol=OOC_INT8_ATOL)

        # At-rest footprint: the acceptance ratio of the out-of-core
        # redesign — int8 memmap states are >= 4x smaller per entity
        # than the float64 in-RAM dict baseline.
        dim = encoder.output_dim
        dict_f64 = DictStateBackend().attach(
            dim, "gru", np.float64, "identity").bytes_per_entity()
        dict_f32 = DictStateBackend().attach(
            dim, "gru", np.float32, "identity").bytes_per_entity()
        memmap_int8 = ooc_service.store.bytes_per_entity()
        assert dict_f64 / memmap_int8 >= 4.0

        stats = service.stats()
        results = {
            "workload": {
                "clients": len(dataset),
                "stream_chunks": len(log),
                "stream_events": stream_events,
                "chunk_mean_events": stream_events / len(log),
            },
            "events_per_sec": {
                "per_entity_update": stream_events / loop_s,
                "microbatched_ingest": stream_events / micro_s,
                # Micro-batched ingest with workers=2 shard flushes —
                # bit-identical output, gated alongside the serial key.
                "parallel_flush": stream_events / parallel_s,
                # Same stream through memmap shards + the int8 codec
                # (trend-only: paging cost depends on runner disk).
                "out_of_core_ingest": stream_events / ooc_s,
            },
            "speedup": {"microbatching": loop_s / micro_s},
            # At-rest bytes per entity (state values + amortised codec
            # metadata + timestamp); memmap_int8 is gated lower-is-better.
            "bytes_per_entity": {
                "dict_float64": dict_f64,
                "dict_float32": dict_f32,
                "memmap_int8": memmap_int8,
                "reduction_vs_float64": dict_f64 / memmap_int8,
            },
            "service": {
                "num_shards": service.store.num_shards,
                "flushes": stats["flushes"],
                "flush_batches": stats["flush_batches"],
                "shard_sizes": stats["shard_sizes"],
                "out_of_core_evictions": evictions,
            },
        }
        _record_serving(bench_record, results)

        table = ComparisonTable(
            "Online ingest throughput: micro-batched vs per-entity",
            ["path", "events/s", "speedup"],
        )
        base = results["events_per_sec"]["per_entity_update"]
        for key in ("per_entity_update", "microbatched_ingest",
                    "parallel_flush"):
            rate = results["events_per_sec"][key]
            table.add_row(key, "%.0f" % rate, "%.1fx" % (rate / base))
        table.print()
        return results

    results = run_once(experiment)
    # The acceptance floor of the serving subsystem: buffering arrivals
    # into length-bucketed fused batches must at least double the ingest
    # rate of the one-kernel-call-per-entity loop.  Typical speedup on
    # this workload is far higher (recorded in BENCH_serving.json); 2x
    # leaves headroom for noisy shared CI runners.
    assert results["speedup"]["microbatching"] >= 2.0


def test_million_entity_latency_slo(run_once, bench_record):
    def experiment():
        history = make_stress_history(SLO_ENTITIES, seed=0)
        schema = history.schema
        stream = make_stress_stream(history, SLO_ACTIVE, seed=1)
        stream_events = int(sum(len(chunk) for chunk in stream))
        active_ids = sorted({chunk.seq_id for chunk in stream})
        active_set = set(active_ids)

        encoder = build_encoder(schema, SLO_HIDDEN, "gru",
                                rng=np.random.default_rng(0))
        encoder.eval()

        def build_service():
            return EmbeddingService(encoder, schema, num_shards=4,
                                    flush_events=SLO_FLUSH_EVENTS,
                                    cache_capacity=0)

        # -- async path: bounded queue + background flusher, with a
        #    concurrent reader hammering *cold* entities (queries of
        #    cold ids never trigger partial flushes, so the threshold-
        #    driven flush sequence stays identical to sync ingest).
        service = build_service()
        bulk_started = time.perf_counter()
        service.bulk_load(history)
        bulk_s = time.perf_counter() - bulk_started
        service.latency.reset()  # SLOs cover the live phase only

        rng = np.random.default_rng(2)
        cold_pool = rng.choice(SLO_ENTITIES, size=200_000, replace=False)
        cold_pool = cold_pool[~np.isin(cold_pool, active_ids)]

        producer_done = threading.Event()
        reader_batches = [0]

        def reader():
            offset = 0
            while not producer_done.is_set():
                batch = cold_pool[offset:offset + SLO_QUERY_BATCH]
                if len(batch) < SLO_QUERY_BATCH:
                    offset = 0
                    continue
                offset += SLO_QUERY_BATCH
                service.query([int(entity) for entity in batch])
                reader_batches[0] += 1
                time.sleep(0.002)

        reader_thread = threading.Thread(target=reader, daemon=True)
        stream_started = time.perf_counter()
        with AsyncIngestPipeline(
                service, max_pending_events=SLO_MAX_PENDING,
                on_full="block") as pipeline:
            reader_thread.start()
            try:
                for chunk in stream:
                    pipeline.submit(chunk)
                pipeline.drain()
            finally:
                producer_done.set()
                reader_thread.join()
            pipe_stats = pipeline.stats()
        stream_s = time.perf_counter() - stream_started

        # -- sync reference: the same stream through plain ingest().
        reference = build_service()
        reference.bulk_load(history)
        for chunk in stream:
            reference.ingest(chunk)
        reference.flush()

        # The async drain contract at scale: bit-identical state to the
        # synchronous service — same chunks, same order, same threshold
        # flushes (identity storage; nothing quantizes in between).
        sample = [int(entity) for entity in cold_pool[:4096]]
        for ids in (active_ids, sample):
            np.testing.assert_array_equal(service.store.embeddings(ids),
                                          reference.store.embeddings(ids))
        assert service.flush_batches == reference.flush_batches

        # The bounded queue actually pushed back (the producer enqueues
        # far faster than fused flushes drain), and the reader really
        # ran concurrently with ingest.
        assert pipe_stats["blocked_submits"] > 0
        assert pipe_stats["applied_chunks"] == len(stream)
        assert reader_batches[0] > 0

        latency = service.stats()["latency_ms"]
        assert set(latency) >= {"ingest", "flush", "query"}
        for op in ("ingest", "flush", "query"):
            assert latency[op]["count"] > 0
            assert latency[op]["p50"] <= latency[op]["p99"]

        update = {
            "latency_ms": latency,
            "slo": {
                "entities": SLO_ENTITIES,
                "active_entities": len(active_ids),
                "stream_chunks": len(stream),
                "stream_events": stream_events,
                "bulk_load_s": bulk_s,
                "stream_s": stream_s,
                "stream_events_per_sec": stream_events / stream_s,
                "reader_query_batches": reader_batches[0],
                "query_batch_entities": SLO_QUERY_BATCH,
                "max_pending_events": SLO_MAX_PENDING,
                "blocked_submits": pipe_stats["blocked_submits"],
            },
        }
        _record_serving(bench_record, update)

        table = ComparisonTable(
            "Million-entity serving latency (ms, live phase)",
            ["op", "count", "p50", "p95", "p99"],
        )
        for op in ("ingest", "flush", "query"):
            row = latency[op]
            table.add_row(op, "%d" % row["count"], "%.3f" % row["p50"],
                          "%.3f" % row["p95"], "%.3f" % row["p99"])
        table.print()
        return update

    results = run_once(experiment)
    # The SLO floor: concurrent cold-entity queries must stay in
    # single-digit-seconds territory even while million-entity state is
    # being streamed into — the committed p99 is gated (lower-is-better,
    # 30% budget) in CI; this assertion only catches order-of-magnitude
    # regressions on noisy runners.
    assert results["latency_ms"]["query"]["p99"] < 10_000.0
