"""Tests for the gradient-boosting classifier (binary and multiclass)."""

import numpy as np
import pytest

from repro.gbm import (
    BinaryLogistic,
    GBMConfig,
    GradientBoostingClassifier,
    MulticlassSoftmax,
    resolve_objective,
)

RNG = np.random.default_rng(0)


def binary_problem(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 5))
    logits = 2.0 * x[:, 0] - 1.5 * x[:, 1] + 0.5 * x[:, 2] * x[:, 0]
    y = (logits + 0.5 * rng.standard_normal(n) > 0).astype(int)
    return x, y


def multiclass_problem(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 4))
    y = (x[:, 0] > 0).astype(int) + 2 * (x[:, 1] > 0).astype(int)
    return x, y


class TestObjectives:
    def test_resolve_binary(self):
        assert isinstance(resolve_objective([0, 1, 1, 0]), BinaryLogistic)

    def test_resolve_multiclass(self):
        obj = resolve_objective([0, 1, 2])
        assert isinstance(obj, MulticlassSoftmax)
        assert obj.num_classes == 3

    def test_resolve_single_class_raises(self):
        with pytest.raises(ValueError):
            resolve_objective([1, 1, 1])

    def test_binary_rejects_other_labels(self):
        with pytest.raises(ValueError):
            BinaryLogistic().validate_targets([0, 2])

    def test_binary_gradient_formula(self):
        obj = BinaryLogistic()
        targets = obj.validate_targets([0, 1])
        scores = np.array([[0.0], [0.0]])
        grad, hess = obj.gradients_hessians(scores, targets)
        np.testing.assert_allclose(grad[:, 0], [0.5, -0.5])
        np.testing.assert_allclose(hess[:, 0], [0.25, 0.25])

    def test_softmax_gradient_sums_to_zero(self):
        obj = MulticlassSoftmax(3)
        targets = obj.validate_targets([0, 1, 2])
        scores = RNG.standard_normal((3, 3))
        grad, _ = obj.gradients_hessians(scores, targets)
        np.testing.assert_allclose(grad.sum(axis=1), np.zeros(3), atol=1e-12)

    def test_initial_scores_match_priors(self):
        obj = BinaryLogistic()
        targets = obj.validate_targets([1, 1, 1, 0])
        scores = obj.initial_scores(targets)
        np.testing.assert_allclose(scores[0, 0], np.log(0.75 / 0.25))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GBMConfig(num_rounds=0)
        with pytest.raises(ValueError):
            GBMConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            GBMConfig(subsample=0.0)


class TestBinaryBoosting:
    def test_train_loss_monotone(self):
        x, y = binary_problem()
        model = GradientBoostingClassifier(GBMConfig(num_rounds=30))
        model.fit(x, y)
        losses = np.array(model.train_losses_)
        assert (np.diff(losses) <= 1e-9).all()

    def test_beats_chance_substantially(self):
        x, y = binary_problem()
        x_test, y_test = binary_problem(seed=1)
        model = GradientBoostingClassifier(GBMConfig(num_rounds=60))
        model.fit(x, y)
        accuracy = (model.predict(x_test) == y_test).mean()
        assert accuracy > 0.8

    def test_predict_proba_distribution(self):
        x, y = binary_problem(100)
        model = GradientBoostingClassifier(GBMConfig(num_rounds=5))
        model.fit(x, y)
        probs = model.predict_proba(x)
        assert probs.shape == (100, 2)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(100), rtol=1e-9)
        assert (probs >= 0).all()

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostingClassifier().predict(np.zeros((2, 2)))

    def test_early_stopping_truncates(self):
        x, y = binary_problem(300)
        x_valid, y_valid = binary_problem(150, seed=9)
        model = GradientBoostingClassifier(
            GBMConfig(num_rounds=200, early_stopping_rounds=5,
                      learning_rate=0.3, max_depth=4)
        )
        model.fit(x, y, eval_set=(x_valid, y_valid))
        assert len(model.trees_) < 200
        assert model.best_round_ < len(model.trees_)

    def test_subsample_still_learns(self):
        x, y = binary_problem()
        model = GradientBoostingClassifier(
            GBMConfig(num_rounds=40, subsample=0.5, seed=3)
        )
        model.fit(x, y)
        assert (model.predict(x) == y).mean() > 0.8

    def test_deterministic_given_seed(self):
        x, y = binary_problem(200)
        probs = []
        for _ in range(2):
            model = GradientBoostingClassifier(
                GBMConfig(num_rounds=10, subsample=0.7, seed=5)
            )
            model.fit(x, y)
            probs.append(model.predict_proba(x))
        np.testing.assert_allclose(probs[0], probs[1])


class TestMulticlassBoosting:
    def test_learns_four_classes(self):
        x, y = multiclass_problem()
        x_test, y_test = multiclass_problem(seed=2)
        model = GradientBoostingClassifier(GBMConfig(num_rounds=40))
        model.fit(x, y)
        accuracy = (model.predict(x_test) == y_test).mean()
        assert accuracy > 0.8

    def test_one_tree_per_class_per_round(self):
        x, y = multiclass_problem(200)
        model = GradientBoostingClassifier(GBMConfig(num_rounds=7))
        model.fit(x, y)
        assert len(model.trees_) == 7
        assert all(len(round_trees) == 4 for round_trees in model.trees_)
        assert model.num_trees == 28

    def test_proba_shape(self):
        x, y = multiclass_problem(150)
        model = GradientBoostingClassifier(GBMConfig(num_rounds=5))
        model.fit(x, y)
        assert model.predict_proba(x).shape == (150, 4)

    def test_train_loss_monotone(self):
        x, y = multiclass_problem()
        model = GradientBoostingClassifier(GBMConfig(num_rounds=25))
        model.fit(x, y)
        assert (np.diff(model.train_losses_) <= 1e-9).all()
