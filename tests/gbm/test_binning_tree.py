"""Tests for quantile binning and the histogram regression tree."""

import numpy as np
import pytest

from repro.gbm import BinMapper, RegressionTree, TreeParams

RNG = np.random.default_rng(0)


class TestBinMapper:
    def test_validation(self):
        with pytest.raises(ValueError):
            BinMapper(max_bins=1)
        with pytest.raises(ValueError):
            BinMapper(max_bins=500)
        with pytest.raises(ValueError):
            BinMapper().fit(np.zeros(5))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            BinMapper().transform(np.zeros((2, 2)))

    def test_bins_monotone_with_values(self):
        x = np.sort(RNG.standard_normal(200))[:, None]
        mapper = BinMapper(max_bins=16).fit(x)
        binned = mapper.transform(x)[:, 0]
        assert (np.diff(binned.astype(int)) >= 0).all()
        assert binned.max() <= 15

    def test_quantile_bins_roughly_balanced(self):
        x = RNG.standard_normal((1000, 1))
        mapper = BinMapper(max_bins=10).fit(x)
        binned = mapper.transform(x)[:, 0]
        counts = np.bincount(binned)
        assert counts.min() > 50  # ~100 each for 10 bins

    def test_constant_feature_single_bin(self):
        x = np.ones((50, 1))
        mapper = BinMapper(max_bins=8).fit(x)
        assert (mapper.transform(x) == 0).all()
        assert mapper.num_bins[0] == 1

    def test_width_mismatch_raises(self):
        mapper = BinMapper().fit(np.zeros((5, 3)))
        with pytest.raises(ValueError):
            mapper.transform(np.zeros((5, 2)))

    def test_unseen_extremes_clamp_to_outer_bins(self):
        x = RNG.standard_normal((100, 1))
        mapper = BinMapper(max_bins=8).fit(x)
        out = mapper.transform(np.array([[-100.0], [100.0]]))
        assert out[0, 0] == 0
        assert out[1, 0] == mapper.num_bins[0] - 1


class TestRegressionTree:
    def test_params_validation(self):
        with pytest.raises(ValueError):
            TreeParams(max_depth=0)
        with pytest.raises(ValueError):
            TreeParams(min_samples_leaf=0)
        with pytest.raises(ValueError):
            TreeParams(reg_lambda=-1)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((2, 2), dtype=np.uint8))

    def test_fits_a_step_function(self):
        """A depth-1 tree must find the obvious split."""
        binned = np.repeat(np.arange(10, dtype=np.uint8), 20)[:, None]
        gradients = np.where(binned[:, 0] < 5, -1.0, 1.0)  # target +1 then -1
        hessians = np.ones(len(binned))
        tree = RegressionTree(TreeParams(max_depth=1, min_samples_leaf=5,
                                         reg_lambda=0.0))
        tree.fit(binned, gradients, hessians)
        assert tree.root_.feature == 0
        assert tree.root_.threshold_bin == 4
        preds = tree.predict(binned)
        np.testing.assert_allclose(preds[binned[:, 0] < 5], 1.0, rtol=1e-9)
        np.testing.assert_allclose(preds[binned[:, 0] >= 5], -1.0, rtol=1e-9)

    def test_leaf_value_newton_step(self):
        """leaf = -G/(H+lambda)."""
        binned = np.zeros((10, 1), dtype=np.uint8)
        gradients = np.full(10, 3.0)
        hessians = np.full(10, 2.0)
        tree = RegressionTree(TreeParams(max_depth=2, reg_lambda=1.0))
        tree.fit(binned, gradients, hessians)
        np.testing.assert_allclose(tree.predict(binned),
                                   -30.0 / (20.0 + 1.0))

    def test_max_depth_respected(self):
        binned = RNG.integers(0, 32, size=(300, 4)).astype(np.uint8)
        gradients = RNG.standard_normal(300)
        tree = RegressionTree(TreeParams(max_depth=3, min_samples_leaf=2))
        tree.fit(binned, gradients, np.ones(300))
        assert tree.depth() <= 3

    def test_min_samples_leaf_respected(self):
        binned = np.arange(20, dtype=np.uint8)[:, None]
        gradients = RNG.standard_normal(20)
        tree = RegressionTree(TreeParams(max_depth=8, min_samples_leaf=8))
        tree.fit(binned, gradients, np.ones(20))

        def check(node, rows):
            if node.is_leaf:
                assert len(rows) >= 8
                return
            left = rows[binned[rows, node.feature] <= node.threshold_bin]
            right = rows[binned[rows, node.feature] > node.threshold_bin]
            check(node.left, left)
            check(node.right, right)

        check(tree.root_, np.arange(20))

    def test_picks_informative_feature(self):
        binned = np.zeros((200, 3), dtype=np.uint8)
        binned[:, 0] = RNG.integers(0, 16, 200)  # noise
        binned[:, 2] = RNG.integers(0, 16, 200)  # signal
        gradients = np.where(binned[:, 2] < 8, -1.0, 1.0)
        tree = RegressionTree(TreeParams(max_depth=1))
        tree.fit(binned, gradients, np.ones(200))
        assert tree.root_.feature == 2

    def test_constant_gradients_make_stump(self):
        binned = RNG.integers(0, 8, size=(50, 2)).astype(np.uint8)
        tree = RegressionTree(TreeParams(max_depth=4))
        tree.fit(binned, np.zeros(50), np.ones(50))
        assert tree.depth() == 0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((5, 1), dtype=np.uint8),
                                 np.zeros(4), np.ones(5))
