"""Property-based tests (hypothesis) for the GBM stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gbm import BinMapper, GBMConfig, GradientBoostingClassifier


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000), n=st.integers(20, 100), bins=st.integers(2, 32))
def test_binning_preserves_order(seed, n, bins):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1))
    mapper = BinMapper(max_bins=bins).fit(x)
    binned = mapper.transform(x)[:, 0].astype(int)
    order = np.argsort(x[:, 0], kind="stable")
    assert (np.diff(binned[order]) >= 0).all()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000))
def test_bin_codes_below_num_bins(seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((60, 3))
    mapper = BinMapper(max_bins=16).fit(x)
    binned = mapper.transform(rng.standard_normal((30, 3)))
    assert (binned < mapper.num_bins[None, :]).all()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 200), rounds=st.integers(2, 15))
def test_train_loss_never_increases(seed, rounds):
    """Boosting with exact Newton leaves must not increase training loss."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((80, 3))
    y = (x[:, 0] + 0.3 * rng.standard_normal(80) > 0).astype(int)
    if len(np.unique(y)) < 2:
        return
    model = GradientBoostingClassifier(GBMConfig(num_rounds=rounds))
    model.fit(x, y)
    assert (np.diff(model.train_losses_) <= 1e-9).all()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 200))
def test_probabilities_valid(seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((60, 2))
    y = rng.integers(0, 3, 60)
    if len(np.unique(y)) < 2:
        return
    model = GradientBoostingClassifier(GBMConfig(num_rounds=4))
    model.fit(x, y)
    probs = model.predict_proba(rng.standard_normal((25, 2)))
    assert (probs >= 0).all() and (probs <= 1).all()
    np.testing.assert_allclose(probs.sum(axis=1), np.ones(25), rtol=1e-9)
