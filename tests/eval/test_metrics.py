"""Tests for evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    accuracy,
    auroc,
    evaluate_predictions,
    kl_divergence,
    mean_std,
    task_metric,
)


class TestAccuracy:
    def test_basic(self):
        assert accuracy([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)

    def test_perfect(self):
        assert accuracy([0, 1, 2], [0, 1, 2]) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([1, 0], [1])

    def test_empty(self):
        with pytest.raises(ValueError):
            accuracy([], [])


class TestAUROC:
    def test_perfect_ranking(self):
        assert auroc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_ranking(self):
        assert auroc([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        targets = rng.integers(0, 2, 2000)
        scores = rng.random(2000)
        assert abs(auroc(targets, scores) - 0.5) < 0.05

    def test_ties_average(self):
        # All scores equal: AUROC must be exactly 0.5 by tie handling.
        assert auroc([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == 0.5

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            auroc([1, 1], [0.1, 0.9])

    def test_matches_pairwise_definition(self):
        rng = np.random.default_rng(1)
        targets = rng.integers(0, 2, 50)
        targets[:2] = [0, 1]
        scores = rng.random(50)
        pos = scores[targets == 1]
        neg = scores[targets == 0]
        wins = (pos[:, None] > neg[None, :]).sum()
        ties = (pos[:, None] == neg[None, :]).sum()
        expected = (wins + 0.5 * ties) / (len(pos) * len(neg))
        assert auroc(targets, scores) == pytest.approx(expected)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_invariant_to_monotone_transform(self, seed):
        rng = np.random.default_rng(seed)
        targets = rng.integers(0, 2, 30)
        if len(np.unique(targets)) < 2:
            return
        scores = rng.standard_normal(30)
        a = auroc(targets, scores)
        b = auroc(targets, np.exp(scores))  # strictly monotone
        assert a == pytest.approx(b)


class TestKL:
    def test_zero_for_identical(self):
        p = np.array([0.5, 0.5])
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_different(self):
        assert kl_divergence([0.9, 0.1], [0.1, 0.9]) > 0.5

    def test_asymmetric(self):
        a = kl_divergence([0.9, 0.1], [0.5, 0.5])
        b = kl_divergence([0.5, 0.5], [0.9, 0.1])
        assert a != pytest.approx(b)

    def test_handles_zero_counts(self):
        value = kl_divergence([10, 0, 5], [3, 2, 0])
        assert np.isfinite(value)


class TestHelpers:
    def test_mean_std(self):
        mean, std = mean_std([1.0, 2.0, 3.0])
        assert mean == 2.0
        assert std == pytest.approx(np.std([1, 2, 3]))

    def test_mean_std_empty(self):
        with pytest.raises(ValueError):
            mean_std([])

    def test_task_metric_binary(self):
        assert task_metric([0, 1, 0]) == "auroc"

    def test_task_metric_multiclass(self):
        assert task_metric([0, 1, 2]) == "accuracy"

    def test_evaluate_predictions_auroc(self):
        probs = np.array([[0.9, 0.1], [0.2, 0.8]])
        assert evaluate_predictions([0, 1], probs) == 1.0

    def test_evaluate_predictions_accuracy(self):
        probs = np.array([[0.9, 0.1, 0.0], [0.2, 0.7, 0.1], [0.1, 0.2, 0.7]])
        score = evaluate_predictions([0, 1, 0], probs, metric="accuracy")
        assert score == pytest.approx(2 / 3)

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            evaluate_predictions([0, 1], np.eye(2), metric="f1")
