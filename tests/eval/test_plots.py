"""Tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.eval import ascii_histogram, ascii_series


class TestHistogram:
    def test_renders_all_groups(self):
        text = ascii_histogram(
            {"a": np.zeros(10), "b": np.ones(10) * 5}, num_bins=5
        )
        assert "a" in text and "b" in text
        assert "#" in text and "*" in text

    def test_bar_heights_scale_with_counts(self):
        text = ascii_histogram({"x": np.concatenate([np.zeros(40), np.ones(2)])},
                               num_bins=2, width=20)
        lines = text.splitlines()[1:]
        # The dense bin must produce a longer bar than the sparse one.
        assert lines[0].count("#") > lines[1].count("#")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_histogram({})

    def test_constant_data_handled(self):
        text = ascii_histogram({"a": np.full(5, 2.0)})
        assert isinstance(text, str) and len(text) > 0

    def test_value_range_override(self):
        text = ascii_histogram({"a": np.array([0.5])}, num_bins=4,
                               value_range=(0.0, 4.0))
        assert text.splitlines()[1].lstrip().startswith("0.00")


class TestSeries:
    def test_renders_legend_and_axes(self):
        text = ascii_series({"acc": ([1, 2, 3], [0.1, 0.5, 0.9])})
        assert "acc" in text
        assert "0.900" in text and "0.100" in text

    def test_multiple_series_distinct_marks(self):
        text = ascii_series({
            "a": ([0, 1], [0.0, 1.0]),
            "b": ([0, 1], [1.0, 0.0]),
        })
        assert "#" in text and "*" in text

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_series({})

    def test_monotone_series_goes_up_right(self):
        text = ascii_series({"m": ([0, 1, 2, 3], [0, 1, 2, 3])}, width=20,
                            height=8)
        rows = [line for line in text.splitlines() if line.startswith("         │")]
        first_mark_cols = [row.index("#") for row in rows if "#" in row]
        # Higher rows (earlier lines) hold marks further right.
        assert first_mark_cols == sorted(first_mark_cols, reverse=True)
