"""Tests for the KL experiment (Figure 2) and downstream harnesses."""

import numpy as np
import pytest

from repro.baselines import handcrafted_features
from repro.data.synthetic import make_age_dataset, make_texts_dataset
from repro.encoders import build_encoder
from repro.eval import (
    ComparisonTable,
    cross_val_features,
    evaluate_features,
    fine_tune_and_evaluate,
    slice_kl_experiment,
)


@pytest.fixture(scope="module")
def age():
    return make_age_dataset(num_clients=120, mean_length=90, min_length=40,
                            max_length=150, labeled_fraction=1.0, seed=0)


class TestKLExperiment:
    def test_transactions_separate(self, age):
        result = slice_kl_experiment(age, "trx_type", num_pairs=150, seed=0)
        summary = result.summary()
        assert summary["separation_ratio"] > 1.5
        assert summary["same_median"] < summary["different_median"]

    def test_texts_control_overlaps(self):
        texts = make_texts_dataset(num_posts=120, seed=0)
        result = slice_kl_experiment(texts, "token", num_pairs=150, seed=0)
        assert result.summary()["separation_ratio"] < 1.6

    def test_result_sizes(self, age):
        result = slice_kl_experiment(age, "trx_type", num_pairs=50, seed=1)
        assert len(result.same_sequence) == 50
        assert len(result.different_sequences) == 50
        assert (result.same_sequence >= 0).all()

    def test_unknown_field_raises(self, age):
        with pytest.raises(ValueError):
            slice_kl_experiment(age, "amount")


class TestDownstream:
    def test_handcrafted_features_recover_labels(self, age):
        features = handcrafted_features(age)
        labels = age.label_array()
        scores = cross_val_features(features, labels, n_folds=3, seed=0)
        assert len(scores) == 3
        assert scores.mean() > 0.5  # 4 classes, chance = 0.25

    def test_evaluate_features_auroc_for_binary(self, age):
        features = handcrafted_features(age).values
        labels = (age.label_array() >= 2).astype(int)  # binarised
        score = evaluate_features(features[:80], labels[:80],
                                  features[80:], labels[80:])
        assert 0.5 < score <= 1.0

    def test_fine_tune_and_evaluate_runs(self, age):
        from repro.baselines import FineTuneConfig
        from repro.data import train_test_split

        train, test = train_test_split(age, 0.2, seed=0)
        encoder = build_encoder(age.schema, 12, "gru",
                                rng=np.random.default_rng(0))
        score = fine_tune_and_evaluate(
            encoder, train, test,
            config=FineTuneConfig(num_epochs=2, batch_size=16, seed=0),
        )
        assert 0.0 <= score <= 1.0

    def test_fine_tune_and_evaluate_engine_parity(self, age):
        """Both fine-tuning engines land on the same test metric.

        Same seeds, same batches — weights agree to < 1e-8, so the
        downstream metric computed from the predicted probabilities must
        match within rounding tolerance.
        """
        from repro.baselines import FineTuneConfig
        from repro.data import train_test_split

        train, test = train_test_split(age, 0.2, seed=0)
        scores = {}
        for engine in ("tensor", "fused"):
            encoder = build_encoder(age.schema, 12, "gru",
                                    rng=np.random.default_rng(0))
            scores[engine] = fine_tune_and_evaluate(
                encoder, train, test,
                config=FineTuneConfig(num_epochs=2, batch_size=16, seed=0,
                                      engine=engine),
            )
        assert scores["fused"] == pytest.approx(scores["tensor"], abs=1e-6)

    def test_fine_tune_and_evaluate_transformer_runs_fused(self, age):
        """Default "auto" config: transformers run on the fused engine."""
        from repro.data import train_test_split
        from repro.runtime import resolve_engine

        train, test = train_test_split(age, 0.2, seed=0)
        encoder = build_encoder(age.schema, 8, "transformer",
                                rng=np.random.default_rng(0))
        assert resolve_engine("auto", encoder) == "fused"
        from repro.baselines import FineTuneConfig

        score = fine_tune_and_evaluate(
            encoder, train, test,
            config=FineTuneConfig(num_epochs=1, batch_size=16, seed=0),
        )
        assert 0.0 <= score <= 1.0


class TestReporting:
    def test_table_renders_aligned(self):
        table = ComparisonTable("Table X", ["method", "paper", "measured"])
        table.add_row("CoLES", 0.638, 0.61234)
        table.add_row("CPC", (0.594, 0.002), "n/a")
        text = table.render()
        assert "Table X" in text
        assert "0.638" in text
        assert "0.594±0.002" in text
        assert "n/a" in text

    def test_row_width_checked(self):
        table = ComparisonTable("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")
