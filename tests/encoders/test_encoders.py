"""Tests for TrxEncoder and the three sequence encoders."""

import numpy as np
import pytest

from repro.data import EventSchema, EventSequence, collate
from repro.encoders import (
    RnnSeqEncoder,
    TransformerSeqEncoder,
    TrxEncoder,
    build_encoder,
    default_embedding_dim,
)
from repro.nn import Adam

SCHEMA = EventSchema(
    categorical={"mcc": 8, "trx_type": 4},
    numerical=("amount",),
)


def make_batch(lengths=(5, 3), seed=0):
    rng = np.random.default_rng(seed)
    sequences = []
    for i, length in enumerate(lengths):
        sequences.append(
            EventSequence(
                seq_id=i,
                fields={
                    "event_time": np.cumsum(rng.random(length)),
                    "mcc": rng.integers(1, 8, length),
                    "trx_type": rng.integers(1, 4, length),
                    "amount": np.exp(rng.normal(3, 1, length)),
                },
                label=i % 2,
            )
        )
    return collate(sequences, SCHEMA)


class TestTrxEncoder:
    def test_output_shape(self):
        enc = TrxEncoder(SCHEMA, rng=np.random.default_rng(0))
        batch = make_batch((5, 3))
        out = enc(batch)
        assert out.shape == (2, 5, enc.output_dim)

    def test_output_dim_accounts_for_all_fields(self):
        enc = TrxEncoder(
            SCHEMA, embedding_dims={"mcc": 6, "trx_type": 3},
            rng=np.random.default_rng(0),
        )
        # 6 + 3 embeddings + amount + time delta
        assert enc.output_dim == 6 + 3 + 2

    def test_no_time_delta(self):
        enc = TrxEncoder(SCHEMA, use_time_delta=False, rng=np.random.default_rng(0))
        base = TrxEncoder(SCHEMA, use_time_delta=True, rng=np.random.default_rng(0))
        assert enc.output_dim == base.output_dim - 1

    def test_default_embedding_dim_monotone(self):
        assert default_embedding_dim(3) <= default_embedding_dim(100)
        assert default_embedding_dim(100000) == 16

    def test_schema_type_checked(self):
        with pytest.raises(TypeError):
            TrxEncoder({"mcc": 8})

    def test_bad_transform_rejected(self):
        with pytest.raises(ValueError):
            TrxEncoder(SCHEMA, numeric_transform="sqrt")

    def test_log_transform_compresses_amounts(self):
        enc = TrxEncoder(SCHEMA, rng=np.random.default_rng(0))
        batch = make_batch((4, 4))
        batch.fields["amount"][0, 0] = 1e6
        numeric = enc._numeric_array(batch)
        assert numeric[0, 0, 0] < 20  # log1p keeps magnitudes sane

    def test_time_delta_feature(self):
        enc = TrxEncoder(SCHEMA, rng=np.random.default_rng(0))
        batch = make_batch((4, 4))
        numeric = enc._numeric_array(batch)
        times = batch.fields["event_time"]
        expected_first = np.log1p(0.0)
        np.testing.assert_allclose(numeric[:, 0, 1], expected_first)
        np.testing.assert_allclose(
            numeric[0, 1, 1], np.log1p(times[0, 1] - times[0, 0])
        )

    def test_gradients_reach_embeddings(self):
        enc = TrxEncoder(SCHEMA, rng=np.random.default_rng(0))
        out = enc(make_batch((3, 3)))
        out.sum().backward()
        for name, param in enc.named_parameters():
            assert param.grad is not None, name


ENCODER_TYPES = ["gru", "lstm", "transformer"]


class TestSeqEncoders:
    @pytest.mark.parametrize("encoder_type", ENCODER_TYPES)
    def test_embed_shape_and_unit_norm(self, encoder_type):
        enc = build_encoder(SCHEMA, 12, encoder_type,
                            rng=np.random.default_rng(0))
        enc.eval()
        emb = enc.embed(make_batch((6, 4)))
        assert emb.shape == (2, 12)
        np.testing.assert_allclose(
            np.linalg.norm(emb.data, axis=1), np.ones(2), rtol=1e-9
        )

    @pytest.mark.parametrize("encoder_type", ENCODER_TYPES)
    def test_states_shape(self, encoder_type):
        enc = build_encoder(SCHEMA, 12, encoder_type,
                            rng=np.random.default_rng(0))
        enc.eval()
        states, _ = enc(make_batch((6, 4)))
        assert states.shape == (2, 6, 12)

    def test_normalize_false_keeps_raw(self):
        enc = build_encoder(SCHEMA, 8, "gru", normalize=False,
                            rng=np.random.default_rng(0))
        enc.eval()
        emb = enc.embed(make_batch((5, 5)))
        norms = np.linalg.norm(emb.data, axis=1)
        assert not np.allclose(norms, 1.0)

    def test_padding_does_not_affect_embedding(self):
        """A sequence batched with a longer one must embed identically."""
        enc = build_encoder(SCHEMA, 8, "gru", rng=np.random.default_rng(1))
        enc.eval()
        batch_long = make_batch((8, 3), seed=5)
        emb_padded = enc.embed(batch_long).data[1]
        # Rebuild the short sequence alone (no padding).
        short = EventSequence(
            1,
            {name: batch_long.fields[name][1, :3] for name in batch_long.fields},
            label=None,
        )
        solo = collate([short], SCHEMA)
        emb_solo = enc.embed(solo).data[0]
        np.testing.assert_allclose(emb_padded, emb_solo, rtol=1e-8)

    def test_unknown_cell_rejected(self):
        trx = TrxEncoder(SCHEMA, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            RnnSeqEncoder(trx, 8, cell="rnn")

    def test_unknown_encoder_type_rejected(self):
        with pytest.raises(ValueError):
            build_encoder(SCHEMA, 8, "cnn")

    def test_end_to_end_training_step(self):
        enc = build_encoder(SCHEMA, 8, "gru", rng=np.random.default_rng(2))
        opt = Adam(enc.parameters(), lr=0.01)
        emb = enc.embed(make_batch((5, 5)))
        loss = (emb * emb).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()  # must not raise; parameters updated

    @pytest.mark.parametrize("encoder_type", ENCODER_TYPES)
    def test_eval_deterministic(self, encoder_type):
        enc = build_encoder(SCHEMA, 8, encoder_type, rng=np.random.default_rng(3))
        enc.eval()
        batch = make_batch((4, 4))
        a = enc.embed(batch).data
        b = enc.embed(batch).data
        np.testing.assert_allclose(a, b)
