"""ShardedEmbeddingStore: routing, batched writes, per-shard persistence.

The sharding guarantees under test: routing is deterministic and total
(every entity lands on exactly one shard), globally-batched writes
(``bulk_load`` / ``update_many``) agree with the flat store to < 1e-10,
and a per-shard snapshot survives a round-trip into a fresh store.
"""

import numpy as np
import pytest

from repro.core.inference import embed_dataset
from repro.data.synthetic import make_churn_dataset
from repro.encoders import build_encoder
from repro.nn.serialization import save_arrays
from repro.runtime import EmbeddingStore
from repro.serving import ShardedEmbeddingStore, route_entity


@pytest.fixture(scope="module")
def dataset():
    return make_churn_dataset(num_clients=17, mean_length=35, min_length=10,
                              max_length=90, seed=0)


def _encoder(dataset, cell, hidden=12, seed=0):
    encoder = build_encoder(dataset.schema, hidden, cell,
                            rng=np.random.default_rng(seed))
    encoder.eval()
    return encoder


class TestRouting:
    def test_routing_is_deterministic_and_total(self, dataset):
        store = ShardedEmbeddingStore(_encoder(dataset, "gru"), num_shards=5)
        for seq in dataset:
            index = store.shard_of(seq.seq_id)
            assert index == route_entity(seq.seq_id, 5)
            assert 0 <= index < 5
        store.bulk_load(dataset)
        assert sum(store.shard_sizes()) == len(dataset) == len(store)
        assert store.known_entities() == sorted(s.seq_id for s in dataset)
        # no entity is visible from a shard that does not own it
        for seq in dataset:
            owner = store.shard_of(seq.seq_id)
            for index, shard in enumerate(store.shards):
                assert (seq.seq_id in shard) == (index == owner)

    def test_route_entity_handles_string_ids(self):
        assert route_entity("card-00042", 8) == route_entity("card-00042", 8)
        assert 0 <= route_entity("card-00042", 8) < 8

    def test_route_entity_normalizes_integer_types(self):
        """Ids that compare equal as dict keys route to the same shard —
        a store loaded under np.int64 ids must serve plain-int queries."""
        for value in (0, 5, 12345):
            assert (route_entity(np.int64(value), 8)
                    == route_entity(value, 8))

    def test_route_entity_normalizes_float_ids(self):
        """5, 5.0 and np.float64(5.0) hash-equal as dict keys, so they
        must land on the same shard; non-integral floats normalise too."""
        for value in (0, 5, 12345):
            assert (route_entity(float(value), 8)
                    == route_entity(value, 8)
                    == route_entity(np.float64(value), 8))
        assert route_entity(np.float64(2.5), 8) == route_entity(2.5, 8)

    def test_numpy_and_python_int_ids_interoperate(self, dataset):
        store = ShardedEmbeddingStore(_encoder(dataset, "gru"), num_shards=4)
        store.bulk_load(dataset)  # seq_ids are numpy/python ints as-built
        for seq in dataset:
            np.testing.assert_array_equal(
                store.embedding(int(seq.seq_id)),
                store.embedding(np.int64(seq.seq_id)))

    def test_rejects_bad_shard_counts(self, dataset):
        with pytest.raises(ValueError):
            ShardedEmbeddingStore(_encoder(dataset, "gru"), num_shards=0)


@pytest.mark.parametrize("cell", ["gru", "lstm"])
class TestBatchedWrites:
    def test_bulk_load_matches_flat_store(self, dataset, cell):
        encoder = _encoder(dataset, cell)
        sharded = ShardedEmbeddingStore(encoder, num_shards=4,
                                        precision="float64")
        out = sharded.bulk_load(dataset)
        reference = embed_dataset(encoder, dataset, runtime="tensor")
        np.testing.assert_allclose(out, reference, atol=1e-10)
        for row, seq in enumerate(dataset):
            np.testing.assert_allclose(sharded.embedding(seq.seq_id),
                                       reference[row], atol=1e-10)

    def test_update_many_matches_sequential_updates(self, dataset, cell):
        """Heterogeneous micro-batches (known + new entities, mixed chunk
        lengths, cross-shard rows) equal one-entity-at-a-time updates."""
        encoder = _encoder(dataset, cell)
        flat = EmbeddingStore(encoder, precision="float64")
        sharded = ShardedEmbeddingStore(encoder, num_shards=3,
                                        precision="float64")
        heads = [seq.slice(0, len(seq) // 2) for seq in dataset]
        tails = [seq.slice(len(seq) // 2, len(seq)) for seq in dataset]

        # round 1: every entity is new to both stores
        batched = sharded.update_many(heads, dataset.schema, batch_size=5)
        for row, chunk in enumerate(heads):
            sequential = flat.update(chunk.seq_id, chunk, dataset.schema)
            np.testing.assert_allclose(batched[row], sequential, atol=1e-10)

        # round 2: every entity continues from a stored state
        batched = sharded.update_many(tails, dataset.schema, batch_size=5)
        for row, chunk in enumerate(tails):
            sequential = flat.update(chunk.seq_id, chunk, dataset.schema)
            np.testing.assert_allclose(batched[row], sequential, atol=1e-10)

        full = embed_dataset(encoder, dataset, runtime="tensor")
        ids = [seq.seq_id for seq in dataset]
        np.testing.assert_allclose(sharded.embeddings(ids), full, atol=1e-10)

    def test_put_state_requires_last_time(self, dataset, cell, tmp_path):
        """A state without its boundary timestamp cannot be updated or
        snapshotted, so put_state refuses it up front."""
        encoder = _encoder(dataset, cell)
        sharded = ShardedEmbeddingStore(encoder, num_shards=2)
        hidden = np.zeros(encoder.output_dim)
        cell_buf = hidden if cell == "lstm" else None
        with pytest.raises(ValueError, match="last_time"):
            sharded.put_state(99, hidden, cell=cell_buf)
        sharded.put_state(99, hidden, cell=cell_buf, last_time=1.0)
        sharded.save(tmp_path / "snap")  # every state snapshot-safe
        assert sharded.last_time(99) == 1.0

    def test_update_many_rejects_duplicates_and_empty_chunks(self, dataset,
                                                             cell):
        encoder = _encoder(dataset, cell)
        sharded = ShardedEmbeddingStore(encoder, num_shards=2)
        chunk = dataset[0].slice(0, 10)
        with pytest.raises(ValueError):
            sharded.update_many([chunk, chunk], dataset.schema)
        with pytest.raises(ValueError):
            sharded.update_many([dataset[0].slice(0, 0)], dataset.schema)


@pytest.mark.parametrize("cell", ["gru", "lstm"])
class TestShardedPersistence:
    def test_save_load_roundtrip(self, dataset, cell, tmp_path):
        encoder = _encoder(dataset, cell)
        store = ShardedEmbeddingStore(encoder, num_shards=4,
                                       precision="float64")
        half = dataset[np.arange(len(dataset))]
        half.sequences = [seq.slice(0, len(seq) // 2) for seq in dataset]
        store.bulk_load(half)
        snapshot_dir = tmp_path / "shards"
        store.save(snapshot_dir)

        restored = ShardedEmbeddingStore(encoder, num_shards=4,
                                         precision="float64")
        restored.load(snapshot_dir)
        assert restored.known_entities() == store.known_entities()
        assert restored.shard_sizes() == store.shard_sizes()
        for seq in dataset:
            np.testing.assert_array_equal(restored.embedding(seq.seq_id),
                                          store.embedding(seq.seq_id))
            assert restored.last_time(seq.seq_id) == store.last_time(seq.seq_id)

        # the restored shards keep streaming, matching a full recompute
        full = embed_dataset(encoder, dataset, runtime="tensor")
        tails = [seq.slice(len(seq) // 2, len(seq)) for seq in dataset]
        restored.update_many(tails, dataset.schema)
        ids = [seq.seq_id for seq in dataset]
        np.testing.assert_allclose(restored.embeddings(ids), full, atol=1e-10)

    def test_load_rejects_shard_count_mismatch(self, dataset, cell,
                                               tmp_path):
        encoder = _encoder(dataset, cell)
        store = ShardedEmbeddingStore(encoder, num_shards=4)
        store.bulk_load(dataset)
        store.save(tmp_path / "snap")
        other = ShardedEmbeddingStore(encoder, num_shards=2)
        with pytest.raises(ValueError, match="4 shards"):
            other.load(tmp_path / "snap")

    def test_load_requires_manifest(self, dataset, cell, tmp_path):
        store = ShardedEmbeddingStore(_encoder(dataset, cell), num_shards=2)
        with pytest.raises(FileNotFoundError):
            store.load(tmp_path / "nowhere")

    def test_deprecated_snapshot_restore_aliases(self, dataset, cell,
                                                 tmp_path):
        """The pre-backend method names keep working, with a warning."""
        encoder = _encoder(dataset, cell)
        store = ShardedEmbeddingStore(encoder, num_shards=3)
        store.bulk_load(dataset)
        with pytest.warns(DeprecationWarning, match="save"):
            store.snapshot(tmp_path / "snap")
        fresh = ShardedEmbeddingStore(encoder, num_shards=3)
        with pytest.warns(DeprecationWarning, match="load"):
            fresh.restore(tmp_path / "snap")
        assert fresh.known_entities() == store.known_entities()

    def test_load_reads_legacy_npz_snapshot(self, dataset, cell, tmp_path):
        """Directories written by the pre-backend per-shard ``.npz``
        snapshot format stay loadable."""
        encoder = _encoder(dataset, cell)
        store = ShardedEmbeddingStore(encoder, num_shards=2,
                                      precision="float64")
        store.bulk_load(dataset)
        legacy_dir = tmp_path / "legacy"
        legacy_dir.mkdir()
        save_arrays(legacy_dir / "manifest.npz", {
            "num_shards": np.asarray(2),
            "kind": np.asarray(cell),
        })
        for index, shard in enumerate(store.shards):
            ids = shard.known_entities()
            arrays = {
                "entity_ids": np.asarray(ids),
                "hidden": np.stack([shard.state_of(e)[0] for e in ids]),
                "last_times": np.asarray([shard.last_time(e) for e in ids]),
                "kind": np.asarray(cell),
            }
            if cell == "lstm":
                arrays["cell"] = np.stack([shard.state_of(e)[1]
                                           for e in ids])
            save_arrays(legacy_dir / ("shard_%04d.npz" % index), arrays)
        loaded = ShardedEmbeddingStore(encoder, num_shards=2,
                                       precision="float64")
        loaded.load(legacy_dir)
        assert loaded.known_entities() == store.known_entities()
        for seq in dataset:
            np.testing.assert_array_equal(loaded.embedding(seq.seq_id),
                                          store.embedding(seq.seq_id))
