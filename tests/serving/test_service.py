"""EmbeddingService: replay equivalence, cache freshness, micro-batching.

The service-level guarantees: replaying an interleaved event log through
``ingest``/``flush``/``query`` reproduces ``embed_dataset`` of the full
history to < 1e-10 (the acceptance bar of the serving subsystem), cached
reads are never stale across ingests, and persistence round-trips through
the sharded snapshot.
"""

import numpy as np
import pytest

from repro.core.inference import embed_dataset, serve
from repro.data.bucketing import plan_batches
from repro.data.sequences import EventSequence
from repro.data.synthetic import make_churn_dataset
from repro.encoders import build_encoder
from repro.serving import (
    EmbeddingCache,
    EmbeddingService,
    MicroBatcher,
    build_event_log,
    coalesce_chunks,
    replay_event_log,
)


@pytest.fixture(scope="module")
def dataset():
    return make_churn_dataset(num_clients=16, mean_length=30, min_length=10,
                              max_length=70, seed=4)


def _encoder(dataset, cell, hidden=12, seed=0):
    encoder = build_encoder(dataset.schema, hidden, cell,
                            rng=np.random.default_rng(seed))
    encoder.eval()
    return encoder


@pytest.mark.parametrize("cell", ["gru", "lstm"])
class TestReplayEquivalence:
    def test_cold_stream_matches_embed_dataset(self, dataset, cell):
        """Every event arrives online (no bulk load); the final served
        embeddings equal a cold full recompute."""
        encoder = _encoder(dataset, cell)
        service = EmbeddingService(encoder, dataset.schema, num_shards=4,
                                   flush_events=48, precision="float64")
        log = build_event_log(dataset, chunk_events=5, seed=7)
        stats = replay_event_log(service, log, query_every=4)
        assert stats["pending_events"] == 0
        assert stats["events_ingested"] == int(dataset.lengths().sum())
        assert stats["flushes"] >= 2  # micro-batched, not one giant flush

        served = service.query([seq.seq_id for seq in dataset])
        reference = embed_dataset(encoder, dataset, runtime="fused",
                                  precision="float64")
        np.testing.assert_allclose(served, reference, atol=1e-10)

    def test_bulk_load_then_stream_matches(self, dataset, cell):
        """Day-0 bulk load + streamed tails — the production ETL shape."""
        encoder = _encoder(dataset, cell)
        history = dataset[np.arange(len(dataset))]
        history.sequences = [seq.slice(0, 2 * len(seq) // 3)
                             for seq in dataset]
        tails = dataset[np.arange(len(dataset))]
        tails.sequences = [seq.slice(2 * len(seq) // 3, len(seq))
                           for seq in dataset]

        service = serve(encoder, dataset=history, num_shards=3,
                        flush_events=32, precision="float64")
        replay_event_log(service, build_event_log(tails, chunk_events=4,
                                                  seed=1))
        served = service.query([seq.seq_id for seq in dataset])
        reference = embed_dataset(encoder, dataset, runtime="fused",
                                  precision="float64")
        np.testing.assert_allclose(served, reference, atol=1e-10)


class TestCacheBehaviour:
    def test_repeat_queries_hit_the_cache(self, dataset):
        service = serve(_encoder(dataset, "gru"), dataset=dataset)
        ids = [seq.seq_id for seq in dataset][:5]
        first = service.query(ids)
        hits_before = service.cache.hits
        second = service.query(ids)
        np.testing.assert_array_equal(first, second)
        assert service.cache.hits == hits_before + len(ids)

    def test_ingest_invalidates_and_query_is_never_stale(self, dataset):
        """A cached embedding must not survive the entity's state advance:
        ingest -> flush invalidates, and a query that races buffered
        events flushes first."""
        encoder = _encoder(dataset, "gru")
        history = dataset[np.arange(len(dataset))]
        history.sequences = [seq.slice(0, len(seq) - 5) for seq in dataset]
        service = serve(encoder, dataset=history, flush_events=10_000,
                        precision="float64")
        seq = dataset[0]
        stale = service.query_one(seq.seq_id)  # warm the cache
        assert seq.seq_id in service.cache

        service.ingest(seq.slice(len(seq) - 5, len(seq)))
        assert service.batcher.has_pending(seq.seq_id)  # below threshold
        fresh = service.query_one(seq.seq_id)  # forces the flush
        assert service.batcher.pending_events == 0
        assert np.abs(fresh - stale).max() > 0
        full = embed_dataset(encoder, dataset, runtime="fused",
                             precision="float64")
        np.testing.assert_allclose(fresh, full[0], atol=1e-10)

    def test_explicit_flush_invalidates_cached_entries(self, dataset):
        history = dataset[np.arange(len(dataset))]
        history.sequences = [seq.slice(0, len(seq) - 3) for seq in dataset]
        service = serve(_encoder(dataset, "gru"), dataset=history,
                        flush_events=10_000)
        seq = dataset[1]
        service.query_one(seq.seq_id)
        invalidations_before = service.cache.invalidations
        service.ingest(seq.slice(len(seq) - 3, len(seq)))
        updated = service.flush()
        assert updated == [seq.seq_id]
        assert service.cache.invalidations == invalidations_before + 1
        assert seq.seq_id not in service.cache

    def test_lru_eviction_and_stats(self):
        cache = EmbeddingCache(capacity=2)
        cache.put("a", np.zeros(3))
        cache.put("b", np.ones(3))
        assert cache.get("a") is not None  # "a" is now most recent
        cache.put("c", np.full(3, 2.0))   # evicts "b"
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.evictions == 1
        stats = cache.stats()
        assert stats["size"] == 2 and stats["hits"] == 1

    def test_zero_capacity_disables_caching(self, dataset):
        service = serve(_encoder(dataset, "gru"), dataset=dataset,
                        cache_capacity=0)
        ids = [dataset[0].seq_id]
        service.query(ids)
        service.query(ids)
        assert service.cache.hits == 0 and len(service.cache) == 0


class TestMicroBatcher:
    def test_coalesces_chunks_in_arrival_order(self, dataset):
        seq = dataset[0]
        parts = [seq.slice(0, 4), seq.slice(4, 9), seq.slice(9, len(seq))]
        merged = coalesce_chunks(parts)
        assert len(merged) == len(seq)
        for name in seq.fields:
            np.testing.assert_array_equal(merged.fields[name],
                                          seq.fields[name])

    def test_auto_flush_threshold(self, dataset):
        service = serve(_encoder(dataset, "gru"), schema=dataset.schema,
                        flush_events=12)
        seq = dataset[0]
        service.ingest(seq.slice(0, 6))
        assert service.flushes == 0 and service.batcher.pending_events == 6
        service.ingest(seq.slice(6, 13))  # crosses the threshold
        assert service.flushes == 1 and service.batcher.pending_events == 0
        np.testing.assert_array_equal(service.query_one(seq.seq_id),
                                      service.store.embedding(seq.seq_id))

    def test_rejects_out_of_order_and_empty_chunks(self, dataset):
        batcher = MicroBatcher(flush_events=100,
                               time_field=dataset.schema.time_field)
        seq = dataset[0]
        batcher.add(seq.slice(5, 10))
        with pytest.raises(ValueError, match="out-of-order"):
            batcher.add(seq.slice(0, 5))
        with pytest.raises(ValueError):
            batcher.add(seq.slice(0, 0))
        with pytest.raises(TypeError):
            batcher.add("not a sequence")

    def test_query_flushes_only_requested_entities(self, dataset):
        """Read-your-writes on one entity must not collapse everyone
        else's pending micro-batches."""
        service = serve(_encoder(dataset, "gru"), schema=dataset.schema,
                        flush_events=10_000)
        first, second = dataset[0], dataset[1]
        service.ingest(first.slice(0, 8))
        service.ingest(second.slice(0, 8))
        service.query_one(first.seq_id)
        assert not service.batcher.has_pending(first.seq_id)
        assert service.batcher.has_pending(second.seq_id)  # still buffered
        assert service.batcher.pending_events == 8
        service.flush()
        assert service.batcher.pending_events == 0

    def test_rejects_out_of_order_across_a_flush(self, dataset):
        """An out-of-order chunk must raise even when the earlier events
        were already flushed into the store (empty buffer)."""
        service = serve(_encoder(dataset, "gru"), schema=dataset.schema,
                        flush_events=10_000)
        seq = dataset[0]
        service.ingest(seq.slice(5, 10))
        service.flush()
        assert service.batcher.pending_events == 0
        with pytest.raises(ValueError, match="out-of-order"):
            service.ingest(seq.slice(0, 5))

    def test_rejected_chunk_leaves_buffer_clean(self, dataset):
        """A rejected out-of-order chunk must not poison the buffer: no
        phantom pending entity, and later flushes still work."""
        service = serve(_encoder(dataset, "gru"), schema=dataset.schema,
                        flush_events=10_000)
        first, second = dataset[0], dataset[1]
        service.ingest(first.slice(5, 10))
        service.flush()
        with pytest.raises(ValueError, match="out-of-order"):
            service.ingest(first.slice(0, 5))
        assert not service.batcher.has_pending(first.seq_id)
        assert service.batcher.pending_events == 0
        service.ingest(second.slice(0, 8))  # the service keeps working
        assert service.flush() == [second.seq_id]


class TestServicePersistence:
    def test_save_flushes_and_roundtrips(self, dataset, tmp_path):
        encoder = _encoder(dataset, "gru")
        history = dataset[np.arange(len(dataset))]
        history.sequences = [seq.slice(0, len(seq) - 4) for seq in dataset]
        service = serve(encoder, dataset=history, num_shards=4,
                        flush_events=10_000)
        seq = dataset[2]
        service.ingest(seq.slice(len(seq) - 4, len(seq)))
        service.save(tmp_path / "svc")  # must flush the pending chunk
        assert service.batcher.pending_events == 0

        clone = serve(encoder, schema=dataset.schema, num_shards=4)
        clone.load(tmp_path / "svc")
        ids = [s.seq_id for s in dataset]
        np.testing.assert_array_equal(clone.query(ids), service.query(ids))

    def test_load_refuses_pending_events(self, dataset, tmp_path):
        encoder = _encoder(dataset, "gru")
        history = dataset[np.arange(len(dataset))]
        history.sequences = [seq.slice(0, len(seq) - 3) for seq in dataset]
        service = serve(encoder, dataset=history, num_shards=2)
        service.save(tmp_path / "svc")
        seq = dataset[0]
        service.ingest(seq.slice(len(seq) - 3, len(seq)))
        with pytest.raises(RuntimeError, match="buffered events"):
            service.load(tmp_path / "svc")

    def test_deprecated_snapshot_restore_aliases(self, dataset, tmp_path):
        """The pre-backend method names keep working, with a warning."""
        encoder = _encoder(dataset, "gru")
        service = serve(encoder, dataset=dataset, num_shards=2)
        with pytest.warns(DeprecationWarning, match="save"):
            service.snapshot(tmp_path / "svc")
        clone = serve(encoder, schema=dataset.schema, num_shards=2)
        with pytest.warns(DeprecationWarning, match="load"):
            clone.restore(tmp_path / "svc")
        ids = [s.seq_id for s in dataset]
        np.testing.assert_array_equal(clone.query(ids), service.query(ids))

    def test_serve_requires_schema_or_dataset(self, dataset):
        with pytest.raises(ValueError):
            serve(_encoder(dataset, "gru"))


def _with_label(chunk, label):
    return EventSequence(seq_id=chunk.seq_id, fields=dict(chunk.fields),
                         label=label)


class TestTelemetryAndSafetyRegressions:
    """Serving telemetry/safety fixes: flush_batches counted from the
    real fused plan, read-only cache entries, coalesced labels, and
    duplicate query ids."""

    def test_flush_batches_counts_the_real_fused_plan(self, dataset):
        """``flush_batches`` must equal the bucketed plan's batch count
        for exactly the drained chunks — full and partial flushes."""
        service = serve(_encoder(dataset, "gru"), schema=dataset.schema,
                        flush_events=10_000, batch_size=4)
        for seq in dataset:
            service.ingest(seq.slice(0, 5))
        expected = len(plan_batches([5] * len(dataset), 4))
        service.flush()
        assert service.flush_batches == expected
        # A query-triggered partial flush adds its own (tiny) plan.
        for seq in dataset:
            service.ingest(seq.slice(5, 8))
        service.query([dataset[0].seq_id])  # drains exactly one entity
        assert service.flush_batches == expected + len(plan_batches([3], 4))

    def test_cache_hands_out_read_only_entries(self):
        """A ``get`` result is frozen: caller mutation raises instead of
        corrupting every later hit."""
        cache = EmbeddingCache(capacity=4)
        cache.put("a", np.arange(3, dtype=np.float32))
        entry = cache.get("a")
        assert entry.flags.writeable is False
        with pytest.raises(ValueError):
            entry[0] = 99.0
        np.testing.assert_array_equal(cache.get("a"),
                                      np.arange(3, dtype=np.float32))

    def test_cache_put_leaves_the_callers_array_writable(self):
        source = np.arange(3, dtype=np.float32)
        cache = EmbeddingCache(capacity=4)
        cache.put("a", source)
        source[0] = 42.0  # the caller's own buffer: still writable,
        assert cache.get("a")[0] == 0.0  # and the cache kept a copy

    def test_coalesce_prefers_latest_non_none_label(self, dataset):
        seq = dataset[0]
        parts = [seq.slice(0, 4), seq.slice(4, 9)]
        assert coalesce_chunks([_with_label(parts[0], None),
                                _with_label(parts[1], 1)]).label == 1
        assert coalesce_chunks([_with_label(parts[0], 1),
                                _with_label(parts[1], None)]).label == 1
        assert coalesce_chunks([_with_label(parts[0], 1),
                                _with_label(parts[1], 1)]).label == 1
        assert coalesce_chunks([_with_label(parts[0], None),
                                _with_label(parts[1], None)]).label is None

    def test_coalesce_raises_on_conflicting_labels(self, dataset):
        seq = dataset[0]
        parts = [seq.slice(0, 4), seq.slice(4, 9)]
        with pytest.raises(ValueError, match="conflicting labels"):
            coalesce_chunks([_with_label(parts[0], 1),
                             _with_label(parts[1], 2)])

    def test_query_with_duplicate_entity_ids(self, dataset):
        """Repeated ids each get their own row, and the pending-entity
        partial flush is not confused by the repetition."""
        service = serve(_encoder(dataset, "gru"), schema=dataset.schema,
                        flush_events=10_000)
        first, second = dataset[0], dataset[1]
        service.ingest(first.slice(0, 6))
        service.ingest(second.slice(0, 6))
        out = service.query([first.seq_id, second.seq_id, first.seq_id])
        np.testing.assert_array_equal(out[0], out[2])
        np.testing.assert_array_equal(
            out[0], service.store.embedding(first.seq_id))
        np.testing.assert_array_equal(
            out[1], service.store.embedding(second.seq_id))
        assert service.queries == 3
        assert service.batcher.pending_events == 0
