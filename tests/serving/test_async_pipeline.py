"""AsyncIngestPipeline: equivalence, backpressure, concurrency, telemetry.

The async-ingest contracts: a drained pipeline is **bit-identical** to
synchronous ingest of the same chunk stream (single FIFO consumer =>
same ``batcher.add`` / threshold-flush sequence), backpressure blocks or
rejects at ``max_pending_events``, errors defer to ``drain()``, and the
service's counters/cache/latency stay consistent while a background
flusher races producers and query threads.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.inference import embed_dataset
from repro.data.sequences import EventSequence
from repro.data.synthetic import make_churn_dataset
from repro.encoders import build_encoder
from repro.serving import (
    AsyncIngestPipeline,
    BackpressureError,
    EmbeddingService,
    LatencyRecorder,
    build_event_log,
)

WAIT = 10.0  # generous thread-wait bound; normal runs finish in ms


@pytest.fixture(scope="module")
def dataset():
    return make_churn_dataset(num_clients=14, mean_length=25, min_length=8,
                              max_length=60, seed=11)


def _encoder(dataset, cell, hidden=12, seed=0):
    encoder = build_encoder(dataset.schema, hidden, cell,
                            rng=np.random.default_rng(seed))
    encoder.eval()
    return encoder


def _service(dataset, cell, **kwargs):
    kwargs.setdefault("num_shards", 4)
    kwargs.setdefault("flush_events", 48)
    return EmbeddingService(_encoder(dataset, cell), dataset.schema,
                            **kwargs)


def _wait_until(predicate, timeout=WAIT):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(0.001)
    return False


def _chunk(entity_id, times, schema):
    fields = {schema.time_field: np.asarray(times, dtype=np.float64)}
    for name in schema.categorical:
        fields[name] = np.ones(len(times), dtype=np.int64)
    for name in schema.numerical:
        fields[name] = np.ones(len(times), dtype=np.float64)
    return EventSequence(seq_id=entity_id, fields=fields, label=None)


@pytest.mark.parametrize("cell", ["gru", "lstm"])
class TestAsyncEquivalence:
    def test_drained_pipeline_bit_identical_to_sync_ingest(self, dataset,
                                                           cell):
        """Same chunk stream through sync ingest vs async submit+drain:
        every embedding is bit-equal (default float32 policy)."""
        log = build_event_log(dataset, chunk_events=5, seed=3)
        sync = _service(dataset, cell)
        sync.ingest(log)
        sync.flush()

        async_service = _service(dataset, cell)
        with AsyncIngestPipeline(async_service,
                                 max_pending_events=64) as pipeline:
            for chunk in log:
                pipeline.submit(chunk)
            pipeline.drain()

        ids = [seq.seq_id for seq in dataset]
        np.testing.assert_array_equal(async_service.query(ids),
                                      sync.query(ids))
        assert async_service.stats()["flush_batches"] == \
            sync.stats()["flush_batches"]

    def test_drained_pipeline_matches_cold_recompute(self, dataset, cell):
        """The 1e-10 replay contract holds through the async path."""
        service = _service(dataset, cell, precision="float64")
        with AsyncIngestPipeline(service) as pipeline:
            pipeline.submit(build_event_log(dataset, chunk_events=6, seed=5))
            pipeline.drain()
        served = service.query([seq.seq_id for seq in dataset])
        reference = embed_dataset(_encoder(dataset, cell), dataset,
                                  runtime="fused", precision="float64")
        np.testing.assert_allclose(served, reference, atol=1e-10)

    def test_queries_during_async_ingest_stay_in_contract(self, dataset,
                                                          cell):
        """Querying while the flusher races (triggering partial flushes
        of buffered entities) keeps the float64 drift contract."""
        service = _service(dataset, cell, precision="float64")
        history = dataset[np.arange(len(dataset))]
        history.sequences = [seq.slice(0, 2 * len(seq) // 3)
                             for seq in dataset]
        tails = dataset[np.arange(len(dataset))]
        tails.sequences = [seq.slice(2 * len(seq) // 3, len(seq))
                           for seq in dataset]
        service.bulk_load(history)
        ids = [seq.seq_id for seq in dataset]
        stop = threading.Event()
        failures = []

        def reader():
            rng = np.random.default_rng(0)
            while not stop.is_set():
                try:
                    picked = [ids[i] for i in rng.integers(0, len(ids), 3)]
                    service.query(picked)
                except Exception as error:  # surfaced in the main thread
                    failures.append(error)
                    return

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            with AsyncIngestPipeline(service,
                                     max_pending_events=32) as pipeline:
                pipeline.submit(build_event_log(tails, chunk_events=4,
                                                seed=9))
                pipeline.drain()
        finally:
            stop.set()
            thread.join(WAIT)
        assert not failures
        served = service.query(ids)
        reference = embed_dataset(_encoder(dataset, cell), dataset,
                                  runtime="fused", precision="float64")
        np.testing.assert_allclose(served, reference, atol=1e-10)


class TestBackpressure:
    def test_block_mode_waits_for_the_flusher(self, dataset):
        """A submit over the bound blocks until the flusher frees room
        (the service lock is held to stall the flusher deterministically)."""
        service = _service(dataset, "gru", flush_events=10_000)
        schema = dataset.schema
        pipeline = AsyncIngestPipeline(service, max_pending_events=3,
                                       on_full="block")
        try:
            with service._lock:  # flusher stalls before applying anything
                pipeline.submit(_chunk("a", [1.0, 2.0], schema))
                pipeline.submit(_chunk("b", [1.0], schema))  # bound reached
                done = threading.Event()

                def blocked_submit():
                    pipeline.submit(_chunk("c", [1.0], schema))
                    done.set()

                thread = threading.Thread(target=blocked_submit)
                thread.start()
                assert not done.wait(0.15)  # stuck on backpressure
                assert pipeline.stats()["blocked_submits"] == 1
            assert done.wait(WAIT)  # lock released -> flusher drains
            thread.join(WAIT)
            pipeline.drain()
            assert service.events_ingested == 4
        finally:
            pipeline.close()

    def test_reject_mode_raises_typed_error(self, dataset):
        service = _service(dataset, "gru", flush_events=10_000)
        schema = dataset.schema
        pipeline = AsyncIngestPipeline(service, max_pending_events=4,
                                       on_full="reject")
        try:
            with service._lock:
                pipeline.submit(_chunk("a", [1.0, 2.0, 3.0, 4.0], schema))
                with pytest.raises(BackpressureError) as excinfo:
                    pipeline.submit(_chunk("b", [1.0], schema))
                assert excinfo.value.pending_events == 4
                assert excinfo.value.max_pending_events == 4
                assert pipeline.stats()["rejected_chunks"] == 1
            pipeline.drain()
            # The rejected chunk was dropped, the admitted one applied.
            assert service.events_ingested == 4
        finally:
            pipeline.close()

    def test_oversize_chunk_admitted_alone(self, dataset):
        """A chunk larger than the whole bound gets in once the queue is
        empty — block mode must not deadlock on it."""
        service = _service(dataset, "gru", flush_events=10_000)
        pipeline = AsyncIngestPipeline(service, max_pending_events=2)
        try:
            pipeline.submit(_chunk("big", [1.0, 2.0, 3.0, 4.0, 5.0],
                                   dataset.schema))
            pipeline.drain()
            assert service.events_ingested == 5
        finally:
            pipeline.close()


class TestErrorsAndLifecycle:
    def test_out_of_order_chunk_defers_to_drain(self, dataset):
        """A time-order violation is caught by the flusher, deferred, and
        re-raised at drain(); other chunks still apply."""
        service = _service(dataset, "gru", flush_events=10_000)
        schema = dataset.schema
        pipeline = AsyncIngestPipeline(service)
        pipeline.submit(_chunk("a", [5.0, 6.0], schema))
        pipeline.submit(_chunk("a", [1.0], schema))  # starts before 6.0
        pipeline.submit(_chunk("b", [1.0, 2.0], schema))
        with pytest.raises(ValueError, match="out-of-order"):
            pipeline.drain()
        assert pipeline.stats()["deferred_errors"] == 1
        # The poisoned chunk was dropped; everyone else is intact (the
        # first drain raised before flushing, the second one flushes).
        assert sorted(pipeline.drain()) == ["a", "b"]
        assert service.events_ingested == 4
        assert sorted(service.known_entities()) == ["a", "b"]
        pipeline.close()

    def test_submit_validates_synchronously(self, dataset):
        service = _service(dataset, "gru")
        with AsyncIngestPipeline(service) as pipeline:
            with pytest.raises(TypeError):
                pipeline.submit(["not a chunk"])
            with pytest.raises(ValueError, match="empty"):
                pipeline.submit(_chunk("a", [], dataset.schema))
        assert service.events_ingested == 0

    def test_close_is_idempotent_and_submit_after_close_raises(self,
                                                               dataset):
        service = _service(dataset, "gru")
        pipeline = AsyncIngestPipeline(service)
        pipeline.submit(_chunk("a", [1.0], dataset.schema))
        pipeline.close()
        pipeline.close()
        assert service.events_ingested == 1
        assert service.batcher.pending_events == 0  # close drains + flushes
        with pytest.raises(RuntimeError, match="closed"):
            pipeline.submit(_chunk("b", [1.0], dataset.schema))

    def test_counters_consistent_under_concurrent_producers(self, dataset):
        """Multiple producer threads + background flusher: every counter
        adds up after drain."""
        service = _service(dataset, "gru", flush_events=32)
        log = build_event_log(dataset, chunk_events=4, seed=13)
        pipeline = AsyncIngestPipeline(service, max_pending_events=64)
        errors = []

        def produce(chunks):
            try:
                for chunk in chunks:
                    # Per-entity chunk order is preserved per producer
                    # only; route each entity to one producer.
                    pipeline.submit(chunk)
            except Exception as error:
                errors.append(error)

        by_entity = {}
        for chunk in log:
            by_entity.setdefault(chunk.seq_id, []).append(chunk)
        shares = [[], [], []]
        for index, chunks in enumerate(by_entity.values()):
            shares[index % 3].extend(chunks)
        threads = [threading.Thread(target=produce, args=(share,))
                   for share in shares]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(WAIT)
        pipeline.drain()
        assert not errors
        stats = service.stats()
        total_events = sum(len(chunk) for chunk in log)
        assert stats["events_ingested"] == total_events
        assert stats["chunks_ingested"] == len(log)
        assert stats["pending_events"] == 0
        pipe_stats = pipeline.stats()
        assert pipe_stats["submitted_events"] == total_events
        assert pipe_stats["applied_chunks"] == len(log)
        assert pipe_stats["deferred_errors"] == 0
        assert pipe_stats["queued_events"] == 0
        pipeline.close()

    def test_latency_telemetry_covers_all_ops(self, dataset):
        service = _service(dataset, "gru", flush_events=16)
        with AsyncIngestPipeline(service) as pipeline:
            pipeline.submit(build_event_log(dataset, chunk_events=4,
                                            seed=2))
            pipeline.drain()
        service.query([dataset[0].seq_id])
        latency = service.stats()["latency_ms"]
        assert set(latency) >= {"ingest", "flush", "query"}
        for op in ("ingest", "flush", "query"):
            summary = latency[op]
            assert summary["count"] > 0
            assert 0.0 <= summary["p50"] <= summary["p95"] <= summary["p99"]


class TestLatencyRecorder:
    def test_percentiles_on_known_samples(self):
        recorder = LatencyRecorder()
        for millis in range(1, 101):  # 1..100 ms
            recorder.record("op", millis / 1e3)
        summary = recorder.summary()["op"]
        assert summary["count"] == 100
        assert summary["p50"] == pytest.approx(50.5, abs=0.5)
        assert summary["p99"] == pytest.approx(99.01, abs=0.5)
        assert summary["max"] == pytest.approx(100.0)
        assert summary["mean"] == pytest.approx(50.5)

    def test_ring_buffer_keeps_most_recent_window(self):
        recorder = LatencyRecorder(capacity=10)
        for millis in range(1, 101):
            recorder.record("op", millis / 1e3)
        summary = recorder.summary()["op"]
        assert summary["count"] == 100  # lifetime
        assert summary["p50"] == pytest.approx(95.5, abs=0.5)  # window 91..100
        assert summary["mean"] == pytest.approx(50.5)  # lifetime

    def test_time_context_manager_records_failures_too(self):
        recorder = LatencyRecorder()
        with pytest.raises(RuntimeError):
            with recorder.time("op"):
                raise RuntimeError("boom")
        assert recorder.summary()["op"]["count"] == 1

    def test_reset_and_operations(self):
        recorder = LatencyRecorder()
        recorder.record("a", 0.001)
        recorder.record("b", 0.002)
        assert recorder.operations() == ["a", "b"]
        recorder.reset()
        assert recorder.operations() == []
        assert recorder.summary() == {}

    def test_concurrent_recording_loses_no_samples(self):
        recorder = LatencyRecorder()

        def hammer():
            for _ in range(500):
                recorder.record("op", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(WAIT)
        assert recorder.summary()["op"]["count"] == 2000

    def test_validates_capacity(self):
        with pytest.raises(ValueError):
            LatencyRecorder(capacity=0)
