"""Tests for negative-sampling strategies (Table 5)."""

import numpy as np
import pytest

from repro.losses import (
    DistanceWeightedSampler,
    HardNegativeMiner,
    RandomNegativeSampler,
)

GROUPS = np.array([0, 0, 1, 1, 2, 2])


def distance_matrix(seed=0, n=6):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 4))
    d = np.linalg.norm(x[:, None] - x[None, :], axis=-1)
    return d


ALL_SAMPLERS = [
    RandomNegativeSampler(neg_per_anchor=2),
    HardNegativeMiner(neg_per_anchor=2),
    DistanceWeightedSampler(neg_per_anchor=2, embedding_dim=4),
]


class TestCommonContract:
    @pytest.mark.parametrize("sampler", ALL_SAMPLERS, ids=lambda s: type(s).__name__)
    def test_only_cross_group_pairs(self, sampler):
        anchors, negatives = sampler.select(
            distance_matrix(), GROUPS, np.random.default_rng(0)
        )
        assert len(anchors) == len(negatives) > 0
        assert (GROUPS[anchors] != GROUPS[negatives]).all()

    @pytest.mark.parametrize("sampler", ALL_SAMPLERS, ids=lambda s: type(s).__name__)
    def test_respects_neg_per_anchor(self, sampler):
        anchors, _ = sampler.select(
            distance_matrix(), GROUPS, np.random.default_rng(1)
        )
        counts = np.bincount(anchors, minlength=6)
        assert counts.max() <= 2

    @pytest.mark.parametrize("sampler", ALL_SAMPLERS, ids=lambda s: type(s).__name__)
    def test_single_group_raises(self, sampler):
        with pytest.raises(ValueError):
            sampler.select(np.zeros((4, 4)), np.zeros(4, dtype=int),
                           np.random.default_rng(0))

    def test_neg_per_anchor_validated(self):
        with pytest.raises(ValueError):
            RandomNegativeSampler(neg_per_anchor=0)


class TestHardMining:
    def test_selects_closest(self):
        d = np.full((4, 4), 10.0)
        np.fill_diagonal(d, 0.0)
        d[0, 2] = 1.0  # closest cross-group partner of anchor 0
        d[0, 3] = 5.0
        groups = np.array([0, 0, 1, 1])
        miner = HardNegativeMiner(neg_per_anchor=1)
        anchors, negatives = miner.select(d, groups, np.random.default_rng(0))
        picked = dict(zip(anchors.tolist(), negatives.tolist()))
        assert picked[0] == 2

    def test_order_of_hardness(self):
        d = distance_matrix(3)
        miner = HardNegativeMiner(neg_per_anchor=4)
        anchors, negatives = miner.select(d, GROUPS, np.random.default_rng(0))
        for anchor in np.unique(anchors):
            partner_d = d[anchor, negatives[anchors == anchor]]
            assert (np.diff(partner_d) >= 0).all()  # sorted ascending


class TestDistanceWeighted:
    def test_weights_prefer_moderate_distances(self):
        """Inverse-density weights must not concentrate on sqrt(2)."""
        sampler = DistanceWeightedSampler(embedding_dim=64, cutoff=0.5)
        d = np.array([0.6, 1.0, 1.414, 1.9])
        log_w = sampler._log_weights(d, 64)
        # The typical distance sqrt(2) is most likely under q, so it must
        # get the *lowest* weight.
        assert log_w.argmin() == 2

    def test_cutoff_floors_distance(self):
        sampler = DistanceWeightedSampler(embedding_dim=8, cutoff=0.5)
        w_small = sampler._log_weights(np.array([1e-6]), 8)
        w_cut = sampler._log_weights(np.array([0.5]), 8)
        np.testing.assert_allclose(w_small, w_cut)

    def test_sampling_is_stochastic(self):
        sampler = DistanceWeightedSampler(neg_per_anchor=1, embedding_dim=4)
        d = distance_matrix(5)
        first = sampler.select(d, GROUPS, np.random.default_rng(0))[1]
        draws = [
            sampler.select(d, GROUPS, np.random.default_rng(s))[1].tolist()
            for s in range(10)
        ]
        assert any(draw != first.tolist() for draw in draws)
