"""Tests for the five metric-learning losses (Table 4)."""

import numpy as np
import pytest

from repro.losses import (
    LOSSES,
    BinomialDevianceLoss,
    ContrastiveLoss,
    HistogramLoss,
    MarginLoss,
    TripletLoss,
    negative_candidates,
    positive_pairs,
)
from repro.nn import Adam, Parameter, Tensor
from repro.nn import functional as F

RNG = np.random.default_rng(0)


def unit_embeddings(n, d, seed=0):
    x = np.random.default_rng(seed).standard_normal((n, d))
    return x / np.linalg.norm(x, axis=1, keepdims=True)


GROUPS = np.array([0, 0, 1, 1, 2, 2])


class TestPairs:
    def test_positive_pairs(self):
        i, j = positive_pairs(GROUPS)
        assert list(zip(i, j)) == [(0, 1), (2, 3), (4, 5)]

    def test_negative_candidates_symmetric(self):
        mask = negative_candidates(GROUPS)
        assert mask[0, 2] and mask[2, 0]
        assert not mask[0, 1]
        assert not mask.diagonal().any()

    def test_validation(self):
        with pytest.raises(ValueError):
            positive_pairs(np.array([0]))
        with pytest.raises(ValueError):
            positive_pairs(np.zeros((2, 2)))


class TestLossContracts:
    @pytest.mark.parametrize("name", sorted(LOSSES))
    def test_returns_finite_scalar(self, name):
        loss_fn = LOSSES[name]()
        emb = Tensor(unit_embeddings(6, 8), requires_grad=True)
        value = loss_fn(emb, GROUPS, rng=np.random.default_rng(1))
        assert value.data.shape == ()
        assert np.isfinite(value.item())

    @pytest.mark.parametrize("name", sorted(LOSSES))
    def test_gradient_flows(self, name):
        loss_fn = LOSSES[name]()
        emb = Tensor(unit_embeddings(6, 8, seed=2), requires_grad=True)
        loss_fn(emb, GROUPS, rng=np.random.default_rng(1)).backward()
        assert emb.grad is not None
        assert np.abs(emb.grad).sum() > 0

    @pytest.mark.parametrize("name", sorted(LOSSES))
    def test_no_positive_pairs_raises(self, name):
        loss_fn = LOSSES[name]()
        emb = Tensor(unit_embeddings(4, 8))
        with pytest.raises(ValueError):
            loss_fn(emb, np.array([0, 1, 2, 3]), rng=np.random.default_rng(0))

    @pytest.mark.parametrize("name", sorted(LOSSES))
    def test_clustered_embeddings_score_lower(self, name):
        """Well-separated group clusters must beat random embeddings."""
        loss_fn = LOSSES[name]()
        rng = np.random.default_rng(3)
        # Clustered: groups at orthogonal anchors + tiny noise.
        anchors = np.eye(8)[:3]
        clustered = np.vstack([anchors[g] + 0.01 * rng.standard_normal(8) for g in GROUPS])
        clustered /= np.linalg.norm(clustered, axis=1, keepdims=True)
        random = unit_embeddings(6, 8, seed=4)
        loss_clustered = loss_fn(
            Tensor(clustered), GROUPS, rng=np.random.default_rng(5)
        ).item()
        loss_random = loss_fn(
            Tensor(random), GROUPS, rng=np.random.default_rng(5)
        ).item()
        assert loss_clustered < loss_random, name

    @pytest.mark.parametrize("name", sorted(LOSSES))
    def test_optimisation_separates_groups(self, name):
        """Minimising each loss should pull same-group points together.

        The histogram loss only receives gradient where the positive and
        negative similarity histograms overlap (a property of the original
        method, which assumes large batches), so it starts from a warm,
        mildly-clustered configuration; the others start from random.
        """
        loss_fn = LOSSES[name]()
        rng_init = np.random.default_rng(6)
        if name == "histogram":
            anchors = np.eye(8)[:3]
            init = np.vstack(
                [anchors[g] + 0.8 * rng_init.standard_normal(8) for g in GROUPS]
            )
        else:
            init = rng_init.standard_normal((6, 8))
        raw = Parameter(init)
        opt = Adam([raw], lr=0.05)
        rng = np.random.default_rng(7)

        def gap():
            emb = F.l2_normalize(raw).data
            sims = emb @ emb.T
            pos = np.mean([sims[0, 1], sims[2, 3], sims[4, 5]])
            neg = sims[negative_candidates(GROUPS)].mean()
            return pos - neg

        initial_gap = gap()
        for _ in range(100):
            emb = F.l2_normalize(raw)
            loss = loss_fn(emb, GROUPS, rng=rng)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert gap() > max(initial_gap + 0.1, 0.2), name


class TestContrastiveSpecifics:
    def test_value_matches_manual(self):
        """Check the Hadsell formula on a tiny hand-computed case."""
        emb = np.array([[1.0, 0.0], [0.0, 1.0], [-1.0, 0.0], [0.0, -1.0]])
        groups = np.array([0, 0, 1, 1])
        loss_fn = ContrastiveLoss(margin=0.5)
        value = loss_fn(Tensor(emb), groups, rng=np.random.default_rng(0)).item()
        # Positive pairs: (0,1) and (2,3), both d²=2 -> pos term = 1.0.
        # All negative distances >= sqrt(2) > margin -> negative term 0.
        np.testing.assert_allclose(value, 1.0, rtol=1e-9)

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            ContrastiveLoss(margin=0.0)

    def test_identical_positives_zero_pos_term(self):
        emb = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0], [0.0, 1.0]])
        groups = np.array([0, 0, 1, 1])
        value = ContrastiveLoss(margin=0.1)(
            Tensor(emb), groups, rng=np.random.default_rng(0)
        ).item()
        np.testing.assert_allclose(value, 0.0, atol=1e-9)


class TestHistogramSpecifics:
    def test_perfect_separation_near_zero(self):
        emb = np.array([[1.0, 0], [1.0, 0], [-1.0, 0], [-1.0, 0]])
        groups = np.array([0, 0, 1, 1])
        value = HistogramLoss()(Tensor(emb), groups).item()
        assert value < 0.05

    def test_total_confusion_near_one(self):
        # Positives maximally dissimilar, negatives identical.
        emb = np.array([[1.0, 0], [-1.0, 0], [1.0, 0], [-1.0, 0]])
        groups = np.array([0, 0, 1, 1])
        value = HistogramLoss()(Tensor(emb), groups).item()
        assert value > 0.9

    def test_bins_validation(self):
        with pytest.raises(ValueError):
            HistogramLoss(num_bins=1)


class TestTripletSpecifics:
    def test_satisfied_triplets_zero_loss(self):
        emb = np.array([[1.0, 0], [0.99, 0.1], [-1.0, 0], [-0.99, 0.1]])
        emb /= np.linalg.norm(emb, axis=1, keepdims=True)
        groups = np.array([0, 0, 1, 1])
        value = TripletLoss(margin=0.1)(
            Tensor(emb), groups, rng=np.random.default_rng(0)
        ).item()
        np.testing.assert_allclose(value, 0.0, atol=1e-9)

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            TripletLoss(margin=-1.0)
