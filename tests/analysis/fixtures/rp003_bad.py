"""RP003 fixture: stale-plan ``.data`` writes (both flagged)."""


def apply_update(param, fresh):
    """Rebind outside the optimizer/serialization contract."""
    param.data = fresh


def overwrite(param, values):
    """In-place mutation: buffer identity never changes."""
    param.data[:] = values
