"""RP005 fixture: documented buffer contracts (clean)."""


def advance(states, hidden):
    """Fold events into the ``(B, H)`` float32 buffers ``states``/``hidden``."""
    return states, hidden


def _pool(mask):
    return mask
