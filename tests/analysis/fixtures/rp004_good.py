"""RP004 fixture: the 3-phase fan-out contract (clean)."""

from concurrent.futures import ThreadPoolExecutor


def run_all(chunks, compute):
    """Parallel pure compute; every write happens on the calling thread."""

    def worker(chunk):
        values = compute(chunk)
        return chunk, values

    results = {}
    with ThreadPoolExecutor() as pool:
        for chunk, values in pool.map(worker, chunks):
            results[chunk[0]] = values
    return results
