"""RP001 fixture: explicit or input-preserving dtypes (clean)."""

import numpy as np


def empty_matrix(dim, dtype):
    """Empty result in the caller's policy dtype."""
    return np.zeros((0, dim), dtype=dtype)


def row_index(count):
    """Index arrays name their integer dtype."""
    return np.arange(count, dtype=np.intp)


def like(buffer):
    """``*_like`` constructors preserve the input dtype and are exempt."""
    return np.zeros_like(buffer)
