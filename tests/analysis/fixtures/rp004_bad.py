"""RP004 fixture: pool worker writing closed-over state (flagged)."""

from concurrent.futures import ThreadPoolExecutor

RESULTS = {}


def run_all(chunks, compute):
    """Dispatches an impure worker: the scatter races across threads."""

    def worker(chunk):
        RESULTS[chunk[0]] = compute(chunk)
        return chunk

    with ThreadPoolExecutor() as pool:
        return list(pool.map(worker, chunks))
