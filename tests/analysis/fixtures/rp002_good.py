"""RP002 fixture: policy-dtype compute (clean)."""

import numpy as np

#: Hoisted constant: the ufunc sees a name, not a literal.
LOG_BASE = 10000.0


def scaled(x, plan_dtype):
    """Constants are cast to the plan dtype before entering the kernel."""
    scale = np.asarray(np.log(LOG_BASE), dtype=plan_dtype)
    return x * scale


def cast(x, dtype):
    """Casts on hot paths skip the copy when the dtype already matches."""
    return x.astype(dtype, copy=False)
