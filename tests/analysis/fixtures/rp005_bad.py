"""RP005 fixture: buffer-taking APIs without a contract (both flagged)."""


def advance(states, hidden):
    """Fold new events into the carried state."""
    return states, hidden


def pool(mask):
    return mask
