"""RP001 fixture: dtype-less numpy constructors (both flagged)."""

import numpy as np


def empty_matrix(dim):
    """The empty-result allocation bug class: silently float64."""
    return np.zeros((0, dim))


def gather(values):
    """Dtype-less asarray on a value buffer."""
    return np.asarray(values)
