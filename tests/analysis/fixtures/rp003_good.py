"""RP003 fixture: contract-respecting ``.data`` rebinds (clean)."""


def step(param, fresh):
    """Optimizer entry point: rebinds are the invalidation mechanism."""
    param.data = fresh


def load_state_dict(model, state):
    """Serialization entry point: plans revalidate on next use."""
    for name, value in state.items():
        model.params[name].data = value


def refresh(runtime, param, fresh):
    """Direct revalidation: the rebind is followed by a plan rebuild."""
    param.data = fresh
    runtime.weight_plan()


def rebuild(runtime):
    """Helper that revalidates the cached plan."""
    runtime.weight_plan()


def swap(runtime, param, fresh):
    """Transitive revalidation through the module call graph."""
    param.data = fresh
    rebuild(runtime)
