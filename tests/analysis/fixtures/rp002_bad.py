"""RP002 fixture: the three promotion patterns (all flagged)."""

import numpy as np


def promote(x):
    """Explicit float64 cast plus a numpy-scalar constant."""
    scale = np.log(10000.0)
    doubled = x.astype(np.float64)
    return doubled * scale


def recopy(x, dtype):
    """``astype`` without ``copy=False`` always allocates."""
    return x.astype(dtype)
