"""Suppression fixture: same-line, standalone-line, whole-file markers.

Expected under RP001+RP005 with unrestricted scope: exactly one finding
(the dtype-less ``np.asarray(mask)`` in ``leak``) and three suppressed.
"""

import numpy as np

# reprolint: disable-file=RP005


def ids(values):
    """Integer ids: suppressed on the offending line itself."""
    return np.asarray(values)  # reprolint: disable=RP001 -- int ids


def table(rows):
    """Multi-line call: the standalone marker above covers it."""
    # reprolint: disable=RP001 -- fixture: marker covers the next statement
    return np.zeros(
        (rows, 4)
    )


def leak(mask):
    return np.asarray(mask)
