"""reprolint: rules, suppressions, baseline and reporter behaviour.

Each rule is exercised on a bad/good fixture pair under
``tests/analysis/fixtures`` (the directory is excluded from the repo's
own lint run); the engine-level tests cover inline suppressions, the
content-fingerprint baseline lifecycle, the JSON reporter schema and
the CLI exit codes.
"""

import json
from pathlib import Path

import pytest

from reprolint import (
    Baseline,
    Config,
    Finding,
    all_rules,
    fingerprint,
    lint_paths,
    render_json,
)
from reprolint.cli import main, run

FIXTURES = Path(__file__).parent / "fixtures"

ALL_IDS = ("RP001", "RP002", "RP003", "RP004", "RP005")


def lint_fixture(name, select):
    """Lint one fixture with the given rules, scope restrictions lifted."""
    config = Config(rules={rule_id: {"scope": []} for rule_id in ALL_IDS})
    findings, suppressed, files = lint_paths(
        [str(FIXTURES / name)], all_rules(list(select)), config)
    assert files == 1
    return findings, suppressed


# ----------------------------------------------------------------------
# the rule battery, one bad/good pair each
# ----------------------------------------------------------------------

def test_rp001_flags_dtype_less_constructors():
    findings, _ = lint_fixture("rp001_bad.py", ["RP001"])
    assert [f.rule for f in findings] == ["RP001", "RP001"]
    assert "np.zeros()" in findings[0].message
    assert "np.asarray()" in findings[1].message
    assert "float64" in findings[0].message


def test_rp001_clean_on_explicit_dtypes():
    findings, _ = lint_fixture("rp001_good.py", ["RP001"])
    assert findings == []


def test_rp002_flags_all_three_promotion_patterns():
    findings, _ = lint_fixture("rp002_bad.py", ["RP002"])
    messages = " | ".join(f.message for f in findings)
    assert len(findings) == 3
    assert "explicit float64 promotion" in messages
    assert "float64 numpy scalar" in messages
    assert "copy=False" in messages


def test_rp002_clean_on_policy_dtype_compute():
    findings, _ = lint_fixture("rp002_good.py", ["RP002"])
    assert findings == []


def test_rp003_flags_rebind_and_mutation():
    findings, _ = lint_fixture("rp003_bad.py", ["RP003"])
    messages = [f.message for f in findings]
    assert len(findings) == 2
    assert any("rebind" in message for message in messages)
    assert any("in-place mutation" in message for message in messages)


def test_rp003_clean_on_contract_paths():
    # step/load_state_dict by name; refresh directly and swap transitively
    # reach a plan validator on the intra-module call graph.
    findings, _ = lint_fixture("rp003_good.py", ["RP003"])
    assert findings == []


def test_rp004_flags_impure_pool_worker():
    findings, _ = lint_fixture("rp004_bad.py", ["RP004"])
    assert len(findings) == 1
    assert "worker" in findings[0].message
    assert "3-phase" in findings[0].message


def test_rp004_clean_on_three_phase_fanout():
    findings, _ = lint_fixture("rp004_good.py", ["RP004"])
    assert findings == []


def test_rp005_flags_contractless_buffer_apis():
    findings, _ = lint_fixture("rp005_bad.py", ["RP005"])
    messages = [f.message for f in findings]
    assert len(findings) == 2
    assert any("no docstring" in message for message in messages)
    assert any("states no shape/dtype contract" in message
               for message in messages)


def test_rp005_clean_on_documented_and_private():
    findings, _ = lint_fixture("rp005_good.py", ["RP005"])
    assert findings == []


# ----------------------------------------------------------------------
# inline suppressions
# ----------------------------------------------------------------------

def test_suppression_markers_same_line_standalone_and_whole_file():
    findings, suppressed = lint_fixture("suppressed.py",
                                        ["RP001", "RP005"])
    # one unsuppressed leak; one same-line, one standalone-above and one
    # whole-file (RP005) marker each swallow a finding.
    assert [f.rule for f in findings] == ["RP001"]
    assert "np.asarray(mask)" in findings[0].line_text
    assert suppressed == 3


# ----------------------------------------------------------------------
# baseline lifecycle
# ----------------------------------------------------------------------

def _finding(line=5, text="    return np.zeros((0, dim))"):
    return Finding(rule="RP001", path="pkg/mod.py", line=line, col=12,
                   message="np.zeros() without dtype=", line_text=text)


def test_fingerprint_survives_line_shift_not_edits():
    shifted = fingerprint(_finding(line=50))
    assert fingerprint(_finding(line=5)) == shifted
    edited = _finding(text="    return np.zeros((0, dim), dtype=dt)")
    assert fingerprint(edited) != shifted


def test_baseline_roundtrip_match_and_stale(tmp_path):
    path = str(tmp_path / "baseline.json")
    first, second = _finding(), _finding(line=9)  # identical line text
    Baseline(path=path).write([first, second])

    baseline = Baseline.load(path)
    new, matched, stale = baseline.split([first, second])
    assert (new, len(matched), stale) == ([], 2, [])

    # one occurrence fixed: its baseline entry goes stale
    new, matched, stale = baseline.split([first])
    assert new == [] and len(matched) == 1 and len(stale) == 1

    # the offending line edited: resurfaces as a new finding
    edited = _finding(text="    return np.empty((0, dim))")
    new, matched, stale = baseline.split([edited])
    assert [f.line_text for f in new] == [edited.line_text]


def test_baseline_missing_file_is_empty_and_version_checked(tmp_path):
    assert Baseline.load(str(tmp_path / "absent.json")).entries == []
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(ValueError):
        Baseline.load(str(bad))


# ----------------------------------------------------------------------
# JSON reporter schema
# ----------------------------------------------------------------------

def test_json_reporter_schema_roundtrip():
    findings, suppressed = lint_fixture("rp001_bad.py", ["RP001"])
    result = {"findings": findings, "baselined": 0,
              "suppressed": suppressed, "stale_baseline": [],
              "files": 1, "baseline_path": "<none>"}
    payload = json.loads(render_json(result))
    assert payload["version"] == 1
    assert payload["tool"] == "reprolint"
    assert payload["summary"] == {"files": 1, "findings": 2, "baselined": 0,
                                  "suppressed": 0, "stale_baseline": 0}
    assert [entry["rule"] for entry in payload["findings"]] == ["RP001",
                                                                "RP001"]
    assert set(payload["findings"][0]) == {"rule", "path", "line", "col",
                                           "severity", "message"}


# ----------------------------------------------------------------------
# CLI: exit codes, config, baseline flow
# ----------------------------------------------------------------------

def _write_project(tmp_path):
    """A throwaway project: unrestricted-scope config + one bad module."""
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        '[tool.reprolint]\n'
        'baseline = "%s"\n'
        '[tool.reprolint.rules.RP001]\n'
        'scope = []\n' % (tmp_path / "baseline.json").as_posix()
    )
    bad = tmp_path / "mod.py"
    bad.write_text("import numpy as np\n\n\ndef f(dim):\n"
                   "    return np.zeros((0, dim))\n")
    return str(pyproject), str(bad)


def test_cli_exit_one_on_findings_zero_after_baseline(tmp_path, capsys):
    pyproject, bad = _write_project(tmp_path)
    assert main([bad, "--config", pyproject, "--select", "RP001"]) == 1
    assert "RP001" in capsys.readouterr().out

    assert main([bad, "--config", pyproject, "--select", "RP001",
                 "--write-baseline"]) == 0
    assert main([bad, "--config", pyproject, "--select", "RP001"]) == 0
    capsys.readouterr()

    # --no-baseline reports the grandfathered finding again
    assert main([bad, "--config", pyproject, "--select", "RP001",
                 "--no-baseline"]) == 1


def test_cli_json_format_and_usage_error(tmp_path, capsys):
    pyproject, bad = _write_project(tmp_path)
    status = main([bad, "--config", pyproject, "--select", "RP001",
                   "--no-baseline", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert status == 1
    assert payload["summary"]["findings"] == 1
    assert main([]) == 2  # no paths


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ALL_IDS:
        assert rule_id in out


def test_toml_fallback_parser_covers_config_subset():
    # The 3.9 leg has no tomllib; the fallback must read our config shape.
    from reprolint._toml import _parse
    parsed = _parse(
        '[tool.reprolint]\n'
        'baseline = ".reprolint-baseline.json"\n'
        'exclude = []\n'
        '[tool.reprolint.rules.RP001]\n'
        'enabled = true\n'
        'scope = [\n'
        '    "src/repro/runtime/",\n'
        '    "src/repro/serving/",\n'
        ']\n'
    )
    table = parsed["tool"]["reprolint"]
    assert table["baseline"] == ".reprolint-baseline.json"
    assert table["exclude"] == []
    assert table["rules"]["RP001"] == {
        "enabled": True,
        "scope": ["src/repro/runtime/", "src/repro/serving/"],
    }


def test_run_skips_out_of_scope_files(tmp_path):
    pyproject, bad = _write_project(tmp_path)
    config = tmp_path / "scoped.toml"
    config.write_text('[tool.reprolint.rules.RP001]\n'
                      'scope = ["src/repro/runtime/"]\n')
    result, status = run([bad], config_path=str(config), select=["RP001"],
                         use_baseline=False)
    assert (status, result["findings"]) == (0, [])
