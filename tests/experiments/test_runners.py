"""Tests for the experiment runners (fast, reduced-size invocations)."""

import numpy as np
import pytest

from repro.experiments import (
    PAPER_TABLE1,
    PROFILES,
    cv_embedding_metric,
    gbm_config_for,
    paper_numbers,
    phase2a_test_metric,
    phase2b_test_metric,
    pretrain_method,
    scaled_profile,
    train_coles,
)
from repro.data import train_test_split


class TestConfigs:
    def test_all_profiles_build_datasets(self):
        for name, profile in PROFILES.items():
            ds = profile.make_dataset(seed=0, num_clients=12)
            assert len(ds) == 12, name
            ds.validate()

    def test_scaled_profile_overrides(self):
        profile = scaled_profile("age", hidden_size=99)
        assert profile.hidden_size == 99
        assert profile.name == "age"

    def test_paper_table1_covers_public_datasets(self):
        assert set(PAPER_TABLE1) == {"age", "churn", "assessment", "retail"}
        for row in PAPER_TABLE1.values():
            assert {"embedding_size", "epochs", "encoder"} <= set(row)

    def test_paper_numbers_complete(self):
        # Every ablation table covers the four public datasets.
        for table in (paper_numbers.TABLE2_SAMPLING,
                      paper_numbers.TABLE3_ENCODERS,
                      paper_numbers.TABLE4_LOSSES,
                      paper_numbers.TABLE5_NEGATIVE_SAMPLING):
            for row in table.values():
                assert set(row) == {"age", "churn", "assessment", "retail"}
        # Table 6 additionally covers scoring.
        for row in paper_numbers.TABLE6_UNSUPERVISED.values():
            assert set(row) == {"age", "churn", "assessment", "retail",
                                "scoring"}


@pytest.fixture(scope="module")
def tiny_profile():
    return scaled_profile("churn", num_clients=40, num_epochs=1,
                          fine_tune_epochs=2)


@pytest.fixture(scope="module")
def tiny_split(tiny_profile):
    dataset = tiny_profile.make_dataset(seed=0, labeled_fraction=1.0)
    return train_test_split(dataset, 0.25, seed=0)


class TestRunners:
    def test_train_coles_and_cv_metric(self, tiny_profile):
        dataset = tiny_profile.make_dataset(seed=0, labeled_fraction=1.0)
        model = train_coles(tiny_profile, dataset, seed=0)
        metric = cv_embedding_metric(tiny_profile, dataset, model, n_folds=3)
        assert 0.0 <= metric <= 1.0

    @pytest.mark.parametrize("method", ["coles", "cpc", "rtd", "nsp", "sop"])
    def test_pretrain_method_contract(self, method, tiny_profile, tiny_split):
        train, _ = tiny_split
        embed_fn, encoder = pretrain_method(method, tiny_profile, train, seed=0)
        emb = embed_fn(train)
        assert emb.shape == (len(train), tiny_profile.hidden_size)
        assert np.isfinite(emb).all()
        assert encoder.output_dim == tiny_profile.hidden_size

    def test_pretrain_unknown_method(self, tiny_profile, tiny_split):
        with pytest.raises(ValueError):
            pretrain_method("bert", tiny_profile, tiny_split[0])

    def test_phase2a_designed_and_coles(self, tiny_profile, tiny_split):
        train, test = tiny_split
        for method in ("designed", "coles"):
            score = phase2a_test_metric(tiny_profile, method, train, test,
                                        seed=0)
            assert 0.0 <= score <= 1.0, method

    def test_phase2b_supervised(self, tiny_profile, tiny_split):
        train, test = tiny_split
        score = phase2b_test_metric(tiny_profile, "supervised", train, test,
                                    seed=0)
        assert 0.0 <= score <= 1.0

    def test_phase2b_engine_parity(self, tiny_profile, tiny_split):
        """The Table 7 / Figure 4 fine-tuning runner: fused == tensor.

        phase2b under ``engine="fused"`` must reproduce the tensor
        engine's test metric (weights agree to < 1e-8, predictions to
        < 1e-10) — the seeded smoke version of the paper runners on the
        fused engine.
        """
        train, test = tiny_split
        scores = {
            engine: phase2b_test_metric(tiny_profile, "supervised", train,
                                        test, seed=0, engine=engine)
            for engine in ("tensor", "fused")
        }
        assert scores["fused"] == pytest.approx(scores["tensor"], abs=1e-6)

    def test_phase2b_transformer_profile_runs_fused(self, tiny_split):
        """A transformer profile fine-tunes on the fused attention engine
        under the default ``engine="auto"``."""
        from repro.encoders import build_encoder
        from repro.runtime import resolve_engine

        profile = scaled_profile("churn", num_clients=40, num_epochs=1,
                                 fine_tune_epochs=1, encoder="transformer")
        train, test = tiny_split
        encoder = build_encoder(train.schema, profile.hidden_size,
                                profile.encoder)
        assert resolve_engine("auto", encoder) == "fused"
        score = phase2b_test_metric(profile, "supervised", train, test,
                                    seed=0)
        assert 0.0 <= score <= 1.0

    def test_gbm_config_uses_profile_rounds(self, tiny_profile):
        config = gbm_config_for(tiny_profile)
        assert config.num_rounds == tiny_profile.gbm_rounds
