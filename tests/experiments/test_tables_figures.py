"""Smoke tests for the table/figure runners at miniature scale.

The benchmarks run these at full (scaled) size; here we only verify the
orchestration: every runner executes, returns the documented structure
and renders a printable table.  PROFILES is monkeypatched to miniature
settings so the whole module runs in seconds.
"""

import pytest

from repro.experiments import configs
from repro.experiments import tables as tables_mod
from repro.experiments import figures as figures_mod
from repro.experiments.configs import scaled_profile
from repro.experiments.tables import run_design_choice_table, run_table10, run_table11
from repro.experiments.figures import run_figure2, run_figure3
from repro.experiments import paper_numbers


@pytest.fixture(autouse=True)
def tiny_profiles(monkeypatch):
    tiny = {
        name: scaled_profile(name, num_clients=24, num_epochs=1,
                             fine_tune_epochs=1, gbm_rounds=5)
        for name in configs.PROFILES
    }
    monkeypatch.setattr(configs, "PROFILES", tiny)
    monkeypatch.setattr(tables_mod, "PROFILES", tiny)
    monkeypatch.setattr(figures_mod, "PROFILES", tiny)
    return tiny


class TestDesignChoiceRunner:
    def test_structure_and_table(self):
        variants = {"random_slices": {"strategy": "random_slices"}}
        results, table = run_design_choice_table(
            "T", variants, paper_numbers.TABLE2_SAMPLING,
            datasets=("age",), num_seeds=1,
        )
        assert set(results) == {"random_slices"}
        assert "age" in results["random_slices"]
        assert 0.0 <= results["random_slices"]["age"] <= 1.0
        rendered = table.render()
        assert "T" in rendered and "age" in rendered


class TestCommercialRunners:
    def test_table10_structure(self):
        results, table = run_table10(num_companies=60, num_epochs=1)
        assert set(results) == {
            "insurance_lead", "credit_lead", "credit_scoring", "fraud",
            "holding_structure",
        }
        for scenario in results.values():
            assert set(scenario) == {"baseline", "coles", "hybrid"}
        assert "Table 10" in table.render()

    def test_table11_structure(self):
        results, table = run_table11(num_clients=60, num_epochs=1)
        assert set(results) == {"credit_scoring", "churn", "insurance_lead"}
        assert "Table 11" in table.render()


class TestFigureRunners:
    def test_figure2_structure(self):
        results, table = run_figure2(num_pairs=30)
        assert set(results) == {"age", "assessment", "retail", "texts"}
        for summary in results.values():
            assert {"same_median", "different_median",
                    "separation_ratio", "histogram"} <= set(summary)
            assert "legend" in summary["histogram"]
        assert "Figure 2" in table.render()

    def test_figure3_structure(self):
        results, table = run_figure3(sizes=(4, 8))
        assert set(results) == {4, 8}
        assert all(0.0 <= v <= 1.0 for v in results.values())
        assert "Figure 3" in table.render()
