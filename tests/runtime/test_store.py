"""EmbeddingStore: bulk loading, incremental refresh, save/load.

The serving guarantees under test: incremental refresh is bit-equal to a
full recompute (the paper's Section 4.3.1 ETL property), bulk loading
through the bucketed batch planner changes nothing, and a store survives
a save/load round-trip mid-stream (including the legacy flat-npz format
and the deprecated ``snapshot``/``restore`` aliases).
"""

import numpy as np
import pytest

from repro.core.inference import IncrementalEmbedder, embed_dataset
from repro.data.synthetic import make_churn_dataset
from repro.encoders import build_encoder
from repro.nn.serialization import save_arrays
from repro.runtime import EmbeddingStore


@pytest.fixture(scope="module")
def dataset():
    return make_churn_dataset(num_clients=15, mean_length=40, min_length=12,
                              max_length=90, seed=0)


def _encoder(dataset, cell, hidden=14, seed=0):
    encoder = build_encoder(dataset.schema, hidden, cell,
                            rng=np.random.default_rng(seed))
    encoder.eval()
    return encoder


@pytest.mark.parametrize("cell", ["gru", "lstm"])
class TestBulkAndIncremental:
    def test_bulk_load_matches_tensor_path(self, dataset, cell):
        encoder = _encoder(dataset, cell)
        store = EmbeddingStore(encoder, precision="float64")
        bulk = store.bulk_load(dataset)
        reference = embed_dataset(encoder, dataset, runtime="tensor")
        np.testing.assert_allclose(bulk, reference, atol=1e-10)
        assert store.known_entities() == sorted(s.seq_id for s in dataset)

    def test_incremental_equals_full_recompute(self, dataset, cell):
        """Chunked updates reproduce bulk embeddings despite the bucketed
        batch plan reordering the bulk pass."""
        encoder = _encoder(dataset, cell)
        store = EmbeddingStore(encoder, precision="float64")
        bulk = EmbeddingStore(encoder, precision="float64").bulk_load(dataset)
        for row, seq in enumerate(dataset):
            cuts = [0, len(seq) // 3, 2 * len(seq) // 3, len(seq)]
            for start, stop in zip(cuts[:-1], cuts[1:]):
                if stop > start:
                    store.update(seq.seq_id, seq.slice(start, stop),
                                 dataset.schema)
            np.testing.assert_allclose(
                store.embedding(seq.seq_id), bulk[row], atol=1e-10,
                err_msg="entity %d" % seq.seq_id)

    def test_bulk_then_incremental_continuation(self, dataset, cell):
        """States captured by bulk_load support continued streaming."""
        encoder = _encoder(dataset, cell)
        truncated = dataset[np.arange(len(dataset))]
        truncated.sequences = [seq.slice(0, len(seq) - 5) for seq in dataset]
        store = EmbeddingStore(encoder, precision="float64")
        store.bulk_load(truncated)
        full = embed_dataset(encoder, dataset, runtime="tensor")
        for row, seq in enumerate(dataset):
            store.update(seq.seq_id, seq.slice(len(seq) - 5, len(seq)),
                         dataset.schema)
            np.testing.assert_allclose(store.embedding(seq.seq_id),
                                       full[row], atol=1e-10)

    def test_save_load_roundtrip(self, dataset, cell, tmp_path):
        encoder = _encoder(dataset, cell)
        store = EmbeddingStore(encoder, precision="float64")
        half = dataset[np.arange(len(dataset))]
        half.sequences = [seq.slice(0, len(seq) // 2) for seq in dataset]
        store.bulk_load(half)
        path = tmp_path / "store_state"
        store.save(path)

        restored = EmbeddingStore(encoder, precision="float64").load(path)
        assert restored.known_entities() == store.known_entities()
        for seq in dataset:
            np.testing.assert_array_equal(restored.embedding(seq.seq_id),
                                          store.embedding(seq.seq_id))
            assert restored.last_time(seq.seq_id) == store.last_time(seq.seq_id)

        # The restored store keeps streaming, bit-equal to full recompute.
        full = embed_dataset(encoder, dataset, runtime="tensor")
        for row, seq in enumerate(dataset):
            restored.update(seq.seq_id, seq.slice(len(seq) // 2, len(seq)),
                            dataset.schema)
            np.testing.assert_allclose(restored.embedding(seq.seq_id),
                                       full[row], atol=1e-10)


class TestStoreApi:
    def test_embeddings_matrix_order(self, dataset):
        encoder = _encoder(dataset, "gru")
        store = EmbeddingStore(encoder)
        store.bulk_load(dataset)
        ids = [dataset[3].seq_id, dataset[0].seq_id]
        matrix = store.embeddings(ids)
        np.testing.assert_array_equal(matrix[0], store.embedding(ids[0]))
        np.testing.assert_array_equal(matrix[1], store.embedding(ids[1]))
        assert store.embeddings([]).shape == (0, encoder.output_dim)

    def test_membership_and_errors(self, dataset):
        encoder = _encoder(dataset, "gru")
        store = EmbeddingStore(encoder)
        assert len(store) == 0
        with pytest.raises(KeyError):
            store.embedding(42)
        with pytest.raises(ValueError):
            store.update(0, dataset[0].slice(0, 0), dataset.schema)
        store.update(7, dataset[0].slice(0, 8), dataset.schema)
        assert 7 in store and len(store) == 1

    def test_transformer_bulk_serves_but_never_streams(self, dataset):
        """Transformer stores bulk-load and read; update() fails loudly."""
        transformer = build_encoder(dataset.schema, 8, "transformer",
                                    rng=np.random.default_rng(7))
        store = EmbeddingStore(transformer, precision="float64")
        store.bulk_load(dataset)
        assert len(store) == len(dataset)
        runtime = transformer.fused_runtime(precision="float64")
        reference = runtime.embed_dataset(dataset)
        ids = [seq.seq_id for seq in dataset.sequences]
        np.testing.assert_allclose(store.embeddings(ids), reference,
                                   atol=1e-12)
        with pytest.raises(TypeError):
            store.update(ids[0], dataset[0].slice(0, 5), dataset.schema)

    def test_load_rejects_cell_mismatch(self, dataset, tmp_path):
        gru_store = EmbeddingStore(_encoder(dataset, "gru"))
        gru_store.update(1, dataset[0].slice(0, 10), dataset.schema)
        path = tmp_path / "gru_state"
        gru_store.save(path)
        lstm_store = EmbeddingStore(_encoder(dataset, "lstm"))
        with pytest.raises(ValueError, match="gru"):
            lstm_store.load(path)

    def test_load_rejects_width_mismatch(self, dataset, tmp_path):
        narrow = EmbeddingStore(_encoder(dataset, "gru", hidden=6))
        narrow.update(1, dataset[0].slice(0, 10), dataset.schema)
        path = tmp_path / "narrow_state"
        narrow.save(path)
        wide = EmbeddingStore(_encoder(dataset, "gru", hidden=14))
        with pytest.raises(ValueError, match="width"):
            wide.load(path)

    def test_deprecated_snapshot_restore_aliases(self, dataset, tmp_path):
        """The pre-backend method names keep working, with a warning."""
        encoder = _encoder(dataset, "gru")
        store = EmbeddingStore(encoder)
        store.update(3, dataset[0].slice(0, 10), dataset.schema)
        path = tmp_path / "alias_state"
        with pytest.warns(DeprecationWarning, match="save"):
            store.snapshot(path)
        fresh = EmbeddingStore(encoder)
        with pytest.warns(DeprecationWarning, match="load"):
            fresh.restore(path)
        np.testing.assert_array_equal(fresh.embedding(3), store.embedding(3))

    def test_load_reads_legacy_flat_npz(self, dataset, tmp_path):
        """Snapshots written by the pre-backend format stay loadable."""
        encoder = _encoder(dataset, "gru")
        store = EmbeddingStore(encoder, precision="float64")
        store.bulk_load(dataset)
        ids = store.known_entities()
        path = tmp_path / "legacy.npz"
        save_arrays(path, {
            "entity_ids": np.asarray(ids),
            "hidden": np.stack([store.state_of(e)[0] for e in ids]),
            "last_times": np.asarray([store.last_time(e) for e in ids]),
            "kind": np.asarray("gru"),
        })
        loaded = EmbeddingStore(encoder, precision="float64").load(path)
        assert loaded.known_entities() == ids
        for entity_id in ids:
            np.testing.assert_array_equal(loaded.embedding(entity_id),
                                          store.embedding(entity_id))


class TestIncrementalEmbedderFacade:
    """The legacy API keeps working on top of the store."""

    def test_delegates_to_store(self, dataset):
        encoder = _encoder(dataset, "gru")
        embedder = IncrementalEmbedder(encoder)
        seq = dataset[0]
        embedder.update(seq.seq_id, seq.slice(0, 10), dataset.schema)
        assert embedder.known_entities() == [seq.seq_id]
        np.testing.assert_array_equal(embedder.embedding(seq.seq_id),
                                      embedder.store.embedding(seq.seq_id))
