"""Property-style equivalence: fused serving kernels vs the autograd path.

The contract of :mod:`repro.runtime` is that serving results match the
differentiable Tensor path to float64 rounding (< 1e-10) across shapes,
lengths and cell types — these tests randomize all three.
"""

import numpy as np
import pytest

from repro.core.inference import embed_dataset
from repro.data import collate
from repro.data.synthetic import make_churn_dataset
from repro.encoders import build_encoder
from repro.nn import GRU, LSTM, Tensor, no_grad, where
from repro.runtime import FusedEncoderRuntime, kernels

ATOL = 1e-10


def _random_lengths(rng, batch, steps, sort=False):
    lengths = rng.integers(1, steps + 1, size=batch)
    lengths[rng.integers(0, batch)] = steps  # at least one full row
    if sort:
        lengths = np.sort(lengths)[::-1]
    return lengths


@pytest.mark.parametrize("cell_cls,kind", [(GRU, "gru"), (LSTM, "lstm")])
@pytest.mark.parametrize("sort", [True, False], ids=["packed", "masked"])
def test_raw_cell_forward_matches_tensor(cell_cls, kind, sort):
    """Fused recurrence == Tensor recurrence for random shapes/lengths.

    ``sort=True`` exercises the packed (shrinking active window) path,
    ``sort=False`` the mask-freezing fallback.
    """
    rng = np.random.default_rng(2 * (kind == "lstm") + int(sort))
    for trial in range(4):
        batch = int(rng.integers(1, 9))
        steps = int(rng.integers(1, 24))
        dim = int(rng.integers(1, 12))
        hidden = int(rng.integers(1, 16))
        cell = cell_cls(dim, hidden, rng=rng)
        cell.eval()
        x = rng.standard_normal((batch, steps, dim))
        lengths = _random_lengths(rng, batch, steps, sort=sort)
        mask = np.arange(steps)[None, :] < lengths[:, None]

        with no_grad():
            ref_states, ref_last = cell(Tensor(x), mask=mask)
        out_states, last = kernels.rnn_forward(
            cell.export_weights(), x, lengths=lengths, return_outputs=True)

        if kind == "lstm":
            np.testing.assert_allclose(last[0], ref_last.data, atol=ATOL)
            # The Tensor forward only returns the hidden state, so recover
            # the reference cell state by stepping the module directly.
            with no_grad():
                state = (cell.initial_state(batch), cell.initial_cell(batch))
                for t in range(steps):
                    new_h, new_c = cell.step(Tensor(x)[:, t, :], state)
                    keep = mask[:, t:t + 1]
                    state = (where(keep, new_h, state[0]),
                             where(keep, new_c, state[1]))
            np.testing.assert_allclose(last[1], state[1].data, atol=ATOL)
        else:
            np.testing.assert_allclose(last, ref_last.data, atol=ATOL)
        np.testing.assert_allclose(out_states, ref_states.data, atol=ATOL)


def test_packed_and_masked_paths_agree():
    """The two kernel execution strategies are interchangeable."""
    rng = np.random.default_rng(7)
    cell = GRU(6, 10, rng=rng)
    x = rng.standard_normal((5, 12, 6))
    lengths = np.sort(rng.integers(1, 13, size=5))[::-1]
    mask = np.arange(12)[None, :] < lengths[:, None]
    weights = cell.export_weights()
    _, packed = kernels.gru_forward(weights, x, lengths=lengths)
    _, masked = kernels.gru_forward(weights, x, mask=mask)
    np.testing.assert_allclose(packed, masked, atol=ATOL)


@pytest.fixture(scope="module")
def dataset():
    return make_churn_dataset(num_clients=25, mean_length=40, min_length=5,
                              max_length=120, seed=1)


@pytest.mark.parametrize("cell", ["gru", "lstm"])
def test_event_encoding_matches_tensor(dataset, cell):
    encoder = build_encoder(dataset.schema, 16, cell,
                            rng=np.random.default_rng(2))
    encoder.eval()
    batch = collate(dataset.sequences[:7], dataset.schema)
    with no_grad():
        ref = encoder.trx_encoder(batch).data
    fused = kernels.encode_events(encoder.trx_encoder, batch)
    np.testing.assert_allclose(fused, ref, atol=ATOL)


@pytest.mark.parametrize("cell", ["gru", "lstm"])
def test_embed_batch_matches_tensor(dataset, cell):
    encoder = build_encoder(dataset.schema, 16, cell,
                            rng=np.random.default_rng(3))
    encoder.eval()
    runtime = encoder.fused_runtime(precision="float64")
    rng = np.random.default_rng(0)
    for _ in range(3):
        take = rng.choice(len(dataset), size=6, replace=False)
        batch = collate([dataset.sequences[i] for i in take], dataset.schema)
        with no_grad():
            ref = encoder.embed(batch).data
        np.testing.assert_allclose(runtime.embed_batch(batch), ref, atol=ATOL)


@pytest.mark.parametrize("cell", ["gru", "lstm"])
def test_embed_dataset_paths_agree(dataset, cell):
    encoder = build_encoder(dataset.schema, 12, cell,
                            rng=np.random.default_rng(4))
    tensor_path = embed_dataset(encoder, dataset, batch_size=8,
                                runtime="tensor")
    fused_path = embed_dataset(encoder, dataset, batch_size=8,
                               runtime="fused", precision="float64")
    auto_path = embed_dataset(encoder, dataset, batch_size=8,
                              precision="float64")
    np.testing.assert_allclose(fused_path, tensor_path, atol=ATOL)
    np.testing.assert_allclose(auto_path, tensor_path, atol=ATOL)


def test_embed_dataset_rejects_unknown_runtime(dataset):
    encoder = build_encoder(dataset.schema, 8, "gru")
    with pytest.raises(ValueError):
        embed_dataset(encoder, dataset, runtime="cuda")


def test_transformer_serves_through_fused_runtime(dataset):
    """Transformers serve on the attention kernels — no tensor fallback."""
    transformer = build_encoder(dataset.schema, 8, "transformer",
                                rng=np.random.default_rng(5))
    runtime = FusedEncoderRuntime(transformer, precision="float64")
    assert runtime.state_kind == "transformer"
    assert not runtime.is_recurrent
    ref = embed_dataset(transformer, dataset, batch_size=8, runtime="tensor")
    fused = embed_dataset(transformer, dataset, batch_size=8,
                          runtime="fused", precision="float64")
    auto = embed_dataset(transformer, dataset, batch_size=8,
                         precision="float64")
    np.testing.assert_allclose(fused, ref, atol=ATOL)
    np.testing.assert_allclose(auto, ref, atol=ATOL)
    batch = collate(dataset.sequences[:5], dataset.schema)
    with no_grad():
        batch_ref = transformer.embed(batch).data
    np.testing.assert_allclose(runtime.embed_batch(batch), batch_ref,
                               atol=ATOL)


def test_transformer_runtime_has_no_incremental_surface(dataset):
    """Attention reads whole histories: the streaming API stays recurrent."""
    transformer = build_encoder(dataset.schema, 8, "transformer",
                                rng=np.random.default_rng(5))
    runtime = FusedEncoderRuntime(transformer)
    batch = collate(dataset.sequences[:3], dataset.schema)
    with pytest.raises(TypeError):
        runtime.default_state(3)
    with pytest.raises(TypeError):
        runtime.advance(np.zeros((3, 8)), batch)
    with pytest.raises(TypeError):
        runtime.forward(batch, initial=np.zeros((3, 8)))


def test_embed_empty_dataset(dataset):
    from repro.data import SequenceDataset

    encoder = build_encoder(dataset.schema, 8, "gru")
    empty = SequenceDataset([], dataset.schema)
    assert embed_dataset(encoder, empty).shape == (0, 8)
    assert embed_dataset(encoder, empty, runtime="tensor").shape == (0, 8)


def test_runtime_preserves_training_mode(dataset):
    """Wrapping an encoder for serving must not freeze its batch norm."""
    encoder = build_encoder(dataset.schema, 8, "gru")
    encoder.train()
    FusedEncoderRuntime(encoder)
    assert encoder.training


def test_runtime_serves_live_weights(dataset):
    """Weights are read through the module — no stale snapshot."""
    encoder = build_encoder(dataset.schema, 8, "gru",
                            rng=np.random.default_rng(6))
    encoder.eval()
    runtime = encoder.fused_runtime(precision="float64")
    batch = collate(dataset.sequences[:4], dataset.schema)
    before = runtime.embed_batch(batch)
    for param in encoder.parameters():
        param.data = param.data + 0.05  # simulate an optimiser step
    after = runtime.embed_batch(batch)
    assert np.abs(after - before).max() > 1e-6
    with no_grad():
        ref = encoder.embed(batch).data
    np.testing.assert_allclose(after, ref, atol=ATOL)
