"""The precision policy: float32 drift bounds, parallel determinism.

Contracts under test (the tentpole guarantees of the precision +
execution policy layer):

- float32 serving matches the float64 reference within an explicit
  property tolerance (``F32_ATOL``) across cells, shapes and paths;
- bucket-parallel execution (``workers>1``) is bit-identical to the
  serial pass — for dataset embedding, heterogeneous advances and
  service flushes — and repeated runs are bit-identical too;
- per-entity state round-trips across precision policies through
  ``state_of``/``put_state`` and the state bundle format;
- the numerically-safe sigmoid keeps float32 forwards free of
  ``RuntimeWarning`` even on saturated gates (satellite regression).
"""

import warnings

import numpy as np
import pytest

from repro.data.batches import collate
from repro.data.synthetic import make_churn_dataset
from repro.encoders import build_encoder
from repro.nn import GRU, LSTM
from repro.runtime import EmbeddingStore, FusedEncoderRuntime, kernels
from repro.serving import EmbeddingService, ShardedEmbeddingStore

#: The property-tested bound on float32-vs-float64 embedding drift.
#: Observed drift is ~1e-7 on unit-normalised embeddings; the bound
#: leaves float32-rounding headroom across BLAS builds while still
#: catching any real numerical defect (which would blow past 1e-4).
F32_ATOL = 1e-5


@pytest.fixture(scope="module")
def dataset():
    return make_churn_dataset(num_clients=24, mean_length=45, min_length=8,
                              max_length=130, seed=3)


def _encoder(dataset, cell, hidden=16, seed=0):
    encoder = build_encoder(dataset.schema, hidden, cell,
                            rng=np.random.default_rng(seed))
    encoder.eval()
    return encoder


# ----------------------------------------------------------------------
# policy knob surface
# ----------------------------------------------------------------------

def test_resolve_precision_rejects_unknown():
    with pytest.raises(ValueError):
        kernels.resolve_precision("float16")
    assert kernels.resolve_precision("float32") == np.dtype(np.float32)
    assert kernels.resolve_precision(np.float64) == np.dtype(np.float64)


def test_runtime_default_policy_is_float32(dataset):
    runtime = FusedEncoderRuntime(_encoder(dataset, "gru"))
    assert runtime.precision == "float32"
    assert runtime.dtype == np.dtype(np.float32)
    embeddings = runtime.embed_dataset(dataset)
    assert embeddings.dtype == np.float32


def test_store_rejects_conflicting_precision(dataset):
    runtime = FusedEncoderRuntime(_encoder(dataset, "gru"),
                                  precision="float32")
    with pytest.raises(ValueError):
        EmbeddingStore(runtime, precision="float64")


# ----------------------------------------------------------------------
# float32 vs float64 drift (the explicit property bound)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("cell", ["gru", "lstm"])
def test_float32_drift_bounded_vs_float64(dataset, cell):
    encoder = _encoder(dataset, cell)
    f64 = FusedEncoderRuntime(encoder, precision="float64")
    f32 = FusedEncoderRuntime(encoder, precision="float32")
    ref = f64.embed_dataset(dataset)
    out = f32.embed_dataset(dataset)
    np.testing.assert_allclose(out, ref, atol=F32_ATOL)


@pytest.mark.parametrize("cell", ["gru", "lstm"])
def test_float32_incremental_drift_bounded(dataset, cell):
    """Chunked float32 updates stay within the drift bound of the
    float64 full recompute — batch-shape differences included."""
    encoder = _encoder(dataset, cell)
    ref = FusedEncoderRuntime(encoder,
                              precision="float64").embed_dataset(dataset)
    store = EmbeddingStore(encoder, precision="float32")
    for row, seq in enumerate(dataset):
        mid = len(seq) // 2
        store.update(seq.seq_id, seq.slice(0, mid), dataset.schema)
        store.update(seq.seq_id, seq.slice(mid, len(seq)), dataset.schema)
        np.testing.assert_allclose(store.embedding(seq.seq_id), ref[row],
                                   atol=F32_ATOL)


def test_float32_batch_size_invariance_drift_bounded(dataset):
    runtime = FusedEncoderRuntime(_encoder(dataset, "gru"))
    big = runtime.embed_dataset(dataset, batch_size=64)
    small = runtime.embed_dataset(dataset, batch_size=3)
    np.testing.assert_allclose(big, small, atol=F32_ATOL)


# ----------------------------------------------------------------------
# parallel execution: bit-identical to serial, and across repeats
# ----------------------------------------------------------------------

@pytest.mark.parametrize("cell", ["gru", "lstm"])
def test_bucket_parallel_bit_identical(dataset, cell):
    encoder = _encoder(dataset, cell)
    runtime = FusedEncoderRuntime(encoder)
    serial = runtime.embed_dataset(dataset, batch_size=8, workers=1)
    for workers in (2, 4):
        parallel = runtime.embed_dataset(dataset, batch_size=8,
                                         workers=workers)
        np.testing.assert_array_equal(parallel, serial)
    repeat = runtime.embed_dataset(dataset, batch_size=8, workers=4)
    np.testing.assert_array_equal(repeat, serial)


@pytest.mark.parametrize("cell", ["gru", "lstm"])
def test_parallel_update_many_bit_identical(dataset, cell):
    encoder = _encoder(dataset, cell)
    chunks = [seq.slice(0, max(1, len(seq) // 2)) for seq in dataset]
    results = {}
    for workers in (1, 2, 4):
        store = EmbeddingStore(encoder, workers=workers)
        results[workers] = store.update_many(chunks, dataset.schema,
                                             batch_size=5)
    np.testing.assert_array_equal(results[2], results[1])
    np.testing.assert_array_equal(results[4], results[1])


def test_parallel_flush_bit_identical(dataset):
    """EmbeddingService.flush with workers>1 serves the exact bytes of
    the serial service."""
    encoder = _encoder(dataset, "gru")
    ids = [seq.seq_id for seq in dataset]
    served = {}
    for workers in (1, 2, 4):
        service = EmbeddingService(encoder, dataset.schema, num_shards=4,
                                   flush_events=10_000, workers=workers)
        for seq in dataset:
            service.ingest(seq.slice(0, len(seq)))
        service.flush()
        served[workers] = service.query(ids)
    np.testing.assert_array_equal(served[2], served[1])
    np.testing.assert_array_equal(served[4], served[1])


def test_bulk_load_parallel_bit_identical(dataset):
    encoder = _encoder(dataset, "lstm")
    serial = EmbeddingStore(encoder, workers=1)
    parallel = EmbeddingStore(encoder, workers=4)
    np.testing.assert_array_equal(parallel.bulk_load(dataset, batch_size=6),
                                  serial.bulk_load(dataset, batch_size=6))
    for seq in dataset:
        s_state = serial.state_of(seq.seq_id)
        p_state = parallel.state_of(seq.seq_id)
        np.testing.assert_array_equal(p_state[0], s_state[0])
        if p_state[1] is not None:
            np.testing.assert_array_equal(p_state[1], s_state[1])


# ----------------------------------------------------------------------
# state round-trips across precision policies
# ----------------------------------------------------------------------

@pytest.mark.parametrize("cell", ["gru", "lstm"])
def test_state_roundtrip_across_precisions(dataset, cell):
    """States flow f32 -> f64 -> f32 through state_of/put_state without
    error beyond the drift bound."""
    encoder = _encoder(dataset, cell)
    f32 = EmbeddingStore(encoder, precision="float32")
    f64 = EmbeddingStore(encoder, precision="float64")
    f32.bulk_load(dataset)
    for seq in dataset:
        hidden, cell_state, last_time = f32.state_of(seq.seq_id)
        f64.put_state(seq.seq_id, hidden, cell=cell_state,
                      last_time=last_time)
        back, back_cell, _ = f64.state_of(seq.seq_id)
        assert back.dtype == np.float64
        # f32 -> f64 is exact; the round-trip back to f32 is too.
        np.testing.assert_array_equal(back.astype(np.float32), hidden)
        if cell == "lstm":
            np.testing.assert_array_equal(back_cell.astype(np.float32),
                                          cell_state)


@pytest.mark.parametrize("cell", ["gru", "lstm"])
def test_snapshot_restores_across_precisions(dataset, cell, tmp_path):
    """A state bundle written under one policy loads under the other
    and keeps streaming within the drift bound."""
    encoder = _encoder(dataset, cell)
    half = dataset[np.arange(len(dataset))]
    half.sequences = [seq.slice(0, len(seq) // 2) for seq in dataset]
    f64 = EmbeddingStore(encoder, precision="float64")
    f64.bulk_load(half)
    path = tmp_path / "store_state"
    f64.save(path)

    f32 = EmbeddingStore(encoder, precision="float32").load(path)
    assert f32.known_entities() == f64.known_entities()
    reference = EmbeddingStore(encoder,
                               precision="float64").bulk_load(dataset)
    for row, seq in enumerate(dataset):
        f32.update(seq.seq_id, seq.slice(len(seq) // 2, len(seq)),
                   dataset.schema)
        np.testing.assert_allclose(f32.embedding(seq.seq_id), reference[row],
                                   atol=F32_ATOL)


# ----------------------------------------------------------------------
# weight plans
# ----------------------------------------------------------------------

@pytest.mark.parametrize("cell", ["gru", "lstm"])
def test_weight_plan_invalidated_by_optimizer_rebind(dataset, cell):
    encoder = _encoder(dataset, cell)
    runtime = FusedEncoderRuntime(encoder)
    first = runtime.weight_plan()
    assert runtime.weight_plan() is first  # cached while weights are live
    for param in encoder.parameters():
        param.data = param.data + 0.01  # what an optimizer step does
    second = runtime.weight_plan()
    assert second is not first
    batch = collate(dataset.sequences[:4], dataset.schema)
    ref = FusedEncoderRuntime(encoder,
                              precision="float64").embed_batch(batch)
    np.testing.assert_allclose(runtime.embed_batch(batch), ref,
                               atol=F32_ATOL)


def test_float32_plan_folds_biases():
    rng = np.random.default_rng(0)
    gru = GRU(5, 7, rng=rng)
    lstm = LSTM(5, 7, rng=rng)
    f64_plan = kernels.build_weight_plan(gru.export_weights(), "float64")
    assert f64_plan.bias_step is not None and f64_plan.b_hn is None
    f32_gru = kernels.build_weight_plan(gru.export_weights(), "float32")
    assert f32_gru.bias_step is None and f32_gru.b_hn is not None
    f32_lstm = kernels.build_weight_plan(lstm.export_weights(), "float32")
    assert f32_lstm.bias_step is None and f32_lstm.b_hn is None
    for plan in (f64_plan, f32_gru, f32_lstm):
        assert plan.w_ih_t.flags["C_CONTIGUOUS"]
        assert plan.w_hh_t.flags["C_CONTIGUOUS"]


# ----------------------------------------------------------------------
# satellite regression: the numerically-safe sigmoid
# ----------------------------------------------------------------------

def test_sigmoid_saturates_without_warnings():
    x = np.array([-1e6, -100.0, -60.0, 0.0, 60.0, 100.0, 1e6],
                 dtype=np.float32)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        out = kernels.sigmoid(x.copy())
    np.testing.assert_allclose(
        out, 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60))), rtol=1e-6)
    assert out[0] > 0.0 and out[-1] == 1.0


@pytest.mark.parametrize("kind", ["gru", "lstm"])
def test_float32_forward_emits_no_runtime_warning(kind):
    """Saturating inputs (huge pre-activations) through a float32 forward
    must not leak overflow RuntimeWarnings — the regression the safe
    sigmoid exists for."""
    rng = np.random.default_rng(1)
    cell = (GRU if kind == "gru" else LSTM)(4, 6, rng=rng)
    # Scale the input weights so gate pre-activations saturate hard.
    cell.weight_ih.data = cell.weight_ih.data * 400.0
    plan = kernels.build_weight_plan(cell.export_weights(), "float32")
    x = rng.standard_normal((3, 50, 4)) * 10.0
    lengths = np.array([50, 40, 20])
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        _, last = kernels.rnn_forward(plan, x, lengths=lengths)
    last = last[0] if kind == "lstm" else last
    assert np.isfinite(last).all()
    assert last.dtype == np.float32


# ----------------------------------------------------------------------
# empty-result allocations honour the policy dtype (reprolint RP001)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("precision", ["float32", "float64"])
def test_empty_store_embeddings_carry_policy_dtype(dataset, precision):
    """Regression for the dtype-less ``np.zeros((0, d))`` empty-result
    allocation reprolint RP001 surfaced: the empty matrix must carry the
    store's policy dtype, not numpy's float64 default."""
    store = EmbeddingStore(_encoder(dataset, "gru"), precision=precision)
    empty = store.embeddings()
    assert empty.shape == (0, store.runtime.output_dim)
    assert empty.dtype == store.runtime.dtype
    # selecting zero entities after a bulk_load hits the same allocation
    store.bulk_load(dataset)
    assert store.embeddings([]).dtype == store.runtime.dtype
    assert store.embeddings().dtype == store.runtime.dtype


def test_empty_sharded_store_embeddings_carry_policy_dtype(dataset):
    store = ShardedEmbeddingStore(_encoder(dataset, "gru"), num_shards=3)
    empty = store.embeddings()
    assert empty.shape == (0, store.runtime.output_dim)
    assert empty.dtype == store.runtime.dtype == np.dtype(np.float32)
    store.bulk_load(dataset)
    assert store.embeddings([]).dtype == store.runtime.dtype
