"""Property suite for the fused attention kernels vs the autograd stack.

Contracts under test (the transformer analogue of
``test_fused_equivalence.py`` / ``test_fused_training.py``):

- **forward parity** — :func:`repro.runtime.attention.transformer_forward`
  matches the Tensor path op for op to < 1e-10 in float64, property-tested
  across head counts x depths x ragged *and* non-prefix key-padding masks;
- **gradient parity** — the hand-derived reverse pass
  (:func:`~repro.runtime.attention.transformer_backward`: softmax-Jacobian
  attention, LayerNorm and GELU backward) agrees with autograd to < 1e-8
  for every parameter, the event-representation gradient ``d_x`` and the
  per-step ``d_states`` interface — and with central finite differences
  for every entry of every weight in the stack;
- **fully-padded rows** — an all-False mask row degrades to a zero pooled
  embedding on both engines, never a NaN (the ``-1e9`` finite fill);
- **dropout stream parity** — with ``dropout > 0`` the train forward
  consumes the same rng draws in the same order as the autograd path, so
  shared rng state yields identical activations;
- **positional cache** — the per-``(dtype, length)`` sinusoidal slices are
  computed once, served from cache, and respect the precision policy.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoders.seq_encoder import TransformerSeqEncoder
from repro.nn import Tensor
from repro.runtime import attention, build_transformer_plan

ATOL_FWD = 1e-10
ATOL_GRAD = 1e-8


class _Events:
    """Stands in for a TrxEncoder: the plan only reads ``output_dim``."""

    def __init__(self, dim):
        self.output_dim = dim


def _encoder(d_in, dim, heads, layers, seed, dropout=0.0):
    return TransformerSeqEncoder(_Events(d_in), dim, num_heads=heads,
                                 num_layers=layers, normalize=False,
                                 dropout=dropout,
                                 rng=np.random.default_rng(seed))


def _mask(kind, batch, steps, rng):
    """None / ragged prefix lengths / arbitrary non-prefix key masks."""
    if kind == "none":
        return None
    if kind == "ragged":
        lengths = rng.integers(1, steps + 1, size=batch)
        return np.arange(steps)[None, :] < lengths[:, None]
    mask = rng.random((batch, steps)) < 0.6
    mask[np.arange(batch), rng.integers(0, steps, size=batch)] = True
    return mask


def _reference(encoder, x, mask, d_pooled=None, d_states=None):
    """Tensor-path forward (and optional backward) on raw events ``x``."""
    leaf = Tensor(x, requires_grad=True)
    states, pooled = encoder.transformer(encoder.input_proj(leaf), mask=mask)
    if d_pooled is not None:
        loss = (pooled * Tensor(d_pooled)).sum()
        if d_states is not None:
            loss = loss + (states * Tensor(d_states)).sum()
        loss.backward()
    return states.data, pooled.data, leaf


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    heads=st.integers(1, 3),
    head_dim=st.integers(1, 3),
    layers=st.integers(1, 2),
    batch=st.integers(1, 4),
    steps=st.integers(2, 7),
    mask_kind=st.sampled_from(["none", "ragged", "scattered"]),
)
def test_forward_matches_autograd(seed, heads, head_dim, layers, batch,
                                  steps, mask_kind):
    """Fused eval forward == Tensor path to < 1e-10 across the grid."""
    rng = np.random.default_rng(seed)
    dim = heads * head_dim
    d_in = int(rng.integers(2, 6))
    encoder = _encoder(d_in, dim, heads, layers, seed)
    encoder.eval()
    x = rng.standard_normal((batch, steps, d_in))
    mask = _mask(mask_kind, batch, steps, rng)
    ref_states, ref_pooled, _ = _reference(encoder, x, mask)
    plan = build_transformer_plan(encoder, "float64")
    states, pooled = attention.transformer_forward(plan, x, mask=mask)
    np.testing.assert_allclose(states, ref_states, atol=ATOL_FWD)
    np.testing.assert_allclose(pooled, ref_pooled, atol=ATOL_FWD)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    heads=st.integers(1, 3),
    head_dim=st.integers(1, 3),
    layers=st.integers(1, 2),
    batch=st.integers(1, 4),
    steps=st.integers(2, 6),
    mask_kind=st.sampled_from(["none", "ragged", "scattered"]),
    with_states=st.booleans(),
)
def test_backward_matches_autograd(seed, heads, head_dim, layers, batch,
                                   steps, mask_kind, with_states):
    """Every hand-derived gradient tracks autograd to < 1e-8.

    Covers all parameters of the stack plus ``d_x`` (the event gradient)
    and the optional per-step ``d_states`` co-gradient interface.
    """
    rng = np.random.default_rng(seed)
    dim = heads * head_dim
    d_in = int(rng.integers(2, 6))
    encoder = _encoder(d_in, dim, heads, layers, seed)
    x = rng.standard_normal((batch, steps, d_in))
    mask = _mask(mask_kind, batch, steps, rng)
    d_pooled = rng.standard_normal((batch, dim))
    d_states = (rng.standard_normal((batch, steps, dim))
                if with_states else None)
    _, _, leaf = _reference(encoder, x, mask, d_pooled=d_pooled,
                            d_states=d_states)
    plan = build_transformer_plan(encoder, "float64")
    cache = attention.transformer_forward_train(plan, x, mask=mask)
    grads = attention.transformer_backward(plan, cache, d_pooled,
                                           d_states=d_states)
    for name, param in attention.transformer_parameters(encoder).items():
        np.testing.assert_allclose(grads[name], param.grad, atol=ATOL_GRAD,
                                   rtol=ATOL_GRAD, err_msg=name)
    np.testing.assert_allclose(grads["d_x"], leaf.grad, atol=ATOL_GRAD,
                               rtol=ATOL_GRAD)


def test_backward_matches_finite_differences():
    """Central differences confirm every entry of every weight tensor."""
    rng = np.random.default_rng(7)
    encoder = _encoder(3, 4, 2, 1, seed=11)
    encoder.eval()
    batch, steps = 2, 4
    x = rng.standard_normal((batch, steps, 3))
    mask = np.array([[True, True, True, False],
                     [True, False, True, True]])
    d_pooled = rng.standard_normal((batch, 4))

    def loss():
        plan = build_transformer_plan(encoder, "float64")
        _, pooled = attention.transformer_forward(plan, x, mask=mask)
        return float((pooled * d_pooled).sum())

    plan = build_transformer_plan(encoder, "float64")
    cache = attention.transformer_forward_train(plan, x, mask=mask)
    grads = attention.transformer_backward(plan, cache, d_pooled)
    eps = 1e-6
    for name, param in attention.transformer_parameters(encoder).items():
        analytic = np.asarray(grads[name])
        flat = param.data.reshape(-1)
        for idx in range(flat.size):
            original = flat[idx]
            flat[idx] = original + eps
            upper = loss()
            flat[idx] = original - eps
            lower = loss()
            flat[idx] = original
            numeric = (upper - lower) / (2.0 * eps)
            assert numeric == pytest.approx(
                analytic.reshape(-1)[idx], abs=1e-5, rel=1e-4
            ), "%s[%d]" % (name, idx)


@pytest.mark.parametrize("engine", ["fused", "tensor"])
def test_fully_padded_row_pools_to_zero_without_nan(engine):
    """An all-False mask row yields a zero pooled embedding, never NaN.

    The ``-1e9`` finite fill keeps the row's softmax a uniform
    distribution (instead of the 0/0 NaN an ``-inf`` fill would produce)
    and the masked-mean weights vanish, so the pooled row is exactly 0 on
    both engines.
    """
    rng = np.random.default_rng(3)
    encoder = _encoder(3, 6, 2, 2, seed=5)
    encoder.eval()
    x = rng.standard_normal((3, 5, 3))
    mask = np.ones((3, 5), dtype=bool)
    mask[1] = False  # entity with no real events in the window
    if engine == "fused":
        plan = build_transformer_plan(encoder, "float64")
        states, pooled = attention.transformer_forward(plan, x, mask=mask)
    else:
        states, pooled, _ = _reference(encoder, x, mask)
    assert np.isfinite(states).all()
    assert np.isfinite(pooled).all()
    np.testing.assert_array_equal(pooled[1], np.zeros(6))
    # The backward must stay finite through the degenerate row too.
    plan = build_transformer_plan(encoder, "float64")
    cache = attention.transformer_forward_train(plan, x, mask=mask)
    grads = attention.transformer_backward(
        plan, cache, np.ones((3, 6)), d_states=np.ones((3, 5, 6)))
    for name, grad in grads.items():
        assert np.isfinite(grad).all(), name


def _dropout_rng_states(encoder):
    """Snapshot the bit-generator state of every dropout module."""
    modules = []
    for layer in encoder.transformer.layers:
        modules.extend([layer.attention.dropout, layer.dropout])
    return [(m, m.rng.bit_generator.state) for m in modules]


def test_train_forward_mirrors_autograd_dropout_stream():
    """With shared rng state, dropout > 0 activations are identical.

    The fused train forward must draw each keep mask from the same rng in
    the same order as the autograd path (attention probabilities, then
    the two residual dropouts, per layer) — the property that keeps both
    engines on one optimisation trajectory.
    """
    rng = np.random.default_rng(9)
    encoder = _encoder(3, 6, 2, 2, seed=13, dropout=0.4)
    encoder.train()
    x = rng.standard_normal((3, 5, 3))
    mask = _mask("ragged", 3, 5, rng)
    snapshot = _dropout_rng_states(encoder)
    ref_states, ref_pooled, _ = _reference(encoder, x, mask)
    for module, state in snapshot:
        module.rng.bit_generator.state = state
    plan = build_transformer_plan(encoder, "float64")
    cache = attention.transformer_forward_train(plan, x, mask=mask)
    np.testing.assert_allclose(cache.states, ref_states, atol=ATOL_FWD)
    np.testing.assert_allclose(cache.pooled, ref_pooled, atol=ATOL_FWD)


def test_positional_slices_cached_per_dtype_and_length():
    """Slices are computed once per (dtype, length) and dtype-faithful."""
    encoder = _encoder(3, 6, 2, 1, seed=1)
    transformer = encoder.transformer
    first = transformer.positional_slice(7)
    assert first.dtype == np.float64 and first.shape == (1, 7, 6)
    assert transformer.positional_slice(7) is first  # served from cache
    shorter = transformer.positional_slice(4)
    assert shorter is not first
    np.testing.assert_array_equal(shorter[0], first[0, :4])
    single = transformer.positional_slice(7, np.float32)
    assert single.dtype == np.float32
    assert transformer.positional_slice(7, np.float32) is single
    np.testing.assert_allclose(single, first.astype(np.float32))
    with pytest.raises(ValueError):
        transformer.positional_slice(transformer.max_len + 1)
    # The cache is a plain buffer store, not learnable state.
    assert not any("_pos_cache" in name for name in encoder.state_dict())


def test_float32_plan_reads_float32_positions():
    """The precision policy reaches the positional table too."""
    encoder = _encoder(3, 6, 2, 1, seed=2)
    plan32 = build_transformer_plan(encoder, "float32")
    assert plan32.positional(5).dtype == np.float32
    plan64 = build_transformer_plan(encoder, "float64")
    assert plan64.positional(5).dtype == np.float64
    assert plan64.positional(5) is not plan32.positional(5)
