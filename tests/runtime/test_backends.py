"""StateBackend + StateCodec: the out-of-core storage layer.

Contracts under test:

- the quantize → pack → unpack → dequantize round trip reconstructs
  every value within the documented ``scales / 2`` per-dimension bound
  (property-tested across levels {4, 16, 256} and float32/float64
  inputs, exercising the precision-policy alignment of
  ``core/quantization.py``);
- state bundles round-trip across backends and codecs — identity-codec
  bundles exactly, quantized bundles within the codec's error bound —
  and the memmap backend's LRU pages evicted shards back from disk
  losslessly (identity) or within the bound (quantized);
- serving through the memmap backend matches serving through the dict
  backend: identity codec at 1e-10 against a cold recompute, quantized
  codecs within an explicit measured drift bound.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.inference import embed_dataset
from repro.core.quantization import (pack_uint4, quantize_embeddings,
                                     unpack_uint4)
from repro.data.synthetic import make_churn_dataset
from repro.encoders import build_encoder
from repro.runtime import (DictStateBackend, EmbeddingStore, Float16Codec,
                           IdentityCodec, MemmapStateBackend, QuantizedCodec,
                           StateBackend, resolve_backend, resolve_codec)


@pytest.fixture(scope="module")
def dataset():
    return make_churn_dataset(num_clients=15, mean_length=40, min_length=12,
                              max_length=90, seed=0)


def _encoder(dataset, cell, hidden=14, seed=0):
    encoder = build_encoder(dataset.schema, hidden, cell,
                            rng=np.random.default_rng(seed))
    encoder.eval()
    return encoder


# ----------------------------------------------------------------------
# quantization round trip (satellite: core/quantization.py alignment)
# ----------------------------------------------------------------------
def _embedding_matrices(dtype, width):
    return arrays(
        dtype=dtype,
        shape=st.tuples(st.integers(1, 12), st.integers(1, 9)),
        elements=st.floats(-50, 50, width=width),
    )


@settings(max_examples=25, deadline=None)
@given(matrix=_embedding_matrices(np.float64, 64),
       levels=st.sampled_from([4, 16, 256]))
def test_quantize_dequantize_error_bound_float64(matrix, levels):
    quantized = quantize_embeddings(matrix, levels=levels)
    back = quantized.dequantize()
    assert back.dtype == np.float64
    bound = quantized.quantization_error() + 1e-9
    assert np.all(np.abs(back - matrix) <= bound[None, :])


@settings(max_examples=25, deadline=None)
@given(matrix=_embedding_matrices(np.float32, 32),
       levels=st.sampled_from([4, 16, 256]))
def test_quantize_dequantize_error_bound_float32(matrix, levels):
    """Float32 input quantizes in float32 — no silent up-cast — and the
    scale/2 bound still holds when reconstructing in float32."""
    quantized = quantize_embeddings(matrix, levels=levels)
    assert quantized.minimums.dtype == np.float32
    assert quantized.scales.dtype == np.float32
    back = quantized.dequantize(dtype=np.float32)
    assert back.dtype == np.float32
    # float32 headroom: the bound itself is computed in float32, give it
    # a relative epsilon for the reconstruction arithmetic.
    bound = quantized.quantization_error() * (1 + 1e-5) + 1e-6
    assert np.all(np.abs(back - matrix.astype(np.float32)) <= bound[None, :])


@settings(max_examples=25, deadline=None)
@given(matrix=_embedding_matrices(np.float64, 64),
       levels=st.sampled_from([4, 16]),
       dtype=st.sampled_from([np.float32, np.float64]))
def test_pack_unpack_roundtrip_preserves_codes(matrix, levels, dtype):
    """pack_uint4 → unpack_uint4 is lossless on the codes, so the full
    quantize → pack → unpack → dequantize chain keeps the scale/2 bound."""
    quantized = quantize_embeddings(matrix.astype(dtype), levels=levels)
    width = quantized.codes.shape[1]
    unpacked = unpack_uint4(pack_uint4(quantized.codes), width)
    np.testing.assert_array_equal(unpacked, quantized.codes)


def test_quantize_levels_is_keyword_only():
    with pytest.raises(TypeError):
        quantize_embeddings(np.zeros((2, 3)), 16)


def test_dequantize_dtype_parameter():
    quantized = quantize_embeddings(np.random.default_rng(0).normal(
        size=(5, 4)), levels=256)
    assert quantized.dequantize(dtype=np.float32).dtype == np.float32
    assert quantized.dequantize().dtype == np.float64


# ----------------------------------------------------------------------
# codecs
# ----------------------------------------------------------------------
class TestCodecs:
    def test_resolve_codec_registry(self):
        assert isinstance(resolve_codec(None), IdentityCodec)
        assert isinstance(resolve_codec("identity"), IdentityCodec)
        assert isinstance(resolve_codec("float16"), Float16Codec)
        assert resolve_codec("int8").levels == 256
        assert resolve_codec("uint4").levels == 16
        instance = QuantizedCodec(levels=8)
        assert resolve_codec(instance) is instance
        with pytest.raises(ValueError, match="unknown state codec"):
            resolve_codec("zstd")
        with pytest.raises(TypeError):
            resolve_codec(42)

    def test_resolve_codec_from_manifest_spec(self):
        for codec in (IdentityCodec(), Float16Codec(), QuantizedCodec(256),
                      QuantizedCodec(16), QuantizedCodec(7)):
            rebuilt = resolve_codec(codec.spec())
            assert rebuilt.spec() == codec.spec()

    def test_identity_codec_is_exact(self):
        codec = IdentityCodec()
        block = np.random.default_rng(0).normal(size=(6, 5))
        out = codec.decode(codec.encode(block), 5, np.float64)
        np.testing.assert_array_equal(out, block)
        assert out.flags.writeable and out is not block

    def test_quantized_codec_error_bound(self):
        rng = np.random.default_rng(1)
        block = rng.normal(size=(32, 9))
        for levels in (4, 16, 256):
            codec = QuantizedCodec(levels=levels)
            encoded = codec.encode(block)
            out = codec.decode(encoded, 9, np.float64)
            spans = block.max(axis=0) - block.min(axis=0)
            bound = spans / (levels - 1) / 2 + 1e-9
            assert np.all(np.abs(out - block) <= bound[None, :])

    def test_quantized_codec_packs_small_levels(self):
        packed = QuantizedCodec(levels=16).encode(np.zeros((4, 9)))
        assert packed["codes"].shape == (4, 5)  # two codes per byte
        unpacked = QuantizedCodec(levels=256).encode(np.zeros((4, 9)))
        assert unpacked["codes"].shape == (4, 9)

    def test_quantized_codec_empty_block(self):
        codec = QuantizedCodec(levels=256)
        out = codec.decode(codec.encode(np.zeros((0, 7))), 7, np.float32)
        assert out.shape == (0, 7) and out.dtype == np.float32

    def test_values_nbytes_orders(self):
        """int8 is 8x smaller than float64 per value; uint4 16x."""
        assert IdentityCodec().values_nbytes(1, 48, np.float64) == 384
        assert Float16Codec().values_nbytes(1, 48, np.float64) == 96
        assert QuantizedCodec(256).values_nbytes(1, 48, np.float64) == 48
        assert QuantizedCodec(16).values_nbytes(1, 48, np.float64) == 24


# ----------------------------------------------------------------------
# backend resolution + bytes_per_entity
# ----------------------------------------------------------------------
class TestBackendResolution:
    def test_resolve_backend(self, tmp_path):
        assert isinstance(resolve_backend(None), DictStateBackend)
        assert isinstance(resolve_backend("dict"), DictStateBackend)
        memmap = resolve_backend("memmap", tmp_path / "state")
        assert isinstance(memmap, MemmapStateBackend)
        with pytest.raises(ValueError, match="backend_dir"):
            resolve_backend("memmap")
        instance = DictStateBackend()
        assert resolve_backend(instance) is instance
        with pytest.raises(ValueError, match="owns its directory"):
            resolve_backend(instance, tmp_path / "other")
        with pytest.raises(ValueError, match="unknown state backend"):
            resolve_backend("redis")
        factory = resolve_backend(DictStateBackend)
        assert isinstance(factory, StateBackend)

    def test_bytes_per_entity_reduction(self, tmp_path):
        """int8 at-rest states are >= 4x smaller than the float64 dict
        baseline — the BENCH_serving.json acceptance ratio."""
        dim = 48
        baseline = DictStateBackend().attach(dim, "gru", np.float64,
                                             "identity")
        assert baseline.bytes_per_entity() == dim * 8 + 8
        quantized = MemmapStateBackend(tmp_path / "s", shard_capacity=16)
        quantized.attach(dim, "gru", np.float32, "int8")
        ratio = baseline.bytes_per_entity() / quantized.bytes_per_entity()
        assert ratio >= 4.0

    def test_lstm_counts_both_buffers(self):
        gru = DictStateBackend().attach(8, "gru", np.float64, None)
        lstm = DictStateBackend().attach(8, "lstm", np.float64, None)
        assert lstm.bytes_per_entity() == 2 * (gru.bytes_per_entity() - 8) + 8


# ----------------------------------------------------------------------
# memmap backend mechanics: LRU, eviction, reopen
# ----------------------------------------------------------------------
class TestMemmapBackend:
    def _filled(self, tmp_path, codec="identity", entities=40,
                shard_capacity=8, cache_shards=2, dim=6, rng_seed=0):
        backend = MemmapStateBackend(tmp_path / "state",
                                     shard_capacity=shard_capacity,
                                     cache_shards=cache_shards)
        backend.attach(dim, "gru", np.float64, codec)
        rng = np.random.default_rng(rng_seed)
        states = {}
        for entity_id in range(entities):
            hidden = rng.normal(size=dim)
            states[entity_id] = hidden
            backend.put(entity_id, hidden.copy(), None, float(entity_id))
        return backend, states

    def test_eviction_then_readback_identity_is_lossless(self, tmp_path):
        backend, states = self._filled(tmp_path)
        assert backend.evictions > 0  # 40 entities / 8 per shard / LRU of 2
        for entity_id, hidden in states.items():
            got_hidden, got_cell, last_time = backend.get(entity_id)
            np.testing.assert_array_equal(got_hidden, hidden)
            assert got_cell is None
            assert last_time == float(entity_id)

    def test_eviction_then_readback_quantized_within_bound(self, tmp_path):
        backend, states = self._filled(tmp_path, codec="int8")
        assert backend.evictions > 0
        block = np.stack(list(states.values()))
        # per-shard minimums can only tighten vs the global span; the
        # global span / 255 / 2 is a safe upper bound for every shard.
        bound = ((block.max(axis=0) - block.min(axis=0)) / 255 / 2) + 1e-9
        for entity_id, hidden in states.items():
            got_hidden, _, _ = backend.get(entity_id)
            assert np.all(np.abs(got_hidden - hidden) <= bound)

    def test_get_returns_copies(self, tmp_path):
        backend, states = self._filled(tmp_path, entities=4)
        first, _, _ = backend.get(0)
        first[:] = 1e9
        again, _, _ = backend.get(0)
        np.testing.assert_array_equal(again, states[0])

    def test_flush_then_reopen_in_place(self, tmp_path):
        backend, states = self._filled(tmp_path)
        backend.flush()
        reopened = MemmapStateBackend(tmp_path / "state", shard_capacity=8,
                                      cache_shards=2)
        reopened.attach(6, "gru", np.float64, "identity")
        assert len(reopened) == len(states)
        for entity_id, hidden in states.items():
            np.testing.assert_array_equal(reopened.get(entity_id)[0], hidden)

    def test_reopen_rejects_mismatched_geometry(self, tmp_path):
        backend, _ = self._filled(tmp_path)
        backend.flush()
        with pytest.raises(ValueError, match="hidden size"):
            MemmapStateBackend(tmp_path / "state").attach(
                9, "gru", np.float64, "identity")
        with pytest.raises(ValueError, match="gru"):
            MemmapStateBackend(tmp_path / "state").attach(
                6, "lstm", np.float64, "identity")
        with pytest.raises(ValueError, match="codec"):
            MemmapStateBackend(tmp_path / "state").attach(
                6, "gru", np.float64, "int8")

    def test_snapshot_roundtrip_across_backends(self, tmp_path):
        """A memmap bundle loads into a dict backend and vice versa —
        the on-disk layout is backend-agnostic."""
        backend, states = self._filled(tmp_path)
        backend.snapshot(tmp_path / "bundle")

        into_dict = DictStateBackend().attach(6, "gru", np.float64,
                                              "identity")
        into_dict.restore(tmp_path / "bundle")
        assert len(into_dict) == len(states)
        for entity_id, hidden in states.items():
            np.testing.assert_array_equal(into_dict.get(entity_id)[0],
                                          hidden)

        into_dict.snapshot(tmp_path / "bundle2")
        back = MemmapStateBackend(tmp_path / "state2", shard_capacity=8)
        back.attach(6, "gru", np.float64, "identity")
        back.restore(tmp_path / "bundle2")
        for entity_id, hidden in states.items():
            np.testing.assert_array_equal(back.get(entity_id)[0], hidden)

    def test_snapshot_into_live_directory_is_flush(self, tmp_path):
        backend, states = self._filled(tmp_path, entities=4)
        backend.snapshot(tmp_path / "state")
        reopened = MemmapStateBackend(tmp_path / "state", shard_capacity=8)
        reopened.attach(6, "gru", np.float64, "identity")
        assert len(reopened) == len(states)

    def test_stats_telemetry(self, tmp_path):
        backend, _ = self._filled(tmp_path)
        stats = backend.stats()
        assert stats["entities"] == 40
        assert stats["shards"] == 5
        assert stats["hot_shards"] <= 2
        assert stats["evictions"] > 0


# ----------------------------------------------------------------------
# store-level: serving through each backend/codec
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cell", ["gru", "lstm"])
class TestStoreOverBackends:
    def test_memmap_identity_matches_cold_recompute(self, dataset, cell,
                                                    tmp_path):
        """The PR 2 contract holds out-of-core: streaming through a
        memmap-backed store with the identity codec lands within 1e-10 of
        a cold full recompute, even with an LRU small enough to evict."""
        encoder = _encoder(dataset, cell)
        store = EmbeddingStore(
            encoder, precision="float64",
            backend=MemmapStateBackend(tmp_path / "state", shard_capacity=4,
                                       cache_shards=2),
        )
        heads = [seq.slice(0, len(seq) // 2) for seq in dataset]
        tails = [seq.slice(len(seq) // 2, len(seq)) for seq in dataset]
        store.update_many(heads, dataset.schema, batch_size=5)
        store.update_many(tails, dataset.schema, batch_size=5)
        assert store.backend.evictions > 0
        reference = embed_dataset(encoder, dataset, runtime="tensor")
        ids = [seq.seq_id for seq in dataset]
        np.testing.assert_allclose(store.embeddings(ids), reference,
                                   atol=1e-10)

    def test_memmap_quantized_drift_is_bounded(self, dataset, cell,
                                               tmp_path):
        """int8 at-rest states drift, but the drift stays within an
        explicit bound derived from the codec's quantization error (the
        state span / 255 per write-back, amplified by the recurrence)."""
        encoder = _encoder(dataset, cell)
        store = EmbeddingStore(
            encoder, precision="float64", codec="int8",
            backend=MemmapStateBackend(tmp_path / "state", shard_capacity=4,
                                       cache_shards=2),
        )
        heads = [seq.slice(0, len(seq) // 2) for seq in dataset]
        tails = [seq.slice(len(seq) // 2, len(seq)) for seq in dataset]
        store.update_many(heads, dataset.schema, batch_size=5)
        store.update_many(tails, dataset.schema, batch_size=5)
        assert store.backend.evictions > 0
        reference = embed_dataset(encoder, dataset, runtime="tensor")
        ids = [seq.seq_id for seq in dataset]
        # Hidden states live in (-1, 1)-ish ranges; one int8 round trip
        # costs <= span/255/2 per dim and the recurrence contracts old
        # error, so 0.05 on unit-normalised embeddings is generous while
        # still catching a broken codec (identity drift is ~1e-16).
        np.testing.assert_allclose(store.embeddings(ids), reference,
                                   atol=0.05)

    def test_bundle_roundtrip_across_codecs(self, dataset, cell, tmp_path):
        """An identity bundle loads into a quantized store (transcodes on
        write-back) and a quantized bundle loads into an identity store
        within the codec bound."""
        encoder = _encoder(dataset, cell)
        exact = EmbeddingStore(encoder, precision="float64")
        exact.bulk_load(dataset)
        exact.save(tmp_path / "exact")

        quantized = EmbeddingStore(
            encoder, precision="float64", codec="uint4",
            backend=MemmapStateBackend(tmp_path / "qstate",
                                       shard_capacity=4, cache_shards=2),
        ).load(tmp_path / "exact")
        assert quantized.known_entities() == exact.known_entities()
        ids = exact.known_entities()
        np.testing.assert_allclose(quantized.embeddings(ids),
                                   exact.embeddings(ids), atol=0.2)

        quantized.save(tmp_path / "quant")
        back = EmbeddingStore(encoder, precision="float64")
        back.load(tmp_path / "quant")
        # identity load of a uint4 bundle reproduces the saved quantized
        # states exactly — the lossy step happened once, at save time —
        # so a second identity load of the same bundle is bit-identical.
        twice = EmbeddingStore(encoder, precision="float64")
        twice.load(tmp_path / "quant")
        np.testing.assert_array_equal(back.embeddings(ids),
                                      twice.embeddings(ids))
        np.testing.assert_allclose(back.embeddings(ids),
                                   exact.embeddings(ids), atol=0.2)

    def test_sharded_memmap_service_roundtrip(self, dataset, cell,
                                              tmp_path):
        """The full stack — serve() with backend='memmap' + int8 codec —
        ingests, persists, and reloads."""
        from repro.core.inference import serve
        encoder = _encoder(dataset, cell)
        service = serve(encoder, dataset=dataset, num_shards=2,
                        backend="memmap", codec="int8",
                        backend_dir=tmp_path / "live")
        ids = [seq.seq_id for seq in dataset]
        served = service.query(ids)
        reference = embed_dataset(encoder, dataset, runtime="tensor")
        np.testing.assert_allclose(served, reference, atol=1e-4)

        service.save(tmp_path / "bundle")
        clone = serve(encoder, schema=dataset.schema, num_shards=2,
                      backend="memmap", codec="int8",
                      backend_dir=tmp_path / "live2")
        clone.load(tmp_path / "bundle")
        # the clone's states passed through one int8 encode at save time,
        # so they drift from the live (still hot, unquantized) states by
        # at most the codec bound.
        np.testing.assert_allclose(clone.query(ids), served, atol=0.05)


# ----------------------------------------------------------------------
# memmap backend: background (async) write-back of evicted shards
# ----------------------------------------------------------------------
class TestAsyncWriteback:
    def _pair(self, tmp_path, entities=60, shard_capacity=8, cache_shards=2,
              codec="identity", dim=6, seed=0):
        """A sync and an async backend fed the identical put stream."""
        sync = MemmapStateBackend(tmp_path / "sync",
                                  shard_capacity=shard_capacity,
                                  cache_shards=cache_shards)
        kw = dict(shard_capacity=shard_capacity, cache_shards=cache_shards,
                  writeback="async")
        async_ = MemmapStateBackend(tmp_path / "async", **kw)
        sync.attach(dim, "gru", np.float64, codec)
        async_.attach(dim, "gru", np.float64, codec)
        rng = np.random.default_rng(seed)
        states = {}
        for entity_id in range(entities):
            hidden = rng.normal(size=dim)
            states[entity_id] = hidden
            sync.put(entity_id, hidden.copy(), None, float(entity_id))
            async_.put(entity_id, hidden.copy(), None, float(entity_id))
        return sync, async_, states

    def test_writeback_knob_validation(self, tmp_path):
        with pytest.raises(ValueError, match="writeback"):
            MemmapStateBackend(tmp_path / "state", writeback="eager")

    def test_async_matches_sync_bit_identical(self, tmp_path):
        """Same puts, same evictions — async read-back is bit-identical
        to the sync backend with the identity codec."""
        sync, async_, states = self._pair(tmp_path)
        assert async_.evictions > 0
        try:
            for entity_id, hidden in states.items():
                got_sync = sync.get(entity_id)
                got_async = async_.get(entity_id)
                np.testing.assert_array_equal(got_async[0], got_sync[0])
                np.testing.assert_array_equal(got_async[0], hidden)
                assert got_async[2] == got_sync[2] == float(entity_id)
        finally:
            async_.close()

    def test_flush_is_durability_barrier(self, tmp_path):
        """flush() drains the writer; a fresh backend on the directory
        then sees every entity exactly."""
        _, async_, states = self._pair(tmp_path)
        async_.flush()
        async_.close()
        reopened = MemmapStateBackend(tmp_path / "async", shard_capacity=8,
                                      cache_shards=2)
        reopened.attach(6, "gru", np.float64, "identity")
        assert len(reopened) == len(states)
        for entity_id, hidden in states.items():
            np.testing.assert_array_equal(reopened.get(entity_id)[0], hidden)

    def test_reclaim_of_queued_shard_is_fresh(self, tmp_path):
        """A shard read back while its write-back is still queued (or in
        flight) returns current state — gated writer version."""
        import threading

        gate = threading.Event()

        class Gated(MemmapStateBackend):
            def _writeback_loop(inner):
                gate.wait()
                MemmapStateBackend._writeback_loop(inner)

        backend = Gated(tmp_path / "state", shard_capacity=4,
                        cache_shards=1, writeback="async")
        backend.attach(3, "gru", np.float64, "identity")
        rng = np.random.default_rng(1)
        states = {}
        # 16 entities over capacity-4 shards with a 1-shard LRU: every
        # new shard evicts the previous; the writer is parked on `gate`,
        # so evictions pile up in the queue.
        for entity_id in range(16):
            hidden = rng.normal(size=3)
            states[entity_id] = hidden
            backend.put(entity_id, hidden.copy(), None, float(entity_id))
        assert backend.stats()["queued_writebacks"] > 0
        try:
            # Reads of queued-but-unwritten shards must reclaim the hot
            # buffer (nothing is on disk yet for them).
            for entity_id, hidden in states.items():
                np.testing.assert_array_equal(backend.get(entity_id)[0],
                                              hidden)
        finally:
            gate.set()
            backend.close()
        # After close, everything queued was still written (no loss).
        backend.flush()
        reopened = MemmapStateBackend(tmp_path / "state", shard_capacity=4,
                                      cache_shards=1)
        reopened.attach(3, "gru", np.float64, "identity")
        for entity_id, hidden in states.items():
            np.testing.assert_array_equal(reopened.get(entity_id)[0], hidden)

    def test_close_is_idempotent_and_degrades_to_sync(self, tmp_path):
        _, async_, _ = self._pair(tmp_path, entities=20)
        async_.close()
        async_.close()
        assert async_._writer is None
        # Still usable: further evictions just write synchronously.
        rng = np.random.default_rng(7)
        hidden = rng.normal(size=6)
        async_.put(999, hidden.copy(), None, 999.0)
        np.testing.assert_array_equal(async_.get(999)[0], hidden)

    def test_clear_discards_queued_writebacks(self, tmp_path):
        _, async_, _ = self._pair(tmp_path, entities=40)
        try:
            async_.clear()
            assert len(async_) == 0
            assert async_.stats()["queued_writebacks"] == 0
        finally:
            async_.close()

    def test_stats_report_writeback_telemetry(self, tmp_path):
        sync, async_, _ = self._pair(tmp_path)
        try:
            assert sync.stats()["writeback"] == "sync"
            assert sync.stats()["async_writebacks"] == 0
            stats = async_.stats()
            assert stats["writeback"] == "async"
            assert stats["queued_writebacks"] >= 0
            async_.flush()
            drained = async_.stats()
            assert drained["queued_writebacks"] == 0
            # every eviction was queued, and flush() drains the queue
            assert drained["async_writebacks"] > 0
        finally:
            async_.close()

    @pytest.mark.parametrize("cell", ["gru", "lstm"])
    def test_store_over_async_backend_matches_dict(self, dataset, cell,
                                                   tmp_path):
        """End-to-end: an EmbeddingStore over the async memmap backend
        matches the dict backend at 1e-10 with the identity codec."""
        encoder = _encoder(dataset, cell)
        backend = MemmapStateBackend(tmp_path / "state", shard_capacity=4,
                                     cache_shards=2, writeback="async")
        store = EmbeddingStore(encoder, precision="float64", backend=backend)
        reference = EmbeddingStore(encoder, precision="float64",
                                   backend=DictStateBackend())
        store.update_many(list(dataset), dataset.schema, batch_size=5)
        reference.update_many(list(dataset), dataset.schema, batch_size=5)
        assert backend.evictions > 0
        try:
            for seq in dataset:
                np.testing.assert_allclose(store.embedding(seq.seq_id),
                                           reference.embedding(seq.seq_id),
                                           rtol=0, atol=1e-10)
        finally:
            store.close()
