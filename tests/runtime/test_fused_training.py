"""Property-style equivalence: fused BPTT vs the autograd training path.

The contract of :mod:`repro.runtime.training` is that the fused engine
computes the *same gradients* as the Tensor graph (to < 1e-8) for every
contrastive loss, both cell kinds, and variable-length batches in any row
order — so ``TrainConfig(engine="fused")`` walks the same optimisation
trajectory as the seed implementation, only faster.  These tests
randomize shapes, lengths, losses and the packed/masked execution paths.
"""

import numpy as np
import pytest

from repro.augmentations import RandomSlices
from repro.core.batching import augment_batch
from repro.data.synthetic import make_churn_dataset
from repro.encoders import build_encoder
from repro.losses import LOSSES
from repro.nn import GRU, LSTM, Linear, Tensor, where
from repro.nn import functional as F
from repro.runtime import kernels
from repro.runtime.training import (FusedTrainStep, loss_gradient,
                                    softmax_head_gradient)

ATOL = 1e-8
RTOL = 1e-8


def _random_lengths(rng, batch, steps, sort=False):
    lengths = rng.integers(1, steps + 1, size=batch)
    lengths[rng.integers(0, batch)] = steps  # at least one full row
    if sort:
        lengths = np.sort(lengths)[::-1]
    return lengths


def _tensor_cell_grads(cell, x, mask, d_last, d_outputs):
    """Reference gradients through the autograd recurrence."""
    x_tensor = Tensor(x, requires_grad=True)
    states, last = cell(x_tensor, mask=mask)
    objective = (last * Tensor(d_last)).sum()
    if d_outputs is not None:
        objective = objective + (states * Tensor(d_outputs)).sum()
    cell.zero_grad()
    objective.backward()
    grads = {name: param.grad.copy()
             for name, param in cell.named_parameters()}
    return grads, x_tensor.grad.copy()


@pytest.mark.parametrize("cell_cls,kind", [(GRU, "gru"), (LSTM, "lstm")])
@pytest.mark.parametrize("sort", [True, False], ids=["packed", "masked"])
@pytest.mark.parametrize("per_step", [False, True], ids=["last", "last+steps"])
def test_rnn_backward_matches_autograd(cell_cls, kind, sort, per_step):
    """Hand-derived BPTT == autograd for random shapes/lengths/objectives.

    ``sort=True`` exercises the packed (shrinking active window) path,
    ``sort=False`` the mask-freezing fallback; ``per_step`` additionally
    feeds a gradient into every per-step state (the CPC-style
    ``d_outputs`` interface).
    """
    rng = np.random.default_rng(17 + 2 * (kind == "lstm") + int(sort))
    for trial in range(3):
        batch = int(rng.integers(2, 8))
        steps = int(rng.integers(2, 20))
        dim = int(rng.integers(1, 10))
        hidden = int(rng.integers(1, 12))
        cell = cell_cls(dim, hidden, rng=rng)
        x = rng.standard_normal((batch, steps, dim))
        lengths = _random_lengths(rng, batch, steps, sort=sort)
        mask = np.arange(steps)[None, :] < lengths[:, None]
        d_last = rng.standard_normal((batch, hidden))
        d_outputs = (rng.standard_normal((batch, steps, hidden))
                     if per_step else None)

        ref_grads, ref_dx = _tensor_cell_grads(cell, x, mask, d_last,
                                               d_outputs)

        weights = cell.export_weights()
        cache = kernels.rnn_forward_train(weights, x, lengths=lengths)
        grads = kernels.rnn_backward(weights, cache, d_last,
                                     d_outputs=d_outputs)

        np.testing.assert_allclose(grads["d_x"], ref_dx, atol=ATOL, rtol=RTOL)
        for name, reference in ref_grads.items():
            np.testing.assert_allclose(grads[name], reference, atol=ATOL,
                                       rtol=RTOL, err_msg="%s/%s" % (kind, name))


def test_packed_and_masked_backward_agree():
    """The two BPTT execution strategies produce identical gradients."""
    rng = np.random.default_rng(5)
    cell = GRU(6, 10, rng=rng)
    x = rng.standard_normal((5, 12, 6))
    lengths = np.sort(rng.integers(1, 13, size=5))[::-1]
    mask = np.arange(12)[None, :] < lengths[:, None]
    d_last = rng.standard_normal((5, 10))
    weights = cell.export_weights()
    packed = kernels.rnn_backward(
        weights, kernels.gru_forward_train(weights, x, lengths=lengths), d_last)
    masked = kernels.rnn_backward(
        weights, kernels.gru_forward_train(weights, x, mask=mask), d_last)
    for name, value in packed.items():
        np.testing.assert_allclose(masked[name], value, atol=1e-12,
                                   err_msg=name)


def _coles_batch(seed=3):
    dataset = make_churn_dataset(num_clients=8, mean_length=30, min_length=8,
                                 max_length=60, seed=seed)
    rng = np.random.default_rng(seed)
    batch = augment_batch(dataset.sequences, dataset.schema,
                          RandomSlices(5, 25, 3), rng)
    assert batch is not None
    return dataset, batch


@pytest.mark.parametrize("cell", ["gru", "lstm"])
@pytest.mark.parametrize("loss_name", sorted(LOSSES))
def test_encoder_gradients_match_tensor_engine(cell, loss_name):
    """Full-encoder fused gradients == autograd, for every loss.

    Covers the whole fused training stack on a real CoLES batch
    (variable lengths, unsorted rows): training-mode batch norm with
    running-buffer updates, embedding-table scatter gradients, BPTT and
    the unit-norm head, with the loss driven through the loss-gradient
    interface.
    """
    dataset, batch = _coles_batch()
    reference = build_encoder(dataset.schema, 16, cell,
                              rng=np.random.default_rng(1))
    fused = build_encoder(dataset.schema, 16, cell,
                          rng=np.random.default_rng(1))
    reference.train()
    fused.train()
    loss_fn = LOSSES[loss_name]()

    embeddings = reference.embed(batch)
    loss = loss_fn(embeddings, batch.seq_ids, rng=np.random.default_rng(7))
    reference.zero_grad()
    loss.backward()

    step = FusedTrainStep(fused)
    cache = step.forward(batch)
    value, d_embeddings = loss_gradient(loss_fn, cache.embeddings,
                                        batch.seq_ids,
                                        rng=np.random.default_rng(7))
    fused.zero_grad()
    step.backward(cache, d_embeddings)

    np.testing.assert_allclose(cache.embeddings, embeddings.data, atol=1e-10)
    assert abs(value - loss.item()) < ATOL
    fused_params = dict(fused.named_parameters())
    for name, param in reference.named_parameters():
        if param.grad is None:
            assert fused_params[name].grad is None
            continue
        np.testing.assert_allclose(fused_params[name].grad, param.grad,
                                   atol=ATOL, rtol=RTOL, err_msg=name)
    # Training-mode batch norm updated the running buffers identically.
    fused_buffers = dict(fused.named_buffers())
    for name, buffer in reference.named_buffers():
        np.testing.assert_array_equal(fused_buffers[name], buffer,
                                      err_msg=name)


@pytest.mark.parametrize("cell", ["gru", "lstm"])
def test_per_step_gradients_match_tensor_engine(cell):
    """Fused ``d_states``/``d_events`` routing == full autograd.

    The per-step interface behind the CPC/RTD fused paths: random
    gradients are injected into every per-step hidden state, every event
    representation *and* the final embeddings at once, and every
    parameter gradient (embedding tables, batch norm, cell weights,
    learnt initial states) must match the Tensor graph to < 1e-8.
    """
    dataset, batch = _coles_batch(seed=6)
    reference = build_encoder(dataset.schema, 14, cell,
                              rng=np.random.default_rng(3))
    fused = build_encoder(dataset.schema, 14, cell,
                          rng=np.random.default_rng(3))
    reference.train()
    fused.train()
    rng = np.random.default_rng(13)

    step = FusedTrainStep(fused)
    cache = step.forward(batch)
    d_states = rng.standard_normal(cache.states.shape)
    d_events = rng.standard_normal(cache.events.shape)
    d_embeddings = rng.standard_normal(cache.embeddings.shape)

    # Autograd reference: the same three gradient injections as one
    # scalar objective over the live graph.
    events = reference.trx_encoder(batch)
    states, last = reference.rnn(events, mask=batch.mask)
    embedding = reference._head(last)
    objective = ((states * Tensor(d_states)).sum()
                 + (events * Tensor(d_events)).sum()
                 + (embedding * Tensor(d_embeddings)).sum())
    reference.zero_grad()
    objective.backward()

    # The fused per-step views must equal the autograd tensors.
    np.testing.assert_allclose(cache.states, states.data, atol=1e-10)
    np.testing.assert_allclose(cache.events, events.data, atol=1e-10)

    fused.zero_grad()
    step.backward(cache, d_embeddings=d_embeddings, d_states=d_states,
                  d_events=d_events)
    fused_params = dict(fused.named_parameters())
    for name, param in reference.named_parameters():
        np.testing.assert_allclose(fused_params[name].grad, param.grad,
                                   atol=ATOL, rtol=RTOL, err_msg=name)


@pytest.mark.parametrize("cell", ["gru", "lstm"])
def test_per_step_only_backward_needs_no_embedding_gradient(cell):
    """``backward(cache, d_states=...)`` alone (RTD's shape) is valid.

    With no ``d_embeddings``, the final state receives gradient only
    through its own per-step slot — matching an autograd objective that
    never touches the embedding head.
    """
    dataset, batch = _coles_batch(seed=12)
    reference = build_encoder(dataset.schema, 10, cell,
                              rng=np.random.default_rng(4))
    fused = build_encoder(dataset.schema, 10, cell,
                          rng=np.random.default_rng(4))
    reference.train()
    fused.train()
    rng = np.random.default_rng(21)

    step = FusedTrainStep(fused)
    cache = step.forward(batch)
    d_states = rng.standard_normal(cache.states.shape)

    events = reference.trx_encoder(batch)
    states, _ = reference.rnn(events, mask=batch.mask)
    reference.zero_grad()
    (states * Tensor(d_states)).sum().backward()

    fused.zero_grad()
    step.backward(cache, d_states=d_states)
    fused_params = dict(fused.named_parameters())
    for name, param in reference.named_parameters():
        if param.grad is None:
            assert fused_params[name].grad is None, name
            continue
        np.testing.assert_allclose(fused_params[name].grad, param.grad,
                                   atol=ATOL, rtol=RTOL, err_msg=name)


@pytest.mark.parametrize("bias", [True, False], ids=["bias", "no-bias"])
def test_softmax_head_gradient_matches_autograd(bias):
    """Closed-form CE + linear backward == autograd, head and embeddings.

    The hand-derived classification-head path must reproduce the exact
    loss value, head weight/bias gradients, and ``d_embeddings`` that
    ``F.cross_entropy(head(embeddings), targets)`` + ``backward()``
    produce — for random shapes, including single-row batches.
    """
    rng = np.random.default_rng(29)
    for trial in range(4):
        batch = int(rng.integers(1, 12))
        hidden = int(rng.integers(1, 9))
        classes = int(rng.integers(2, 7))
        head_ref = Linear(hidden, classes, bias=bias, rng=np.random.default_rng(trial))
        head_fused = Linear(hidden, classes, bias=bias,
                            rng=np.random.default_rng(trial))
        embeddings = rng.standard_normal((batch, hidden))
        targets = rng.integers(0, classes, size=batch)

        leaf = Tensor(embeddings, requires_grad=True)
        loss = F.cross_entropy(head_ref(leaf), targets)
        head_ref.zero_grad()
        loss.backward()

        value, d_embeddings = softmax_head_gradient(head_fused, embeddings,
                                                    targets)
        assert value == pytest.approx(loss.item(), abs=1e-12)
        np.testing.assert_allclose(d_embeddings, leaf.grad, atol=1e-12)
        np.testing.assert_allclose(head_fused.weight.grad,
                                   head_ref.weight.grad, atol=1e-12)
        if bias:
            np.testing.assert_allclose(head_fused.bias.grad,
                                       head_ref.bias.grad, atol=1e-12)
        else:
            assert head_fused.bias is None


def test_softmax_head_gradient_accumulates():
    """Head gradients add into existing ``param.grad`` like ``backward``."""
    rng = np.random.default_rng(37)
    head = Linear(4, 3, rng=rng)
    embeddings = rng.standard_normal((5, 4))
    targets = rng.integers(0, 3, size=5)
    _, _ = softmax_head_gradient(head, embeddings, targets)
    once = head.weight.grad.copy()
    _, _ = softmax_head_gradient(head, embeddings, targets)
    np.testing.assert_allclose(head.weight.grad, 2.0 * once, atol=1e-15)


@pytest.mark.parametrize("cell", ["gru", "lstm"])
def test_classification_step_gradients_match_tensor_engine(cell):
    """The whole fused fine-tuning step == autograd, every parameter.

    Encoder + softmax head on a real labeled batch (variable lengths,
    unsorted rows): ``backward_classification`` must land the same
    gradients on the embedding tables, batch norm, cell weights, learnt
    initial states *and* the head as the Tensor graph does.
    """
    dataset = make_churn_dataset(num_clients=10, mean_length=30, min_length=8,
                                 max_length=60, labeled_fraction=1.0, seed=15)
    from repro.data.batches import collate

    batch = collate(dataset.sequences, dataset.schema)
    targets = batch.label_array()
    reference = build_encoder(dataset.schema, 12, cell,
                              rng=np.random.default_rng(6))
    fused = build_encoder(dataset.schema, 12, cell,
                          rng=np.random.default_rng(6))
    head_ref = Linear(12, 2, rng=np.random.default_rng(8))
    head_fused = Linear(12, 2, rng=np.random.default_rng(8))
    reference.train()
    fused.train()

    loss = F.cross_entropy(head_ref(reference.embed(batch)), targets)
    reference.zero_grad()
    head_ref.zero_grad()
    loss.backward()

    step = FusedTrainStep(fused)
    cache = step.forward(batch)
    fused.zero_grad()
    head_fused.zero_grad()
    value = step.backward_classification(cache, head_fused, targets)

    assert value == pytest.approx(loss.item(), abs=ATOL)
    fused_params = dict(fused.named_parameters())
    for name, param in reference.named_parameters():
        np.testing.assert_allclose(fused_params[name].grad, param.grad,
                                   atol=ATOL, rtol=RTOL, err_msg=name)
    np.testing.assert_allclose(head_fused.weight.grad, head_ref.weight.grad,
                               atol=ATOL, rtol=RTOL)
    np.testing.assert_allclose(head_fused.bias.grad, head_ref.bias.grad,
                               atol=ATOL, rtol=RTOL)
    # Training-mode batch norm updated the running buffers identically.
    fused_buffers = dict(fused.named_buffers())
    for name, buffer in reference.named_buffers():
        np.testing.assert_array_equal(fused_buffers[name], buffer,
                                      err_msg=name)


def test_eval_mode_uses_running_statistics():
    """In eval mode the fused forward matches ``embed`` bit-for-rounding."""
    dataset, batch = _coles_batch(seed=9)
    encoder = build_encoder(dataset.schema, 12, "gru",
                            rng=np.random.default_rng(2))
    encoder.train()
    FusedTrainStep(encoder).forward(batch)  # perturb the running buffers
    encoder.eval()
    cache = FusedTrainStep(encoder).forward(batch)
    np.testing.assert_allclose(cache.embeddings,
                               encoder.embed(batch).data, atol=1e-10)


def test_loss_gradient_matches_direct_autograd():
    """The loss-gradient adapter returns the exact leaf gradient."""
    rng = np.random.default_rng(11)
    embeddings = rng.standard_normal((10, 6))
    groups = np.repeat(np.arange(5), 2)
    loss_fn = LOSSES["contrastive"]()

    leaf = Tensor(embeddings, requires_grad=True)
    loss = loss_fn(leaf, groups, rng=np.random.default_rng(3))
    loss.backward()

    value, grad = loss_gradient(loss_fn, embeddings, groups,
                                rng=np.random.default_rng(3))
    assert value == pytest.approx(loss.item())
    np.testing.assert_array_equal(grad, leaf.grad)


def test_fused_forward_rejects_out_of_range_ids():
    """Invalid categorical ids raise exactly like ``Embedding.forward``."""
    dataset, batch = _coles_batch(seed=2)
    encoder = build_encoder(dataset.schema, 8, "gru",
                            rng=np.random.default_rng(0))
    name = next(iter(dataset.schema.categorical))
    batch.fields[name] = batch.fields[name].copy()
    batch.fields[name][0, 0] = -1
    with pytest.raises(IndexError):
        encoder.embed(batch)  # the Tensor path rejects it...
    with pytest.raises(IndexError):
        FusedTrainStep(encoder).forward(batch)  # ...and so does fused


def test_fused_step_covers_transformers_rejects_custom():
    """Every repro encoder has a fused step; custom encoders fail loudly."""
    dataset, _ = _coles_batch(seed=1)
    transformer = build_encoder(dataset.schema, 8, "transformer",
                                rng=np.random.default_rng(0))
    step = FusedTrainStep(transformer)
    assert not step.is_recurrent

    class Custom:
        output_dim = 8

    with pytest.raises(TypeError):
        FusedTrainStep(Custom())


def test_l2_normalize_backward_matches_autograd():
    """Row-normalisation gradient mirrors ``nn.functional.l2_normalize``."""
    rng = np.random.default_rng(23)
    x = rng.standard_normal((7, 5))
    x[2] = 0.0  # exercise the eps-clipped branch
    grad = rng.standard_normal((7, 5))

    leaf = Tensor(x, requires_grad=True)
    (F.l2_normalize(leaf) * Tensor(grad)).sum().backward()
    np.testing.assert_allclose(
        kernels.l2_normalize_rows_backward(x, grad), leaf.grad, atol=1e-12)


def test_frozen_rows_pass_gradients_through():
    """Rows shorter than the batch max route gradients around padded steps."""
    rng = np.random.default_rng(31)
    cell = GRU(4, 6, rng=rng)
    x = rng.standard_normal((3, 10, 4))
    lengths = np.array([10, 4, 1])
    mask = np.arange(10)[None, :] < lengths[:, None]
    d_last = rng.standard_normal((3, 6))

    x_tensor = Tensor(x, requires_grad=True)
    _, last = cell(x_tensor, mask=mask)
    cell.zero_grad()
    (last * Tensor(d_last)).sum().backward()

    weights = cell.export_weights()
    cache = kernels.gru_forward_train(weights, x, lengths=lengths)
    grads = kernels.gru_backward(weights, cache, d_last)
    np.testing.assert_allclose(grads["d_x"], x_tensor.grad, atol=ATOL)
    # Gradients at padded positions are exactly zero on both paths.
    assert np.all(grads["d_x"][~mask] == 0.0)
    assert np.all(x_tensor.grad[~mask] == 0.0)
    np.testing.assert_allclose(grads["init_state"], cell.init_state.grad,
                               atol=ATOL)


def test_lstm_initial_cell_gradient():
    """The learnt c_0/h_0 of an LSTM receive the correct gradients."""
    rng = np.random.default_rng(41)
    cell = LSTM(3, 5, rng=rng)
    x = rng.standard_normal((4, 6, 3))
    lengths = np.array([6, 5, 2, 1])
    mask = np.arange(6)[None, :] < lengths[:, None]
    d_last = rng.standard_normal((4, 5))

    # Autograd reference via the stepped module (forward() drops the cell).
    hidden = cell.initial_state(4)
    state_c = cell.initial_cell(4)
    x_tensor = Tensor(x, requires_grad=True)
    for t in range(6):
        new_h, new_c = cell.step(x_tensor[:, t, :], (hidden, state_c))
        keep = mask[:, t:t + 1]
        hidden = where(keep, new_h, hidden)
        state_c = where(keep, new_c, state_c)
    cell.zero_grad()
    (hidden * Tensor(d_last)).sum().backward()

    weights = cell.export_weights()
    cache = kernels.lstm_forward_train(weights, x, lengths=lengths)
    grads = kernels.lstm_backward(weights, cache, d_last)
    np.testing.assert_allclose(grads["init_state"], cell.init_state.grad,
                               atol=ATOL)
    np.testing.assert_allclose(grads["init_cell"], cell.init_cell.grad,
                               atol=ATOL)
    np.testing.assert_allclose(grads["d_x"], x_tensor.grad, atol=ATOL)
