"""Tests for the deployment features of Section 4.3.1: incremental
embedding updates and uint4 quantization."""

import numpy as np
import pytest

from repro.core import (
    IncrementalEmbedder,
    embed_dataset,
    pack_uint4,
    quantize_embeddings,
    unpack_uint4,
)
from repro.data.synthetic import make_churn_dataset
from repro.encoders import build_encoder


@pytest.fixture(scope="module")
def world():
    dataset = make_churn_dataset(num_clients=12, mean_length=40, min_length=20,
                                 max_length=60, seed=0)
    encoder = build_encoder(dataset.schema, 16, "gru",
                            rng=np.random.default_rng(0))
    encoder.eval()
    return dataset, encoder


class TestEmbedDataset:
    def test_shape_and_batching_invariance(self, world):
        dataset, encoder = world
        full = embed_dataset(encoder, dataset, batch_size=64,
                             precision="float64")
        small = embed_dataset(encoder, dataset, batch_size=3,
                              precision="float64")
        assert full.shape == (len(dataset), 16)
        np.testing.assert_allclose(full, small, rtol=1e-9)


class TestIncrementalEmbedder:
    def test_rejects_transformer(self, world):
        dataset, _ = world
        transformer = build_encoder(dataset.schema, 8, "transformer")
        with pytest.raises(TypeError):
            IncrementalEmbedder(transformer)

    def test_lstm_incremental_equals_full(self, world):
        """Extension beyond the paper: LSTM state carry-over also works."""
        dataset, _ = world
        encoder = build_encoder(dataset.schema, 12, "lstm",
                                rng=np.random.default_rng(5))
        encoder.eval()
        embedder = IncrementalEmbedder(encoder, precision="float64")
        full = embed_dataset(encoder, dataset, precision="float64")
        seq = dataset[0]
        mid = len(seq) // 2
        embedder.update(seq.seq_id, seq.slice(0, mid), dataset.schema)
        embedder.update(seq.seq_id, seq.slice(mid, len(seq)), dataset.schema)
        np.testing.assert_allclose(embedder.embedding(seq.seq_id), full[0],
                                   rtol=1e-8)

    def test_incremental_equals_full_recompute(self, world):
        """The paper's ETL property: c_{t+k} from c_t and the new events."""
        dataset, encoder = world
        embedder = IncrementalEmbedder(encoder, precision="float64")
        full = embed_dataset(encoder, dataset, precision="float64")
        for row, seq in enumerate(dataset):
            # Feed the sequence in three chunks.
            cuts = [0, len(seq) // 3, 2 * len(seq) // 3, len(seq)]
            for start, stop in zip(cuts[:-1], cuts[1:]):
                if stop > start:
                    embedder.update(seq.seq_id, seq.slice(start, stop),
                                    dataset.schema)
            np.testing.assert_allclose(
                embedder.embedding(seq.seq_id), full[row], rtol=1e-8,
                err_msg="entity %d" % seq.seq_id,
            )

    def test_unknown_entity_raises(self, world):
        _, encoder = world
        with pytest.raises(KeyError):
            IncrementalEmbedder(encoder).embedding(123)

    def test_empty_update_raises(self, world):
        dataset, encoder = world
        embedder = IncrementalEmbedder(encoder)
        empty = dataset[0].slice(0, 0)
        with pytest.raises(ValueError):
            embedder.update(0, empty, dataset.schema)

    def test_known_entities_tracked(self, world):
        dataset, encoder = world
        embedder = IncrementalEmbedder(encoder)
        embedder.update(5, dataset[0].slice(0, 10), dataset.schema)
        assert embedder.known_entities() == [5]


class TestQuantization:
    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(0)
        emb = rng.standard_normal((50, 32))
        quantized = quantize_embeddings(emb, levels=16)
        recovered = quantized.dequantize()
        # Max error is half a step per dimension.
        max_err = np.abs(recovered - emb)
        steps = quantized.scales
        assert (max_err <= steps[None, :] / 2 + 1e-9).all()

    def test_codes_within_levels(self):
        emb = np.random.default_rng(1).standard_normal((20, 8))
        quantized = quantize_embeddings(emb, levels=16)
        assert quantized.codes.max() <= 15
        assert quantized.codes.dtype == np.uint8

    def test_compression_ratio_matches_paper(self):
        """Section 4.3.1: a 256-dim float32 embedding (1KB) -> 128 bytes."""
        emb = np.random.default_rng(2).standard_normal((10, 256))
        quantized = quantize_embeddings(emb, levels=16)
        assert quantized.packed_bytes() == 10 * 128

    def test_levels_validation(self):
        emb = np.zeros((2, 2))
        with pytest.raises(ValueError):
            quantize_embeddings(emb, levels=1)
        with pytest.raises(ValueError):
            quantize_embeddings(emb, levels=1000)

    def test_requires_matrix(self):
        with pytest.raises(ValueError):
            quantize_embeddings(np.zeros(5))

    def test_constant_dimension_handled(self):
        emb = np.ones((4, 3))
        quantized = quantize_embeddings(emb)
        np.testing.assert_allclose(quantized.dequantize(), emb, atol=1e-9)

    def test_pack_unpack_roundtrip(self):
        rng = np.random.default_rng(3)
        codes = rng.integers(0, 16, size=(7, 9)).astype(np.uint8)  # odd width
        packed = pack_uint4(codes)
        assert packed.shape == (7, 5)
        recovered = unpack_uint4(packed, width=9)
        np.testing.assert_array_equal(recovered, codes)

    def test_pack_rejects_wide_codes(self):
        with pytest.raises(ValueError):
            pack_uint4(np.full((2, 2), 16, dtype=np.uint8))

    def test_neighbour_preservation(self):
        """Quantized embeddings keep nearest-neighbour structure."""
        rng = np.random.default_rng(4)
        centers = np.eye(8) * 5
        emb = np.vstack([centers[i % 8] + 0.1 * rng.standard_normal(8)
                         for i in range(40)])
        recovered = quantize_embeddings(emb, levels=16).dequantize()
        for i in range(40):
            original_nn = np.argsort(np.linalg.norm(emb - emb[i], axis=1))[1]
            recovered_nn = np.argsort(
                np.linalg.norm(recovered - recovered[i], axis=1))[1]
            assert (i % 8) == (original_nn % 8) == (recovered_nn % 8)
