"""Tests for CoLES batch generation and the contrastive trainer."""

import numpy as np
import pytest

from repro.augmentations import RandomSlices
from repro.core import ContrastiveTrainer, TrainConfig, augment_batch, coles_batches
from repro.data.synthetic import make_churn_dataset
from repro.encoders import build_encoder
from repro.losses import ContrastiveLoss


@pytest.fixture(scope="module")
def dataset():
    return make_churn_dataset(num_clients=30, mean_length=40, min_length=15,
                              max_length=60, seed=0)


STRATEGY = RandomSlices(5, 30, 4)


class TestAugmentBatch:
    def test_groups_have_multiple_views(self, dataset):
        rng = np.random.default_rng(0)
        batch = augment_batch(dataset.sequences[:6], dataset.schema, STRATEGY, rng)
        assert batch is not None
        ids, counts = np.unique(batch.seq_ids, return_counts=True)
        assert (counts >= 2).all()
        assert len(ids) >= 2

    def test_single_entity_returns_none(self, dataset):
        rng = np.random.default_rng(0)
        batch = augment_batch(dataset.sequences[:1], dataset.schema, STRATEGY, rng)
        assert batch is None

    def test_views_inherit_entity_id(self, dataset):
        rng = np.random.default_rng(1)
        chunk = dataset.sequences[:4]
        batch = augment_batch(chunk, dataset.schema, STRATEGY, rng)
        assert set(batch.seq_ids) <= {seq.seq_id for seq in chunk}


class TestColesBatches:
    def test_epoch_covers_dataset(self, dataset):
        rng = np.random.default_rng(0)
        seen = set()
        for batch in coles_batches(dataset, STRATEGY, batch_size=8, rng=rng):
            seen.update(batch.seq_ids.tolist())
        # Nearly all entities appear (a few may be dropped by rejection).
        assert len(seen) >= 0.8 * len(dataset)

    def test_batch_entity_count(self, dataset):
        rng = np.random.default_rng(0)
        for batch in coles_batches(dataset, STRATEGY, batch_size=8, rng=rng,
                                   drop_last=True):
            assert len(np.unique(batch.seq_ids)) <= 8


class TestTrainer:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(num_epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(batch_size=1)
        with pytest.raises(ValueError):
            TrainConfig(learning_rate=0.0)

    def test_loss_decreases(self, dataset):
        encoder = build_encoder(dataset.schema, 16, "gru",
                                rng=np.random.default_rng(0))
        trainer = ContrastiveTrainer(
            encoder, ContrastiveLoss(margin=0.5), STRATEGY,
            TrainConfig(num_epochs=6, batch_size=10, learning_rate=0.01, seed=0),
        )
        history = trainer.fit(dataset)
        assert len(history) == 6
        assert history[-1].mean_loss < history[0].mean_loss

    def test_history_records_batches_and_time(self, dataset):
        encoder = build_encoder(dataset.schema, 8, "gru",
                                rng=np.random.default_rng(0))
        trainer = ContrastiveTrainer(
            encoder, ContrastiveLoss(), STRATEGY,
            TrainConfig(num_epochs=1, batch_size=10, seed=0),
        )
        history = trainer.fit(dataset)
        assert history[0].num_batches >= 1
        assert history[0].seconds > 0

    def test_encoder_left_in_eval_mode(self, dataset):
        encoder = build_encoder(dataset.schema, 8, "gru",
                                rng=np.random.default_rng(0))
        trainer = ContrastiveTrainer(
            encoder, ContrastiveLoss(), STRATEGY,
            TrainConfig(num_epochs=1, batch_size=10, seed=0),
        )
        trainer.fit(dataset)
        assert not encoder.training
