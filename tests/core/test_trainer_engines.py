"""Engine selection in the training loops: fused vs tensor.

``TrainConfig(engine=...)`` (and ``PretrainConfig(engine=...)`` for the
baselines) switches the encoder's forward+backward between the autograd
graph and the fused graph-free runtime (hand-derived BPTT for GRU/LSTM,
the attention reverse pass for transformers); the default ``"auto"``
resolves to fused for every repro encoder.  The contract tested here:

- after 0 steps the engines are indistinguishable — byte-identical
  checkpoints (selecting an engine must not touch the weights);
- after N real optimisation steps on synthetic data the trained weights
  agree to < 1e-8 (same gradients -> same Adam trajectory) — for the
  final-embedding objectives (CoLES, NSP/SOP), the per-step ones
  (CPC, RTD) *and* supervised fine-tuning (``FineTuneConfig``,
  GRU+LSTM+transformer x bucketed/unsorted batches x fresh/pre-trained
  encoder, with and without a distinct ``encoder_learning_rate``);
- "auto" picks fused for GRU, LSTM *and* transformer encoders;
- ``predict_proba`` agrees across inference paths to < 1e-10;
- invalid engines and encoders outside the repro families fail loudly.
"""

import numpy as np
import pytest

from repro.augmentations import RandomSlices
from repro.baselines import (CPC, NSP, RTD, SOP, FineTuneConfig,
                             SequenceClassifier)
from repro.baselines.pretrain_common import PretrainConfig
from repro.core import ContrastiveTrainer, TrainConfig
from repro.data.batches import collate
from repro.data.sequences import SequenceDataset
from repro.data.synthetic import make_churn_dataset
from repro.encoders import build_encoder
from repro.losses import ContrastiveLoss
from repro.nn import no_grad
from repro.nn import functional as F
from repro.runtime import FusedTrainStep, resolve_engine


def _dataset(seed=0):
    return make_churn_dataset(num_clients=12, mean_length=25, min_length=10,
                              max_length=50, seed=seed)


def _trainer(dataset, engine, cell="gru", num_epochs=2):
    encoder = build_encoder(dataset.schema, 12, cell,
                            rng=np.random.default_rng(5))
    config = TrainConfig(num_epochs=num_epochs, batch_size=6,
                         learning_rate=0.01, seed=3, engine=engine)
    return ContrastiveTrainer(encoder, ContrastiveLoss(),
                              RandomSlices(5, 20, 3), config)


@pytest.mark.parametrize("cell", ["gru", "transformer"])
def test_engines_byte_identical_after_zero_steps(cell):
    """Selecting an engine is free: no weight is touched before step 1."""
    dataset = _dataset()
    tensor = _trainer(dataset, "tensor", cell=cell)
    fused = _trainer(dataset, "fused", cell=cell)
    tensor_state = tensor.encoder.state_dict()
    fused_state = fused.encoder.state_dict()
    assert tensor_state.keys() == fused_state.keys()
    for name, value in tensor_state.items():
        assert value.tobytes() == fused_state[name].tobytes(), name


@pytest.mark.parametrize("cell", ["gru", "lstm", "transformer"])
def test_engines_equivalent_after_training(cell):
    """N small steps on either engine land on the same weights (< 1e-8)."""
    dataset = _dataset()
    tensor = _trainer(dataset, "tensor", cell=cell)
    fused = _trainer(dataset, "fused", cell=cell)
    tensor.fit(dataset)
    fused.fit(dataset)

    assert len(tensor.history) == len(fused.history)
    for ref, got in zip(tensor.history, fused.history):
        assert got.num_batches == ref.num_batches
        assert got.mean_loss == pytest.approx(ref.mean_loss, abs=1e-8)

    fused_state = fused.encoder.state_dict()
    for name, value in tensor.encoder.state_dict().items():
        np.testing.assert_allclose(fused_state[name], value, atol=1e-8,
                                   rtol=1e-8, err_msg=name)


def test_fused_trained_weights_serve_through_runtime():
    """The train-vs-serve handoff: fused-trained weights serve unchanged."""
    dataset = _dataset(seed=4)
    trainer = _trainer(dataset, "fused", num_epochs=1)
    trainer.fit(dataset)
    runtime = trainer.encoder.fused_runtime(precision="float64")
    served = runtime.embed_dataset(dataset)
    reference = np.stack([
        trainer.encoder.embed(_collate_one(seq, dataset.schema)).data[0]
        for seq in dataset.sequences
    ])
    np.testing.assert_allclose(served, reference, atol=1e-10)


def _collate_one(seq, schema):
    from repro.data.batches import collate

    return collate([seq], schema)


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        TrainConfig(engine="cuda")
    with pytest.raises(ValueError):
        PretrainConfig(engine="cuda")


def _per_step_task(task_cls, schema, cell, seed=1):
    if task_cls is CPC:
        return CPC(schema, hidden_size=10, num_horizons=2, cell=cell,
                   seed=seed)
    return RTD(schema, hidden_size=10, cell=cell, seed=seed)


@pytest.mark.parametrize("task_cls", [CPC, RTD])
def test_per_step_baselines_byte_identical_after_zero_steps(task_cls):
    """Selecting an engine must not touch CPC/RTD weights before step 1.

    Fitting on an empty dataset runs the full engine setup (including
    the fused-step construction) but performs zero optimisation steps.
    """
    dataset = _dataset()
    empty = SequenceDataset([], dataset.schema)
    states = []
    for engine in ("tensor", "fused"):
        task = _per_step_task(task_cls, dataset.schema, "gru")
        task.fit(empty, PretrainConfig(num_epochs=1, engine=engine))
        states.append(task.encoder.state_dict())
    tensor_state, fused_state = states
    assert tensor_state.keys() == fused_state.keys()
    for name, value in tensor_state.items():
        assert value.tobytes() == fused_state[name].tobytes(), name


@pytest.mark.parametrize("task_cls", [CPC, RTD])
@pytest.mark.parametrize("cell", ["gru", "lstm"])
def test_per_step_baselines_engines_equivalent(task_cls, cell):
    """CPC/RTD under engine="fused" track the tensor engine to < 1e-8.

    The per-step objectives run their loss on leaf tensors over the
    fused per-step states (and, for CPC, event representations); the
    same gradients must reach every parameter, so N optimisation steps
    land on the same weights on either engine.
    """
    dataset = _dataset(seed=8)

    def fit(engine):
        task = _per_step_task(task_cls, dataset.schema, cell)
        task.fit(dataset, PretrainConfig(num_epochs=2, batch_size=6,
                                         learning_rate=0.01, seed=5,
                                         engine=engine))
        return task

    tensor_task = fit("tensor")
    fused_task = fit("fused")
    assert tensor_task.engine == "tensor"
    assert fused_task.engine == "fused"
    np.testing.assert_allclose(fused_task.history, tensor_task.history,
                               atol=1e-8)
    fused_state = fused_task.encoder.state_dict()
    for name, value in tensor_task.encoder.state_dict().items():
        np.testing.assert_allclose(fused_state[name], value, atol=1e-8,
                                   rtol=1e-8, err_msg=name)


def test_auto_engine_resolution():
    """"auto" -> fused for every repro encoder, transformers included."""
    dataset = _dataset()
    rnn = build_encoder(dataset.schema, 8, "gru",
                        rng=np.random.default_rng(0))
    transformer = build_encoder(dataset.schema, 8, "transformer",
                                rng=np.random.default_rng(0))
    assert resolve_engine("auto", rnn) == "fused"
    assert resolve_engine("auto", transformer) == "fused"
    # Explicit pins pass through for any encoder.
    assert resolve_engine("tensor", rnn) == "tensor"
    assert resolve_engine("tensor", transformer) == "tensor"
    assert resolve_engine("fused", transformer) == "fused"


def test_trainer_defaults_to_fused_for_recurrent_encoders():
    """TrainConfig() now runs GRU/LSTM through the fused engine..."""
    dataset = _dataset()
    encoder = build_encoder(dataset.schema, 8, "gru",
                            rng=np.random.default_rng(0))
    trainer = ContrastiveTrainer(encoder, ContrastiveLoss(),
                                 RandomSlices(5, 20, 3))
    assert trainer.config.engine == "auto"
    assert trainer.engine == "fused"
    assert trainer._fused_step is not None


def test_trainer_defaults_to_fused_for_transformers():
    """...and transformers run the fused attention engine by default."""
    dataset = _dataset()
    encoder = build_encoder(dataset.schema, 8, "transformer",
                            rng=np.random.default_rng(0))
    trainer = ContrastiveTrainer(encoder, ContrastiveLoss(),
                                 RandomSlices(5, 20, 3))
    assert trainer.engine == "fused"
    assert trainer._fused_step is not None
    assert not trainer._fused_step.is_recurrent


@pytest.mark.parametrize("task_cls", [CPC, RTD, NSP, SOP])
def test_baselines_default_to_fused_for_recurrent_encoders(task_cls):
    """PretrainConfig() resolves to fused for all four RNN baselines."""
    dataset = _dataset()
    if task_cls in (CPC, RTD):
        task = _per_step_task(task_cls, dataset.schema, "gru")
    else:
        encoder = build_encoder(dataset.schema, 8, "gru",
                                rng=np.random.default_rng(0))
        task = task_cls(encoder, dataset.schema, seed=0)
    task.fit(dataset, PretrainConfig(num_epochs=1, batch_size=6))
    assert task.engine == "fused"


def test_pair_baseline_defaults_to_fused_for_transformers():
    """NSP over a transformer resolves "auto" to the fused engine."""
    dataset = _dataset()
    encoder = build_encoder(dataset.schema, 8, "transformer",
                            rng=np.random.default_rng(0))
    task = NSP(encoder, dataset.schema, seed=0)
    task.fit(dataset, PretrainConfig(num_epochs=1, batch_size=6))
    assert task.engine == "fused"


class _CustomEncoder:
    """A stand-in outside the repro encoder families."""

    output_dim = 8


def test_fused_engine_rejects_custom_encoders():
    """The fused engine covers repro encoders only, and says so at build."""
    with pytest.raises(TypeError):
        ContrastiveTrainer(_CustomEncoder(), ContrastiveLoss(),
                           RandomSlices(5, 20, 3),
                           TrainConfig(engine="fused"))


@pytest.mark.parametrize("task_cls", [NSP, SOP])
def test_pair_baselines_engines_equivalent(task_cls):
    """NSP/SOP under engine="fused" track the tensor engine to < 1e-8."""
    dataset = _dataset(seed=8)

    def fit(engine):
        encoder = build_encoder(dataset.schema, 10, "gru",
                                rng=np.random.default_rng(2))
        task = task_cls(encoder, dataset.schema, seed=1)
        task.fit(dataset, PretrainConfig(num_epochs=2, batch_size=6,
                                         learning_rate=0.01, seed=5,
                                         engine=engine))
        return task

    tensor_task = fit("tensor")
    fused_task = fit("fused")
    np.testing.assert_allclose(fused_task.history, tensor_task.history,
                               atol=1e-8)
    fused_state = fused_task.encoder.state_dict()
    for name, value in tensor_task.encoder.state_dict().items():
        np.testing.assert_allclose(fused_state[name], value, atol=1e-8,
                                   rtol=1e-8, err_msg=name)
    fused_head = dict(fused_task.head.named_parameters())
    for name, param in tensor_task.head.named_parameters():
        np.testing.assert_allclose(fused_head[name].data, param.data,
                                   atol=1e-8, rtol=1e-8, err_msg=name)


# ----------------------------------------------------------------------
# supervised fine-tuning: the last recurrent training loop on the
# fused engine (classification head, per-group learning rates)
# ----------------------------------------------------------------------

def _labeled_dataset(seed=0):
    return make_churn_dataset(num_clients=14, mean_length=25, min_length=10,
                              max_length=50, labeled_fraction=1.0, seed=seed)


def _finetune(dataset, engine, cell="gru", pretrained=False,
              bucket_window=None, encoder_lr=None, num_epochs=2):
    """Build (optionally pre-train) an encoder and fine-tune it."""
    encoder = build_encoder(dataset.schema, 12, cell,
                            rng=np.random.default_rng(5))
    if pretrained:
        # An identical, deterministic pre-training phase on both sides,
        # so only the fine-tuning engine differs between the runs.
        ContrastiveTrainer(encoder, ContrastiveLoss(), RandomSlices(5, 20, 3),
                           TrainConfig(num_epochs=1, batch_size=7,
                                       seed=11)).fit(dataset)
    classifier = SequenceClassifier(encoder, num_classes=2, seed=2)
    classifier.fit(dataset, FineTuneConfig(
        num_epochs=num_epochs, batch_size=6, learning_rate=0.01,
        encoder_learning_rate=encoder_lr, bucket_window=bucket_window,
        seed=3, engine=engine))
    return classifier


def _assert_classifiers_close(fused, tensor, atol=1e-8):
    np.testing.assert_allclose(fused.history, tensor.history, atol=atol)
    fused_state = fused.encoder.state_dict()
    for name, value in tensor.encoder.state_dict().items():
        np.testing.assert_allclose(fused_state[name], value, atol=atol,
                                   rtol=atol, err_msg=name)
    fused_head = dict(fused.head.named_parameters())
    for name, param in tensor.head.named_parameters():
        np.testing.assert_allclose(fused_head[name].data, param.data,
                                   atol=atol, rtol=atol, err_msg=name)


def test_finetune_engines_byte_identical_after_zero_steps():
    """Selecting a fine-tuning engine must not touch any weight.

    The fused path's whole setup — engine resolution plus
    ``FusedTrainStep`` construction, everything ``fit()`` does before
    optimisation step 1 — runs without perturbing encoder or head.
    """
    dataset = _labeled_dataset()
    tensor_clf = SequenceClassifier(
        build_encoder(dataset.schema, 12, "gru",
                      rng=np.random.default_rng(5)), num_classes=2, seed=2)
    fused_clf = SequenceClassifier(
        build_encoder(dataset.schema, 12, "gru",
                      rng=np.random.default_rng(5)), num_classes=2, seed=2)
    assert resolve_engine("auto", fused_clf.encoder) == "fused"
    FusedTrainStep(fused_clf.encoder)
    tensor_state = tensor_clf.encoder.state_dict()
    fused_state = fused_clf.encoder.state_dict()
    assert tensor_state.keys() == fused_state.keys()
    for name, value in tensor_state.items():
        assert value.tobytes() == fused_state[name].tobytes(), name
    fused_head = dict(fused_clf.head.named_parameters())
    for name, param in tensor_clf.head.named_parameters():
        assert param.data.tobytes() == fused_head[name].data.tobytes(), name


@pytest.mark.parametrize("cell", ["gru", "lstm", "transformer"])
@pytest.mark.parametrize("bucket_window", [None, 2],
                         ids=["unsorted", "bucketed"])
@pytest.mark.parametrize("pretrained", [False, True],
                         ids=["fresh", "pretrained"])
def test_finetune_engines_equivalent_after_training(cell, bucket_window,
                                                    pretrained):
    """Fine-tuning lands on the same weights on either engine (< 1e-8).

    The property grid: GRU + LSTM + transformer, length-bucketed and
    fully random batch plans, fresh and CoLES-pre-trained encoders.
    History (mean cross-entropy per epoch), encoder state and head must
    all agree.
    """
    dataset = _labeled_dataset()
    tensor_clf = _finetune(dataset, "tensor", cell=cell,
                           pretrained=pretrained,
                           bucket_window=bucket_window)
    fused_clf = _finetune(dataset, "fused", cell=cell, pretrained=pretrained,
                          bucket_window=bucket_window)
    assert tensor_clf.engine == "tensor"
    assert fused_clf.engine == "fused"
    _assert_classifiers_close(fused_clf, tensor_clf)


@pytest.mark.parametrize("cell", ["gru", "lstm", "transformer"])
def test_finetune_distinct_encoder_lr_equivalent(cell):
    """Per-group learning rates track each other across engines.

    ``encoder_learning_rate != learning_rate`` must steer the *same*
    per-group Adam trajectory on the fused path as on the tensor path.
    """
    dataset = _labeled_dataset(seed=6)
    tensor_clf = _finetune(dataset, "tensor", cell=cell, encoder_lr=0.05)
    fused_clf = _finetune(dataset, "fused", cell=cell, encoder_lr=0.05)
    _assert_classifiers_close(fused_clf, tensor_clf)


@pytest.mark.parametrize("cell", ["gru", "transformer"])
def test_predict_proba_paths_agree(cell):
    """Fused-runtime ``predict_proba`` == the Tensor loop, < 1e-10."""
    dataset = _labeled_dataset(seed=4)
    classifier = _finetune(dataset, "fused", cell=cell, num_epochs=1)
    probs = classifier.predict_proba(dataset, batch_size=5)
    reference = np.zeros_like(probs)
    classifier.encoder.eval()
    with no_grad():
        for start in range(0, len(dataset), 5):
            chunk = dataset.sequences[start:start + 5]
            batch = collate(chunk, dataset.schema)
            logits = classifier.head(classifier.encoder.embed(batch))
            reference[start:start + len(chunk)] = F.softmax(
                logits, axis=-1).data
    np.testing.assert_allclose(probs, reference, atol=1e-10)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-12)


def test_finetune_auto_engine_resolution():
    """Fine-tuning "auto" -> fused for recurrent *and* transformer."""
    dataset = _labeled_dataset()
    classifier = _finetune(dataset, "auto", num_epochs=1)
    assert classifier.engine == "fused"
    transformer = build_encoder(dataset.schema, 8, "transformer",
                                rng=np.random.default_rng(0))
    trx_clf = SequenceClassifier(transformer, num_classes=2, seed=2)
    trx_clf.fit(dataset, FineTuneConfig(num_epochs=1, batch_size=6, seed=3))
    assert trx_clf.engine == "fused"


def test_finetune_fused_engine_rejects_custom_encoder():
    """Pinning engine="fused" on a non-repro encoder fails loudly at fit()."""
    dataset = _labeled_dataset()
    classifier = SequenceClassifier(_CustomEncoder(), num_classes=2, seed=2)
    with pytest.raises(TypeError):
        classifier.fit(dataset, FineTuneConfig(num_epochs=1, engine="fused"))


def test_finetune_config_validation():
    """FineTuneConfig validates like TrainConfig/PretrainConfig."""
    with pytest.raises(ValueError):
        FineTuneConfig(engine="cuda")
    with pytest.raises(ValueError):
        FineTuneConfig(num_epochs=0)
    with pytest.raises(ValueError):
        FineTuneConfig(batch_size=0)
    with pytest.raises(ValueError):
        FineTuneConfig(learning_rate=0.0)
    with pytest.raises(ValueError):
        FineTuneConfig(encoder_learning_rate=-1.0)
    config = FineTuneConfig(learning_rate=0.005)
    assert config.encoder_learning_rate == 0.005  # defaults to learning_rate
