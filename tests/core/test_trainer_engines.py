"""Engine selection in the training loops: fused vs tensor.

``TrainConfig(engine=...)`` (and ``PretrainConfig(engine=...)`` for the
pair baselines) switches the encoder's forward+backward between the
autograd graph and the fused BPTT runtime.  The contract tested here:

- after 0 steps the engines are indistinguishable — byte-identical
  checkpoints (selecting an engine must not touch the weights);
- after N real optimisation steps on synthetic data the trained weights
  agree to < 1e-8 (same gradients -> same Adam trajectory);
- invalid engines and unsupported encoders fail loudly.
"""

import numpy as np
import pytest

from repro.augmentations import RandomSlices
from repro.baselines import NSP, SOP
from repro.baselines.pretrain_common import PretrainConfig
from repro.core import ContrastiveTrainer, TrainConfig
from repro.data.synthetic import make_churn_dataset
from repro.encoders import build_encoder
from repro.losses import ContrastiveLoss


def _dataset(seed=0):
    return make_churn_dataset(num_clients=12, mean_length=25, min_length=10,
                              max_length=50, seed=seed)


def _trainer(dataset, engine, cell="gru", num_epochs=2):
    encoder = build_encoder(dataset.schema, 12, cell,
                            rng=np.random.default_rng(5))
    config = TrainConfig(num_epochs=num_epochs, batch_size=6,
                         learning_rate=0.01, seed=3, engine=engine)
    return ContrastiveTrainer(encoder, ContrastiveLoss(),
                              RandomSlices(5, 20, 3), config)


def test_engines_byte_identical_after_zero_steps():
    """Selecting an engine is free: no weight is touched before step 1."""
    dataset = _dataset()
    tensor = _trainer(dataset, "tensor")
    fused = _trainer(dataset, "fused")
    tensor_state = tensor.encoder.state_dict()
    fused_state = fused.encoder.state_dict()
    assert tensor_state.keys() == fused_state.keys()
    for name, value in tensor_state.items():
        assert value.tobytes() == fused_state[name].tobytes(), name


@pytest.mark.parametrize("cell", ["gru", "lstm"])
def test_engines_equivalent_after_training(cell):
    """N small steps on either engine land on the same weights (< 1e-8)."""
    dataset = _dataset()
    tensor = _trainer(dataset, "tensor", cell=cell)
    fused = _trainer(dataset, "fused", cell=cell)
    tensor.fit(dataset)
    fused.fit(dataset)

    assert len(tensor.history) == len(fused.history)
    for ref, got in zip(tensor.history, fused.history):
        assert got.num_batches == ref.num_batches
        assert got.mean_loss == pytest.approx(ref.mean_loss, abs=1e-8)

    fused_state = fused.encoder.state_dict()
    for name, value in tensor.encoder.state_dict().items():
        np.testing.assert_allclose(fused_state[name], value, atol=1e-8,
                                   rtol=1e-8, err_msg=name)


def test_fused_trained_weights_serve_through_runtime():
    """The train-vs-serve handoff: fused-trained weights serve unchanged."""
    dataset = _dataset(seed=4)
    trainer = _trainer(dataset, "fused", num_epochs=1)
    trainer.fit(dataset)
    runtime = trainer.encoder.fused_runtime()
    served = runtime.embed_dataset(dataset)
    reference = np.stack([
        trainer.encoder.embed(_collate_one(seq, dataset.schema)).data[0]
        for seq in dataset.sequences
    ])
    np.testing.assert_allclose(served, reference, atol=1e-10)


def _collate_one(seq, schema):
    from repro.data.batches import collate

    return collate([seq], schema)


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        TrainConfig(engine="cuda")
    with pytest.raises(ValueError):
        PretrainConfig(engine="cuda")


def test_per_step_baselines_reject_fused_engine():
    """CPC/RTD cannot honour engine="fused" and must say so, not no-op."""
    from repro.baselines import CPC, RTD

    dataset = _dataset()
    for task in (CPC(dataset.schema, hidden_size=8, seed=0),
                 RTD(dataset.schema, hidden_size=8, seed=0)):
        with pytest.raises(ValueError, match="fused"):
            task.fit(dataset, PretrainConfig(num_epochs=1, engine="fused"))


def test_fused_engine_rejects_transformer():
    """The fused engine is recurrence-specific and says so at build time."""
    dataset = _dataset()
    encoder = build_encoder(dataset.schema, 8, "transformer",
                            rng=np.random.default_rng(0))
    with pytest.raises(TypeError):
        ContrastiveTrainer(encoder, ContrastiveLoss(), RandomSlices(5, 20, 3),
                           TrainConfig(engine="fused"))


@pytest.mark.parametrize("task_cls", [NSP, SOP])
def test_pair_baselines_engines_equivalent(task_cls):
    """NSP/SOP under engine="fused" track the tensor engine to < 1e-8."""
    dataset = _dataset(seed=8)

    def fit(engine):
        encoder = build_encoder(dataset.schema, 10, "gru",
                                rng=np.random.default_rng(2))
        task = task_cls(encoder, dataset.schema, seed=1)
        task.fit(dataset, PretrainConfig(num_epochs=2, batch_size=6,
                                         learning_rate=0.01, seed=5,
                                         engine=engine))
        return task

    tensor_task = fit("tensor")
    fused_task = fit("fused")
    np.testing.assert_allclose(fused_task.history, tensor_task.history,
                               atol=1e-8)
    fused_state = fused_task.encoder.state_dict()
    for name, value in tensor_task.encoder.state_dict().items():
        np.testing.assert_allclose(fused_state[name], value, atol=1e-8,
                                   rtol=1e-8, err_msg=name)
    fused_head = dict(fused_task.head.named_parameters())
    for name, param in tensor_task.head.named_parameters():
        np.testing.assert_allclose(fused_head[name].data, param.data,
                                   atol=1e-8, rtol=1e-8, err_msg=name)
