"""End-to-end tests of the CoLES facade: the paper's core claims at toy
scale — embeddings separate latent classes and support downstream models."""

import numpy as np
import pytest

from repro.core import CoLES
from repro.data.synthetic import make_age_dataset


@pytest.fixture(scope="module")
def churn():
    return make_age_dataset(num_clients=60, mean_length=60, min_length=30,
                            max_length=90, labeled_fraction=1.0, seed=1)


@pytest.fixture(scope="module")
def fitted_model(churn):
    model = CoLES(churn.schema, hidden_size=24, min_length=5, max_length=60,
                  num_samples=5, seed=0)
    model.fit(churn, num_epochs=8, batch_size=12, learning_rate=0.01)
    return model


class TestConstruction:
    def test_registry_names_resolve(self, churn):
        for loss in ("contrastive", "binomial_deviance", "triplet",
                     "histogram", "margin"):
            CoLES(churn.schema, hidden_size=8, loss=loss)
        for sampler in ("random", "hard", "distance_weighted"):
            CoLES(churn.schema, hidden_size=8, sampler=sampler)
        for strategy in ("random_slices", "random_samples", "random_disjoint"):
            CoLES(churn.schema, hidden_size=8, strategy=strategy)
        for enc in ("gru", "lstm", "transformer"):
            CoLES(churn.schema, hidden_size=8, encoder_type=enc)

    def test_unknown_names_raise(self, churn):
        with pytest.raises(KeyError):
            CoLES(churn.schema, loss="nce")
        with pytest.raises(KeyError):
            CoLES(churn.schema, sampler="semi-hard")
        with pytest.raises(KeyError):
            CoLES(churn.schema, strategy="shuffle")


class TestTrainingAndEmbedding:
    def test_loss_decreases(self, fitted_model):
        history = fitted_model.history
        assert history[-1].mean_loss < history[0].mean_loss

    def test_embeddings_unit_norm(self, fitted_model, churn):
        emb = fitted_model.embed(churn)
        assert emb.shape == (len(churn), 24)
        # The serving default is the float32 precision policy, so norms
        # are unit to float32 rounding.
        np.testing.assert_allclose(np.linalg.norm(emb, axis=1),
                                   np.ones(len(churn)), rtol=1e-6)

    def test_same_class_closer_than_cross_class(self, fitted_model, churn):
        """The contrastive objective's intended geometry (Section 3.1):
        embeddings of same-process sequences are closer."""
        emb = fitted_model.embed(churn)
        labels = churn.label_array()
        sims = emb @ emb.T
        same = sims[labels[:, None] == labels[None, :]]
        diff = sims[labels[:, None] != labels[None, :]]
        # Exclude the diagonal from the same-class statistics.
        same_mean = (same.sum() - len(emb)) / (len(same) - len(emb))
        assert same_mean > diff.mean() + 0.02

    def test_embedding_is_deterministic_after_fit(self, fitted_model, churn):
        a = fitted_model.embed(churn)
        b = fitted_model.embed(churn)
        np.testing.assert_allclose(a, b)

    def test_save_load_roundtrip(self, fitted_model, churn, tmp_path):
        path = tmp_path / "coles.npz"
        fitted_model.save(path)
        clone = CoLES(churn.schema, hidden_size=24, seed=0)
        clone.load(path)
        np.testing.assert_allclose(clone.embed(churn), fitted_model.embed(churn))

    def test_fit_on_unlabeled_data(self):
        """Self-supervision must not require labels."""
        ds = make_age_dataset(num_clients=30, labeled_fraction=0.0, seed=2)
        model = CoLES(ds.schema, hidden_size=8, min_length=5, max_length=40)
        model.fit(ds, num_epochs=1, batch_size=8)
        assert model.embed(ds).shape == (30, 8)

    def test_fine_tune_convenience(self, fitted_model, churn):
        """model.fine_tune attaches a head and improves over chance."""
        classifier = fitted_model.fine_tune(churn, num_epochs=6,
                                            batch_size=16,
                                            learning_rate=0.01)
        labels = churn.label_array()
        accuracy = (classifier.predict(churn) == labels).mean()
        assert accuracy > 0.4  # 4 classes, chance 0.25
        # The returned classifier shares the CoLES encoder.
        assert classifier.encoder is fitted_model.encoder
