"""Tests for EventSchema, EventSequence and SequenceDataset."""

import numpy as np
import pytest

from repro.data import EventSchema, EventSequence, SequenceDataset


def make_sequence(seq_id=0, length=5, label=None):
    return EventSequence(
        seq_id=seq_id,
        fields={
            "event_time": np.arange(length, dtype=float),
            "mcc": np.arange(length) % 3 + 1,
            "amount": np.ones(length) * 2.0,
        },
        label=label,
    )


SCHEMA = EventSchema(categorical={"mcc": 4}, numerical=("amount",))


class TestSchema:
    def test_field_names_order(self):
        assert SCHEMA.field_names == ("event_time", "mcc", "amount")

    def test_overlapping_fields_rejected(self):
        with pytest.raises(ValueError):
            EventSchema(categorical={"a": 3}, numerical=("a",))

    def test_time_field_collision_rejected(self):
        with pytest.raises(ValueError):
            EventSchema(categorical={"event_time": 3})

    def test_cardinality_must_cover_padding(self):
        with pytest.raises(ValueError):
            EventSchema(categorical={"a": 1})

    def test_validate_missing_field(self):
        seq = make_sequence()
        del seq.fields["amount"]
        with pytest.raises(KeyError):
            SCHEMA.validate_sequence(seq.fields, len(seq))

    def test_validate_out_of_range_code(self):
        seq = make_sequence()
        seq.fields["mcc"] = np.zeros(5, dtype=int)  # 0 is reserved
        with pytest.raises(ValueError):
            SCHEMA.validate_sequence(seq.fields, 5)

    def test_validate_length_mismatch(self):
        seq = make_sequence()
        with pytest.raises(ValueError):
            SCHEMA.validate_sequence(seq.fields, 7)


class TestEventSequence:
    def test_len(self):
        assert len(make_sequence(length=7)) == 7

    def test_mismatched_field_lengths_rejected(self):
        with pytest.raises(ValueError):
            EventSequence(0, {"a": np.ones(3), "b": np.ones(4)})

    def test_slice_keeps_identity(self):
        seq = make_sequence(seq_id=42, label=1)
        part = seq.slice(1, 4)
        assert part.seq_id == 42
        assert part.label == 1
        assert len(part) == 3
        np.testing.assert_allclose(part.fields["event_time"], [1, 2, 3])

    def test_slice_bounds_checked(self):
        seq = make_sequence(length=5)
        with pytest.raises(IndexError):
            seq.slice(2, 9)
        with pytest.raises(IndexError):
            seq.slice(-1, 3)

    def test_take_non_contiguous(self):
        seq = make_sequence(length=6)
        part = seq.take([0, 2, 5])
        np.testing.assert_allclose(part.fields["event_time"], [0, 2, 5])

    def test_is_labeled(self):
        assert make_sequence(label=0).is_labeled
        assert not make_sequence().is_labeled


class TestSequenceDataset:
    def test_labeled_unlabeled_partition(self):
        seqs = [make_sequence(i, label=(i if i % 2 else None)) for i in range(10)]
        ds = SequenceDataset(seqs, SCHEMA)
        assert len(ds.labeled()) + len(ds.unlabeled()) == 10
        assert all(s.is_labeled for s in ds.labeled())
        assert not any(s.is_labeled for s in ds.unlabeled())

    def test_label_array_raises_on_unlabeled(self):
        ds = SequenceDataset([make_sequence(0)], SCHEMA)
        with pytest.raises(ValueError):
            ds.label_array()

    def test_index_with_array_returns_dataset(self):
        seqs = [make_sequence(i) for i in range(5)]
        ds = SequenceDataset(seqs, SCHEMA)
        sub = ds[np.array([0, 3])]
        assert isinstance(sub, SequenceDataset)
        assert len(sub) == 2
        assert sub[1].seq_id == 3

    def test_validate_passes_on_good_data(self):
        ds = SequenceDataset([make_sequence(i) for i in range(3)], SCHEMA)
        assert ds.validate() is ds

    def test_summary_mentions_counts(self):
        ds = SequenceDataset([make_sequence(0, label=1)], SCHEMA, name="toy")
        text = ds.summary()
        assert "toy" in text and "1 sequences" in text and "1 labeled" in text
