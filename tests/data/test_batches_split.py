"""Tests for padded-batch collation and dataset splitting."""

import numpy as np
import pytest

from repro.data import (
    EventSchema,
    EventSequence,
    SequenceDataset,
    collate,
    iterate_batches,
    stratified_kfold,
    subsample_labels,
    train_test_split,
)

SCHEMA = EventSchema(categorical={"mcc": 5}, numerical=("amount",))


def seq(seq_id, length, label=None):
    return EventSequence(
        seq_id,
        {
            "event_time": np.arange(length, dtype=float),
            "mcc": np.full(length, (seq_id % 4) + 1),
            "amount": np.full(length, float(seq_id)),
        },
        label=label,
    )


class TestCollate:
    def test_padding_shapes_and_values(self):
        batch = collate([seq(0, 3), seq(1, 5)], SCHEMA)
        assert batch.fields["mcc"].shape == (2, 5)
        assert batch.fields["mcc"][0, 3] == 0  # categorical padding code
        assert batch.fields["amount"][0, 4] == 0.0
        np.testing.assert_array_equal(batch.lengths, [3, 5])

    def test_mask(self):
        batch = collate([seq(0, 2), seq(1, 4)], SCHEMA)
        expected = np.array(
            [[True, True, False, False], [True, True, True, True]]
        )
        np.testing.assert_array_equal(batch.mask, expected)

    def test_seq_ids_and_labels(self):
        batch = collate([seq(7, 2, label=1), seq(9, 2, label=0)], SCHEMA)
        np.testing.assert_array_equal(batch.seq_ids, [7, 9])
        np.testing.assert_array_equal(batch.label_array(), [1, 0])

    def test_label_array_raises_when_unlabeled(self):
        batch = collate([seq(0, 2)], SCHEMA)
        with pytest.raises(ValueError):
            batch.label_array()

    def test_empty_list_raises(self):
        with pytest.raises(ValueError):
            collate([], SCHEMA)

    def test_empty_sequence_raises(self):
        with pytest.raises(ValueError):
            collate([seq(0, 0)], SCHEMA)

    def test_dtype_preserved(self):
        batch = collate([seq(0, 2)], SCHEMA)
        assert batch.fields["mcc"].dtype == np.int64
        assert batch.fields["amount"].dtype == np.float64


class TestIterateBatches:
    def test_covers_all_sequences(self):
        dataset = [seq(i, 3) for i in range(10)]
        seen = []
        for batch in iterate_batches(dataset, SCHEMA, batch_size=3,
                                     rng=np.random.default_rng(0)):
            seen.extend(batch.seq_ids.tolist())
        assert sorted(seen) == list(range(10))

    def test_drop_last(self):
        dataset = [seq(i, 3) for i in range(10)]
        batches = list(
            iterate_batches(dataset, SCHEMA, 4, shuffle=False, drop_last=True)
        )
        assert [b.batch_size for b in batches] == [4, 4]

    def test_no_shuffle_preserves_order(self):
        dataset = [seq(i, 2) for i in range(6)]
        batches = list(iterate_batches(dataset, SCHEMA, 2, shuffle=False))
        assert batches[0].seq_ids.tolist() == [0, 1]


class TestSplits:
    def make_dataset(self, n=100, labeled_every=2):
        seqs = [
            seq(i, 4, label=(i % 3 if i % labeled_every == 0 else None))
            for i in range(n)
        ]
        return SequenceDataset(seqs, SCHEMA, name="toy")

    def test_test_set_only_labeled(self):
        train, test = train_test_split(self.make_dataset(), 0.1, seed=1)
        assert all(s.is_labeled for s in test)

    def test_unlabeled_all_in_train(self):
        ds = self.make_dataset()
        train, test = train_test_split(ds, 0.1, seed=1)
        assert len(train.unlabeled()) == len(ds.unlabeled())

    def test_split_is_partition(self):
        ds = self.make_dataset()
        train, test = train_test_split(ds, 0.2, seed=2)
        train_ids = {s.seq_id for s in train}
        test_ids = {s.seq_id for s in test}
        assert not train_ids & test_ids
        assert len(train_ids) + len(test_ids) == len(ds)

    def test_fraction_respected(self):
        ds = self.make_dataset(200, labeled_every=1)
        _, test = train_test_split(ds, 0.1, seed=0)
        assert len(test) == 20

    def test_deterministic_given_seed(self):
        ds = self.make_dataset()
        _, t1 = train_test_split(ds, 0.1, seed=5)
        _, t2 = train_test_split(ds, 0.1, seed=5)
        assert [s.seq_id for s in t1] == [s.seq_id for s in t2]

    def test_stratified_kfold_partition(self):
        labels = np.array([0] * 20 + [1] * 10)
        folds = list(stratified_kfold(labels, n_folds=5, seed=0))
        assert len(folds) == 5
        all_valid = np.concatenate([valid for _, valid in folds])
        assert sorted(all_valid.tolist()) == list(range(30))
        for train_idx, valid_idx in folds:
            assert not set(train_idx) & set(valid_idx)
            # Each fold keeps both classes in validation.
            assert set(labels[valid_idx]) == {0, 1}

    def test_stratified_kfold_balance(self):
        labels = np.array([0] * 50 + [1] * 25)
        for _, valid in stratified_kfold(labels, 5, seed=0):
            ratio = (labels[valid] == 1).mean()
            assert 0.2 < ratio < 0.5

    def test_kfold_too_few_samples(self):
        with pytest.raises(ValueError):
            list(stratified_kfold(np.array([0, 1]), n_folds=5))

    def test_subsample_labels_count(self):
        ds = self.make_dataset(100, labeled_every=1)
        sub = subsample_labels(ds, 30, seed=0)
        assert len(sub.labeled()) == 30
        assert len(sub) == 100  # sequences all retained for pre-training

    def test_subsample_labels_too_many(self):
        ds = self.make_dataset(10, labeled_every=1)
        with pytest.raises(ValueError):
            subsample_labels(ds, 11)
