"""The length-bucketed batch planner: coverage, ordering, padding wins."""

import numpy as np
import pytest

from repro.augmentations import RandomSlices
from repro.baselines import PretrainConfig, pretrain_batches
from repro.core.batching import coles_batches
from repro.data import iterate_batches
from repro.data.bucketing import (
    bucketed_order,
    iterate_bucketed_batches,
    padded_step_fraction,
    plan_batches,
)
from repro.data.synthetic import make_churn_dataset


@pytest.fixture(scope="module")
def skewed_lengths():
    rng = np.random.default_rng(0)
    return np.concatenate([
        rng.integers(5, 15, size=60),
        rng.integers(50, 70, size=30),
        rng.integers(200, 400, size=10),
    ])


class TestPlan:
    def test_covers_every_index_once(self, skewed_lengths):
        for window in (None, 1, 4):
            batches = plan_batches(skewed_lengths, 16, shuffle=True,
                                   rng=np.random.default_rng(1),
                                   window_batches=window)
            flat = np.concatenate(batches)
            assert sorted(flat.tolist()) == list(range(len(skewed_lengths)))

    def test_global_sort_when_no_window(self, skewed_lengths):
        batches = plan_batches(skewed_lengths, 16)
        order = np.concatenate(batches)
        assert (np.diff(skewed_lengths[order]) <= 0).all()

    def test_windows_sorted_internally(self, skewed_lengths):
        window = 2
        batch_size = 8
        order = bucketed_order(skewed_lengths, batch_size,
                               rng=np.random.default_rng(2),
                               window_batches=window)
        span = window * batch_size
        for start in range(0, len(order), span):
            chunk = skewed_lengths[order[start:start + span]]
            assert (np.diff(chunk) <= 0).all()

    def test_drop_last(self, skewed_lengths):
        batches = plan_batches(skewed_lengths, 16, drop_last=True)
        assert all(len(chunk) == 16 for chunk in batches)

    def test_validation(self, skewed_lengths):
        with pytest.raises(ValueError):
            plan_batches(skewed_lengths, 0)
        with pytest.raises(ValueError):
            plan_batches(skewed_lengths, 8, window_batches=0)

    def test_bucketing_reduces_padding(self, skewed_lengths):
        rng = np.random.default_rng(3)
        shuffled = np.arange(len(skewed_lengths))
        rng.shuffle(shuffled)
        naive = [shuffled[start:start + 16]
                 for start in range(0, len(shuffled), 16)]
        bucketed = plan_batches(skewed_lengths, 16, shuffle=True,
                                rng=np.random.default_rng(3),
                                window_batches=2)
        global_sort = plan_batches(skewed_lengths, 16)
        waste_naive = padded_step_fraction(skewed_lengths, naive)
        waste_bucketed = padded_step_fraction(skewed_lengths, bucketed)
        waste_global = padded_step_fraction(skewed_lengths, global_sort)
        assert waste_bucketed < waste_naive
        assert waste_global <= waste_bucketed

    def test_padded_step_fraction_ignores_empty_chunks(self, skewed_lengths):
        """An empty chunk pads nothing: same answer as without it."""
        plan = [np.array([0, 1]), np.array([2, 3])]
        with_empty = plan[:1] + [np.array([], dtype=int)] + plan[1:]
        reference = padded_step_fraction(skewed_lengths, plan)
        assert padded_step_fraction(skewed_lengths, with_empty) == reference

    def test_padded_step_fraction_all_empty(self):
        """A plan of only empty chunks is zero waste, not a crash."""
        assert padded_step_fraction([], [np.array([], dtype=int)]) == 0.0
        assert padded_step_fraction([5, 3], []) == 0.0


class TestIterators:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_churn_dataset(num_clients=30, mean_length=40,
                                  min_length=5, max_length=120, seed=0)

    def test_iterate_bucketed_batches_covers_dataset(self, dataset):
        seen = []
        for batch in iterate_bucketed_batches(dataset.sequences,
                                              dataset.schema, 8,
                                              rng=np.random.default_rng(0)):
            assert batch.max_length == batch.lengths.max()
            seen.extend(batch.seq_ids.tolist())
        assert sorted(seen) == sorted(s.seq_id for s in dataset)

    def test_iterate_batches_delegates(self, dataset):
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        direct = [b.seq_ids.tolist() for b in iterate_bucketed_batches(
            dataset.sequences, dataset.schema, 8, rng=rng_a,
            window_batches=2)]
        via = [b.seq_ids.tolist() for b in iterate_batches(
            dataset.sequences, dataset.schema, 8, rng=rng_b,
            bucket_window=2)]
        assert direct == via

    def test_coles_batches_bucketed_keeps_pair_semantics(self, dataset):
        strategy = RandomSlices(5, 40, 3)
        rng = np.random.default_rng(0)
        entity_ids = set()
        for batch in coles_batches(dataset, strategy, 8, rng,
                                   bucket_window=2):
            ids, counts = np.unique(batch.seq_ids, return_counts=True)
            assert len(ids) >= 2            # negatives exist
            assert (counts >= 2).all()      # every entity has >= 2 views
            entity_ids.update(ids.tolist())
        assert len(entity_ids) == len(dataset)

    def test_pretrain_batches_respects_config(self, dataset):
        config = PretrainConfig(batch_size=8, bucket_window=2)
        rng = np.random.default_rng(0)
        seen = []
        for batch in pretrain_batches(dataset, config, rng):
            seen.extend(batch.seq_ids.tolist())
        assert sorted(seen) == sorted(s.seq_id for s in dataset)
