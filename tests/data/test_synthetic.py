"""Tests for the synthetic worlds: schema conformance, label structure and
the statistical properties the paper's method relies on."""

import numpy as np
import pytest

from repro.data.synthetic import (
    ClassPrototype,
    holding_pairs,
    lognormal_amounts,
    make_age_dataset,
    make_assessment_dataset,
    make_churn_dataset,
    make_legal_entities_dataset,
    make_retail_customers_dataset,
    make_retail_dataset,
    make_scoring_dataset,
    make_texts_dataset,
    markov_types,
    periodic_event_times,
    sample_type_mixture,
    with_label_channel,
)


class TestPrimitives:
    def test_prototype_validation(self):
        with pytest.raises(ValueError):
            ClassPrototype(type_affinity=(1.0, -1.0))
        with pytest.raises(ValueError):
            ClassPrototype(type_affinity=(1.0, 1.0), persistence=1.0)

    def test_mixture_is_distribution(self):
        proto = ClassPrototype(type_affinity=(3.0, 1.0, 1.0))
        mix = sample_type_mixture(proto, np.random.default_rng(0))
        assert mix.shape == (3,)
        np.testing.assert_allclose(mix.sum(), 1.0)
        assert (mix >= 0).all()

    def test_mixture_concentrates_on_affinity(self):
        proto = ClassPrototype(type_affinity=(50.0, 1.0, 1.0), concentration=100.0)
        rng = np.random.default_rng(0)
        mixes = np.array([sample_type_mixture(proto, rng) for _ in range(100)])
        assert mixes[:, 0].mean() > 0.8

    def test_markov_types_range_and_stationarity(self):
        rng = np.random.default_rng(1)
        mixture = np.array([0.7, 0.2, 0.1])
        types = markov_types(mixture, 0.5, 20000, rng)
        assert types.min() >= 1 and types.max() <= 3
        freq = np.bincount(types, minlength=4)[1:] / len(types)
        np.testing.assert_allclose(freq, mixture, atol=0.03)

    def test_markov_persistence_creates_bursts(self):
        rng = np.random.default_rng(2)
        mixture = np.full(10, 0.1)
        sticky = markov_types(mixture, 0.9, 5000, rng)
        loose = markov_types(mixture, 0.0, 5000, np.random.default_rng(2))
        repeat_sticky = (sticky[1:] == sticky[:-1]).mean()
        repeat_loose = (loose[1:] == loose[:-1]).mean()
        assert repeat_sticky > 0.8
        assert repeat_loose < 0.2

    def test_markov_length_validation(self):
        with pytest.raises(ValueError):
            markov_types(np.array([1.0]), 0.0, 0, np.random.default_rng(0))

    def test_event_times_increasing(self):
        times = periodic_event_times(500, 2.0, 0.3, np.random.default_rng(3))
        assert (np.diff(times) > 0).all()

    def test_event_times_rate(self):
        times = periodic_event_times(2000, 4.0, 0.0, np.random.default_rng(4))
        observed_rate = len(times) / (times[-1] - times[0])
        assert 3.0 < observed_rate < 5.0

    def test_weekend_bias_increases_weekend_rate(self):
        times = periodic_event_times(20000, 2.0, 2.0, np.random.default_rng(5))
        day_of_week = times % 7
        weekend_frac = (day_of_week >= 5).mean()
        # Without bias weekends carry 2/7 ~= 0.286 of events.
        assert weekend_frac > 0.33

    def test_negative_trend_slows_down(self):
        rng = np.random.default_rng(6)
        times = periodic_event_times(400, 3.0, 0.0, rng, activity_trend=-0.05)
        first_half = np.diff(times[:200]).mean()
        second_half = np.diff(times[200:]).mean()
        assert second_half > first_half

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            periodic_event_times(10, 0.0, 0.0, np.random.default_rng(0))

    def test_lognormal_amounts_positive(self):
        rng = np.random.default_rng(7)
        amounts = lognormal_amounts(np.array([1, 2, 3]), 3.0, 0.5, rng)
        assert (amounts > 0).all()

    def test_lognormal_type_offsets_shift_location(self):
        rng = np.random.default_rng(8)
        offsets = np.array([0.0, 0.0, 3.0])
        types = np.array([1] * 500 + [2] * 500)
        amounts = lognormal_amounts(types, 1.0, 0.1, rng, type_offsets=offsets)
        assert np.median(amounts[500:]) > 5 * np.median(amounts[:500])


ALL_PUBLIC = [
    (make_age_dataset, 4),
    (make_churn_dataset, 2),
    (make_assessment_dataset, 4),
    (make_retail_dataset, 4),
]


class TestPublicWorlds:
    @pytest.mark.parametrize("maker,num_classes", ALL_PUBLIC)
    def test_schema_conformance_and_classes(self, maker, num_classes):
        ds = maker(num_clients=60, seed=0)
        ds.validate()
        labels = [s.label for s in ds if s.is_labeled]
        assert set(labels) <= set(range(num_classes))
        assert len(set(labels)) == num_classes

    @pytest.mark.parametrize("maker,_", ALL_PUBLIC)
    def test_times_sorted(self, maker, _):
        ds = maker(num_clients=20, seed=1)
        for seq in ds:
            times = seq.fields["event_time"]
            assert (np.diff(times) >= 0).all()

    @pytest.mark.parametrize("maker,_", ALL_PUBLIC)
    def test_deterministic_given_seed(self, maker, _):
        a = maker(num_clients=10, seed=42)
        b = maker(num_clients=10, seed=42)
        for sa, sb in zip(a, b):
            assert sa.label == sb.label
            for name in sa.fields:
                np.testing.assert_array_equal(sa.fields[name], sb.fields[name])

    def test_age_labeled_fraction(self):
        ds = make_age_dataset(num_clients=400, labeled_fraction=0.6, seed=0)
        frac = len(ds.labeled()) / len(ds)
        assert 0.5 < frac < 0.7

    def test_retail_fully_labeled(self):
        ds = make_retail_dataset(num_clients=50, seed=0)
        assert len(ds.labeled()) == 50

    def test_scoring_default_rate(self):
        ds = make_scoring_dataset(num_clients=3000, seed=0)
        labels = np.array([s.label for s in ds.labeled()])
        assert 0.01 < labels.mean() < 0.06  # paper: 2.76%

    def test_assessment_grade_shares(self):
        ds = make_assessment_dataset(num_clients=1000, seed=0)
        labels = np.array([s.label for s in ds.labeled()])
        shares = np.bincount(labels, minlength=4) / len(labels)
        np.testing.assert_allclose(shares, [0.50, 0.24, 0.14, 0.12], atol=0.06)

    def test_assessment_session_structure(self):
        ds = make_assessment_dataset(num_clients=5, seed=0)
        for seq in ds:
            counter = seq.fields["session_counter"]
            assert counter[0] == 0
            # Counters either advance by one within a session or reset.
            steps = np.diff(counter)
            resets = counter[1:][steps != 1.0]
            assert (resets == 0).all()

    def test_repeatability_within_vs_between(self):
        """The core data property (Section 4.0.2): same-client halves have
        much closer type distributions than different clients."""
        ds = make_age_dataset(num_clients=60, mean_length=150,
                              min_length=100, max_length=200, seed=3)
        num_types = ds.schema.categorical["trx_type"]

        def type_hist(seq, start, stop):
            hist = np.bincount(seq.fields["trx_type"][start:stop],
                               minlength=num_types)[1:]
            return (hist + 1e-3) / (hist.sum() + 1e-3 * len(hist))

        def kl(p, q):
            return float((p * np.log(p / q)).sum())

        within, between = [], []
        for i in range(0, 40, 2):
            a, b = ds[i], ds[i + 1]
            half_a, half_b = len(a) // 2, len(b) // 2
            within.append(kl(type_hist(a, 0, half_a), type_hist(a, half_a, len(a))))
            between.append(kl(type_hist(a, 0, half_a), type_hist(b, 0, half_b)))
        assert np.median(within) < np.median(between)


class TestCommercialWorlds:
    def test_legal_schema_and_labels(self):
        ds = make_legal_entities_dataset(num_companies=50, seed=0)
        ds.validate()
        for seq in ds:
            assert set(seq.label) >= {
                "insurance_lead", "credit_lead", "credit_scoring",
                "fraud", "holding", "sector",
            }

    def test_with_label_channel(self):
        ds = make_legal_entities_dataset(num_companies=30, seed=0)
        churn_view = with_label_channel(ds, "credit_scoring")
        assert set(s.label for s in churn_view) <= {0, 1}
        assert churn_view[0].seq_id == ds[0].seq_id

    def test_label_channels_not_constant(self):
        ds = make_legal_entities_dataset(num_companies=200, seed=0)
        for task in ("insurance_lead", "credit_lead", "credit_scoring", "fraud"):
            values = np.array([s.label[task] for s in ds])
            assert 0.02 < values.mean() < 0.98, task

    def test_holding_pairs_balanced_and_correct(self):
        ds = make_legal_entities_dataset(num_companies=100, num_holdings=20, seed=0)
        pairs, labels = holding_pairs(ds, 60, seed=1)
        assert pairs.shape == (60, 2)
        holdings = [s.label["holding"] for s in ds]
        for (a, b), same in zip(pairs, labels):
            assert (holdings[a] == holdings[b]) == bool(same)
        assert 0.4 < labels.mean() < 0.6

    def test_same_holding_companies_share_counterparties(self):
        """The latent structure behind the holding-restoration task."""
        ds = make_legal_entities_dataset(num_companies=200, num_holdings=30, seed=2)
        holdings = np.array([s.label["holding"] for s in ds])

        def group_hist(seq):
            groups = (seq.fields["counterparty"] - 1) // 10
            hist = np.bincount(groups, minlength=15) + 1e-3
            return hist / hist.sum()

        within, between = [], []
        for h in np.unique(holdings):
            members = np.flatnonzero(holdings == h)
            if len(members) < 2:
                continue
            a, b = members[:2]
            within.append(
                float(np.abs(group_hist(ds[a]) - group_hist(ds[b])).sum())
            )
            other = np.flatnonzero(holdings != h)[0]
            between.append(
                float(np.abs(group_hist(ds[a]) - group_hist(ds[other])).sum())
            )
        assert np.median(within) < np.median(between)

    def test_fraud_injects_anomalies(self):
        ds = make_legal_entities_dataset(num_companies=300, seed=3, fraud_rate=0.2)
        frauds = [s for s in ds if s.label["fraud"] == 1]
        assert len(frauds) > 10

    def test_retail_customers_schema_and_tasks(self):
        ds = make_retail_customers_dataset(num_clients=80, seed=0)
        ds.validate()
        for task in ("credit_scoring", "churn", "insurance_lead"):
            values = np.array([s.label[task] for s in ds])
            assert 0.05 < values.mean() < 0.95, task


class TestTextsControl:
    def test_schema(self):
        ds = make_texts_dataset(num_posts=20, seed=0)
        ds.validate()

    def test_no_repeatable_structure(self):
        """Posts share one corpus distribution: within-KL ~ between-KL."""
        ds = make_texts_dataset(num_posts=60, mean_length=200,
                                min_length=150, max_length=250, seed=1)
        vocab = ds.schema.categorical["token"]

        def hist(seq, start, stop):
            h = np.bincount(seq.fields["token"][start:stop], minlength=vocab)[1:]
            return (h + 1e-3) / (h.sum() + 1e-3 * (vocab - 1))

        def kl(p, q):
            return float((p * np.log(p / q)).sum())

        within, between = [], []
        for i in range(0, 40, 2):
            a, b = ds[i], ds[i + 1]
            within.append(kl(hist(a, 0, len(a) // 2), hist(a, len(a) // 2, len(a))))
            between.append(kl(hist(a, 0, len(a) // 2), hist(b, 0, len(b) // 2)))
        ratio = np.median(between) / max(np.median(within), 1e-9)
        assert ratio < 2.0  # distributions overlap, unlike transactions
