"""Tests for the three sub-sequence generation strategies (Table 2),
including hypothesis property tests of Algorithm 1's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.augmentations import DisjointSlices, RandomSamples, RandomSlices
from repro.data import EventSequence


def make_sequence(length):
    return EventSequence(
        seq_id=1,
        fields={
            "event_time": np.arange(length, dtype=float),
            "mcc": np.arange(length) % 5 + 1,
            "amount": np.arange(length, dtype=float) * 10,
        },
        label=3,
    )


class TestValidation:
    def test_bad_min_length(self):
        with pytest.raises(ValueError):
            RandomSlices(0, 10, 5)

    def test_bad_max_length(self):
        with pytest.raises(ValueError):
            RandomSlices(10, 5, 5)

    def test_bad_num_samples(self):
        with pytest.raises(ValueError):
            RandomSlices(1, 10, 0)


class TestRandomSlices:
    def test_lengths_within_bounds(self):
        strategy = RandomSlices(5, 20, 50)
        rng = np.random.default_rng(0)
        for piece in strategy.sample(make_sequence(60), rng):
            assert 5 <= len(piece) <= 20

    def test_slices_are_contiguous(self):
        strategy = RandomSlices(3, 30, 30)
        rng = np.random.default_rng(1)
        for piece in strategy.sample(make_sequence(50), rng):
            times = piece.fields["event_time"]
            np.testing.assert_allclose(np.diff(times), 1.0)

    def test_keeps_seq_id_and_label(self):
        strategy = RandomSlices(2, 10, 5)
        rng = np.random.default_rng(2)
        for piece in strategy.sample(make_sequence(20), rng):
            assert piece.seq_id == 1
            assert piece.label == 3

    def test_rejection_can_return_fewer(self):
        # min=40 on a length-50 sequence: most draws of U[1,50] rejected.
        strategy = RandomSlices(40, 45, 10)
        rng = np.random.default_rng(3)
        pieces = strategy.sample(make_sequence(50), rng)
        assert len(pieces) < 10

    def test_empty_sequence(self):
        seq = EventSequence(0, {"event_time": np.array([])})
        assert RandomSlices(1, 5, 3).sample(seq, np.random.default_rng(0)) == []

    def test_guaranteed_always_returns_k(self):
        strategy = RandomSlices(40, 60, 5)
        rng = np.random.default_rng(4)
        pieces = strategy.sample_guaranteed(make_sequence(10), rng)
        assert len(pieces) == 5
        assert all(1 <= len(p) <= 10 for p in pieces)

    @settings(max_examples=30, deadline=None)
    @given(
        total=st.integers(5, 120),
        min_len=st.integers(1, 20),
        extra=st.integers(0, 30),
        seed=st.integers(0, 10_000),
    )
    def test_algorithm1_invariants(self, total, min_len, extra, seed):
        """Property test of Algorithm 1: every emitted slice has length in
        [m, M] and is a contiguous window of the input."""
        strategy = RandomSlices(min_len, min_len + extra, 8)
        rng = np.random.default_rng(seed)
        for piece in strategy.sample(make_sequence(total), rng):
            assert min_len <= len(piece) <= min_len + extra
            start = int(piece.fields["event_time"][0])
            np.testing.assert_allclose(
                piece.fields["event_time"], np.arange(start, start + len(piece))
            )


class TestRandomSamples:
    def test_preserves_order_but_not_contiguity(self):
        strategy = RandomSamples(10, 30, 50)
        rng = np.random.default_rng(5)
        saw_gap = False
        for piece in strategy.sample(make_sequence(60), rng):
            times = piece.fields["event_time"]
            assert (np.diff(times) > 0).all()  # order preserved
            if (np.diff(times) > 1).any():
                saw_gap = True
        assert saw_gap  # at least one subset is non-contiguous

    def test_no_duplicates(self):
        strategy = RandomSamples(5, 40, 20)
        rng = np.random.default_rng(6)
        for piece in strategy.sample(make_sequence(40), rng):
            times = piece.fields["event_time"]
            assert len(np.unique(times)) == len(times)

    def test_lengths_within_bounds(self):
        strategy = RandomSamples(5, 15, 40)
        rng = np.random.default_rng(7)
        for piece in strategy.sample(make_sequence(50), rng):
            assert 5 <= len(piece) <= 15


class TestDisjointSlices:
    def test_segments_disjoint_and_ordered(self):
        strategy = DisjointSlices(1, 100, 5)
        rng = np.random.default_rng(8)
        pieces = strategy.sample(make_sequence(50), rng)
        assert 1 <= len(pieces) <= 5
        covered = np.concatenate([p.fields["event_time"] for p in pieces])
        assert len(np.unique(covered)) == len(covered)  # no overlap

    def test_full_cover_when_no_length_filter(self):
        strategy = DisjointSlices(1, 100, 4)
        rng = np.random.default_rng(9)
        pieces = strategy.sample(make_sequence(30), rng)
        total = sum(len(p) for p in pieces)
        assert total == 30  # partition covers the sequence

    def test_length_filter_applies(self):
        strategy = DisjointSlices(5, 8, 4)
        rng = np.random.default_rng(10)
        for piece in strategy.sample(make_sequence(40), rng):
            assert 5 <= len(piece) <= 8

    def test_short_sequence_fallback(self):
        strategy = DisjointSlices(1, 10, 5)
        pieces = strategy.sample(make_sequence(3), np.random.default_rng(0))
        assert len(pieces) == 1
        assert len(pieces[0]) == 3

    @settings(max_examples=25, deadline=None)
    @given(total=st.integers(6, 100), seed=st.integers(0, 1000))
    def test_segments_never_overlap_property(self, total, seed):
        strategy = DisjointSlices(1, total, 5)
        rng = np.random.default_rng(seed)
        pieces = strategy.sample(make_sequence(total), rng)
        covered = np.concatenate([p.fields["event_time"] for p in pieces])
        assert len(np.unique(covered)) == len(covered)
