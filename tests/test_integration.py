"""Cross-module integration tests: the full Figure-1 pipeline end-to-end."""

import numpy as np
import pytest

from repro import CoLES
from repro.baselines import FineTuneConfig, SequenceClassifier, handcrafted_features
from repro.core import IncrementalEmbedder, embed_dataset, quantize_embeddings
from repro.data import train_test_split
from repro.data.synthetic import make_age_dataset, make_churn_dataset
from repro.eval import cross_val_features, evaluate_predictions
from repro.gbm import GBMConfig, GradientBoostingClassifier


@pytest.fixture(scope="module")
def age_world():
    dataset = make_age_dataset(num_clients=120, mean_length=70, min_length=30,
                               max_length=110, labeled_fraction=0.7, seed=4)
    train, test = train_test_split(dataset, 0.2, seed=0)
    return dataset, train, test


@pytest.fixture(scope="module")
def trained_coles(age_world):
    dataset, train, _ = age_world
    model = CoLES(dataset.schema, hidden_size=24, min_length=5,
                  max_length=100, seed=0)
    model.fit(train, num_epochs=4, batch_size=16, learning_rate=0.01)
    return model


class TestPhase1(object):
    def test_pretraining_ignores_labels(self, age_world, trained_coles):
        """Unlabeled sequences participate in training (no crash, loss falls)."""
        assert trained_coles.history[-1].mean_loss < trained_coles.history[0].mean_loss

    def test_embeddings_cover_whole_dataset(self, age_world, trained_coles):
        dataset, train, test = age_world
        emb = trained_coles.embed(dataset)
        assert emb.shape == (len(dataset), 24)
        assert np.isfinite(emb).all()


class TestPhase2a(object):
    def test_embeddings_beat_chance_downstream(self, age_world, trained_coles):
        dataset, train, test = age_world
        train_labeled = train.labeled()
        gbm = GradientBoostingClassifier(GBMConfig(num_rounds=40))
        gbm.fit(trained_coles.embed(train_labeled),
                train_labeled.label_array())
        probs = gbm.predict_proba(trained_coles.embed(test))
        accuracy = evaluate_predictions(test.label_array(), probs, "accuracy")
        assert accuracy > 0.4  # 4 classes, chance 0.25

    def test_hybrid_features_concatenate(self, age_world, trained_coles):
        dataset, train, test = age_world
        labeled = train.labeled()
        designed = handcrafted_features(labeled)
        hybrid = designed.concat(trained_coles.embed(labeled))
        assert hybrid.shape == (len(labeled),
                                designed.shape[1] + 24)
        scores = cross_val_features(hybrid, labeled.label_array(), n_folds=3)
        assert scores.mean() > 0.4


class TestPhase2b(object):
    def test_fine_tuning_from_pretrained_weights(self, age_world, trained_coles):
        dataset, train, test = age_world
        clf = SequenceClassifier(trained_coles.encoder, num_classes=4, seed=0)
        clf.fit(train.labeled(),
                FineTuneConfig(num_epochs=6, batch_size=16,
                               learning_rate=0.01, seed=0))
        probs = clf.predict_proba(test)
        accuracy = evaluate_predictions(test.label_array(), probs, "accuracy")
        assert accuracy > 0.4


class TestDeploymentChain(object):
    def test_embed_quantize_downstream_chain(self, age_world, trained_coles):
        """Full production chain: embed -> quantize -> dequantize -> GBM."""
        dataset, train, test = age_world
        labeled = train.labeled()
        emb_train = trained_coles.embed(labeled)
        emb_test = trained_coles.embed(test)
        recovered_train = quantize_embeddings(emb_train).dequantize()
        recovered_test = quantize_embeddings(emb_test).dequantize()
        gbm = GradientBoostingClassifier(GBMConfig(num_rounds=40))
        gbm.fit(recovered_train, labeled.label_array())
        probs = gbm.predict_proba(recovered_test)
        accuracy = evaluate_predictions(test.label_array(), probs, "accuracy")
        assert accuracy > 0.35

    def test_incremental_streaming_matches_batch(self, age_world, trained_coles):
        dataset, _, test = age_world
        embedder = IncrementalEmbedder(trained_coles.encoder,
                                       precision="float64")
        batch_embeddings = embed_dataset(trained_coles.encoder, test,
                                         precision="float64")
        for row, seq in enumerate(test):
            mid = len(seq) // 2
            embedder.update(seq.seq_id, seq.slice(0, mid), test.schema)
            embedder.update(seq.seq_id, seq.slice(mid, len(seq)), test.schema)
            np.testing.assert_allclose(embedder.embedding(seq.seq_id),
                                       batch_embeddings[row], rtol=1e-8)


class TestSchemaSafety(object):
    def test_embedding_foreign_schema_fails_loudly(self, trained_coles):
        """An encoder trained on one world must reject another's batches."""
        churn = make_churn_dataset(num_clients=5, seed=0)
        with pytest.raises(ValueError, match="different schema"):
            trained_coles.embed(churn)
