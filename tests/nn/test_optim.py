"""Tests for SGD/Adam optimizers, gradient clipping and schedulers."""

import numpy as np
import pytest

from repro.nn import Adam, Parameter, SGD, StepLR, Tensor, clip_grad_norm


def quadratic_loss(param):
    return ((param - Tensor(np.array([1.0, -2.0]))) ** 2).sum()


class TestSGD:
    def test_single_step_matches_formula(self):
        p = Parameter(np.array([0.0, 0.0]))
        opt = SGD([p], lr=0.1)
        loss = quadratic_loss(p)
        loss.backward()
        opt.step()
        # grad = 2(p - target) = [-2, 4]
        np.testing.assert_allclose(p.data, [0.2, -0.4])

    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(2))
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [1.0, -2.0], atol=1e-6)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Parameter(np.zeros(2))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                quadratic_loss(p).backward()
                opt.step()
            return float(quadratic_loss(p).data)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([10.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert abs(p.data[0]) < 10.0

    def test_empty_parameters_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_skips_parameters_without_grad(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.1)
        opt.step()  # no backward happened
        np.testing.assert_allclose(p.data, np.ones(2))


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [1.0, -2.0], atol=1e-4)

    def test_first_step_size_is_lr(self):
        """With bias correction the first Adam step has magnitude ~lr."""
        p = Parameter(np.array([5.0]))
        opt = Adam([p], lr=0.01)
        opt.zero_grad()
        (p * 3.0).sum().backward()
        opt.step()
        np.testing.assert_allclose(p.data, [5.0 - 0.01], rtol=1e-6)

    def test_invariant_to_gradient_scale(self):
        """Adam normalises by second moment: scaled loss gives same step."""

        def first_step(scale):
            p = Parameter(np.array([1.0]))
            opt = Adam([p], lr=0.05)
            (p * scale).sum().backward()
            opt.step()
            return p.data[0]

        np.testing.assert_allclose(first_step(1.0), first_step(100.0), rtol=1e-6)


class TestParamGroups:
    """Per-group learning rates (the fine-tuning encoder/head split)."""

    def test_sgd_groups_step_at_their_own_rate(self):
        slow = Parameter(np.zeros(2))
        fast = Parameter(np.zeros(2))
        opt = SGD([{"params": [slow], "lr": 0.01},
                   {"params": [fast], "lr": 0.1}], lr=0.5)
        for p in (slow, fast):
            p.grad = np.ones(2)
        opt.step()
        np.testing.assert_allclose(slow.data, [-0.01, -0.01])
        np.testing.assert_allclose(fast.data, [-0.1, -0.1])

    def test_adam_first_step_magnitude_is_group_lr(self):
        slow = Parameter(np.array([5.0]))
        fast = Parameter(np.array([5.0]))
        opt = Adam([{"params": [slow], "lr": 0.001},
                    {"params": [fast], "lr": 0.1}], lr=0.5)
        slow.grad = np.array([3.0])
        fast.grad = np.array([3.0])
        opt.step()
        np.testing.assert_allclose(slow.data, [5.0 - 0.001], rtol=1e-6)
        np.testing.assert_allclose(fast.data, [5.0 - 0.1], rtol=1e-6)

    def test_group_without_lr_inherits_default(self):
        p = Parameter(np.zeros(1))
        opt = SGD([{"params": [p]}], lr=0.25)
        p.grad = np.ones(1)
        opt.step()
        np.testing.assert_allclose(p.data, [-0.25])

    def test_flat_list_is_one_group(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=0.1)
        assert len(opt.param_groups) == 1
        assert opt.param_groups[0]["params"] == [p]
        assert opt.lr == 0.1

    def test_lr_setter_applies_to_all_groups(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        opt = SGD([{"params": [a], "lr": 0.01},
                   {"params": [b], "lr": 0.1}], lr=0.5)
        opt.lr = 0.2
        assert [g["lr"] for g in opt.param_groups] == [0.2, 0.2]

    def test_empty_groups_raise(self):
        with pytest.raises(ValueError):
            SGD([{"params": [], "lr": 0.1}], lr=0.1)

    def test_step_lr_preserves_group_ratios(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        opt = SGD([{"params": [a], "lr": 0.01},
                   {"params": [b], "lr": 0.1}], lr=0.1)
        sched = StepLR(opt, step_size=1, gamma=0.5)
        sched.step()
        np.testing.assert_allclose([g["lr"] for g in opt.param_groups],
                                   [0.005, 0.05])


class TestClipping:
    def test_clip_reduces_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        total = clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(total, 20.0)
        np.testing.assert_allclose(np.linalg.norm(p.grad), 1.0)

    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.1, 0.1])
        clip_grad_norm([p], max_norm=5.0)
        np.testing.assert_allclose(p.grad, [0.1, 0.1])

    def test_handles_missing_grads(self):
        p = Parameter(np.zeros(2))
        assert clip_grad_norm([p], 1.0) == 0.0


class TestScheduler:
    def test_step_lr_halves(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == 0.5
        sched.step()
        sched.step()
        assert opt.lr == 0.25
