"""Gradient and semantics tests for the autograd engine."""

import numpy as np
import pytest

from repro.nn import Tensor, concat, no_grad, stack, where
from tests.helpers import check_gradients

RNG = np.random.default_rng(0)


class TestArithmetic:
    def test_add_gradients(self):
        a = RNG.standard_normal((3, 4))
        b = RNG.standard_normal((3, 4))
        check_gradients(lambda ts: (ts[0] + ts[1]).sum(), [a, b])

    def test_add_broadcast_gradients(self):
        a = RNG.standard_normal((3, 4))
        b = RNG.standard_normal((4,))
        check_gradients(lambda ts: (ts[0] + ts[1]).sum(), [a, b])

    def test_mul_gradients(self):
        a = RNG.standard_normal((2, 5))
        b = RNG.standard_normal((2, 5))
        check_gradients(lambda ts: (ts[0] * ts[1]).sum(), [a, b])

    def test_mul_broadcast_scalar_shape(self):
        a = RNG.standard_normal((4, 3))
        b = RNG.standard_normal((1, 3))
        check_gradients(lambda ts: (ts[0] * ts[1]).sum(), [a, b])

    def test_sub_and_neg(self):
        a = RNG.standard_normal((3,))
        b = RNG.standard_normal((3,))
        check_gradients(lambda ts: (ts[0] - ts[1] - (-ts[0])).sum(), [a, b])

    def test_div_gradients(self):
        a = RNG.standard_normal((3, 3))
        b = RNG.standard_normal((3, 3)) + 3.0
        check_gradients(lambda ts: (ts[0] / ts[1]).sum(), [a, b])

    def test_pow_gradients(self):
        a = RNG.standard_normal((4,)) + 2.5
        check_gradients(lambda ts: (ts[0] ** 3).sum(), [a])

    def test_rsub_rdiv(self):
        a = np.array([1.0, 2.0, 4.0])
        out = (1.0 - Tensor(a)) / Tensor(a)
        np.testing.assert_allclose(out.data, (1 - a) / a)

    def test_matmul_2d(self):
        a = RNG.standard_normal((3, 4))
        b = RNG.standard_normal((4, 2))
        check_gradients(lambda ts: (ts[0] @ ts[1]).sum(), [a, b])

    def test_matmul_batched(self):
        a = RNG.standard_normal((2, 3, 4))
        b = RNG.standard_normal((2, 4, 5))
        check_gradients(lambda ts: (ts[0] @ ts[1]).sum(), [a, b])

    def test_matmul_broadcast_batch(self):
        a = RNG.standard_normal((2, 3, 3, 4))
        b = RNG.standard_normal((3, 4, 5))
        check_gradients(lambda ts: (ts[0] @ ts[1]).sum(), [a, b])

    def test_matmul_vector(self):
        a = RNG.standard_normal((4,))
        b = RNG.standard_normal((4,))
        check_gradients(lambda ts: ts[0] @ ts[1], [a, b])

    def test_matmul_matrix_vector(self):
        a = RNG.standard_normal((3, 4))
        b = RNG.standard_normal((4,))
        check_gradients(lambda ts: (ts[0] @ ts[1]).sum(), [a, b])


class TestElementwise:
    @pytest.mark.parametrize("name", ["exp", "tanh", "sigmoid", "relu", "abs"])
    def test_unary_gradients(self, name):
        a = RNG.standard_normal((3, 4)) + 0.1  # keep away from relu/abs kink
        check_gradients(lambda ts: getattr(ts[0], name)().sum(), [a])

    def test_log_sqrt_gradients(self):
        a = RNG.random((3, 4)) + 0.5
        check_gradients(lambda ts: (ts[0].log() + ts[0].sqrt()).sum(), [a])

    def test_clip_min_gradient_blocked(self):
        a = np.array([-1.0, 0.5, 2.0])
        t = Tensor(a, requires_grad=True)
        t.clip_min(0.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 1.0])

    def test_clip_max_gradient_blocked(self):
        a = np.array([-1.0, 0.5, 2.0])
        t = Tensor(a, requires_grad=True)
        t.clip_max(1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [1.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis(self):
        a = RNG.standard_normal((3, 4, 2))
        check_gradients(lambda ts: (ts[0].sum(axis=1) ** 2).sum(), [a])

    def test_sum_keepdims(self):
        a = RNG.standard_normal((3, 4))
        check_gradients(
            lambda ts: (ts[0] / ts[0].sum(axis=1, keepdims=True)).sum(), [a]
        )

    def test_mean(self):
        a = RNG.standard_normal((5, 2))
        check_gradients(lambda ts: (ts[0].mean(axis=0) ** 2).sum(), [a])

    def test_mean_all(self):
        a = RNG.standard_normal((5, 2))
        check_gradients(lambda ts: ts[0].mean() * 3.0, [a])

    def test_max_gradient_goes_to_argmax(self):
        a = np.array([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]])
        t = Tensor(a, requires_grad=True)
        t.max(axis=1).sum().backward()
        expected = np.array([[0, 1, 0], [1, 0, 0]], dtype=float)
        np.testing.assert_allclose(t.grad, expected)

    def test_max_ties_split_gradient(self):
        a = np.array([[2.0, 2.0]])
        t = Tensor(a, requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.5, 0.5]])

    def test_min(self):
        a = np.array([3.0, -1.0, 2.0])
        assert Tensor(a).min().item() == -1.0


class TestShapes:
    def test_reshape_gradients(self):
        a = RNG.standard_normal((2, 6))
        check_gradients(lambda ts: (ts[0].reshape(3, 4) ** 2).sum(), [a])

    def test_transpose_gradients(self):
        a = RNG.standard_normal((2, 3, 4))
        check_gradients(lambda ts: (ts[0].transpose(0, 2) ** 2).sum(), [a])

    def test_getitem_slice(self):
        a = RNG.standard_normal((4, 5))
        check_gradients(lambda ts: (ts[0][1:3, :] ** 2).sum(), [a])

    def test_getitem_int_column(self):
        a = RNG.standard_normal((4, 5))
        check_gradients(lambda ts: (ts[0][:, 2] ** 2).sum(), [a])

    def test_getitem_fancy_accumulates(self):
        a = np.zeros((3, 2))
        t = Tensor(a, requires_grad=True)
        idx = np.array([0, 0, 2])
        t.take_rows(idx).sum().backward()
        np.testing.assert_allclose(t.grad, [[2, 2], [0, 0], [1, 1]])

    def test_concat_gradients(self):
        a = RNG.standard_normal((2, 3))
        b = RNG.standard_normal((2, 2))
        check_gradients(lambda ts: (concat(ts, axis=1) ** 2).sum(), [a, b])

    def test_stack_gradients(self):
        a = RNG.standard_normal((2, 3))
        b = RNG.standard_normal((2, 3))
        check_gradients(lambda ts: (stack(ts, axis=1) ** 2).sum(), [a, b])

    def test_masked_fill(self):
        a = RNG.standard_normal((2, 3))
        mask = np.array([[True, False, False], [False, True, False]])
        t = Tensor(a, requires_grad=True)
        out = t.masked_fill(mask, -9.0)
        assert (out.data[mask] == -9.0).all()
        out.sum().backward()
        np.testing.assert_allclose(t.grad, (~mask).astype(float))

    def test_where_gradients(self):
        a = RNG.standard_normal((3, 2))
        b = RNG.standard_normal((3, 2))
        cond = np.array([[True, False], [False, True], [True, True]])
        check_gradients(lambda ts: where(cond, ts[0], ts[1]).sum(), [a, b])


class TestGraphSemantics:
    def test_gradient_accumulates_through_reuse(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = a * a + a  # dy/da = 2a + 1 = 5
        out.backward()
        np.testing.assert_allclose(a.grad, [5.0])

    def test_backward_twice_accumulates_on_leaf(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        (a * 3.0).backward()
        (a * 3.0).backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_no_grad_blocks_graph(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad
        assert out._backward is None

    def test_detach(self):
        a = Tensor(np.ones(3), requires_grad=True)
        d = a.detach()
        assert not d.requires_grad
        out = (a * d).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, np.ones(3))

    def test_diamond_graph(self):
        a = RNG.standard_normal((3,))
        check_gradients(
            lambda ts: ((ts[0] * 2.0) * (ts[0] + 1.0)).sum(), [a]
        )

    def test_deep_chain(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        out = a
        for _ in range(50):
            out = out * 1.01
        out.backward()
        np.testing.assert_allclose(a.grad, [1.01**50], rtol=1e-10)

    def test_constant_operand_gets_no_grad(self):
        a = Tensor(np.ones(2), requires_grad=True)
        b = Tensor(np.ones(2))
        (a * b).sum().backward()
        assert b.grad is None

    def test_item_and_len(self):
        assert Tensor(np.array(5.0)).item() == 5.0
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_comparison_returns_arrays(self):
        a = Tensor(np.array([1.0, 3.0]))
        assert (a > 2.0).tolist() == [False, True]
        assert (a <= 1.0).tolist() == [True, False]
