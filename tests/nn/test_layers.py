"""Tests for Linear, Embedding, BatchNorm1d, LayerNorm, Dropout layers."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm1d,
    Dropout,
    Embedding,
    L2Normalize,
    LayerNorm,
    Linear,
    ReLU,
    Sequential,
    Tensor,
)
from tests.helpers import check_gradients

RNG = np.random.default_rng(2)


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 7, rng=RNG)
        out = layer(Tensor(RNG.standard_normal((3, 4))))
        assert out.shape == (3, 7)

    def test_matches_manual(self):
        layer = Linear(3, 2, rng=RNG)
        x = RNG.standard_normal((5, 3))
        out = layer(Tensor(x))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(out.data, expected)

    def test_no_bias(self):
        layer = Linear(3, 2, bias=False, rng=RNG)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_gradients_flow_to_weights(self):
        layer = Linear(3, 2, rng=RNG)
        out = layer(Tensor(RNG.standard_normal((4, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, np.full(2, 4.0))

    def test_3d_input(self):
        layer = Linear(3, 2, rng=RNG)
        out = layer(Tensor(RNG.standard_normal((2, 5, 3))))
        assert out.shape == (2, 5, 2)


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4, rng=RNG)
        ids = np.array([[1, 2], [3, 1]])
        out = emb(ids)
        assert out.shape == (2, 2, 4)
        np.testing.assert_allclose(out.data[0, 0], emb.weight.data[1])

    def test_gradient_accumulates_per_id(self):
        emb = Embedding(5, 3, rng=RNG)
        out = emb(np.array([1, 1, 2]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[1], np.full(3, 2.0))
        np.testing.assert_allclose(emb.weight.grad[2], np.full(3, 1.0))
        np.testing.assert_allclose(emb.weight.grad[0], np.zeros(3))

    def test_padding_idx_zero_init(self):
        emb = Embedding(5, 3, padding_idx=0, rng=RNG)
        np.testing.assert_allclose(emb.weight.data[0], np.zeros(3))

    def test_out_of_range_raises(self):
        emb = Embedding(5, 3, rng=RNG)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))


class TestBatchNorm:
    def test_normalises_train_batch(self):
        bn = BatchNorm1d(4)
        x = RNG.standard_normal((100, 4)) * 5 + 3
        out = bn(Tensor(x))
        np.testing.assert_allclose(out.data.mean(axis=0), np.zeros(4), atol=1e-7)
        np.testing.assert_allclose(out.data.std(axis=0), np.ones(4), atol=1e-2)

    def test_running_stats_update(self):
        bn = BatchNorm1d(2, momentum=0.5)
        x = np.ones((10, 2)) * 4.0
        bn(Tensor(x))
        np.testing.assert_allclose(bn.running_mean, [2.0, 2.0])

    def test_eval_uses_running_stats(self):
        bn = BatchNorm1d(2, momentum=1.0)
        x = RNG.standard_normal((50, 2)) * 2 + 1
        bn(Tensor(x))
        bn.eval()
        y = RNG.standard_normal((5, 2))
        out = bn(Tensor(y))
        expected = (y - bn.running_mean) / np.sqrt(bn.running_var + bn.eps)
        np.testing.assert_allclose(out.data, expected, rtol=1e-9)

    def test_masked_3d_statistics(self):
        bn = BatchNorm1d(2, momentum=1.0)
        x = np.zeros((2, 3, 2))
        x[0, :2] = 10.0  # real events
        x[0, 2] = 999.0  # padding, must be excluded from stats
        x[1, :2] = -10.0
        x[1, 2] = -999.0
        mask = np.array([[True, True, False], [True, True, False]])
        bn(Tensor(x), mask=mask)
        np.testing.assert_allclose(bn.running_mean, [0.0, 0.0], atol=1e-9)

    def test_empty_batch_raises(self):
        bn = BatchNorm1d(2)
        with pytest.raises(ValueError):
            bn(Tensor(np.zeros((1, 3, 2))), mask=np.zeros((1, 3), dtype=bool))

    def test_gradients(self):
        bn = BatchNorm1d(3)
        bn.eval()  # deterministic stats for gradcheck
        x = RNG.standard_normal((4, 3))
        check_gradients(lambda ts: (bn(ts[0]) ** 2).sum(), [x])


class TestLayerNorm:
    def test_normalises_last_axis(self):
        ln = LayerNorm(6)
        x = RNG.standard_normal((3, 6)) * 4 + 2
        out = ln(Tensor(x))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(3), atol=1e-9)

    def test_gradients(self):
        ln = LayerNorm(4)
        x = RNG.standard_normal((3, 4))
        check_gradients(lambda ts: (ln(ts[0]) * 0.7).sum(), [x], rtol=1e-3)


class TestDropoutLayer:
    def test_eval_mode_identity(self):
        layer = Dropout(0.9)
        layer.eval()
        x = Tensor(np.ones((5, 5)))
        assert layer(x) is x

    def test_train_mode_zeroes(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((100, 100))))
        frac = (out.data == 0).mean()
        assert 0.45 < frac < 0.55


class TestSequentialAndActivations:
    def test_sequential_pipeline(self):
        model = Sequential(Linear(4, 8, rng=RNG), ReLU(), Linear(8, 2, rng=RNG))
        out = model(Tensor(RNG.standard_normal((3, 4))))
        assert out.shape == (3, 2)
        assert len(model) == 3

    def test_l2_normalize_layer(self):
        out = L2Normalize()(Tensor(RNG.standard_normal((4, 6)) * 9))
        np.testing.assert_allclose(np.linalg.norm(out.data, axis=1), np.ones(4))
