"""Tests for the Module system and serialization."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm1d,
    Linear,
    Module,
    ModuleDict,
    ModuleList,
    Parameter,
    Sequential,
    Tensor,
    load_state,
    save_state,
)


class Nested(Module):
    def __init__(self):
        super().__init__()
        self.inner = Linear(2, 3, rng=np.random.default_rng(0))
        self.scale = Parameter(np.ones(3))

    def forward(self, x):
        return self.inner(x) * self.scale


class TestRegistration:
    def test_parameters_collected_recursively(self):
        model = Nested()
        names = dict(model.named_parameters())
        assert set(names) == {"inner.weight", "inner.bias", "scale"}

    def test_parameters_no_duplicates_on_shared(self):
        model = Module()
        shared = Parameter(np.ones(2))
        model.a = shared
        model.b = shared
        assert len(list(model.parameters())) == 1

    def test_num_parameters(self):
        model = Nested()
        assert model.num_parameters() == 2 * 3 + 3 + 3

    def test_zero_grad(self):
        model = Nested()
        out = model(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert model.scale.grad is not None
        model.zero_grad()
        assert model.scale.grad is None

    def test_train_eval_propagates(self):
        model = Sequential(Nested(), Nested())
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_module_list(self):
        items = ModuleList([Linear(2, 2), Linear(2, 2)])
        assert len(items) == 2
        assert len(list(items.parameters())) == 4
        assert items[0] is list(items)[0]

    def test_module_dict(self):
        d = ModuleDict({"a": Linear(2, 2), "b": Linear(2, 3)})
        assert "a" in d
        assert d["b"].out_features == 3
        assert set(d.keys()) == {"a", "b"}
        assert len(list(d.parameters())) == 4


class TestStateDict:
    def test_roundtrip(self):
        model = Nested()
        state = model.state_dict()
        clone = Nested()
        clone.load_state_dict(state)
        x = Tensor(np.ones((2, 2)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_state_dict_is_copy(self):
        model = Nested()
        state = model.state_dict()
        state["scale"][:] = 99.0
        assert model.scale.data[0] == 1.0

    def test_missing_key_raises(self):
        model = Nested()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            Nested().load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = Nested()
        state = model.state_dict()
        state["scale"] = np.ones(5)
        with pytest.raises(ValueError):
            Nested().load_state_dict(state)

    def test_buffers_roundtrip(self):
        bn = BatchNorm1d(3, momentum=1.0)
        bn(Tensor(np.random.default_rng(0).standard_normal((20, 3)) + 7))
        state = bn.state_dict()
        clone = BatchNorm1d(3)
        clone.load_state_dict(state)
        np.testing.assert_allclose(clone.running_mean, bn.running_mean)
        np.testing.assert_allclose(clone.running_var, bn.running_var)

    def test_npz_roundtrip(self, tmp_path):
        model = Nested()
        path = tmp_path / "model.npz"
        save_state(model, path)
        clone = Nested()
        load_state(clone, path)
        x = Tensor(np.ones((2, 2)))
        np.testing.assert_allclose(model(x).data, clone(x).data)
