"""Property-based tests (hypothesis) for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor
from repro.nn import functional as F
from tests.helpers import check_gradients

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


def small_arrays(max_dims=2, max_side=4):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=finite_floats,
    )


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_add_commutes(a):
    t = Tensor(a)
    np.testing.assert_allclose((t + t).data, (2.0 * t).data)


@settings(max_examples=30, deadline=None)
@given(small_arrays(), small_arrays())
def test_add_matches_numpy_broadcasting_or_raises(a, b):
    try:
        expected = a + b
    except ValueError:
        return
    np.testing.assert_allclose((Tensor(a) + Tensor(b)).data, expected)


@settings(max_examples=25, deadline=None)
@given(small_arrays(max_dims=2))
def test_sum_then_backward_gives_ones(a):
    t = Tensor(a, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(a))


@settings(max_examples=25, deadline=None)
@given(small_arrays(max_dims=2))
def test_mul_gradcheck_random_arrays(a):
    check_gradients(lambda ts: (ts[0] * ts[0] * 0.5).sum(), [a], rtol=1e-3, atol=1e-5)


@settings(max_examples=25, deadline=None)
@given(small_arrays(max_dims=2))
def test_tanh_bounded_and_odd(a):
    out = Tensor(a).tanh().data
    assert (np.abs(out) <= 1.0).all()
    np.testing.assert_allclose(Tensor(-a).tanh().data, -out, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(small_arrays(max_dims=2))
def test_sigmoid_in_unit_interval(a):
    out = Tensor(a).sigmoid().data
    assert (out > 0).all() and (out < 1).all()
    # sigmoid(-x) = 1 - sigmoid(x)
    np.testing.assert_allclose(Tensor(-a).sigmoid().data, 1 - out, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 5), st.integers(1, 5)),
        elements=finite_floats,
    )
)
def test_softmax_is_distribution(a):
    out = F.softmax(Tensor(a), axis=-1).data
    assert (out >= 0).all()
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(a.shape[0]), rtol=1e-9)


@settings(max_examples=25, deadline=None)
@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(2, 6), st.integers(1, 4)),
        elements=finite_floats,
    )
)
def test_pairwise_distances_symmetric_nonnegative(a):
    dist = F.pairwise_squared_distances(Tensor(a)).data
    assert (dist >= 0).all()
    np.testing.assert_allclose(dist, dist.T, atol=1e-8)
    np.testing.assert_allclose(np.diag(dist), 0.0, atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 5), st.integers(2, 6)),
        elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
    ).filter(lambda a: (np.linalg.norm(a, axis=1) > 1e-3).all())
)
def test_l2_normalize_idempotent(a):
    once = F.l2_normalize(Tensor(a)).data
    twice = F.l2_normalize(Tensor(once)).data
    np.testing.assert_allclose(once, twice, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
def test_matmul_shapes(n, k, m):
    a = np.ones((n, k))
    b = np.ones((k, m))
    out = Tensor(a) @ Tensor(b)
    assert out.shape == (n, m)
    np.testing.assert_allclose(out.data, np.full((n, m), k))


@settings(max_examples=20, deadline=None)
@given(small_arrays(max_dims=2))
def test_reshape_roundtrip_preserves_grad_shape(a):
    t = Tensor(a, requires_grad=True)
    t.reshape(-1).reshape(a.shape).sum().backward()
    assert t.grad.shape == a.shape
    np.testing.assert_allclose(t.grad, np.ones_like(a))
