"""Tests for GRU/LSTM recurrences, masking and incremental stepping."""

import numpy as np

from repro.nn import GRU, LSTM, Adam, Tensor
from tests.helpers import check_gradients

RNG = np.random.default_rng(3)


def _sigmoid(x):
    return 1 / (1 + np.exp(-x))


class TestGRU:
    def test_output_shapes(self):
        gru = GRU(4, 6, rng=RNG)
        x = Tensor(RNG.standard_normal((3, 5, 4)))
        outputs, last = gru(x)
        assert outputs.shape == (3, 5, 6)
        assert last.shape == (3, 6)

    def test_step_matches_manual_formula(self):
        """Verify the PyTorch gate convention is implemented exactly."""
        gru = GRU(2, 3, learn_init_state=False, rng=RNG)
        x = RNG.standard_normal((1, 2))
        h = RNG.standard_normal((1, 3))
        out = gru.step(Tensor(x), Tensor(h)).data

        w_ih, w_hh = gru.weight_ih.data, gru.weight_hh.data
        b_ih, b_hh = gru.bias_ih.data, gru.bias_hh.data
        xr, xz, xn = np.split(x @ w_ih.T + b_ih, 3, axis=1)
        hr, hz, hn = np.split(h @ w_hh.T + b_hh, 3, axis=1)
        r = _sigmoid(xr + hr)
        z = _sigmoid(xz + hz)
        n = np.tanh(xn + r * hn)
        expected = (1 - z) * n + z * h
        np.testing.assert_allclose(out, expected, rtol=1e-10)

    def test_last_equals_final_output(self):
        gru = GRU(3, 4, rng=RNG)
        outputs, last = gru(Tensor(RNG.standard_normal((2, 6, 3))))
        np.testing.assert_allclose(outputs.data[:, -1, :], last.data)

    def test_mask_freezes_state(self):
        """Padded steps must not change the hidden state."""
        gru = GRU(3, 4, rng=RNG)
        x = RNG.standard_normal((2, 5, 3))
        mask = np.array(
            [[True] * 5, [True, True, True, False, False]]
        )
        outputs, last = gru(Tensor(x), mask=mask)
        # For row 1 the state after step 2 is final.
        np.testing.assert_allclose(outputs.data[1, 2], last.data[1])
        np.testing.assert_allclose(outputs.data[1, 4], outputs.data[1, 2])

    def test_masked_equals_truncated(self):
        """Running a padded sequence equals running the unpadded prefix."""
        gru = GRU(3, 4, rng=RNG)
        x = RNG.standard_normal((1, 6, 3))
        mask = np.array([[True, True, True, True, False, False]])
        _, last_masked = gru(Tensor(x), mask=mask)
        _, last_trunc = gru(Tensor(x[:, :4]))
        np.testing.assert_allclose(last_masked.data, last_trunc.data, rtol=1e-12)

    def test_learnt_initial_state_used(self):
        gru = GRU(2, 3, learn_init_state=True, rng=RNG)
        gru.init_state.data = np.array([1.0, -1.0, 0.5])
        init = gru.initial_state(4)
        assert init.shape == (4, 3)
        np.testing.assert_allclose(init.data[2], [1.0, -1.0, 0.5])

    def test_initial_state_receives_gradient(self):
        gru = GRU(2, 3, rng=RNG)
        _, last = gru(Tensor(RNG.standard_normal((2, 3, 2))))
        last.sum().backward()
        assert gru.init_state.grad is not None
        assert np.abs(gru.init_state.grad).sum() > 0

    def test_incremental_step_equals_full_run(self):
        """The deployment property of Section 4.3.1: c_{t+k} from c_t."""
        gru = GRU(3, 4, rng=RNG)
        x = RNG.standard_normal((2, 7, 3))
        _, last_full = gru(Tensor(x))
        # Run first 4 steps, then continue incrementally.
        _, mid = gru(Tensor(x[:, :4]))
        state = mid
        for t in range(4, 7):
            state = gru.step(Tensor(x[:, t]), state)
        np.testing.assert_allclose(state.data, last_full.data, rtol=1e-12)

    def test_gradients_through_time(self):
        gru = GRU(2, 3, rng=np.random.default_rng(7))
        x = RNG.standard_normal((2, 4, 2))

        def run(ts):
            _, last = gru(ts[0])
            return (last**2).sum()

        check_gradients(run, [x], rtol=1e-3, atol=1e-6)

    def test_weight_gradients_through_time(self):
        gru = GRU(2, 3, rng=np.random.default_rng(8))
        x = Tensor(RNG.standard_normal((2, 4, 2)))
        _, last = gru(x)
        (last**2).sum().backward()
        for param in gru.parameters():
            assert param.grad is not None

    def test_trainable_to_fit_toy_sequence(self):
        """A GRU + Adam should quickly fit a trivial memorisation task."""
        rng = np.random.default_rng(5)
        gru = GRU(1, 8, rng=rng)
        x = Tensor(rng.standard_normal((4, 5, 1)))
        target = np.array([0.0, 1.0, 0.0, 1.0])
        from repro.nn import Linear

        head = Linear(8, 1, rng=rng)
        opt = Adam(list(gru.parameters()) + list(head.parameters()), lr=0.05)
        losses = []
        for _ in range(60):
            _, last = gru(x)
            pred = head(last).reshape(4)
            loss = ((pred - Tensor(target)) ** 2).mean()
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < 0.05 * losses[0] + 1e-3


class TestLSTM:
    def test_output_shapes(self):
        lstm = LSTM(4, 6, rng=RNG)
        outputs, last = lstm(Tensor(RNG.standard_normal((3, 5, 4))))
        assert outputs.shape == (3, 5, 6)
        assert last.shape == (3, 6)

    def test_step_matches_manual_formula(self):
        lstm = LSTM(2, 3, learn_init_state=False, rng=RNG)
        x = RNG.standard_normal((1, 2))
        h = RNG.standard_normal((1, 3))
        c = RNG.standard_normal((1, 3))
        new_h, new_c = lstm.step(Tensor(x), (Tensor(h), Tensor(c)))

        w_ih, w_hh = lstm.weight_ih.data, lstm.weight_hh.data
        b_ih, b_hh = lstm.bias_ih.data, lstm.bias_hh.data
        xi, xf, xg, xo = np.split(x @ w_ih.T + b_ih, 4, axis=1)
        hi, hf, hg, ho = np.split(h @ w_hh.T + b_hh, 4, axis=1)
        i = _sigmoid(xi + hi)
        f = _sigmoid(xf + hf)
        g = np.tanh(xg + hg)
        o = _sigmoid(xo + ho)
        c_exp = f * c + i * g
        h_exp = o * np.tanh(c_exp)
        np.testing.assert_allclose(new_c.data, c_exp, rtol=1e-10)
        np.testing.assert_allclose(new_h.data, h_exp, rtol=1e-10)

    def test_mask_freezes_state(self):
        lstm = LSTM(3, 4, rng=RNG)
        x = RNG.standard_normal((1, 5, 3))
        mask = np.array([[True, True, False, False, False]])
        _, last_masked = lstm(Tensor(x), mask=mask)
        _, last_trunc = lstm(Tensor(x[:, :2]))
        np.testing.assert_allclose(last_masked.data, last_trunc.data, rtol=1e-12)

    def test_gradients_through_time(self):
        lstm = LSTM(2, 3, rng=np.random.default_rng(9))
        x = RNG.standard_normal((2, 3, 2))

        def run(ts):
            _, last = lstm(ts[0])
            return (last**2).sum()

        check_gradients(run, [x], rtol=1e-3, atol=1e-6)

    def test_all_parameters_receive_gradients(self):
        lstm = LSTM(2, 3, rng=RNG)
        _, last = lstm(Tensor(RNG.standard_normal((2, 4, 2))))
        last.sum().backward()
        for name, param in lstm.named_parameters():
            assert param.grad is not None, name
