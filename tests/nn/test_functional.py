"""Tests for functional ops: softmax, losses, normalisation, distances."""

import numpy as np
from scipy.special import log_softmax as scipy_log_softmax
from scipy.special import softmax as scipy_softmax

from repro.nn import Tensor
from repro.nn import functional as F
from tests.helpers import check_gradients

RNG = np.random.default_rng(1)


class TestSoftmax:
    def test_matches_scipy(self):
        x = RNG.standard_normal((4, 6))
        out = F.softmax(Tensor(x), axis=-1)
        np.testing.assert_allclose(out.data, scipy_softmax(x, axis=-1), rtol=1e-12)

    def test_log_softmax_matches_scipy(self):
        x = RNG.standard_normal((4, 6))
        out = F.log_softmax(Tensor(x), axis=-1)
        np.testing.assert_allclose(out.data, scipy_log_softmax(x, axis=-1), rtol=1e-12)

    def test_softmax_rows_sum_to_one(self):
        x = RNG.standard_normal((7, 3)) * 30  # large logits: stability check
        out = F.softmax(Tensor(x), axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(7), rtol=1e-12)

    def test_softmax_gradients(self):
        x = RNG.standard_normal((3, 4))
        check_gradients(lambda ts: (F.softmax(ts[0]) ** 2).sum(), [x])

    def test_log_softmax_gradients(self):
        x = RNG.standard_normal((3, 4))
        check_gradients(lambda ts: (F.log_softmax(ts[0]) * 0.5).sum(), [x])


class TestCrossEntropy:
    def test_value_against_manual(self):
        logits = np.array([[2.0, 0.0, -1.0], [0.0, 1.0, 0.0]])
        targets = np.array([0, 2])
        loss = F.cross_entropy(Tensor(logits), targets)
        expected = -scipy_log_softmax(logits, axis=-1)[[0, 1], targets].mean()
        np.testing.assert_allclose(loss.item(), expected, rtol=1e-12)

    def test_gradients(self):
        logits = RNG.standard_normal((5, 4))
        targets = np.array([0, 1, 2, 3, 1])
        check_gradients(lambda ts: F.cross_entropy(ts[0], targets), [logits])

    def test_reduction_sum_vs_mean(self):
        logits = RNG.standard_normal((4, 3))
        targets = np.array([0, 1, 2, 0])
        s = F.cross_entropy(Tensor(logits), targets, reduction="sum").item()
        m = F.cross_entropy(Tensor(logits), targets, reduction="mean").item()
        np.testing.assert_allclose(s, m * 4, rtol=1e-12)

    def test_perfect_prediction_low_loss(self):
        logits = np.eye(3) * 50
        loss = F.cross_entropy(Tensor(logits), np.arange(3))
        assert loss.item() < 1e-10


class TestBCE:
    def test_value_against_manual(self):
        logits = np.array([0.5, -1.0, 2.0])
        targets = np.array([1.0, 0.0, 1.0])
        p = 1 / (1 + np.exp(-logits))
        expected = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        loss = F.binary_cross_entropy_with_logits(Tensor(logits), targets)
        np.testing.assert_allclose(loss.item(), expected, rtol=1e-10)

    def test_stable_for_extreme_logits(self):
        logits = np.array([500.0, -500.0])
        targets = np.array([1.0, 0.0])
        loss = F.binary_cross_entropy_with_logits(Tensor(logits), targets)
        assert np.isfinite(loss.item())
        assert loss.item() < 1e-6

    def test_gradients(self):
        logits = RNG.standard_normal((6,))
        targets = (RNG.random(6) > 0.5).astype(float)
        check_gradients(
            lambda ts: F.binary_cross_entropy_with_logits(ts[0], targets), [logits]
        )


class TestMisc:
    def test_mse(self):
        a = RNG.standard_normal((4,))
        b = RNG.standard_normal((4,))
        loss = F.mse_loss(Tensor(a), b)
        np.testing.assert_allclose(loss.item(), ((a - b) ** 2).mean())

    def test_dropout_eval_identity(self):
        x = Tensor(RNG.standard_normal((10, 10)))
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_dropout_train_scales(self):
        rng = np.random.default_rng(3)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.25, training=True, rng=rng)
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, 1 / 0.75)
        assert abs((out.data == 0).mean() - 0.25) < 0.02

    def test_gelu_shape_and_sign(self):
        x = Tensor(np.array([-10.0, 0.0, 10.0]))
        out = F.gelu(x).data
        assert abs(out[0]) < 1e-3
        assert out[1] == 0.0
        np.testing.assert_allclose(out[2], 10.0, rtol=1e-3)

    def test_gelu_gradients(self):
        x = RNG.standard_normal((5,))
        check_gradients(lambda ts: F.gelu(ts[0]).sum(), [x])

    def test_l2_normalize_unit_norm(self):
        x = RNG.standard_normal((8, 5)) * 10
        out = F.l2_normalize(Tensor(x))
        np.testing.assert_allclose(
            np.linalg.norm(out.data, axis=1), np.ones(8), rtol=1e-10
        )

    def test_l2_normalize_gradients(self):
        x = RNG.standard_normal((4, 3))
        check_gradients(lambda ts: (F.l2_normalize(ts[0]) * 0.3).sum(), [x])


class TestPairwiseDistances:
    def test_matches_direct_computation(self):
        x = RNG.standard_normal((6, 4))
        dist = F.pairwise_squared_distances(Tensor(x)).data
        expected = ((x[:, None, :] - x[None, :, :]) ** 2).sum(axis=-1)
        np.testing.assert_allclose(dist, expected, rtol=1e-8, atol=1e-10)

    def test_diagonal_zero(self):
        x = RNG.standard_normal((5, 3))
        dist = F.pairwise_squared_distances(Tensor(x)).data
        np.testing.assert_allclose(np.diag(dist), np.zeros(5), atol=1e-9)

    def test_unit_norm_identity(self):
        """For unit vectors d^2 = 2 - 2cos (Section 3.3 of the paper)."""
        x = RNG.standard_normal((5, 4))
        x = x / np.linalg.norm(x, axis=1, keepdims=True)
        dist = F.pairwise_squared_distances(Tensor(x)).data
        np.testing.assert_allclose(dist, 2 - 2 * x @ x.T, atol=1e-9)

    def test_gradients(self):
        x = RNG.standard_normal((4, 3))
        check_gradients(
            lambda ts: (F.pairwise_squared_distances(ts[0]) * 0.1).sum(), [x],
            rtol=1e-3, atol=1e-5,
        )
