"""Tests for the Transformer encoder used in Table 3."""

import numpy as np
import pytest

from repro.nn import (
    MultiHeadAttention,
    Tensor,
    TransformerEncoder,
    TransformerEncoderLayer,
    sinusoidal_positions,
)
from tests.helpers import check_gradients

RNG = np.random.default_rng(4)


class TestPositions:
    def test_shape(self):
        table = sinusoidal_positions(10, 8)
        assert table.shape == (10, 8)

    def test_values_bounded(self):
        table = sinusoidal_positions(100, 16)
        assert np.abs(table).max() <= 1.0

    def test_first_position_pattern(self):
        table = sinusoidal_positions(4, 6)
        np.testing.assert_allclose(table[0, 0::2], 0.0)  # sin(0)
        np.testing.assert_allclose(table[0, 1::2], 1.0)  # cos(0)

    def test_distinct_positions(self):
        table = sinusoidal_positions(50, 12)
        dists = np.linalg.norm(table[:, None] - table[None, :], axis=-1)
        off_diag = dists + np.eye(50) * 1e9
        assert off_diag.min() > 1e-3  # all positions distinguishable

    def test_odd_dimension(self):
        table = sinusoidal_positions(5, 7)
        assert table.shape == (5, 7)
        assert np.isfinite(table).all()


class TestMultiHeadAttention:
    def test_output_shape(self):
        mha = MultiHeadAttention(8, 2, rng=RNG)
        out = mha(Tensor(RNG.standard_normal((3, 5, 8))))
        assert out.shape == (3, 5, 8)

    def test_indivisible_heads_raises(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(7, 2, rng=RNG)

    def test_padding_mask_blocks_attention(self):
        """Changing a masked position must not change unmasked outputs."""
        mha = MultiHeadAttention(8, 2, rng=np.random.default_rng(11))
        mha.eval()
        x = RNG.standard_normal((1, 4, 8))
        mask = np.array([[True, True, True, False]])
        out1 = mha(Tensor(x), key_padding_mask=mask).data.copy()
        x2 = x.copy()
        x2[0, 3] = 100.0  # perturb the padded event
        out2 = mha(Tensor(x2), key_padding_mask=mask).data
        np.testing.assert_allclose(out1[:, :3], out2[:, :3], rtol=1e-8)

    def test_gradients(self):
        mha = MultiHeadAttention(4, 2, rng=np.random.default_rng(12))
        mha.eval()
        x = RNG.standard_normal((2, 3, 4))

        def run(ts):
            return (mha(ts[0]) ** 2).sum()

        check_gradients(run, [x], rtol=1e-3, atol=1e-5)


class TestEncoder:
    def test_output_shapes(self):
        enc = TransformerEncoder(8, num_heads=2, num_layers=2, rng=RNG)
        enc.eval()
        states, pooled = enc(Tensor(RNG.standard_normal((3, 6, 8))))
        assert states.shape == (3, 6, 8)
        assert pooled.shape == (3, 8)

    def test_masked_pooling_ignores_padding(self):
        enc = TransformerEncoder(8, num_heads=2, num_layers=1, rng=np.random.default_rng(13))
        enc.eval()
        x = RNG.standard_normal((1, 5, 8))
        mask = np.array([[True, True, True, False, False]])
        _, pooled1 = enc(Tensor(x), mask=mask)
        x2 = x.copy()
        x2[0, 3:] = 55.0
        _, pooled2 = enc(Tensor(x2), mask=mask)
        np.testing.assert_allclose(pooled1.data, pooled2.data, rtol=1e-8)

    def test_too_long_sequence_raises(self):
        enc = TransformerEncoder(4, num_heads=2, num_layers=1, max_len=8, rng=RNG)
        with pytest.raises(ValueError):
            enc(Tensor(RNG.standard_normal((1, 9, 4))))

    def test_gradients_flow_to_all_parameters(self):
        enc = TransformerEncoder(4, num_heads=2, num_layers=1, rng=RNG)
        enc.eval()
        _, pooled = enc(Tensor(RNG.standard_normal((2, 3, 4))))
        (pooled**2).sum().backward()
        missing = [n for n, p in enc.named_parameters() if p.grad is None]
        assert not missing, missing

    def test_layer_residual_path(self):
        """With zeroed weights the block must reduce to identity."""
        layer = TransformerEncoderLayer(4, 2, rng=RNG)
        layer.eval()
        for param in layer.parameters():
            param.data = np.zeros_like(param.data)
        x = RNG.standard_normal((1, 3, 4))
        out = layer(Tensor(x))
        np.testing.assert_allclose(out.data, x, atol=1e-9)
