"""Tests for hand-crafted aggregate features (Section 4.1.2)."""

import numpy as np
import pytest

from repro.baselines import FeatureMatrix, handcrafted_features
from repro.data import EventSchema, EventSequence, SequenceDataset

SCHEMA = EventSchema(categorical={"mcc": 4}, numerical=("amount",))


def dataset_with(amounts, mccs):
    seq = EventSequence(
        0,
        {
            "event_time": np.arange(len(amounts), dtype=float),
            "mcc": np.array(mccs),
            "amount": np.array(amounts, dtype=float),
        },
        label=0,
    )
    return SequenceDataset([seq], SCHEMA)


class TestFeatureMatrix:
    def test_width_checked(self):
        with pytest.raises(ValueError):
            FeatureMatrix(np.zeros((2, 3)), ["a", "b"])

    def test_concat_matrices(self):
        a = FeatureMatrix(np.ones((2, 2)), ["x", "y"])
        b = FeatureMatrix(np.zeros((2, 1)), ["z"])
        merged = a.concat(b)
        assert merged.shape == (2, 3)
        assert merged.names == ["x", "y", "z"]

    def test_concat_raw_array_names_generated(self):
        a = FeatureMatrix(np.ones((2, 1)), ["x"])
        merged = a.concat(np.zeros((2, 3)))
        assert merged.names == ["x", "emb_0", "emb_1", "emb_2"]


class TestHandcrafted:
    def test_global_aggregates_correct(self):
        features = handcrafted_features(dataset_with([1, 2, 3], [1, 2, 3]))
        values = dict(zip(features.names, features.values[0]))
        assert values["amount_sum"] == 6
        assert values["amount_mean"] == 2
        assert values["amount_min"] == 1
        assert values["amount_max"] == 3
        np.testing.assert_allclose(values["amount_std"], np.std([1, 2, 3]))

    def test_activity_statistics(self):
        features = handcrafted_features(dataset_with([1, 1, 1, 1], [1, 1, 2, 2]))
        values = dict(zip(features.names, features.values[0]))
        assert values["length"] == 4
        assert values["duration"] == 3.0
        np.testing.assert_allclose(values["events_per_day"], 4 / 3.0)

    def test_groupwise_aggregates(self):
        """'mean amount for the specific MCC code' — the paper's example."""
        features = handcrafted_features(dataset_with([10, 20, 300], [1, 1, 2]))
        values = dict(zip(features.names, features.values[0]))
        np.testing.assert_allclose(values["mcc_1_count"], 2 / 3)
        np.testing.assert_allclose(values["mcc_1_amount_mean"], 15.0)
        np.testing.assert_allclose(values["mcc_2_amount_mean"], 300.0)
        assert values["mcc_3_count"] == 0.0
        assert values["mcc_3_amount_mean"] == 0.0  # empty group -> 0

    def test_group_fields_restriction(self):
        ds = dataset_with([1, 2], [1, 2])
        restricted = handcrafted_features(ds, group_fields=())
        full = handcrafted_features(ds)
        assert restricted.shape[1] < full.shape[1]
        assert not any("mcc" in name for name in restricted.names)

    def test_unknown_group_field_raises(self):
        with pytest.raises(ValueError):
            handcrafted_features(dataset_with([1], [1]), group_fields=("bad",))

    def test_feature_count_formula(self):
        ds = dataset_with([1, 2], [1, 2])
        features = handcrafted_features(ds)
        # 3 activity + 5 amount aggregates + 3 codes * (count + mean).
        assert features.shape == (1, 3 + 5 + 3 * 2)

    def test_features_discriminate_classes(self):
        """Features must carry the synthetic worlds' label signal."""
        from repro.data.synthetic import make_age_dataset

        ds = make_age_dataset(num_clients=120, labeled_fraction=1.0, seed=0)
        features = handcrafted_features(ds)
        labels = ds.label_array()
        # Class-conditional means of the amount_mean feature must spread.
        col = features.names.index("amount_mean")
        per_class = [features.values[labels == c, col].mean() for c in range(4)]
        assert max(per_class) - min(per_class) > 1.0
