"""Tests for the self-supervised baselines: CPC, NSP, SOP, RTD and the
supervised classifier used for fine-tuning."""

import numpy as np
import pytest

from repro.baselines import (
    CPC,
    NSP,
    RTD,
    SOP,
    FineTuneConfig,
    PretrainConfig,
    SequenceClassifier,
    corrupt_batch,
    random_slice_pair,
    truncate_tail,
)
from repro.data import collate
from repro.data.synthetic import make_churn_dataset
from repro.encoders import build_encoder


@pytest.fixture(scope="module")
def dataset():
    return make_churn_dataset(num_clients=30, mean_length=40, min_length=20,
                              max_length=60, labeled_fraction=1.0, seed=0)


FAST = PretrainConfig(num_epochs=2, batch_size=8, learning_rate=0.01,
                      max_seq_length=50, seed=0)


class TestHelpers:
    def test_truncate_tail_keeps_recent(self, dataset):
        seq = dataset[0]
        cut = truncate_tail(seq, 10)
        assert len(cut) == min(10, len(seq))
        np.testing.assert_allclose(
            cut.fields["event_time"], seq.fields["event_time"][-len(cut):]
        )

    def test_truncate_noop_when_short(self, dataset):
        seq = dataset[0]
        assert truncate_tail(seq, 10_000) is seq

    def test_random_slice_pair_consecutive(self, dataset):
        rng = np.random.default_rng(0)
        pair = random_slice_pair(dataset[0], rng)
        assert pair is not None
        a, b = pair
        assert a.fields["event_time"][-1] <= b.fields["event_time"][0]

    def test_random_slice_pair_too_short(self):
        seq = dataset_seq = make_churn_dataset(num_clients=1, mean_length=15,
                                               min_length=15, max_length=15,
                                               seed=1)[0]
        assert random_slice_pair(seq.slice(0, 5), np.random.default_rng(0)) is None


class TestCPC:
    def test_validation(self, dataset):
        with pytest.raises(ValueError):
            CPC(dataset.schema, num_horizons=0)

    def test_fit_loss_decreases(self, dataset):
        cpc = CPC(dataset.schema, hidden_size=12, num_horizons=2, seed=0)
        config = PretrainConfig(num_epochs=4, batch_size=8, learning_rate=0.01,
                                max_seq_length=40, seed=0)
        cpc.fit(dataset, config)
        assert len(cpc.history) == 4
        assert cpc.history[-1] < cpc.history[0]

    def test_embed_shape(self, dataset):
        cpc = CPC(dataset.schema, hidden_size=12, num_horizons=2, seed=0)
        cpc.fit(dataset, FAST)
        emb = cpc.embed(dataset)
        assert emb.shape == (len(dataset), 12)
        assert np.isfinite(emb).all()

    def test_info_nce_better_than_chance_after_training(self, dataset):
        """After fitting, InfoNCE loss should beat log(batch) (chance)."""
        cpc = CPC(dataset.schema, hidden_size=12, num_horizons=2, seed=0)
        config = PretrainConfig(num_epochs=5, batch_size=8, learning_rate=0.01,
                                max_seq_length=40, seed=0)
        cpc.fit(dataset, config)
        assert cpc.history[-1] < np.log(8)


class TestPairTasks:
    @pytest.mark.parametrize("cls", [NSP, SOP])
    def test_fit_and_embed(self, cls, dataset):
        encoder = build_encoder(dataset.schema, 12, "gru",
                                rng=np.random.default_rng(0))
        model = cls(encoder, dataset.schema, seed=0)
        model.fit(dataset, FAST)
        assert len(model.history) == 2
        assert np.isfinite(model.history).all()
        emb = model.embed(dataset)
        assert emb.shape == (len(dataset), 12)

    def test_nsp_pair_semantics(self, dataset):
        """Positive pairs are consecutive; negatives come from other seqs."""
        encoder = build_encoder(dataset.schema, 8, "gru",
                                rng=np.random.default_rng(1))
        model = NSP(encoder, dataset.schema, seed=0)
        rng = np.random.default_rng(0)
        first, second, labels = model._make_pairs(dataset.sequences[:12], rng)
        for a, b, label in zip(first, second, labels):
            if label == 1.0:
                assert a.seq_id == b.seq_id
                assert a.fields["event_time"][-1] <= b.fields["event_time"][0]
            else:
                assert a.seq_id != b.seq_id

    def test_sop_pair_semantics(self, dataset):
        """SOP pairs always share the entity; the label encodes order."""
        encoder = build_encoder(dataset.schema, 8, "gru",
                                rng=np.random.default_rng(1))
        model = SOP(encoder, dataset.schema, seed=0)
        rng = np.random.default_rng(0)
        first, second, labels = model._make_pairs(dataset.sequences[:12], rng)
        assert set(labels) == {0.0, 1.0}
        for a, b, label in zip(first, second, labels):
            assert a.seq_id == b.seq_id
            in_order = a.fields["event_time"][-1] <= b.fields["event_time"][0]
            assert in_order == bool(label)

    def test_nsp_loss_stays_near_or_below_chance(self, dataset):
        """NSP is a weak, noisy objective at toy scale (it also trails in
        the paper's Table 6); we only require it not to diverge."""
        encoder = build_encoder(dataset.schema, 12, "gru",
                                rng=np.random.default_rng(1))
        model = NSP(encoder, dataset.schema, seed=0)
        config = PretrainConfig(num_epochs=6, batch_size=10,
                                learning_rate=0.005, max_seq_length=50, seed=0)
        model.fit(dataset, config)
        assert model.history[-1] < np.log(2) + 0.15


class TestRTD:
    def test_corrupt_batch_properties(self, dataset):
        batch = collate(dataset.sequences[:6], dataset.schema)
        rng = np.random.default_rng(0)
        fields, replaced = corrupt_batch(batch, dataset.schema, 0.3, rng)
        # Times untouched, replacements only at valid positions.
        np.testing.assert_array_equal(fields["event_time"],
                                      batch.fields["event_time"])
        assert replaced.sum() > 0
        assert not replaced[~batch.mask].any()
        frac = replaced[batch.mask].mean()
        assert 0.15 < frac < 0.45

    def test_corrupt_actually_changes_fields(self, dataset):
        batch = collate(dataset.sequences[:6], dataset.schema)
        rng = np.random.default_rng(1)
        fields, replaced = corrupt_batch(batch, dataset.schema, 0.3, rng)
        rows, cols = np.nonzero(replaced)
        changed = 0
        for r, c in zip(rows, cols):
            for name in ("mcc", "trx_type", "amount"):
                if fields[name][r, c] != batch.fields[name][r, c]:
                    changed += 1
                    break
        # Donor events usually differ in at least one field.
        assert changed > 0.5 * len(rows)

    def test_replace_prob_validated(self, dataset):
        batch = collate(dataset.sequences[:2], dataset.schema)
        with pytest.raises(ValueError):
            corrupt_batch(batch, dataset.schema, 0.0, np.random.default_rng(0))

    def test_single_row_batch_uncorrupted(self, dataset):
        batch = collate(dataset.sequences[:1], dataset.schema)
        _, replaced = corrupt_batch(batch, dataset.schema, 0.5,
                                    np.random.default_rng(0))
        assert not replaced.any()

    def test_fit_loss_decreases(self, dataset):
        rtd = RTD(dataset.schema, hidden_size=12, seed=0)
        config = PretrainConfig(num_epochs=4, batch_size=8, learning_rate=0.01,
                                max_seq_length=40, seed=0)
        rtd.fit(dataset, config)
        assert rtd.history[-1] < rtd.history[0]
        assert rtd.embed(dataset).shape == (len(dataset), 12)


class TestSequenceClassifier:
    def test_validation(self, dataset):
        encoder = build_encoder(dataset.schema, 8, "gru")
        with pytest.raises(ValueError):
            SequenceClassifier(encoder, num_classes=1)

    def test_fit_improves_accuracy(self, dataset):
        encoder = build_encoder(dataset.schema, 16, "gru",
                                rng=np.random.default_rng(2))
        clf = SequenceClassifier(encoder, num_classes=2, seed=0)
        labels = dataset.label_array()
        before = (clf.predict(dataset) == labels).mean()
        clf.fit(dataset, FineTuneConfig(num_epochs=10, batch_size=10,
                                        learning_rate=0.01, seed=0))
        after = (clf.predict(dataset) == labels).mean()
        assert after >= max(before, 0.6)
        assert clf.history[-1] < clf.history[0]

    def test_predict_proba_is_distribution(self, dataset):
        encoder = build_encoder(dataset.schema, 8, "gru")
        clf = SequenceClassifier(encoder, num_classes=2)
        probs = clf.predict_proba(dataset)
        assert probs.shape == (len(dataset), 2)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(len(dataset)))

    def test_unlabeled_dataset_raises(self):
        ds = make_churn_dataset(num_clients=10, labeled_fraction=0.0, seed=0)
        encoder = build_encoder(ds.schema, 8, "gru")
        clf = SequenceClassifier(encoder, num_classes=2)
        with pytest.raises(ValueError):
            clf.fit(ds)
