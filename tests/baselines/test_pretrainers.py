"""Tests for the self-supervised baselines: CPC, NSP, SOP, RTD and the
supervised classifier used for fine-tuning."""

import numpy as np
import pytest

from repro.baselines import (
    CPC,
    NSP,
    RTD,
    SOP,
    FineTuneConfig,
    PretrainConfig,
    SequenceClassifier,
    corrupt_batch,
    random_slice_pair,
    truncate_tail,
)
from repro.data import collate
from repro.data.synthetic import make_churn_dataset
from repro.encoders import build_encoder


@pytest.fixture(scope="module")
def dataset():
    return make_churn_dataset(num_clients=30, mean_length=40, min_length=20,
                              max_length=60, labeled_fraction=1.0, seed=0)


FAST = PretrainConfig(num_epochs=2, batch_size=8, learning_rate=0.01,
                      max_seq_length=50, seed=0)


class TestHelpers:
    def test_truncate_tail_keeps_recent(self, dataset):
        seq = dataset[0]
        cut = truncate_tail(seq, 10)
        assert len(cut) == min(10, len(seq))
        np.testing.assert_allclose(
            cut.fields["event_time"], seq.fields["event_time"][-len(cut):]
        )

    def test_truncate_noop_when_short(self, dataset):
        seq = dataset[0]
        assert truncate_tail(seq, 10_000) is seq

    def test_random_slice_pair_consecutive(self, dataset):
        rng = np.random.default_rng(0)
        pair = random_slice_pair(dataset[0], rng)
        assert pair is not None
        a, b = pair
        assert a.fields["event_time"][-1] <= b.fields["event_time"][0]

    def test_random_slice_pair_too_short(self):
        seq = dataset_seq = make_churn_dataset(num_clients=1, mean_length=15,
                                               min_length=15, max_length=15,
                                               seed=1)[0]
        assert random_slice_pair(seq.slice(0, 5), np.random.default_rng(0)) is None


class TestPretrainConfig:
    def test_engine_validated(self):
        with pytest.raises(ValueError):
            PretrainConfig(engine="cuda")

    def test_numeric_fields_validated(self):
        """PretrainConfig rejects the same degenerate values TrainConfig does."""
        with pytest.raises(ValueError):
            PretrainConfig(num_epochs=0)
        with pytest.raises(ValueError):
            PretrainConfig(batch_size=1)
        with pytest.raises(ValueError):
            PretrainConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            PretrainConfig(learning_rate=-1.0)

    def test_bucket_window_accepts_none_and_int(self):
        assert PretrainConfig().bucket_window is None
        assert PretrainConfig(bucket_window=4).bucket_window == 4


class TestCPC:
    def test_validation(self, dataset):
        with pytest.raises(ValueError):
            CPC(dataset.schema, num_horizons=0)

    def test_info_nce_handles_non_prefix_masks(self, dataset):
        """Anchor validity must require BOTH the context and the target.

        A mask with interior holes (not a right-padded prefix) breaks
        the old `anchor_valid = mask[:, k:]` shortcut: position t could
        be padding while t+k is real.  The loss must count exactly the
        anchors where both ends are real events, matching a
        loop-written reference.
        """
        from repro.nn import Tensor

        cpc = CPC(dataset.schema, hidden_size=6, num_horizons=2, seed=0)
        rng = np.random.default_rng(3)
        batch_size, steps, hidden = 4, 7, 6
        dim = cpc.encoder.trx_encoder.output_dim
        states = rng.standard_normal((batch_size, steps, hidden))
        events = rng.standard_normal((batch_size, steps, dim))
        mask = np.ones((batch_size, steps), dtype=bool)
        # Interior holes: row 0 misses t=2 (but t=2+k are real), row 1
        # misses t=0 and t=4, row 3 is a plain short prefix.
        mask[0, 2] = False
        mask[1, [0, 4]] = False
        mask[3, 4:] = False
        assert np.any(~mask[:, :-1] & mask[:, 1:])  # holes, not a prefix

        loss, terms = cpc._info_nce(Tensor(states), Tensor(events), mask)

        # Loop-written reference over valid (b, t, k) anchors.
        total, expected_terms = 0.0, 0
        for k, predictor in enumerate(cpc.predictors, start=1):
            weight, bias = predictor.weight.data, predictor.bias.data
            for t in range(steps - k):
                for b in range(batch_size):
                    if not (mask[b, t] and mask[b, t + k]):
                        continue
                    scores = (states[b, t] @ weight.T + bias) @ events[:, t + k].T
                    scores = np.where(mask[:, t + k], scores, -1e9)
                    logp = scores - np.log(np.exp(scores - scores.max()).sum()) \
                        - scores.max()
                    total += -logp[b]
                    expected_terms += 1
        assert terms == expected_terms
        assert loss.item() == pytest.approx(total / expected_terms, abs=1e-10)

        # The old shortcut counted anchors whose context was padding.
        buggy_terms = sum(
            int(mask[:, k:].sum()) for k in (1, 2)
        )
        assert expected_terms < buggy_terms

    def test_fit_loss_decreases(self, dataset):
        cpc = CPC(dataset.schema, hidden_size=12, num_horizons=2, seed=0)
        config = PretrainConfig(num_epochs=4, batch_size=8, learning_rate=0.01,
                                max_seq_length=40, seed=0)
        cpc.fit(dataset, config)
        assert len(cpc.history) == 4
        assert cpc.history[-1] < cpc.history[0]

    def test_embed_shape(self, dataset):
        cpc = CPC(dataset.schema, hidden_size=12, num_horizons=2, seed=0)
        cpc.fit(dataset, FAST)
        emb = cpc.embed(dataset)
        assert emb.shape == (len(dataset), 12)
        assert np.isfinite(emb).all()

    def test_info_nce_better_than_chance_after_training(self, dataset):
        """After fitting, InfoNCE loss should beat log(batch) (chance)."""
        cpc = CPC(dataset.schema, hidden_size=12, num_horizons=2, seed=0)
        config = PretrainConfig(num_epochs=5, batch_size=8, learning_rate=0.01,
                                max_seq_length=40, seed=0)
        cpc.fit(dataset, config)
        assert cpc.history[-1] < np.log(8)


class TestPairTasks:
    @pytest.mark.parametrize("cls", [NSP, SOP])
    def test_fit_and_embed(self, cls, dataset):
        encoder = build_encoder(dataset.schema, 12, "gru",
                                rng=np.random.default_rng(0))
        model = cls(encoder, dataset.schema, seed=0)
        model.fit(dataset, FAST)
        assert len(model.history) == 2
        assert np.isfinite(model.history).all()
        emb = model.embed(dataset)
        assert emb.shape == (len(dataset), 12)

    def test_nsp_pair_semantics(self, dataset):
        """Positive pairs are consecutive; negatives come from other seqs."""
        encoder = build_encoder(dataset.schema, 8, "gru",
                                rng=np.random.default_rng(1))
        model = NSP(encoder, dataset.schema, seed=0)
        rng = np.random.default_rng(0)
        first, second, labels = model._make_pairs(dataset.sequences[:12], rng)
        for a, b, label in zip(first, second, labels):
            if label == 1.0:
                assert a.seq_id == b.seq_id
                assert a.fields["event_time"][-1] <= b.fields["event_time"][0]
            else:
                assert a.seq_id != b.seq_id

    def test_sop_pair_semantics(self, dataset):
        """SOP pairs always share the entity; the label encodes order."""
        encoder = build_encoder(dataset.schema, 8, "gru",
                                rng=np.random.default_rng(1))
        model = SOP(encoder, dataset.schema, seed=0)
        rng = np.random.default_rng(0)
        first, second, labels = model._make_pairs(dataset.sequences[:12], rng)
        assert set(labels) == {0.0, 1.0}
        for a, b, label in zip(first, second, labels):
            assert a.seq_id == b.seq_id
            in_order = a.fields["event_time"][-1] <= b.fields["event_time"][0]
            assert in_order == bool(label)

    def test_nsp_loss_stays_near_or_below_chance(self, dataset):
        """NSP is a weak, noisy objective at toy scale (it also trails in
        the paper's Table 6); we only require it not to diverge."""
        encoder = build_encoder(dataset.schema, 12, "gru",
                                rng=np.random.default_rng(1))
        model = NSP(encoder, dataset.schema, seed=0)
        config = PretrainConfig(num_epochs=6, batch_size=10,
                                learning_rate=0.005, max_seq_length=50, seed=0)
        model.fit(dataset, config)
        assert model.history[-1] < np.log(2) + 0.15


class TestRTD:
    def test_corrupt_batch_properties(self, dataset):
        batch = collate(dataset.sequences[:6], dataset.schema)
        rng = np.random.default_rng(0)
        fields, replaced = corrupt_batch(batch, dataset.schema, 0.3, rng)
        # Times untouched, replacements only at valid positions.
        np.testing.assert_array_equal(fields["event_time"],
                                      batch.fields["event_time"])
        assert replaced.sum() > 0
        assert not replaced[~batch.mask].any()
        frac = replaced[batch.mask].mean()
        assert 0.15 < frac < 0.45

    def test_corrupt_actually_changes_fields(self, dataset):
        batch = collate(dataset.sequences[:6], dataset.schema)
        rng = np.random.default_rng(1)
        fields, replaced = corrupt_batch(batch, dataset.schema, 0.3, rng)
        rows, cols = np.nonzero(replaced)
        changed = 0
        for r, c in zip(rows, cols):
            for name in ("mcc", "trx_type", "amount"):
                if fields[name][r, c] != batch.fields[name][r, c]:
                    changed += 1
                    break
        # Donor events usually differ in at least one field.
        assert changed > 0.5 * len(rows)

    def test_corrupt_batch_distributions_unchanged(self, dataset):
        """The vectorized donor draw keeps the corruption distributions.

        Contract of the old per-position loop: each valid position is
        chosen independently with ``replace_prob``; each chosen position
        takes its donor uniformly from the *other* rows' valid events;
        times are never touched.  Checked over many trials.
        """
        batch = collate(dataset.sequences[:6], dataset.schema)
        mask = batch.mask
        # Valid event tuples per row (time excluded — donors keep the
        # target's time), to verify every replacement is a real donor
        # event from a different row.
        donor_fields = ("mcc", "trx_type", "amount")
        row_events = []
        for row in range(batch.batch_size):
            cols = np.flatnonzero(mask[row])
            row_events.append({
                tuple(batch.fields[name][row, col] for name in donor_fields)
                for col in cols
            })

        fractions, donor_matches = [], 0
        replaced_total = 0
        counts = np.zeros(mask.shape)
        for trial in range(200):
            rng = np.random.default_rng(1000 + trial)
            fields, replaced = corrupt_batch(batch, dataset.schema, 0.3, rng)
            np.testing.assert_array_equal(fields["event_time"],
                                          batch.fields["event_time"])
            assert not replaced[~mask].any()
            fractions.append(replaced[mask].mean())
            counts += replaced
            for r, c in zip(*np.nonzero(replaced)):
                replaced_total += 1
                event = tuple(fields[name][r, c] for name in donor_fields)
                other_rows = [row for row in range(batch.batch_size)
                              if row != r and event in row_events[row]]
                if other_rows:
                    donor_matches += 1
        # Bernoulli(0.3) per valid position: the mean replacement
        # fraction over 200 trials concentrates tightly around 0.3.
        assert abs(np.mean(fractions) - 0.3) < 0.02
        # Every position is eligible: each valid slot got replaced in
        # some trial, and padding never did.
        assert (counts[mask] > 0).all()
        assert (counts[~mask] == 0).all()
        # Donors are (other-row) valid events.  A donor event could
        # coincidentally equal one of the target row's events, so allow
        # a sliver of ambiguity, not a systematic miss.
        assert donor_matches > 0.99 * replaced_total

    def test_replace_prob_validated(self, dataset):
        batch = collate(dataset.sequences[:2], dataset.schema)
        with pytest.raises(ValueError):
            corrupt_batch(batch, dataset.schema, 0.0, np.random.default_rng(0))

    def test_single_row_batch_uncorrupted(self, dataset):
        batch = collate(dataset.sequences[:1], dataset.schema)
        _, replaced = corrupt_batch(batch, dataset.schema, 0.5,
                                    np.random.default_rng(0))
        assert not replaced.any()

    def test_no_cross_row_donors_leaves_batch_uncorrupted(self, dataset):
        """A hand-built batch whose valid events all sit in one row.

        ``collate`` cannot produce this (it rejects empty sequences),
        but the public ``corrupt_batch`` API can receive it; positions
        without a cross-row donor must be skipped, not spun on forever
        by the redraw loop.
        """
        source = collate(dataset.sequences[:2], dataset.schema)
        batch = type(source)(
            fields=source.fields,
            lengths=np.array([0, source.lengths[1]]),
            seq_ids=source.seq_ids,
            labels=source.labels,
            schema=source.schema,
        )
        fields, replaced = corrupt_batch(batch, dataset.schema, 0.5,
                                         np.random.default_rng(0))
        assert not replaced.any()
        for name in fields:
            np.testing.assert_array_equal(fields[name], batch.fields[name])

    def test_fit_loss_decreases(self, dataset):
        rtd = RTD(dataset.schema, hidden_size=12, seed=0)
        config = PretrainConfig(num_epochs=4, batch_size=8, learning_rate=0.01,
                                max_seq_length=40, seed=0)
        rtd.fit(dataset, config)
        assert rtd.history[-1] < rtd.history[0]
        assert rtd.embed(dataset).shape == (len(dataset), 12)


class TestSequenceClassifier:
    def test_validation(self, dataset):
        encoder = build_encoder(dataset.schema, 8, "gru")
        with pytest.raises(ValueError):
            SequenceClassifier(encoder, num_classes=1)

    def test_fit_improves_accuracy(self, dataset):
        encoder = build_encoder(dataset.schema, 16, "gru",
                                rng=np.random.default_rng(2))
        clf = SequenceClassifier(encoder, num_classes=2, seed=0)
        labels = dataset.label_array()
        before = (clf.predict(dataset) == labels).mean()
        clf.fit(dataset, FineTuneConfig(num_epochs=10, batch_size=10,
                                        learning_rate=0.01, seed=0))
        after = (clf.predict(dataset) == labels).mean()
        assert after >= max(before, 0.6)
        assert clf.history[-1] < clf.history[0]

    def test_predict_proba_is_distribution(self, dataset):
        encoder = build_encoder(dataset.schema, 8, "gru")
        clf = SequenceClassifier(encoder, num_classes=2)
        probs = clf.predict_proba(dataset)
        assert probs.shape == (len(dataset), 2)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(len(dataset)))

    def test_unlabeled_dataset_raises(self):
        ds = make_churn_dataset(num_clients=10, labeled_fraction=0.0, seed=0)
        encoder = build_encoder(ds.schema, 8, "gru")
        clf = SequenceClassifier(encoder, num_classes=2)
        with pytest.raises(ValueError):
            clf.fit(ds)

    @pytest.mark.parametrize("engine", ["tensor", "fused"])
    def test_encoder_learning_rate_respected(self, dataset, engine):
        """The encoder trains at encoder_learning_rate, not learning_rate.

        Regression test for the silently-ignored ``encoder_learning_rate``
        (one Adam at ``learning_rate`` for *all* parameters): with bias
        correction, one Adam step moves a parameter by at most its
        group's lr — so after exactly one step, encoder deltas must be
        bounded by the (much smaller) encoder rate while the head moves
        on the order of ``learning_rate``.  Adam's scale invariance makes
        the bound immune to gradient clipping.
        """
        encoder_lr, head_lr = 0.001, 0.1
        encoder = build_encoder(dataset.schema, 12, "gru",
                                rng=np.random.default_rng(7))
        clf = SequenceClassifier(encoder, num_classes=2, seed=1)
        before = {name: value.copy()
                  for name, value in encoder.state_dict().items()}
        head_before = clf.head.weight.data.copy()
        clf.fit(dataset, FineTuneConfig(
            num_epochs=1, batch_size=len(dataset), learning_rate=head_lr,
            encoder_learning_rate=encoder_lr, seed=0, engine=engine))
        after = encoder.state_dict()
        deltas = [np.max(np.abs(after[name] - before[name]))
                  for name, param in encoder.named_parameters()]
        max_delta = max(deltas)
        # Bounded by the configured encoder rate (old bug: ~head_lr)...
        assert max_delta <= encoder_lr * 1.001, max_delta
        # ...and the encoder genuinely moved at that rate.
        assert max_delta > 0.5 * encoder_lr
        head_delta = np.max(np.abs(clf.head.weight.data - head_before))
        assert head_delta > 10 * encoder_lr
