"""Shared test utilities: numerical gradient checking."""

from __future__ import annotations

import numpy as np

from repro.nn import Tensor


def numerical_grad(func, arrays, index, eps=1e-6):
    """Central-difference gradient of ``func`` w.r.t. ``arrays[index]``.

    ``func`` maps a list of numpy arrays to a float.
    """
    base = [np.array(a, dtype=np.float64) for a in arrays]
    grad = np.zeros_like(base[index])
    flat = base[index].reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = func(base)
        flat[i] = original - eps
        down = func(base)
        flat[i] = original
        grad_flat[i] = (up - down) / (2.0 * eps)
    return grad


def check_gradients(build, arrays, rtol=1e-4, atol=1e-6, eps=1e-6):
    """Assert autograd gradients match finite differences.

    Parameters
    ----------
    build:
        Callable taking a list of Tensors and returning a scalar Tensor.
    arrays:
        List of numpy arrays used as leaf values.
    """
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = build(tensors)
    out.backward()

    def as_float(values):
        ts = [Tensor(v) for v in values]
        return float(build(ts).data)

    for index, tensor in enumerate(tensors):
        expected = numerical_grad(as_float, arrays, index, eps=eps)
        actual = tensor.grad if tensor.grad is not None else np.zeros_like(expected)
        np.testing.assert_allclose(
            actual, expected, rtol=rtol, atol=atol,
            err_msg="gradient mismatch for input %d" % index,
        )
