"""The ``python -m reprolint`` command-line interface.

Typical runs::

    python -m reprolint src/                          # full battery
    python -m reprolint src/ --baseline .reprolint-baseline.json
    python -m reprolint src/ --format json            # machine-readable
    python -m reprolint --list-rules                  # rule catalogue
    python -m reprolint src/ --write-baseline         # accept current debt

Exit status: 0 when every finding is baselined or suppressed, 1 when
new findings exist, 2 on usage errors.  Configuration is read from the
nearest ``pyproject.toml`` (``[tool.reprolint]``); ``--select`` narrows
the battery to specific rule ids.
"""

from __future__ import annotations

import argparse
import sys

from .baseline import Baseline
from .config import load_config
from .engine import lint_paths
from .reporters import render_json, render_text
from .rules import all_rules

__all__ = ["main", "run"]


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based invariant linter for the repro fused "
                    "runtime (precision policy, plan invalidation, "
                    "thread-safety, API contracts).",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (e.g. src/)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="baseline JSON of grandfathered findings "
                             "(default: [tool.reprolint].baseline)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline file from this run's "
                             "findings and exit 0")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--select", action="append", default=None,
                        metavar="RPxxx",
                        help="run only these rule ids (repeatable)")
    parser.add_argument("--config", default=None, metavar="PYPROJECT",
                        help="explicit pyproject.toml "
                             "(default: nearest ancestor)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any configured baseline (report "
                             "every finding)")
    return parser


def run(paths, baseline_path=None, select=None, config_path=None,
        write_baseline=False, use_baseline=True):
    """Programmatic entry point; returns the result dict + exit code.

    The result dict feeds both reporters: ``findings`` (new findings
    only), ``baselined``/``suppressed`` counters, ``stale_baseline``
    entries and ``files`` scanned.
    """
    config = load_config(pyproject=config_path,
                         start=paths[0] if paths else ".")
    rules = all_rules(select)
    findings, suppressed, files = lint_paths(paths, rules, config)
    baseline_file = ((baseline_path or config.baseline)
                     if use_baseline else None)
    stale = []
    baselined = 0
    if write_baseline:
        if not baseline_file:
            raise SystemExit("--write-baseline needs --baseline or a "
                             "[tool.reprolint].baseline setting")
        Baseline(path=baseline_file).write(findings)
        new = []
    elif baseline_file:
        baseline = Baseline.load(baseline_file)
        new, matched, stale = baseline.split(findings)
        baselined = len(matched)
    else:
        new = findings
    result = {
        "findings": new,
        "baselined": baselined,
        "suppressed": suppressed,
        "stale_baseline": stale,
        "files": files,
        "baseline_path": baseline_file or "<none>",
    }
    return result, (1 if new else 0)


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print("%s  %-24s %s" % (rule.id, rule.name, rule.rationale))
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("reprolint: error: no paths given", file=sys.stderr)
        return 2
    result, status = run(
        args.paths,
        baseline_path=args.baseline,
        select=args.select,
        config_path=args.config,
        write_baseline=args.write_baseline,
        use_baseline=not args.no_baseline,
    )
    if args.write_baseline:
        print("reprolint: baseline written to %s" % result["baseline_path"])
        return 0
    render = render_json if args.format == "json" else render_text
    print(render(result))
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
