"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json

__all__ = ["render_text", "render_json", "JSON_SCHEMA_VERSION"]

#: Bumped whenever the JSON layout changes incompatibly.
JSON_SCHEMA_VERSION = 1


def render_text(result):
    """Human-readable report: one ``path:line:col: RPxxx message`` per finding.

    ``result`` is the dict built by :func:`reprolint.cli.run` — findings
    plus the summary counters.
    """
    lines = []
    for finding in result["findings"]:
        lines.append("%s: %s [%s] %s"
                     % (finding.location(), finding.severity, finding.rule,
                        finding.message))
        if finding.line_text.strip():
            lines.append("    %s" % finding.line_text.strip())
    for entry in result["stale_baseline"]:
        lines.append(
            "stale baseline entry: %s %s (fingerprint %s) no longer occurs "
            "— delete it from %s"
            % (entry.get("rule"), entry.get("path"),
               entry.get("fingerprint"), result["baseline_path"])
        )
    lines.append(
        "reprolint: %d file(s), %d finding(s)"
        " (%d baselined, %d suppressed inline)"
        % (result["files"], len(result["findings"]),
           result["baselined"], result["suppressed"])
    )
    return "\n".join(lines)


def render_json(result):
    """Machine-readable report (schema ``JSON_SCHEMA_VERSION``).

    Layout::

        {"version": 1, "tool": "reprolint",
         "summary": {"files": n, "findings": n, "baselined": n,
                     "suppressed": n, "stale_baseline": n},
         "findings": [{"rule", "path", "line", "col",
                       "severity", "message"}, ...],
         "stale_baseline": [<baseline entries>, ...]}
    """
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "tool": "reprolint",
        "summary": {
            "files": result["files"],
            "findings": len(result["findings"]),
            "baselined": result["baselined"],
            "suppressed": result["suppressed"],
            "stale_baseline": len(result["stale_baseline"]),
        },
        "findings": [finding.to_json() for finding in result["findings"]],
        "stale_baseline": list(result["stale_baseline"]),
    }
    return json.dumps(payload, indent=2)
