"""``python -m reprolint`` — run the invariant linter."""

from .cli import main

raise SystemExit(main())
