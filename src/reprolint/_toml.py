"""Minimal TOML reader for ``[tool.reprolint]`` (3.9-compatible).

Python 3.11 ships :mod:`tomllib`; the tier-1 matrix still runs 3.9, so
:func:`load_toml` falls back to a tiny parser covering exactly the
subset reprolint's configuration uses — bare tables, string/number/bool
scalars and (possibly multi-line) arrays of strings.  It is *not* a
general TOML parser; anything exotic in other pyproject sections is
skipped rather than misread (unparsable lines are ignored).
"""

from __future__ import annotations

import re

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised on the 3.9 CI leg
    tomllib = None

__all__ = ["load_toml"]

_SECTION_RE = re.compile(r"^\[(?P<name>[^\]]+)\]\s*(?:#.*)?$")
_KEY_RE = re.compile(r'^(?P<key>[A-Za-z0-9_."\'-]+)\s*=\s*(?P<value>.+)$')
_STRING_RE = re.compile(r'"((?:[^"\\]|\\.)*)"|\'([^\']*)\'')


def load_toml(path):
    """Parse ``path`` into nested dicts (tomllib when available)."""
    with open(path, "rb") as handle:
        data = handle.read()
    if tomllib is not None:
        return tomllib.loads(data.decode("utf-8"))
    return _parse(data.decode("utf-8"))


def _parse(text):
    root = {}
    table = root
    buffer = None  # (key, accumulated text) for a multi-line array
    for raw in text.splitlines():
        line = raw.strip()
        if buffer is not None:
            key, acc = buffer
            acc += " " + line
            if _balanced(acc):
                table[key] = _value(acc)
                buffer = None
            else:
                buffer = (key, acc)
            continue
        if not line or line.startswith("#"):
            continue
        section = _SECTION_RE.match(line)
        if section:
            table = _dig(root, section.group("name"))
            continue
        pair = _KEY_RE.match(line)
        if not pair:
            continue
        key = pair.group("key").strip().strip('"\'')
        value = pair.group("value").strip()
        if value.startswith("[") and not _balanced(value):
            buffer = (key, value)
        else:
            table[key] = _value(value)
    return root


def _dig(root, dotted):
    table = root
    for part in _split_dotted(dotted):
        table = table.setdefault(part, {})
    return table


def _split_dotted(dotted):
    """Split a table header on dots, honouring quoted segments."""
    parts = []
    current = ""
    quote = None
    for char in dotted:
        if quote:
            if char == quote:
                quote = None
            else:
                current += char
        elif char in "\"'":
            quote = char
        elif char == ".":
            parts.append(current.strip())
            current = ""
        else:
            current += char
    parts.append(current.strip())
    return [p for p in parts if p]


def _balanced(text):
    return text.count("[") <= text.count("]")


def _value(text):
    text = text.split("#", 1)[0].strip() if not text.startswith(
        ("'", '"', "[")) else text.strip()
    if text.startswith("["):
        inner = text.strip()
        inner = inner[1:inner.rfind("]")]
        return [_scalar(m.group(1) if m.group(1) is not None else m.group(2))
                for m in _STRING_RE.finditer(inner)]
    return _scalar_text(text)


def _scalar_text(text):
    match = _STRING_RE.match(text)
    if match:
        return _scalar(match.group(1) if match.group(1) is not None
                       else match.group(2))
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            return text


def _scalar(text):
    return text.replace('\\"', '"').replace("\\\\", "\\")
