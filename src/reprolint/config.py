"""Configuration: ``[tool.reprolint]`` in pyproject.toml.

Lint severity and scope live next to the ruff configuration so there is
exactly one place that says which packages are policy-scoped.  The
layout::

    [tool.reprolint]
    exclude = ["__pycache__"]
    baseline = ".reprolint-baseline.json"

    [tool.reprolint.rules.RP001]
    scope = ["src/repro/runtime/", "src/repro/serving/", "src/repro/nn/"]

Every key is optional — rules carry their defaults (``Rule.default_scope``
and the option dicts in :mod:`reprolint.rules`) — and unknown keys are
passed through to the rule, so a rule can grow knobs without touching
this module.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ._toml import load_toml

__all__ = ["Config", "load_config", "find_pyproject"]

#: Path fragments never linted, even when explicitly passed.
DEFAULT_EXCLUDE = ["__pycache__/", "/.git/", "/build/", "/dist/"]


@dataclass
class Config:
    """Resolved reprolint configuration."""

    exclude: list = field(default_factory=lambda: list(DEFAULT_EXCLUDE))
    baseline: str = None
    rules: dict = field(default_factory=dict)
    source: str = "<defaults>"

    def rule_options(self, rule):
        """Defaults of ``rule`` overlaid with its pyproject table."""
        options = dict(getattr(rule, "default_options", {}))
        options.update(self.rules.get(rule.id, {}))
        return options


def find_pyproject(start):
    """Nearest ``pyproject.toml`` at or above ``start`` (or None)."""
    current = os.path.abspath(start)
    if os.path.isfile(current):
        current = os.path.dirname(current)
    while True:
        candidate = os.path.join(current, "pyproject.toml")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(current)
        if parent == current:
            return None
        current = parent


def load_config(pyproject=None, start="."):
    """Load ``[tool.reprolint]`` (searching upward from ``start``)."""
    path = pyproject or find_pyproject(start)
    if path is None:
        return Config()
    table = load_toml(path).get("tool", {}).get("reprolint", {})
    if not isinstance(table, dict):
        return Config(source=path)
    rules = {
        str(rule_id): dict(options)
        for rule_id, options in table.get("rules", {}).items()
        if isinstance(options, dict)
    }
    exclude = list(DEFAULT_EXCLUDE)
    for fragment in table.get("exclude", []):
        if fragment not in exclude:
            exclude.append(fragment)
    return Config(
        exclude=exclude,
        baseline=table.get("baseline"),
        rules=rules,
        source=path,
    )
