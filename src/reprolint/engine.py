"""Rule engine: findings, the rule base class, suppressions, the runner.

A :class:`Rule` sees one parsed module at a time (a :class:`LintModule`:
path + source + AST) and yields :class:`Finding` objects.  The runner
owns everything around that: file discovery, per-rule path scoping
(``[tool.reprolint.rules.*].scope`` in pyproject), inline
``# reprolint: disable=RP00x`` suppressions, and the committed-baseline
filter (:mod:`reprolint.baseline`).
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field

__all__ = [
    "Finding",
    "LintModule",
    "Rule",
    "lint_paths",
    "numpy_aliases",
]

#: ``# reprolint: disable=RP001`` or ``disable=RP001,RP004 -- reason``.
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable(?P<file>-file)?\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_*]+(?:\s*,\s*[A-Za-z0-9_*]+)*)"
)


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"
    line_text: str = ""

    def location(self):
        """``path:line:col`` — the clickable prefix of the text report."""
        return "%s:%d:%d" % (self.path, self.line, self.col)

    def to_json(self):
        """The finding as a plain dict (the JSON reporter's schema)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass
class LintModule:
    """One parsed source file handed to every applicable rule."""

    path: str
    source: str
    tree: ast.Module
    lines: list = field(default_factory=list)

    @classmethod
    def parse(cls, path, source):
        """Parse ``source``; raises ``SyntaxError`` on unparsable files."""
        tree = ast.parse(source, filename=path)
        return cls(path=path, source=source, tree=tree,
                   lines=source.splitlines())

    def line_at(self, lineno):
        """The 1-indexed source line (empty string out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Rule:
    """Base class for reprolint rules.

    Subclasses set ``id`` (``"RP001"``), ``name`` (short slug),
    ``rationale`` (one line shown by ``--list-rules``) and implement
    :meth:`check`.  ``default_scope`` holds the path fragments the rule
    applies to when pyproject does not override them; an empty scope
    means "every linted file".
    """

    id = "RP000"
    name = "base"
    rationale = ""
    severity = "error"
    default_scope = ()

    def check(self, module, options):
        """Yield :class:`Finding` objects for one module.

        ``options`` is the merged per-rule option dict (defaults
        overlaid with ``[tool.reprolint.rules.<id>]``).
        """
        raise NotImplementedError

    def finding(self, module, node, message, severity=None):
        """Build a :class:`Finding` anchored at an AST node."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(rule=self.id, path=module.path, line=line, col=col,
                       message=message, severity=severity or self.severity,
                       line_text=module.line_at(line))


def numpy_aliases(tree):
    """Names the module binds to the numpy package (``{"np", ...}``)."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "numpy" or item.name.startswith("numpy."):
                    aliases.add((item.asname or item.name).split(".")[0])
    return aliases


def is_numpy_call(node, aliases, names):
    """Whether ``node`` is ``np.<name>(...)`` for one of ``names``."""
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in names
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in aliases)


def parse_suppressions(lines):
    """Inline suppressions: ``(per_line, whole_file)``.

    ``per_line`` maps a 1-indexed line number to the set of rule ids
    disabled there.  A comment on its own line also suppresses the next
    non-blank, non-comment line, so long multi-line calls can carry the
    marker above them.  ``disable-file=`` entries suppress the whole
    module.  ``*`` disables every rule.
    """
    per_line = {}
    whole_file = set()
    pending = None
    for index, raw in enumerate(lines, start=1):
        stripped = raw.strip()
        match = _SUPPRESS_RE.search(raw)
        if match:
            rules = {r.strip() for r in match.group("rules").split(",")}
            if match.group("file"):
                whole_file |= rules
            else:
                per_line.setdefault(index, set()).update(rules)
                if stripped.startswith("#"):
                    pending = rules  # standalone: also covers the next stmt
                    continue
        if not stripped or stripped.startswith("#"):
            continue
        if pending:
            per_line.setdefault(index, set()).update(pending)
            pending = None
    return per_line, whole_file


def is_suppressed(finding, per_line, whole_file):
    """Whether an inline marker disables this finding."""
    rules = whole_file | per_line.get(finding.line, set())
    return finding.rule in rules or "*" in rules


def _iter_python_files(paths, excludes):
    """Every ``.py`` file under ``paths``, pruning excluded fragments."""
    for root in paths:
        if os.path.isfile(root):
            yield root
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(
                d for d in dirnames
                if not _excluded(os.path.join(dirpath, d), excludes)
            )
            for name in sorted(filenames):
                full = os.path.join(dirpath, name)
                if name.endswith(".py") and not _excluded(full, excludes):
                    yield full


def _excluded(path, excludes):
    posix = path.replace(os.sep, "/")
    return any(fragment in posix for fragment in excludes)


def _in_scope(path, scope):
    posix = path.replace(os.sep, "/")
    return not scope or any(fragment in posix for fragment in scope)


def lint_paths(paths, rules, config):
    """Run ``rules`` over every Python file under ``paths``.

    Returns ``(findings, suppressed_count, file_count)``.  Findings are
    sorted by path, line, rule.  Unparsable files surface as a single
    ``PARSE`` finding instead of aborting the run.
    """
    findings = []
    suppressed = 0
    file_count = 0
    for path in _iter_python_files(paths, config.exclude):
        file_count += 1
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            module = LintModule.parse(path, source)
        except (SyntaxError, UnicodeDecodeError) as error:
            findings.append(Finding(
                rule="PARSE", path=path,
                line=getattr(error, "lineno", 1) or 1, col=1,
                message="file does not parse: %s" % error,
            ))
            continue
        per_line, whole_file = parse_suppressions(module.lines)
        for rule in rules:
            options = config.rule_options(rule)
            if not options.get("enabled", True):
                continue
            scope = options.get("scope", list(rule.default_scope))
            if not _in_scope(path, scope):
                continue
            for finding in rule.check(module, options):
                if is_suppressed(finding, per_line, whole_file):
                    suppressed += 1
                else:
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, suppressed, file_count
