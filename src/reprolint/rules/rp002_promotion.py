"""RP002 — float64 promotion and redundant casts in fused kernels.

The hot-path modules (``runtime/kernels.py``, ``runtime/attention.py``)
compute in the plan's policy dtype; three statically-visible patterns
break that:

1. explicit promotion — ``.astype(np.float64)`` or
   ``np.asarray(x, dtype=np.float64)`` on data arrays inside a kernel
   promotes every downstream op of a float32 plan to float64;
2. numpy-scalar constants — ``np.log(10000.0)`` and friends produce a
   *numpy* float64 scalar which (unlike a bare Python float, which is
   dtype-preserving under both value-based and NEP 50 promotion)
   promotes float32 arrays it meets in a ufunc expression; hoist the
   constant and cast it to the plan dtype;
3. copy-always casts — ``x.astype(dt)`` without ``copy=False``
   materialises a fresh buffer even when ``x`` already has the target
   dtype, a silent extra allocation per call on paths the PR 6
   micro-optimisations exist to avoid.
"""

from __future__ import annotations

import ast

from ..engine import Rule, numpy_aliases

__all__ = ["Float64PromotionRule"]

#: Unary ufuncs whose Python-literal result is a float64 numpy scalar.
SCALAR_UFUNCS = ("log", "log2", "log10", "exp", "sqrt", "float64",
                 "float_power")


class Float64PromotionRule(Rule):
    """Flag float64-promoting ops and uncopied casts on hot paths."""

    id = "RP002"
    name = "float64-promotion"
    rationale = ("fused kernels must compute in the plan dtype; float64 "
                 "scalars/casts silently double the hot-path cost "
                 "(PR 6 precision policy + micro-optimisations)")
    default_scope = ("src/repro/runtime/kernels.py",
                     "src/repro/runtime/attention.py")
    default_options = {"scalar_ufuncs": list(SCALAR_UFUNCS)}

    def check(self, module, options):
        """Yield findings for the three promotion patterns."""
        aliases = numpy_aliases(module.tree)
        scalar_ufuncs = set(options.get("scalar_ufuncs", SCALAR_UFUNCS))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            finding = (self._promoting_cast(module, node, aliases)
                       or self._scalar_constant(module, node, aliases,
                                                scalar_ufuncs)
                       or self._copy_always_cast(module, node))
            if finding is not None:
                yield finding

    # ------------------------------------------------------------------
    def _promoting_cast(self, module, node, aliases):
        """``.astype(np.float64)`` / ``np.asarray(..., dtype=np.float64)``."""
        target = None
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype" and node.args):
            target = node.args[0]
        else:
            for keyword in node.keywords:
                if keyword.arg == "dtype":
                    target = keyword.value
        if target is None or not self._is_np_float64(target, aliases):
            return None
        return self.finding(
            module, node,
            "explicit float64 promotion in a fused kernel: under the "
            "float32 policy every downstream op re-runs in double "
            "precision; use the plan/policy dtype (or suppress with the "
            "parity rationale)",
        )

    def _scalar_constant(self, module, node, aliases, scalar_ufuncs):
        """``np.log(10000.0)``-style numpy-scalar constant producers."""
        if not (isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in aliases
                and node.func.attr in scalar_ufuncs):
            return None
        if not node.args or not all(_is_number(arg) for arg in node.args):
            return None
        return self.finding(
            module, node,
            "np.%s(<literal>) produces a float64 numpy scalar that "
            "promotes float32 arrays in ufunc expressions (bare Python "
            "floats are dtype-preserving, numpy scalars are not); hoist "
            "the constant and cast it to the plan dtype"
            % node.func.attr,
        )

    def _copy_always_cast(self, module, node):
        """``x.astype(dt)`` without ``copy=False``."""
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"):
            return None
        for keyword in node.keywords:
            if keyword.arg == "copy":
                return None
        return self.finding(
            module, node,
            ".astype() without copy=False re-copies the buffer even when "
            "the dtype already matches; pass copy=False on hot paths "
            "(or copy=True if the caller must own the buffer)",
        )

    @staticmethod
    def _is_np_float64(node, aliases):
        return (isinstance(node, ast.Attribute)
                and node.attr == "float64"
                and isinstance(node.value, ast.Name)
                and node.value.id in aliases)


def _is_number(node):
    if isinstance(node, ast.UnaryOp) and isinstance(node.op,
                                                    (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value,
                                                         (int, float))
