"""RP001 — dtype-less numpy array constructors in policy-scoped code.

The precision policy (PR 6) makes float32 the serving default, but
``np.zeros``/``np.empty``/… default to float64: a dtype-less allocation
in the runtime/serving/nn packages silently re-promotes a hot path (or
a stored state) to float64 and doubles its footprint — exactly the bug
class of the dtype-less ``np.zeros((0, output_dim))`` empty-result
allocations this rule first surfaced.  Constructors that *preserve*
their input's dtype (``zeros_like`` etc.) are exempt; where inference
is the intent (integer id arrays, dtype-preserving copies), suppress
with a reason.
"""

from __future__ import annotations

import ast

from ..engine import Rule, is_numpy_call, numpy_aliases

__all__ = ["DtypeLessConstructorRule"]

#: Constructors whose default result dtype is float64 (or input-derived
#: in a way the reader cannot see at the call site).  Layout-only ops
#: (``ascontiguousarray``) and ``*_like`` constructors are exempt: they
#: always preserve their input's dtype.
CONSTRUCTORS = ("zeros", "empty", "ones", "full", "array", "arange",
                "asarray")


class DtypeLessConstructorRule(Rule):
    """Flag ``np.<constructor>(...)`` calls without a ``dtype=`` keyword."""

    id = "RP001"
    name = "dtype-less-constructor"
    rationale = ("numpy constructors default to float64; policy-scoped "
                 "allocations must name their dtype (PR 6 precision policy)")
    default_scope = ("src/repro/runtime/", "src/repro/serving/",
                     "src/repro/nn/")
    default_options = {"constructors": list(CONSTRUCTORS)}

    def check(self, module, options):
        """Yield one finding per dtype-less constructor call."""
        constructors = set(options.get("constructors", CONSTRUCTORS))
        aliases = numpy_aliases(module.tree)
        if not aliases:
            return
        for node in ast.walk(module.tree):
            if not is_numpy_call(node, aliases, constructors):
                continue
            if any(keyword.arg == "dtype" for keyword in node.keywords):
                continue
            yield self.finding(
                module, node,
                "np.%s() without dtype= allocates float64 under the "
                "float32 serving policy; pass the policy dtype (e.g. "
                "runtime.dtype / plan.dtype) or an explicit intended "
                "dtype, or suppress with a reason" % node.func.attr,
            )
