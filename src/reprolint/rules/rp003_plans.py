"""RP003 — ``param.data`` writes vs the packed-plan invalidation contract.

Packed ``WeightPlan``/``EncodePlan``/``TransformerPlan`` caches (PR 6/8)
are keyed on *parameter-buffer identity*: consumers call
``plan_matches``/``encode_plan_matches``/``transformer_plan_matches``
(or rebuild via ``weight_plan()``/``encode_plan()``) before use, and the
optimisers *rebind* ``param.data`` to a fresh buffer each step so the
identity check trips.  Two write patterns break that contract:

- **in-place mutation** (``param.data[...] = x``, ``param.data += x``,
  ``param.data.fill(...)``, ``np.copyto(param.data, ...)``) changes the
  weights without changing identity — every cached plan keeps serving
  the stale pre-cast copy.  Always flagged.
- **rebinds outside the contract** (``param.data = x``) are only safe
  from functions the contract knows about: the optimizer/serialization
  entry points (``allowed_rebinders``, default ``step`` /
  ``load_state_dict``) or code that itself re-validates plans — the
  rule walks the module's call graph so a helper called by a validating
  function counts.
"""

from __future__ import annotations

import ast

from ..engine import Rule

__all__ = ["PlanInvalidationRule"]

#: Calls that (re)validate a packed plan against the live buffers.
VALIDATORS = ("plan_matches", "transformer_plan_matches",
              "encode_plan_matches", "weight_plan", "encode_plan",
              "build_weight_plan", "build_transformer_plan",
              "build_encode_plan", "as_plan")

#: ndarray methods that write through the buffer in place.
MUTATING_METHODS = ("fill", "sort", "partition", "put", "itemset",
                    "setfield", "resize")

#: Function names whose ``param.data`` rebinds are the contract itself.
#: ``__init__`` is allowed because a buffer bound during construction
#: cannot be cached by any plan yet.
ALLOWED_REBINDERS = ("step", "load_state_dict", "__init__")


class PlanInvalidationRule(Rule):
    """Flag ``.data`` writes that packed plans cannot observe."""

    id = "RP003"
    name = "plan-invalidation"
    rationale = ("packed plans cache on param.data buffer identity; "
                 "in-place writes serve stale weights and rebinds are "
                 "only safe on the optimizer/serialization paths "
                 "(PR 6/8 plan contract)")
    default_scope = ("src/repro/runtime/", "src/repro/serving/",
                     "src/repro/nn/")
    default_options = {
        "allowed_rebinders": list(ALLOWED_REBINDERS),
        "validators": list(VALIDATORS),
    }

    def check(self, module, options):
        """Yield findings for stale-plan ``.data`` writes."""
        allowed = set(options.get("allowed_rebinders", ALLOWED_REBINDERS))
        validators = set(options.get("validators", VALIDATORS))
        graph = _CallGraph(module.tree, validators)
        findings = []
        for function, node, kind, detail in _data_writes(module.tree):
            if kind == "mutate":
                findings.append(self.finding(
                    module, node,
                    "in-place mutation of a parameter buffer (%s): packed "
                    "plans cache on buffer identity and will keep serving "
                    "the stale pre-cast weights; rebind param.data to a "
                    "fresh buffer instead" % detail,
                ))
            else:  # rebind
                name = function.name if function is not None else "<module>"
                if function is not None and (name in allowed
                                             or graph.validates(function)):
                    continue
                findings.append(self.finding(
                    module, node,
                    "param.data rebind in %r, which neither matches "
                    "allowed_rebinders %s nor reaches a plan validator "
                    "(%s) on its call graph: cached plans may serve stale "
                    "weights until the next validated entry point"
                    % (name, sorted(allowed),
                       "/".join(sorted(validators)[:3]) + "/..."),
                ))
        return findings


def _is_data_attr(node):
    """Whether ``node`` is an ``<expr>.data`` attribute access."""
    return isinstance(node, ast.Attribute) and node.attr == "data"


def _contains_data_attr(node):
    """Whether ``.data`` appears anywhere inside ``node``'s base chain."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if _is_data_attr(node):
            return True
        node = node.value
    return False


def _data_writes(tree):
    """Yield ``(enclosing_function, node, kind, detail)`` for .data writes.

    ``kind`` is ``"rebind"`` for plain attribute assignment and
    ``"mutate"`` for anything that writes through the existing buffer.
    """
    writes = []

    def visit(node, function):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            function = node
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if _is_data_attr(target):
                    writes.append((function, node, "rebind", "assignment"))
                elif (isinstance(target, (ast.Subscript, ast.Attribute))
                        and _contains_data_attr(target)):
                    writes.append((function, node, "mutate",
                                   "subscript/attribute store"))
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if _is_data_attr(node.target):
                writes.append((function, node, "rebind", "assignment"))
        elif isinstance(node, ast.AugAssign):
            if _contains_data_attr(node.target):
                writes.append((function, node, "mutate",
                               "augmented assignment"))
        elif isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATING_METHODS
                    and _contains_data_attr(node.func.value)):
                writes.append((function, node, "mutate",
                               ".%s() call" % node.func.attr))
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "copyto"
                    and node.args and _contains_data_attr(node.args[0])):
                writes.append((function, node, "mutate", "np.copyto target"))
        for child in ast.iter_child_nodes(node):
            visit(child, function)

    visit(tree, None)
    return writes


class _CallGraph:
    """Intra-module call graph with plan-validation reachability."""

    def __init__(self, tree, validators):
        self._callees = {}
        self._direct = {}
        functions = [node for node in ast.walk(tree)
                     if isinstance(node, (ast.FunctionDef,
                                          ast.AsyncFunctionDef))]
        by_name = {}
        for function in functions:
            by_name.setdefault(function.name, []).append(function)
        for function in functions:
            called = set()
            direct = False
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                name = _called_name(node.func)
                if name is None:
                    continue
                if name in validators:
                    direct = True
                called.update(by_name.get(name, []))
            self._callees[function] = called
            self._direct[function] = direct
        self._validating = self._closure()

    def _closure(self):
        validating = {f for f, direct in self._direct.items() if direct}
        changed = True
        while changed:
            changed = False
            for function, callees in self._callees.items():
                if function in validating:
                    continue
                if any(callee in validating for callee in callees):
                    validating.add(function)
                    changed = True
        return validating

    def validates(self, function):
        """Whether ``function`` (transitively) re-validates plans."""
        return function in self._validating


def _called_name(func):
    """Bare or attribute call target name (``f`` / ``self.f`` → ``"f"``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None
