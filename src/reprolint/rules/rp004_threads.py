"""RP004 — shared-state mutation inside thread-pool worker functions.

The ``workers=N`` fan-out (PR 6) is bit-identical to serial execution
*by construction*: the fan-out sites (``run_dataset``, ``bulk_load``,
``update_many``, shard flushes) stage all reads before the pool, run
pure-compute workers concurrently, and scatter every write afterwards
in plan order on the calling thread.  That 3-phase contract only holds
while the worker functions stay pure — this rule finds functions
dispatched through a ``ThreadPoolExecutor`` (``pool.map``/``submit``)
that write to closed-over or module-level state: ``nonlocal``/``global``
assignment, subscript or attribute stores on free variables, or
mutating method calls (``append``/``add``/…) on them.
"""

from __future__ import annotations

import ast

from ..engine import Rule

__all__ = ["ThreadFanoutMutationRule"]

#: Container methods that mutate their receiver.
MUTATING_METHODS = ("append", "extend", "add", "update", "insert", "pop",
                    "popitem", "remove", "discard", "clear", "setdefault",
                    "write", "put", "fill", "sort")

_EXECUTOR_NAMES = ("ThreadPoolExecutor", "ProcessPoolExecutor")
_DISPATCH_METHODS = ("map", "submit")


class ThreadFanoutMutationRule(Rule):
    """Flag impure workers handed to ``ThreadPoolExecutor`` fan-out."""

    id = "RP004"
    name = "thread-fanout-mutation"
    rationale = ("workers=N fan-out is bit-identical to serial only while "
                 "pool workers are pure compute; writes belong on the "
                 "calling thread (PR 6 3-phase advance contract)")
    default_scope = ("src/repro/runtime/", "src/repro/serving/")
    default_options = {"mutating_methods": list(MUTATING_METHODS)}

    def check(self, module, options):
        """Yield findings for every mutation inside a pool worker."""
        mutators = set(options.get("mutating_methods", MUTATING_METHODS))
        pools = _executor_names(module.tree)
        if not pools:
            return
        definitions = _function_definitions(module.tree)
        seen = set()
        for call in ast.walk(module.tree):
            if not _is_dispatch(call, pools):
                continue
            worker = call.args[0] if call.args else None
            if isinstance(worker, ast.Lambda):
                yield from self._check_worker(module, worker,
                                              "<lambda>", mutators)
            elif isinstance(worker, ast.Name):
                for definition in definitions.get(worker.id, []):
                    if definition in seen:
                        continue
                    seen.add(definition)
                    yield from self._check_worker(module, definition,
                                                  definition.name, mutators)

    # ------------------------------------------------------------------
    def _check_worker(self, module, worker, name, mutators):
        bound = _bound_names(worker)
        for node, what in _shared_writes(worker, bound, mutators):
            yield self.finding(
                module, node,
                "worker %r is dispatched through ThreadPoolExecutor "
                "fan-out but %s; stage writes on the calling thread "
                "(3-phase contract: serial gather, parallel pure "
                "compute, serial scatter in plan order)" % (name, what),
            )


def _executor_names(tree):
    """Local names bound to executor classes (via import or alias)."""
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module and node.module.startswith("concurrent"):
                for item in node.names:
                    if item.name in _EXECUTOR_NAMES:
                        names.add(item.asname or item.name)
        elif isinstance(node, ast.Import):
            for item in node.names:
                if item.name.startswith("concurrent"):
                    names.add((item.asname or item.name).split(".")[0])
    return names


def _is_dispatch(node, pools):
    """``pool.map(fn, ...)`` / ``pool.submit(fn, ...)`` heuristic.

    Any ``<name>.map``/``.submit`` call counts when the module imports
    an executor class — pool variables are rarely annotated, so the
    rule keys on the dispatch method rather than tracking the binding.
    ``<str>.map`` false positives are avoided by requiring the first
    argument to be a function-ish node (Name or Lambda).
    """
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _DISPATCH_METHODS
            and node.args
            and isinstance(node.args[0], (ast.Name, ast.Lambda)))


def _function_definitions(tree):
    """All function definitions in the module, by bare name."""
    table = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            table.setdefault(node.name, []).append(node)
    return table


def _bound_names(worker):
    """Names bound locally inside the worker (params + assignments)."""
    bound = set()
    if isinstance(worker, ast.Lambda):
        args = worker.args
    else:
        args = worker.args
    for arg in (list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)):
        bound.add(arg.arg)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    if isinstance(worker, ast.Lambda):
        return bound
    declared_free = set()
    for node in ast.walk(worker):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared_free.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            for name in ast.walk(target):
                if isinstance(name, ast.Name):
                    bound.add(name.id)
        elif isinstance(node, ast.withitem) and node.optional_vars:
            for name in ast.walk(node.optional_vars):
                if isinstance(name, ast.Name):
                    bound.add(name.id)
    return bound - declared_free


def _root_name(node):
    """The base ``Name`` of an attribute/subscript chain (or None)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _shared_writes(worker, bound, mutators):
    """Yield ``(node, description)`` for writes escaping the worker."""
    declared_free = set()
    body = worker.body if isinstance(worker.body, list) else [worker.body]
    for node in ast.walk(worker):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared_free.update(node.names)
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    yield from _target_writes(node, target, bound,
                                              declared_free)
            elif isinstance(node, ast.Call):
                if (isinstance(node.func, ast.Attribute)
                        and node.func.attr in mutators):
                    root = _root_name(node.func.value)
                    if root is not None and root not in bound:
                        yield node, ("calls mutating method .%s() on "
                                     "closed-over %r"
                                     % (node.func.attr, root))


def _target_writes(stmt, target, bound, declared_free):
    if isinstance(target, ast.Name):
        if target.id in declared_free:
            yield stmt, ("assigns nonlocal/global name %r" % target.id)
    elif isinstance(target, (ast.Subscript, ast.Attribute)):
        root = _root_name(target)
        if root is not None and root not in bound:
            kind = ("subscript" if isinstance(target, ast.Subscript)
                    else "attribute")
            yield stmt, ("writes %s of closed-over %r" % (kind, root))
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_writes(stmt, element, bound, declared_free)
