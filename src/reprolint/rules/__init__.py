"""The rule battery: one module per invariant, registered here.

Each rule guards one hand-maintained invariant of the fused runtime —
see ``docs/static-analysis.md`` for the catalogue with the PR that
introduced each invariant.  Adding a rule = adding a module with a
:class:`reprolint.engine.Rule` subclass and listing it in
:data:`ALL_RULES`; scope/options are overridable per rule id under
``[tool.reprolint.rules.<id>]`` in pyproject.toml.
"""

from .rp001_dtype import DtypeLessConstructorRule
from .rp002_promotion import Float64PromotionRule
from .rp003_plans import PlanInvalidationRule
from .rp004_threads import ThreadFanoutMutationRule
from .rp005_contracts import ArrayContractRule

__all__ = ["ALL_RULES", "all_rules", "rules_by_id"]

ALL_RULES = (
    DtypeLessConstructorRule,
    Float64PromotionRule,
    PlanInvalidationRule,
    ThreadFanoutMutationRule,
    ArrayContractRule,
)


def all_rules(select=None):
    """Instantiate the battery (optionally only ids in ``select``)."""
    rules = [cls() for cls in ALL_RULES]
    if select:
        wanted = set(select)
        rules = [rule for rule in rules if rule.id in wanted]
    return rules


def rules_by_id():
    """``{"RP001": rule_instance, ...}`` for the full battery."""
    return {rule.id: rule for rule in all_rules()}
