"""RP005 — public array-taking APIs must document a shape/dtype contract.

The runtime/serving boundary passes raw numpy buffers around
(``hidden``, ``cell``, ``d_states``, pooling masks, …); the only thing
that says which axis is batch and which dtype the buffer must carry is
the docstring.  The docs CI job (ruff D1) already requires *a*
docstring on every public runtime/serving function — this rule requires
the docstring of any public function with array-named parameters to
actually state the contract: a shape tuple (``(B, T, H)``), or the
words ``shape``/``dtype``/``array``.  The parameter-name list is
configuration (``array_params``), so new buffer names can be added as
the API grows.
"""

from __future__ import annotations

import ast
import re

from ..engine import Rule

__all__ = ["ArrayContractRule"]

#: Parameter names that carry raw numpy buffers across the API boundary.
ARRAY_PARAMS = ("hidden", "cell", "embedding", "embeddings", "states",
                "mask", "initial", "prev_times", "d_embeddings",
                "d_states", "d_events", "d_outputs", "d_last", "block",
                "weights", "arrays", "lengths")

#: A documented contract: a shape tuple like ``(B, T, H)`` / ``(N, d)``,
#: an explicit mention of shape/dtype/array/buffer semantics, or a
#: concrete dtype literal (``float32``/``int8``/…).
_CONTRACT_RE = re.compile(
    r"\(\s*[A-Za-z0-9_*]+\s*(?:,\s*[A-Za-z0-9_*.]+\s*)+\)"
    r"|\bshapes?\b|\bdtypes?\b|\barrays?\b|\bndarrays?\b|\bbuffers?\b"
    r"|\b(?:float|int|uint)(?:4|8|16|32|64)\b",
    re.IGNORECASE,
)


class ArrayContractRule(Rule):
    """Flag public array-taking functions whose docstring has no contract."""

    id = "RP005"
    name = "array-contract"
    rationale = ("raw-numpy APIs are only usable (and only stay "
                 "precision-policy-correct) when the docstring pins the "
                 "expected shape/dtype of every buffer argument")
    default_scope = ("src/repro/runtime/", "src/repro/serving/")
    default_options = {"array_params": list(ARRAY_PARAMS)}

    def check(self, module, options):
        """Yield findings for undocumented buffer parameters."""
        array_params = set(options.get("array_params", ARRAY_PARAMS))
        for node, qualname, is_public in _walk_functions(module.tree):
            if not is_public:
                continue
            params = _parameters(node)
            buffers = sorted(p for p in params if p in array_params)
            if not buffers:
                continue
            docstring = ast.get_docstring(node) or ""
            if not docstring:
                yield self.finding(
                    module, node,
                    "public %s() takes buffer parameter(s) %s but has no "
                    "docstring to carry their shape/dtype contract"
                    % (qualname, ", ".join(buffers)),
                )
            elif not _CONTRACT_RE.search(docstring):
                yield self.finding(
                    module, node,
                    "public %s() takes buffer parameter(s) %s but its "
                    "docstring states no shape/dtype contract (expected a "
                    "shape tuple like (B, T, H) or the words shape/dtype/"
                    "array)" % (qualname, ", ".join(buffers)),
                )


def _walk_functions(tree):
    """Yield ``(node, qualname, is_public)`` for every function def.

    A function is public when neither its own name nor any enclosing
    class/function name starts with an underscore (dunders are not
    public here — their contract is the protocol's).
    """
    def visit(node, prefix, public_prefix):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = child.name
                is_public = (public_prefix and not name.startswith("_"))
                qualname = prefix + name
                yield child, qualname, is_public
                yield from visit(child, qualname + ".", False)
            elif isinstance(child, ast.ClassDef):
                class_public = (public_prefix
                                and not child.name.startswith("_"))
                yield from visit(child, prefix + child.name + ".",
                                 class_public)
            else:
                yield from visit(child, prefix, public_prefix)

    yield from visit(tree, "", True)


def _parameters(node):
    """Positional/keyword parameter names, minus self/cls."""
    args = node.args
    names = [arg.arg for arg in (list(args.posonlyargs) + list(args.args)
                                 + list(args.kwonlyargs))]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names
