"""Committed-baseline support: grandfather findings without fixing them.

The baseline file (``.reprolint-baseline.json``) records known findings
by a *content* fingerprint — rule id, posix path, the normalised source
line text and an occurrence index — so unrelated edits that shift line
numbers do not invalidate it, while editing the offending line itself
does (the finding then resurfaces as "new").  CI fails on any finding
not covered by the baseline; ``--write-baseline`` regenerates the file
from the current run when a batch of findings is deliberately accepted.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["Baseline", "fingerprint"]


def fingerprint(finding, occurrence=0):
    """Stable content hash of one finding.

    ``occurrence`` disambiguates identical (rule, path, line-text)
    triples — e.g. two dtype-less ``np.zeros`` on textually identical
    lines in one file — by their order of appearance.
    """
    payload = "|".join((
        finding.rule,
        finding.path.replace("\\", "/"),
        " ".join(finding.line_text.split()),
        str(occurrence),
    ))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _fingerprints(findings):
    """Fingerprint every finding, numbering duplicate triples."""
    seen = {}
    out = []
    for finding in findings:
        key = (finding.rule, finding.path, " ".join(finding.line_text.split()))
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        out.append((finding, fingerprint(finding, occurrence)))
    return out


class Baseline:
    """The committed set of grandfathered findings."""

    VERSION = 1

    def __init__(self, entries=None, path=None):
        self.path = path
        self.entries = list(entries or [])

    @classmethod
    def load(cls, path):
        """Read a baseline file (missing file → empty baseline)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return cls(path=path)
        if data.get("version") != cls.VERSION:
            raise ValueError(
                "unsupported baseline version %r in %s (expected %d)"
                % (data.get("version"), path, cls.VERSION)
            )
        return cls(entries=data.get("findings", []), path=path)

    def split(self, findings):
        """Partition ``findings`` into ``(new, baselined, stale_entries)``.

        ``stale_entries`` are baseline records whose finding no longer
        occurs — candidates for deletion so the debt register shrinks
        monotonically.
        """
        remaining = {}
        for entry in self.entries:
            key = (entry.get("rule"), entry.get("fingerprint"))
            remaining[key] = remaining.get(key, 0) + 1
        new, baselined = [], []
        for finding, print_ in _fingerprints(findings):
            key = (finding.rule, print_)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        stale = []
        for entry in self.entries:
            key = (entry.get("rule"), entry.get("fingerprint"))
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                stale.append(entry)
        return new, baselined, stale

    def write(self, findings, path=None):
        """Serialise ``findings`` as the new baseline at ``path``."""
        target = path or self.path
        payload = {
            "version": self.VERSION,
            "comment": (
                "Grandfathered reprolint findings. Entries are matched by "
                "content fingerprint; fix the code and delete the entry, "
                "never add entries by hand (use --write-baseline)."
            ),
            "findings": [
                {
                    "rule": finding.rule,
                    "path": finding.path.replace("\\", "/"),
                    "line": finding.line,
                    "message": finding.message,
                    "fingerprint": print_,
                }
                for finding, print_ in _fingerprints(findings)
            ],
        }
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        return target
