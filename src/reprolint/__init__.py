"""reprolint — AST-based invariant linter for the repro fused runtime.

The fused runtime (``src/repro/runtime``) is fast because it layers
hand-maintained invariants on top of numpy: the float32/float64
precision policy (PR 6), packed ``WeightPlan``/``TransformerPlan``
caches invalidated on ``param.data`` rebinds (PR 6/8), and bit-identical
``workers=N`` thread fan-out (PR 6).  Nothing in Python enforces those
invariants — they live in docstrings and reviewers' heads — so this
package checks them statically:

- **RP001** dtype-less numpy array constructors in policy-scoped code;
- **RP002** float64-promoting casts / uncopied ``astype`` on hot paths;
- **RP003** ``param.data`` rebinds or in-place mutation outside the
  plan-invalidation contract;
- **RP004** mutation of closed-over state inside thread-pool workers;
- **RP005** public array-taking functions without a shape/dtype
  contract in their docstring.

Run it as ``python -m reprolint src/ --baseline .reprolint-baseline.json``.
The package is pure stdlib (no numpy import) so CI can run it without
installing the scientific stack.  See ``docs/static-analysis.md`` for
the rule catalogue and ``[tool.reprolint]`` in ``pyproject.toml`` for
per-rule scoping.
"""

from .baseline import Baseline, fingerprint
from .config import Config, load_config
from .engine import Finding, LintModule, Rule, lint_paths
from .reporters import render_json, render_text
from .rules import all_rules

__version__ = "1.0.0"

__all__ = [
    "Baseline",
    "Config",
    "Finding",
    "LintModule",
    "Rule",
    "all_rules",
    "fingerprint",
    "lint_paths",
    "load_config",
    "render_json",
    "render_text",
]
