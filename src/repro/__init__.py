"""repro — a from-scratch reproduction of CoLES (Babaev et al., SIGMOD 2022).

Contrastive Learning for Event Sequences with Self-Supervision, built on a
pure-numpy neural-network substrate.  See README.md for a tour and
DESIGN.md for the system inventory.

Quickstart::

    from repro import CoLES
    from repro.data.synthetic import make_churn_dataset

    dataset = make_churn_dataset(num_clients=200)
    model = CoLES(dataset.schema, hidden_size=32)
    model.fit(dataset, num_epochs=5)
    embeddings = model.embed(dataset)        # (200, 32) unit vectors
"""

from . import (
    augmentations,
    baselines,
    core,
    data,
    encoders,
    eval,
    gbm,
    losses,
    nn,
    runtime,
    serving,
)
from .core import CoLES

__version__ = "1.0.0"

__all__ = [
    "CoLES",
    "nn",
    "data",
    "augmentations",
    "losses",
    "encoders",
    "core",
    "baselines",
    "gbm",
    "eval",
    "runtime",
    "serving",
]
