"""Binomial deviance loss (Yi et al., 2014) — Table 4 alternative.

Operates on cosine similarities s (embeddings are unit-norm):

    L_pos = softplus(-alpha * (s - beta))
    L_neg = softplus( alpha * (s - beta)) * c

with ``c`` down-weighting the abundant negatives.
"""

from __future__ import annotations

import numpy as np

from .pairs import positive_pairs
from .sampling import HardNegativeMiner

__all__ = ["BinomialDevianceLoss"]


def _softplus(x):
    """Numerically stable log(1 + exp(x)) on Tensors."""
    return x.clip_min(0.0) + ((-x.abs()).exp() + 1.0).log()


class BinomialDevianceLoss:
    """Callable: ``loss(embeddings, groups, rng) -> scalar Tensor``."""

    name = "binomial_deviance"

    def __init__(self, alpha=2.0, beta=0.5, neg_weight=1.0, sampler=None):
        self.alpha = alpha
        self.beta = beta
        self.neg_weight = neg_weight
        self.sampler = sampler or HardNegativeMiner()

    def __call__(self, embeddings, groups, rng=None):
        rng = rng or np.random.default_rng()
        pos_i, pos_j = positive_pairs(groups)
        if len(pos_i) == 0:
            raise ValueError("batch contains no positive pairs")
        sims = embeddings @ embeddings.T
        dists = np.sqrt(np.maximum(2.0 - 2.0 * sims.data, 0.0))
        neg_a, neg_b = self.sampler.select(dists, groups, rng)

        pos_term = _softplus((sims[pos_i, pos_j] - self.beta) * (-self.alpha))
        neg_term = _softplus((sims[neg_a, neg_b] - self.beta) * self.alpha)
        return pos_term.mean() + neg_term.mean() * self.neg_weight
