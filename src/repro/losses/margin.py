"""Margin loss (Wu et al., 2017) — Table 4 alternative.

A relaxed contrastive loss with a learnable boundary beta:

    L = max(0, alpha + y * (d - beta)),  y = +1 positive / -1 negative

Here beta is kept as a fixed hyper-parameter (the paper's ablation uses the
loss with its default settings).
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from .pairs import positive_pairs
from .sampling import DistanceWeightedSampler

__all__ = ["MarginLoss"]


class MarginLoss:
    """Callable: ``loss(embeddings, groups, rng) -> scalar Tensor``."""

    name = "margin"

    def __init__(self, alpha=0.2, beta=1.0, sampler=None):
        self.alpha = alpha
        self.beta = beta
        # Distance-weighted sampling is the companion sampler in Wu et al.
        self.sampler = sampler or DistanceWeightedSampler()

    def __call__(self, embeddings, groups, rng=None):
        rng = rng or np.random.default_rng()
        pos_i, pos_j = positive_pairs(groups)
        if len(pos_i) == 0:
            raise ValueError("batch contains no positive pairs")
        dist_sq = F.pairwise_squared_distances(embeddings)
        distances = np.sqrt(np.maximum(dist_sq.data, 0.0))
        neg_a, neg_b = self.sampler.select(distances, groups, rng)

        d_pos = (dist_sq[pos_i, pos_j] + 1e-12).sqrt()
        d_neg = (dist_sq[neg_a, neg_b] + 1e-12).sqrt()
        pos_term = (d_pos - self.beta + self.alpha).clip_min(0.0)
        neg_term = (self.beta - d_neg + self.alpha).clip_min(0.0)
        return pos_term.mean() + neg_term.mean()
