"""Histogram loss (Ustinova & Lempitsky, 2016) — Table 4 alternative.

Builds soft histograms of the cosine similarities of positive and negative
pairs and minimises the probability that a random negative pair is more
similar than a random positive pair:

    L = sum_k q_k * cumsum(p)_k

where p and q are the (differentiable, linearly-interpolated) histograms
of positive and negative similarities over [-1, 1].
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor
from .pairs import negative_candidates, positive_pairs

__all__ = ["HistogramLoss"]


class HistogramLoss:
    """Callable: ``loss(embeddings, groups, rng) -> scalar Tensor``.

    Uses *all* negative pairs (the loss is already a distribution-level
    quantity, so sampling is unnecessary at our batch sizes).
    """

    name = "histogram"

    def __init__(self, num_bins=25):
        if num_bins < 2:
            raise ValueError("num_bins must be >= 2")
        self.num_bins = num_bins
        self._centers = np.linspace(-1.0, 1.0, num_bins)
        self._delta = 2.0 / (num_bins - 1)
        # Lower-triangular matrix turns a histogram into its CDF.
        self._cdf_matrix = np.tril(np.ones((num_bins, num_bins)))

    def _soft_histogram(self, sims):
        """Triangular-kernel soft assignment of similarities to bins."""
        diff = (sims.reshape(len(sims), 1) - Tensor(self._centers[None, :])) * (
            1.0 / self._delta
        )
        weights = (1.0 - diff.abs()).clip_min(0.0)
        return weights.sum(axis=0) * (1.0 / len(sims))

    def __call__(self, embeddings, groups, rng=None):
        pos_i, pos_j = positive_pairs(groups)
        if len(pos_i) == 0:
            raise ValueError("batch contains no positive pairs")
        neg_mask = np.triu(negative_candidates(groups), k=1)
        neg_i, neg_j = np.nonzero(neg_mask)
        if len(neg_i) == 0:
            raise ValueError("batch contains no negative pairs")

        sims = embeddings @ embeddings.T
        pos_hist = self._soft_histogram(sims[pos_i, pos_j])
        neg_hist = self._soft_histogram(sims[neg_i, neg_j])
        pos_cdf = pos_hist @ Tensor(self._cdf_matrix.T)
        return (neg_hist * pos_cdf).sum()
