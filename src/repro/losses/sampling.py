"""Negative sampling strategies (Table 5).

Positive pairs are scarce while negative pairs are abundant, and far-away
negatives contribute no learning signal (Section 3.3).  Each sampler picks,
for every anchor, ``neg_per_anchor`` cross-group partners using a different
criterion:

- :class:`RandomNegativeSampler` — uniform over cross-group partners;
- :class:`HardNegativeMiner` — the closest (hardest) partners, as in
  FaceNet (Schroff et al., 2015);
- :class:`DistanceWeightedSampler` — inverse-density weights of
  Wu et al. (2017), which avoid both trivial and noisy-hard negatives.

Samplers see only the *detached* distance matrix; gradient flows through
the loss evaluated on the selected pairs, not through the selection.
"""

from __future__ import annotations

import numpy as np

from .pairs import negative_candidates

__all__ = [
    "NegativeSampler",
    "RandomNegativeSampler",
    "HardNegativeMiner",
    "DistanceWeightedSampler",
]


class NegativeSampler:
    """Interface: ``select(distances, groups, rng) -> (anchors, negatives)``."""

    def __init__(self, neg_per_anchor=5):
        if neg_per_anchor < 1:
            raise ValueError("neg_per_anchor must be >= 1")
        self.neg_per_anchor = neg_per_anchor

    def select(self, distances, groups, rng):
        raise NotImplementedError

    def _candidate_rows(self, groups):
        candidates = negative_candidates(groups)
        if not candidates.any():
            raise ValueError("batch has a single group: no negatives available")
        return candidates


class RandomNegativeSampler(NegativeSampler):
    """Uniform sampling over cross-group partners."""

    def select(self, distances, groups, rng):
        candidates = self._candidate_rows(groups)
        anchors, negatives = [], []
        for anchor in range(len(groups)):
            partners = np.flatnonzero(candidates[anchor])
            if len(partners) == 0:
                continue
            take = min(self.neg_per_anchor, len(partners))
            chosen = rng.choice(partners, size=take, replace=False)
            anchors.extend([anchor] * take)
            negatives.extend(chosen.tolist())
        return np.array(anchors), np.array(negatives)


class HardNegativeMiner(NegativeSampler):
    """Closest cross-group partners per anchor (hard negative mining)."""

    def select(self, distances, groups, rng):
        candidates = self._candidate_rows(groups)
        masked = np.where(candidates, distances, np.inf)
        anchors, negatives = [], []
        for anchor in range(len(groups)):
            partners = np.flatnonzero(np.isfinite(masked[anchor]))
            if len(partners) == 0:
                continue
            take = min(self.neg_per_anchor, len(partners))
            order = np.argsort(masked[anchor][partners])
            chosen = partners[order[:take]]
            anchors.extend([anchor] * take)
            negatives.extend(chosen.tolist())
        return np.array(anchors), np.array(negatives)


class DistanceWeightedSampler(NegativeSampler):
    """Inverse-density sampling of Wu et al. (2017).

    On the unit sphere in R^n, pairwise distances concentrate around
    sqrt(2); weighting candidates by the inverse of the distance density
    ``q(d) ∝ d^{n-2} (1 - d²/4)^{(n-3)/2}`` yields negatives spread evenly
    over distances.  ``cutoff`` floors the distance to avoid infinite
    weights on coincident points.
    """

    def __init__(self, neg_per_anchor=5, embedding_dim=None, cutoff=0.5):
        super().__init__(neg_per_anchor)
        self.embedding_dim = embedding_dim
        self.cutoff = cutoff

    def _log_weights(self, distances, dim):
        d = np.maximum(distances, self.cutoff)
        log_q = (dim - 2.0) * np.log(d) + ((dim - 3.0) / 2.0) * np.log(
            np.maximum(1.0 - 0.25 * d * d, 1e-8)
        )
        return -log_q

    def select(self, distances, groups, rng):
        candidates = self._candidate_rows(groups)
        dim = self.embedding_dim or max(distances.shape[0], 3)
        anchors, negatives = [], []
        for anchor in range(len(groups)):
            partners = np.flatnonzero(candidates[anchor])
            if len(partners) == 0:
                continue
            log_w = self._log_weights(distances[anchor][partners], dim)
            log_w -= log_w.max()
            weights = np.exp(log_w)
            weights /= weights.sum()
            take = min(self.neg_per_anchor, len(partners))
            chosen = rng.choice(partners, size=take, replace=False, p=weights)
            anchors.extend([anchor] * take)
            negatives.extend(chosen.tolist())
        return np.array(anchors), np.array(negatives)


SAMPLERS = {
    "random": RandomNegativeSampler,
    "hard": HardNegativeMiner,
    "distance_weighted": DistanceWeightedSampler,
}
