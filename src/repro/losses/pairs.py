"""Pair construction for metric learning.

Given the batch's group ids (entity ids: sub-sequences of one entity share
a group), positive pairs are all within-group index pairs and negative
candidates are cross-group pairs (Section 3.3, "Batch generation").
"""

from __future__ import annotations

import numpy as np

__all__ = ["positive_pairs", "negative_candidates", "validate_groups"]


def validate_groups(groups):
    groups = np.asarray(groups)
    if groups.ndim != 1:
        raise ValueError("groups must be one-dimensional")
    if len(groups) < 2:
        raise ValueError("need at least two embeddings")
    return groups


def positive_pairs(groups):
    """All index pairs ``(i, j)``, ``i < j``, with equal group ids."""
    groups = validate_groups(groups)
    same = groups[:, None] == groups[None, :]
    upper = np.triu(same, k=1)
    return np.nonzero(upper)


def negative_candidates(groups):
    """Boolean matrix of cross-group pairs (both orientations)."""
    groups = validate_groups(groups)
    return groups[:, None] != groups[None, :]
