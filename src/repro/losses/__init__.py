"""Metric-learning losses and negative samplers (Tables 4 and 5)."""

from .binomial import BinomialDevianceLoss
from .contrastive import ContrastiveLoss
from .histogram import HistogramLoss
from .margin import MarginLoss
from .pairs import negative_candidates, positive_pairs
from .sampling import (
    SAMPLERS,
    DistanceWeightedSampler,
    HardNegativeMiner,
    NegativeSampler,
    RandomNegativeSampler,
)
from .triplet import TripletLoss

__all__ = [
    "ContrastiveLoss",
    "BinomialDevianceLoss",
    "TripletLoss",
    "HistogramLoss",
    "MarginLoss",
    "positive_pairs",
    "negative_candidates",
    "NegativeSampler",
    "RandomNegativeSampler",
    "HardNegativeMiner",
    "DistanceWeightedSampler",
    "SAMPLERS",
    "LOSSES",
]

LOSSES = {
    "contrastive": ContrastiveLoss,
    "binomial_deviance": BinomialDevianceLoss,
    "triplet": TripletLoss,
    "histogram": HistogramLoss,
    "margin": MarginLoss,
}
