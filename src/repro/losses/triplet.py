"""Triplet loss (Hoffer & Ailon, 2015) — Table 4 alternative.

For each positive pair (anchor, positive) a negative is drawn for the
anchor and the hinge ``max(0, d_ap - d_an + margin)`` is minimised.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from .pairs import positive_pairs
from .sampling import HardNegativeMiner

__all__ = ["TripletLoss"]


class TripletLoss:
    """Callable: ``loss(embeddings, groups, rng) -> scalar Tensor``."""

    name = "triplet"

    def __init__(self, margin=0.3, sampler=None):
        if margin <= 0:
            raise ValueError("margin must be positive")
        self.margin = margin
        self.sampler = sampler or HardNegativeMiner(neg_per_anchor=1)

    def __call__(self, embeddings, groups, rng=None):
        rng = rng or np.random.default_rng()
        pos_i, pos_j = positive_pairs(groups)
        if len(pos_i) == 0:
            raise ValueError("batch contains no positive pairs")
        dist_sq = F.pairwise_squared_distances(embeddings)
        distances = np.sqrt(np.maximum(dist_sq.data, 0.0))
        neg_a, neg_b = self.sampler.select(distances, groups, rng)

        # Map each anchor to one selected negative partner.
        negative_of = {}
        for a, b in zip(neg_a, neg_b):
            negative_of.setdefault(a, b)
        anchors, positives, negatives = [], [], []
        for i, j in zip(pos_i, pos_j):
            if i in negative_of:
                anchors.append(i)
                positives.append(j)
                negatives.append(negative_of[i])
        if not anchors:
            raise ValueError("no triplets could be formed")
        anchors = np.array(anchors)
        positives = np.array(positives)
        negatives = np.array(negatives)

        d_ap = (dist_sq[anchors, positives] + 1e-12).sqrt()
        d_an = (dist_sq[anchors, negatives] + 1e-12).sqrt()
        return (d_ap - d_an + self.margin).clip_min(0.0).mean()
