"""Contrastive (margin) loss of Hadsell et al. (2006) — the CoLES default.

L = Y * d²/2 + (1-Y) * max(0, rho - d)²/2

where d is the Euclidean distance between the pair's embeddings and rho the
soft margin.  The negative term prevents mode collapse (Section 3.3).
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from .pairs import positive_pairs
from .sampling import HardNegativeMiner

__all__ = ["ContrastiveLoss"]


class ContrastiveLoss:
    """Callable: ``loss(embeddings, groups, rng) -> scalar Tensor``.

    Parameters
    ----------
    margin:
        The soft margin rho (paper default 0.5).
    sampler:
        Negative-pair sampler; defaults to hard negative mining, the best
        strategy in Table 5.
    """

    name = "contrastive"

    def __init__(self, margin=0.5, sampler=None):
        if margin <= 0:
            raise ValueError("margin must be positive")
        self.margin = margin
        self.sampler = sampler or HardNegativeMiner()

    def __call__(self, embeddings, groups, rng=None):
        rng = rng or np.random.default_rng()
        pos_i, pos_j = positive_pairs(groups)
        dist_sq = F.pairwise_squared_distances(embeddings)
        neg_a, neg_b = self.sampler.select(
            np.sqrt(np.maximum(dist_sq.data, 0.0)), groups, rng
        )
        if len(pos_i) == 0:
            raise ValueError("batch contains no positive pairs")

        pos_term = dist_sq[pos_i, pos_j] * 0.5
        neg_dist = (dist_sq[neg_a, neg_b] + 1e-12).sqrt()
        neg_term = ((self.margin - neg_dist).clip_min(0.0) ** 2) * 0.5
        return pos_term.sum() * (1.0 / len(pos_i)) + neg_term.sum() * (
            1.0 / max(len(neg_a), 1)
        )
