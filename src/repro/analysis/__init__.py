"""Static analysis for the repro runtime — alias of :mod:`reprolint`.

The implementation lives in the top-level :mod:`reprolint` package so
that ``python -m reprolint`` runs without importing (or installing) the
numpy-backed :mod:`repro` tree; this module re-exports the public API
under the repo's package namespace for in-repo use::

    from repro.analysis import lint_paths, all_rules, load_config

See ``docs/static-analysis.md`` for the rule catalogue.
"""

from reprolint import (
    Baseline,
    Config,
    Finding,
    LintModule,
    Rule,
    all_rules,
    fingerprint,
    lint_paths,
    load_config,
    render_json,
    render_text,
)

__all__ = [
    "Baseline",
    "Config",
    "Finding",
    "LintModule",
    "Rule",
    "all_rules",
    "fingerprint",
    "lint_paths",
    "load_config",
    "render_json",
    "render_text",
]
