"""The repeatability/periodicity experiment of Figure 2 (Section 4.0.2).

For each sampled pair, the KL divergence between the event-type
distributions of two *non-overlapping* random slices of the same sequence
is compared with the KL between random slices of two different sequences.
Transactional data shows within << between; the texts control shows the
two histograms overlapping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .metrics import kl_divergence

__all__ = ["KLExperimentResult", "slice_kl_experiment"]


@dataclass
class KLExperimentResult:
    """Arrays of per-pair KL values, ready for Figure-2-style histograms."""

    same_sequence: np.ndarray
    different_sequences: np.ndarray

    def summary(self):
        return {
            "same_median": float(np.median(self.same_sequence)),
            "different_median": float(np.median(self.different_sequences)),
            "separation_ratio": float(
                np.median(self.different_sequences)
                / max(np.median(self.same_sequence), 1e-12)
            ),
        }


def _type_histogram(sequence, field, cardinality, start, stop):
    codes = sequence.fields[field][start:stop]
    return np.bincount(codes, minlength=cardinality)[1:]


def _disjoint_slice_pair(length, rng, min_len, max_len):
    """Two non-overlapping windows of one sequence, or None if too short."""
    top = min(max_len, length // 2)
    if top < min_len:
        return None
    slice_len = int(rng.integers(min_len, top + 1))
    a_start = int(rng.integers(0, length - 2 * slice_len + 1))
    b_start = int(rng.integers(a_start + slice_len, length - slice_len + 1))
    return (a_start, a_start + slice_len), (b_start, b_start + slice_len)


def slice_kl_experiment(dataset, field, num_pairs=500, min_len=10, max_len=60,
                        seed=0):
    """Run the Figure-2 measurement on ``dataset`` over categorical ``field``.

    Returns a :class:`KLExperimentResult` with ``num_pairs`` same-sequence
    and ``num_pairs`` different-sequence KL values.
    """
    if field not in dataset.schema.categorical:
        raise ValueError("field %r is not categorical in this schema" % field)
    cardinality = dataset.schema.categorical[field]
    rng = np.random.default_rng(seed)
    eligible = [seq for seq in dataset if len(seq) >= 2 * min_len]
    if len(eligible) < 2:
        raise ValueError("dataset has too few sufficiently long sequences")

    same, different = [], []
    attempts = 0
    while len(same) < num_pairs and attempts < 50 * num_pairs:
        attempts += 1
        seq = eligible[rng.integers(0, len(eligible))]
        windows = _disjoint_slice_pair(len(seq), rng, min_len, max_len)
        if windows is None:
            continue
        (a0, a1), (b0, b1) = windows
        hist_a = _type_histogram(seq, field, cardinality, a0, a1)
        hist_b = _type_histogram(seq, field, cardinality, b0, b1)
        same.append(kl_divergence(hist_a, hist_b))
    while len(different) < num_pairs:
        i, j = rng.integers(0, len(eligible), size=2)
        if i == j:
            continue
        seq_a, seq_b = eligible[i], eligible[j]
        len_a = int(rng.integers(min_len, min(max_len, len(seq_a)) + 1))
        len_b = int(rng.integers(min_len, min(max_len, len(seq_b)) + 1))
        a0 = int(rng.integers(0, len(seq_a) - len_a + 1))
        b0 = int(rng.integers(0, len(seq_b) - len_b + 1))
        hist_a = _type_histogram(seq_a, field, cardinality, a0, a0 + len_a)
        hist_b = _type_histogram(seq_b, field, cardinality, b0, b0 + len_b)
        different.append(kl_divergence(hist_a, hist_b))
    return KLExperimentResult(
        same_sequence=np.array(same),
        different_sequences=np.array(different),
    )
