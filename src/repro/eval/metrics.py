"""Evaluation metrics: accuracy, AUROC, KL divergence, mean±std helpers.

The paper reports accuracy on the multiclass datasets (age, assessment,
retail) and AUROC on the binary ones (churn, scoring, all commercial
tasks); :func:`task_metric` encodes that convention.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import rankdata

__all__ = [
    "accuracy",
    "auroc",
    "kl_divergence",
    "mean_std",
    "task_metric",
    "evaluate_predictions",
]


def accuracy(targets, predictions):
    """Fraction of exact label matches."""
    targets = np.asarray(targets)
    predictions = np.asarray(predictions)
    if targets.shape != predictions.shape:
        raise ValueError("shape mismatch")
    if len(targets) == 0:
        raise ValueError("empty inputs")
    return float((targets == predictions).mean())


def auroc(targets, scores):
    """Area under the ROC curve via the rank (Mann–Whitney) statistic.

    Handles ties by average ranks; requires both classes present.
    """
    targets = np.asarray(targets)
    scores = np.asarray(scores, dtype=np.float64)
    if targets.shape != scores.shape:
        raise ValueError("shape mismatch")
    positives = int((targets == 1).sum())
    negatives = int((targets == 0).sum())
    if positives == 0 or negatives == 0:
        raise ValueError("AUROC needs both classes present")
    ranks = rankdata(scores)
    rank_sum = ranks[targets == 1].sum()
    u_statistic = rank_sum - positives * (positives + 1) / 2.0
    return float(u_statistic / (positives * negatives))


def kl_divergence(p, q, epsilon=1e-9):
    """KL(p || q) for discrete distributions with additive smoothing."""
    p = np.asarray(p, dtype=np.float64) + epsilon
    q = np.asarray(q, dtype=np.float64) + epsilon
    p = p / p.sum()
    q = q / q.sum()
    return float((p * np.log(p / q)).sum())


def mean_std(values):
    """(mean, std) of a sequence of run metrics — the paper's ±std format."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        raise ValueError("no values")
    return float(values.mean()), float(values.std())


def task_metric(labels):
    """Metric name by task arity: binary -> auroc, multiclass -> accuracy."""
    unique = np.unique(np.asarray(labels))
    return "auroc" if len(unique) == 2 else "accuracy"


def evaluate_predictions(targets, probabilities, metric=None):
    """Score class probabilities with the task-appropriate metric."""
    probabilities = np.asarray(probabilities)
    metric = metric or task_metric(targets)
    if metric == "auroc":
        return auroc(targets, probabilities[:, 1])
    if metric == "accuracy":
        return accuracy(targets, probabilities.argmax(axis=1))
    raise ValueError("unknown metric %r" % metric)
