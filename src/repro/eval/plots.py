"""Terminal plots: ASCII histograms and line series for the figure benches.

The paper's figures are visual; these helpers render the same data as
text so the benchmark output is self-contained in a terminal/CI log.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_histogram", "ascii_series"]


def ascii_histogram(groups, num_bins=20, width=40, value_range=None):
    """Render overlaid histograms of several samples.

    Parameters
    ----------
    groups:
        Mapping label -> 1-D array of values.
    num_bins:
        Number of equal-width bins.
    value_range:
        Optional (low, high); defaults to the pooled min/max.

    Returns a multi-line string; each bin row shows one bar per group.
    """
    if not groups:
        raise ValueError("no data")
    pooled = np.concatenate([np.asarray(v, dtype=float) for v in groups.values()])
    if value_range is None:
        low, high = float(pooled.min()), float(pooled.max())
    else:
        low, high = value_range
    if high <= low:
        high = low + 1.0
    edges = np.linspace(low, high, num_bins + 1)
    counts = {
        label: np.histogram(np.asarray(values, dtype=float), bins=edges)[0]
        for label, values in groups.items()
    }
    peak = max(1, max(c.max() for c in counts.values()))
    chars = {}
    for index, label in enumerate(groups):
        chars[label] = "#*o@+x"[index % 6]

    lines = ["  legend: " + ", ".join(
        "%s=%s" % (chars[label], label) for label in groups
    )]
    for b in range(num_bins):
        row = "%8.2f |" % edges[b]
        for label in groups:
            bar = int(round(width * counts[label][b] / peak))
            row += " %s" % (chars[label] * bar).ljust(width)
        lines.append(row)
    return "\n".join(lines)


def ascii_series(series, width=50, height=12):
    """Render one or more (x, y) series as a text chart.

    ``series`` maps label -> (xs, ys).  X values are placed on a shared
    grid; Y is scaled to the pooled range.
    """
    if not series:
        raise ValueError("no data")
    all_x = np.concatenate([np.asarray(xs, dtype=float) for xs, _ in series.values()])
    all_y = np.concatenate([np.asarray(ys, dtype=float) for _, ys in series.values()])
    x_low, x_high = float(all_x.min()), float(all_x.max())
    y_low, y_high = float(all_y.min()), float(all_y.max())
    if x_high <= x_low:
        x_high = x_low + 1.0
    if y_high <= y_low:
        y_high = y_low + 1e-9
    grid = [[" "] * width for _ in range(height)]
    marks = "#*o@+x"
    for index, (label, (xs, ys)) in enumerate(series.items()):
        mark = marks[index % len(marks)]
        for x, y in zip(xs, ys):
            col = int(round((x - x_low) / (x_high - x_low) * (width - 1)))
            row = int(round((y - y_low) / (y_high - y_low) * (height - 1)))
            grid[height - 1 - row][col] = mark
    lines = ["  legend: " + ", ".join(
        "%s=%s" % (marks[i % len(marks)], label)
        for i, label in enumerate(series)
    )]
    lines.append("%8.3f ┐" % y_high)
    for row in grid:
        lines.append("         │" + "".join(row))
    lines.append("%8.3f └%s" % (y_low, "─" * width))
    lines.append("          %-8.2f%s%8.2f" % (x_low, " " * (width - 16), x_high))
    return "\n".join(lines)
