"""Evaluation: metrics, KL experiment, downstream harnesses, reporting."""

from .downstream import (
    cross_val_features,
    evaluate_features,
    fine_tune_and_evaluate,
)
from .kl import KLExperimentResult, slice_kl_experiment
from .metrics import (
    accuracy,
    auroc,
    evaluate_predictions,
    kl_divergence,
    mean_std,
    task_metric,
)
from .plots import ascii_histogram, ascii_series
from .reporting import ComparisonTable

__all__ = [
    "accuracy",
    "auroc",
    "kl_divergence",
    "mean_std",
    "task_metric",
    "evaluate_predictions",
    "slice_kl_experiment",
    "KLExperimentResult",
    "evaluate_features",
    "cross_val_features",
    "fine_tune_and_evaluate",
    "ComparisonTable",
    "ascii_histogram",
    "ascii_series",
]
