"""Downstream evaluation harnesses (Figure 1, Phases 2a and 2b).

- :func:`evaluate_features` — Phase 2a: features (embeddings, hand-crafted
  aggregates, or their concatenation) -> GBM -> test metric.
- :func:`cross_val_features` — the "5-fold CV metric" protocol of
  Tables 2–5.
- :func:`fine_tune_and_evaluate` — Phase 2b: (pre-trained) encoder + head
  trained on labels, scored on the test set.
"""

from __future__ import annotations

import numpy as np

from ..baselines.supervised import FineTuneConfig, SequenceClassifier
from ..data.split import stratified_kfold
from ..gbm import GBMConfig, GradientBoostingClassifier
from .metrics import evaluate_predictions, task_metric

__all__ = [
    "evaluate_features",
    "cross_val_features",
    "fine_tune_and_evaluate",
]


def _as_values(features):
    return features.values if hasattr(features, "values") else np.asarray(features)


def evaluate_features(train_features, train_labels, test_features, test_labels,
                      gbm_config=None, metric=None):
    """Fit a GBM on training features, return the test metric."""
    model = GradientBoostingClassifier(gbm_config or GBMConfig())
    model.fit(_as_values(train_features), np.asarray(train_labels))
    probabilities = model.predict_proba(_as_values(test_features))
    return evaluate_predictions(test_labels, probabilities, metric=metric)


def cross_val_features(features, labels, n_folds=5, gbm_config=None,
                       metric=None, seed=0):
    """K-fold CV of a GBM on fixed features; returns per-fold metrics."""
    features = _as_values(features)
    labels = np.asarray(labels)
    metric = metric or task_metric(labels)
    scores = []
    for train_idx, valid_idx in stratified_kfold(labels, n_folds, seed=seed):
        scores.append(
            evaluate_features(
                features[train_idx], labels[train_idx],
                features[valid_idx], labels[valid_idx],
                gbm_config=gbm_config, metric=metric,
            )
        )
    return np.array(scores)


def fine_tune_and_evaluate(encoder, train_dataset, test_dataset,
                           config=None, metric=None, seed=0):
    """Phase 2b: attach a softmax head, train jointly, score on test.

    ``encoder`` may be freshly initialised (supervised baseline) or carry
    pre-trained weights (CoLES/CPC/RTD fine-tuning).  The engine comes
    from ``config`` (default ``"auto"``: fused for every repro encoder,
    recurrent and transformer alike), as do the per-group learning rates
    and the batch plan — see
    :class:`~repro.baselines.supervised.FineTuneConfig`.
    """
    train_labeled = train_dataset.labeled()
    labels = train_labeled.label_array()
    num_classes = int(np.max(labels)) + 1
    classifier = SequenceClassifier(encoder, num_classes=max(num_classes, 2),
                                    seed=seed)
    classifier.fit(train_labeled, config or FineTuneConfig())
    probabilities = classifier.predict_proba(test_dataset)
    test_labels = test_dataset.label_array()
    return evaluate_predictions(test_labels, probabilities, metric=metric)
