"""Textual reporting: paper-value vs measured-value tables.

Every benchmark prints its rows through :class:`ComparisonTable` so the
console output (and EXPERIMENTS.md) reads like the paper's tables with an
extra "measured" column.
"""

from __future__ import annotations

__all__ = ["ComparisonTable"]


class ComparisonTable:
    """Accumulates rows and renders an aligned text table."""

    def __init__(self, title, columns):
        self.title = title
        self.columns = list(columns)
        self.rows = []
        self.footer = None  # optional free-form block (e.g. an ASCII chart)

    def add_row(self, *values):
        if len(values) != len(self.columns):
            raise ValueError(
                "expected %d values, got %d" % (len(self.columns), len(values))
            )
        self.rows.append([_format_cell(v) for v in values])

    def render(self):
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in self.rows))
            if self.rows else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = ["", "=== %s ===" % self.title]
        header = "  ".join(
            name.ljust(width) for name, width in zip(self.columns, widths)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            )
        if self.footer:
            lines.append("")
            lines.append(self.footer)
        return "\n".join(lines)

    def print(self):
        print(self.render())
        return self


def _format_cell(value):
    if isinstance(value, float):
        return "%.3f" % value
    if isinstance(value, tuple) and len(value) == 2:
        return "%.3f±%.3f" % value
    return str(value)
