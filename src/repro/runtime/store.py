"""The serving-side state store: per-entity embeddings + recurrent states.

Section 4.3.1 of the paper describes the production ETL: embed every
entity's history once in bulk, then *refresh incrementally* as new events
arrive — a recurrent encoder needs only the stored state ``c_t`` and the
new events to produce ``c_{t+k}``.  :class:`EmbeddingStore` owns that
state:

- :meth:`bulk_load` embeds a whole dataset through the fused runtime with
  a globally length-sorted batch plan (near-zero padded steps) and records
  every entity's final state;
- :meth:`update` folds a chunk of new events into one entity's state,
  bit-equal to a full recompute (the boundary time-delta is carried over);
- :meth:`update_many` does the same for a *batch* of heterogeneous
  entities at once through :func:`advance_entities` — the micro-batched
  ingestion path of :mod:`repro.serving`;
- :meth:`save` / :meth:`load` persist the store between ETL runs as a
  manifest-driven state bundle (``snapshot``/``restore`` remain as
  deprecated aliases; :meth:`load` still reads the legacy flat ``.npz``).

*Where* the states live — and how they are encoded at rest — is delegated
to a pluggable :class:`~repro.runtime.StateBackend` +
:class:`~repro.runtime.StateCodec` pair (:mod:`repro.runtime.backends`):
the default in-RAM dict backend preserves the historical behaviour, while
the memmap backend pages fixed-capacity shards from disk so entity count
is no longer bounded by RAM.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import NamedTuple

import numpy as np

from ..data.batches import collate
from ..data.bucketing import plan_batches
from ..nn.serialization import load_arrays
from .backends import resolve_backend
from .engine import FusedEncoderRuntime

__all__ = ["EmbeddingStore", "AdvanceResult", "advance_entities",
           "bulk_load_states"]


class AdvanceResult(NamedTuple):
    """What one :func:`advance_entities` call produced.

    ``embeddings`` is the refreshed ``(N, d)`` matrix in input order (the
    runtime's policy dtype); ``batches`` is the number of fused kernel
    batches the length-bucketed plan actually ran.  Serving telemetry
    (``flush_batches``) counts this value straight from the plan instead
    of re-deriving ``ceil(N / batch_size)`` on the side — the two stay
    equal only as long as the planner never drops, merges or re-windows
    batches, which is the planner's decision to make, not the caller's.
    """

    embeddings: np.ndarray
    batches: int


def bulk_load_states(runtime, dataset, put_state, batch_size=64,
                     workers=None):
    """Embed a whole dataset and hand every final state to ``put_state``.

    The single bulk loop behind :meth:`EmbeddingStore.bulk_load` and the
    sharded store's scatter variant: batches follow the globally
    length-sorted plan (run bucket-parallel per the runtime's ``workers``
    policy), and ``put_state(entity_id, hidden, cell, last_time)``
    decides where each state lives — state writes always happen in plan
    order on the calling thread, so results are deterministic for any
    worker count.  Returns the ``(N, d)`` embedding matrix in dataset
    order.
    """
    time_field = dataset.schema.time_field
    embeddings = np.zeros((len(dataset), runtime.output_dim),
                          dtype=runtime.dtype)
    for chunk, sequences, last in runtime.run_dataset(dataset, batch_size,
                                                      workers=workers):
        hidden = runtime.hidden_of(last)
        embeddings[chunk] = runtime.head(hidden)
        for row, seq in enumerate(sequences):
            put_state(seq.seq_id, hidden[row],
                      last[1][row] if runtime.is_lstm else None,
                      float(seq.fields[time_field][-1]))
    return embeddings


def advance_entities(runtime, sequences, schema, state_of, put_state,
                     batch_size=64, workers=None):
    """Batched heterogeneous advance: one state transition per entity.

    ``sequences`` holds one pending event chunk per entity (one entity may
    appear only once — coalesce multiple chunks first, the state after
    chunk *k* feeds chunk *k+1*).  Entities are planned into
    length-bucketed batches and advanced through the fused kernels in one
    call per batch instead of one call per entity; rows mix entities with
    stored states and entities never seen before (seeded from the learnt
    initial state).

    Execution is staged so parallelism never races the state callables:
    all ``state_of`` reads happen up front on the calling thread, the
    per-batch kernel calls run concurrently (``workers`` defaults to the
    runtime's policy; BLAS releases the GIL), and all ``put_state``
    writes happen afterwards in plan order — results are bit-identical
    for any worker count.

    Parameters
    ----------
    runtime:
        A :class:`~repro.runtime.FusedEncoderRuntime`.
    sequences:
        List of :class:`~repro.data.EventSequence`, one per entity.
    state_of:
        Callable ``entity_id -> (hidden, cell, last_time) | None`` — the
        state source (``cell`` is None for GRU).
    put_state:
        Callable ``(entity_id, hidden, cell, last_time)`` — the state
        sink.  The two callables let one routine serve both a flat
        :class:`EmbeddingStore` and the shard-routed store of
        :mod:`repro.serving` — over any
        :class:`~repro.runtime.StateBackend`.
    batch_size:
        Rows per fused batch (the bucketed plan's batch size).
    workers:
        Concurrent fused batches (None: the runtime's ``workers``).

    Returns an :class:`AdvanceResult`: the refreshed ``(N, d)``
    embeddings in ``sequences`` order, plus the number of fused batches
    the plan ran.
    """
    ids = [seq.seq_id for seq in sequences]
    if len(set(ids)) != len(ids):
        raise ValueError(
            "duplicate entity ids in one advance: coalesce each entity's "
            "chunks before advancing (state after chunk k feeds chunk k+1)"
        )
    lengths = [len(seq) for seq in sequences]
    if any(length == 0 for length in lengths):
        raise ValueError("advance requires at least one new event per entity")
    workers = runtime.workers if workers is None else max(1, int(workers))
    time_field = schema.time_field
    embeddings = np.zeros((len(sequences), runtime.output_dim),
                          dtype=runtime.dtype)

    # Phase 1 (serial): collate every planned batch and gather the stored
    # states through state_of.
    tasks = []
    for chunk in plan_batches(lengths, batch_size):
        chunk_seqs = [sequences[i] for i in chunk]
        batch = collate(chunk_seqs, schema)
        initial = runtime.default_state(len(chunk_seqs))
        hidden0 = runtime.hidden_of(initial)
        prev_times = np.array(
            [float(seq.fields[time_field][0]) for seq in chunk_seqs],
            dtype=np.float64,
        )
        for row, seq in enumerate(chunk_seqs):
            state = state_of(seq.seq_id)
            if state is None:
                continue  # new entity: learnt c_0, boundary delta of zero
            hidden, cell, last_time = state
            hidden0[row] = hidden
            if runtime.is_lstm:
                initial[1][row] = cell
            if last_time is not None:
                prev_times[row] = last_time
        tasks.append((chunk, chunk_seqs, batch, initial, prev_times))

    # Phase 2 (parallel): the fused kernel calls — pure compute.
    def run(task):
        """Advance one prepared bucket through the fused kernels."""
        _, _, batch, initial, prev_times = task
        return runtime.advance(batch, initial=initial, prev_times=prev_times)

    if workers == 1 or len(tasks) <= 1:
        results = [run(task) for task in tasks]
    else:
        runtime.weight_plan()
        runtime.encode_plan()
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(run, tasks))

    # Phase 3 (serial): scatter states and embeddings in plan order.
    for (chunk, chunk_seqs, _, _, _), last in zip(tasks, results):
        hidden = runtime.hidden_of(last)
        for row, seq in enumerate(chunk_seqs):
            put_state(seq.seq_id, hidden[row],
                      last[1][row] if runtime.is_lstm else None,
                      float(seq.fields[time_field][-1]))
        embeddings[chunk] = runtime.head(hidden)
    return AdvanceResult(embeddings, len(tasks))


class EmbeddingStore:
    """Per-entity embedding/state registry backed by a fused runtime.

    States are stored in the runtime's policy dtype (float32 halves the
    per-entity footprint; float64 is the parity reference) inside a
    pluggable :class:`~repro.runtime.StateBackend`; a
    :class:`~repro.runtime.StateCodec` controls the at-rest encoding
    (shard files and state bundles) independently of the compute
    precision.

    Transformer encoders are served too: :meth:`bulk_load` records each
    entity's pooled embedding state and the read paths work unchanged,
    but the *incremental* methods (:meth:`update`, :meth:`update_many`)
    raise ``TypeError`` — attention reads the whole history, so there is
    no recurrent state to fold new events into.

    Parameters
    ----------
    encoder:
        A trained :class:`~repro.encoders.RnnSeqEncoder` or
        :class:`~repro.encoders.TransformerSeqEncoder`, or an already
        constructed :class:`FusedEncoderRuntime`.
    precision:
        Dtype policy forwarded to the runtime (None: the runtime
        default).  When handed an existing runtime the policies must
        agree — the store has exactly one state dtype.
    workers:
        Bucket-parallel worker count forwarded to the runtime.
    backend:
        Where state lives: ``"dict"``/None (in-RAM, the default),
        ``"memmap"`` (out-of-core shards rooted at ``backend_dir``), a
        zero-arg factory, or a :class:`~repro.runtime.StateBackend`
        instance.
    codec:
        At-rest encoding: ``"identity"``/None (lossless, the default),
        ``"float16"``, ``"int8"``, ``"uint4"``, or a
        :class:`~repro.runtime.StateCodec` instance.
    backend_dir:
        Root directory of the ``"memmap"`` backend's live shards.
    """

    def __init__(self, encoder, precision=None, workers=None, backend=None,
                 codec=None, backend_dir=None):
        if isinstance(encoder, FusedEncoderRuntime):
            self.runtime = encoder
            if (precision is not None
                    and self.runtime.precision != precision):
                raise ValueError(
                    "store precision %r conflicts with the runtime's %r"
                    % (precision, self.runtime.precision)
                )
            if workers is not None:
                self.runtime.workers = max(1, int(workers))
        else:
            kwargs = {}
            if precision is not None:
                kwargs["precision"] = precision
            if workers is not None:
                kwargs["workers"] = workers
            self.runtime = FusedEncoderRuntime(encoder, **kwargs)
        self.backend = resolve_backend(backend, backend_dir).attach(
            self.runtime.output_dim, self.runtime.state_kind,
            self.runtime.dtype, codec,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self):
        return len(self.backend)

    def __contains__(self, entity_id):
        return entity_id in self.backend

    def known_entities(self):
        """Sorted ids of every entity with stored state."""
        return sorted(self.backend.entity_ids())

    def last_time(self, entity_id):
        """Timestamp of the entity's most recent folded event (or None)."""
        return self.backend.last_time(entity_id)

    def bytes_per_entity(self):
        """At-rest bytes per entity under the backend's codec + layout."""
        return self.backend.bytes_per_entity()

    # ------------------------------------------------------------------
    # raw state access (the advance_entities source/sink protocol)
    # ------------------------------------------------------------------
    def state_of(self, entity_id):
        """``(hidden, cell, last_time)`` of a known entity, else None.

        ``cell`` is None for GRU runtimes.  The buffers are backend-owned
        (the dict backend hands out its live arrays) — callers must not
        mutate them.
        """
        return self.backend.get(entity_id)

    def put_state(self, entity_id, hidden, cell=None, last_time=None):
        """Record an entity's recurrent state (copies the buffers).

        ``hidden`` (and ``cell`` for LSTM runtimes) are ``(H,)`` buffers,
        copied into the store's policy dtype on the way in.  ``last_time`` — the timestamp of the entity's latest folded event
        — is mandatory: without it the boundary time-delta of the next
        incremental update (and the state bundle format) would be
        undefined.
        """
        if last_time is None:
            raise ValueError("put_state requires the entity's last event "
                             "timestamp (last_time)")
        hidden = np.array(hidden, dtype=self.runtime.dtype, copy=True)
        if self.runtime.is_lstm:
            if cell is None:
                raise ValueError("LSTM states require a cell buffer")
            cell = np.array(cell, dtype=self.runtime.dtype, copy=True)
        else:
            cell = None
        self.backend.put(entity_id, hidden, cell, float(last_time))

    # ------------------------------------------------------------------
    # bulk path
    # ------------------------------------------------------------------
    def bulk_load(self, dataset, batch_size=64, workers=None):
        """Embed every sequence of ``dataset`` and persist all final states.

        Batches follow a globally length-sorted plan, so each batch pads
        to a near-uniform length.  Returns the ``(N, d)`` embedding matrix
        in dataset order.
        """
        return bulk_load_states(self.runtime, dataset, self.put_state,
                                batch_size=batch_size, workers=workers)

    # ------------------------------------------------------------------
    # incremental path
    # ------------------------------------------------------------------
    def _state_rows(self, entity_id):
        """The entity's stored state as (1, H) buffers, or None if new."""
        state = self.backend.get(entity_id)
        if state is None:
            return None
        hidden, cell, _ = state
        if self.runtime.is_lstm:
            return hidden[None, :], cell[None, :]
        return hidden[None, :]

    def update(self, entity_id, events, schema):
        """Fold new ``events`` (an :class:`EventSequence`) into the state.

        Returns the refreshed embedding.  The previous chunk's last
        timestamp seeds the boundary time-delta so the result matches a
        full recompute exactly.
        """
        if len(events) == 0:
            raise ValueError("update requires at least one new event")
        batch = collate([events], schema)
        prev_time = self.backend.last_time(entity_id)
        prev_times = (None if prev_time is None
                      else np.array([prev_time], dtype=np.float64))
        state = self.runtime.advance(batch, initial=self._state_rows(entity_id),
                                     prev_times=prev_times)
        self.put_state(
            entity_id, self.runtime.hidden_of(state)[0],
            state[1][0] if self.runtime.is_lstm else None,
            float(events.fields[schema.time_field][-1]),
        )
        return self.embedding(entity_id)

    def update_many(self, sequences, schema, batch_size=64, workers=None):
        """Fold pending event chunks of many entities in fused batches.

        The batched counterpart of :meth:`update`: ``sequences`` carries
        one chunk per entity, a length-bucketed plan groups them, and each
        planned batch advances through one fused kernel call.  Returns the
        refreshed ``(N, d)`` embeddings in input order, identical to
        looping :meth:`update` (< 1e-10).  Callers that need the fused
        batch count call :func:`advance_entities` directly.
        """
        return advance_entities(self.runtime, sequences, schema,
                                self.state_of, self.put_state,
                                batch_size=batch_size,
                                workers=workers).embeddings

    def embedding(self, entity_id):
        """Current embedding of one entity, ``(d,)``."""
        state = self.backend.get(entity_id)
        if state is None:
            raise KeyError("unknown entity %r" % entity_id)
        return self.runtime.head(state[0][None, :])[0]

    def embeddings(self, entity_ids=None):
        """Embedding matrix for ``entity_ids`` (default: all known, sorted)."""
        if entity_ids is None:
            entity_ids = self.known_entities()
        if not len(entity_ids):
            return np.zeros((0, self.runtime.output_dim),
                            dtype=self.runtime.dtype)
        hidden = np.stack([self._state_row_checked(e) for e in entity_ids])
        return self.runtime.head(hidden)

    def _state_row_checked(self, entity_id):
        state = self.backend.get(entity_id)
        if state is None:
            raise KeyError("unknown entity %r" % entity_id)
        return state[0]

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def flush(self):
        """Make pending backend writes durable (memmap write-back)."""
        self.backend.flush()

    def close(self):
        """Release backend background resources (async write-back)."""
        self.backend.close()

    def save(self, path):
        """Write the store's state bundle to directory ``path``.

        The bundle is the manifest-driven layout of
        :mod:`repro.runtime.backends` (``state_manifest.json`` plus
        per-shard ``.npy``/``.npz`` files), encoded through the store's
        codec.  Any backend can :meth:`load` a bundle written by any
        other.
        """
        self.backend.snapshot(path)

    def load(self, path):
        """Load a state bundle (or legacy flat ``.npz``); returns self.

        ``path`` is either a bundle directory written by :meth:`save` or
        a flat ``.npz`` file written by the pre-backend ``snapshot()`` —
        the legacy format stays readable so existing snapshots survive
        the API change.
        """
        if os.path.isfile(str(path)):
            return self._load_legacy_npz(path)
        self.backend.restore(path)
        return self

    def snapshot(self, path):
        """Deprecated alias of :meth:`save` (kept for API stability)."""
        warnings.warn("EmbeddingStore.snapshot() is deprecated; use "
                      "save(path)", DeprecationWarning, stacklevel=2)
        self.save(path)

    def restore(self, path):
        """Deprecated alias of :meth:`load` (kept for API stability)."""
        warnings.warn("EmbeddingStore.restore() is deprecated; use "
                      "load(path)", DeprecationWarning, stacklevel=2)
        return self.load(path)

    def _load_legacy_npz(self, path):
        """Read the pre-backend single-``.npz`` snapshot format."""
        arrays = load_arrays(path)
        kind = str(arrays["kind"])
        expected = self.runtime.state_kind
        if kind != expected:
            raise ValueError(
                "snapshot holds %s states but the runtime encoder is %s"
                % (kind, expected)
            )
        hidden = arrays["hidden"]
        if hidden.shape[1:] != (self.runtime.output_dim,):
            raise ValueError(
                "snapshot state width %s does not match encoder hidden size %d"
                % (hidden.shape[1:], self.runtime.output_dim)
            )
        dtype = self.runtime.dtype
        self.backend.clear()
        self.backend.update_many(
            (entity_id, np.asarray(hidden[row], dtype=dtype),
             (np.asarray(arrays["cell"][row], dtype=dtype)
              if self.runtime.is_lstm else None),
             float(arrays["last_times"][row]))
            for row, entity_id in enumerate(arrays["entity_ids"].tolist())
        )
        self.backend.flush()
        return self
