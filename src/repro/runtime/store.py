"""The serving-side state store: per-entity embeddings + recurrent states.

Section 4.3.1 of the paper describes the production ETL: embed every
entity's history once in bulk, then *refresh incrementally* as new events
arrive — a recurrent encoder needs only the stored state ``c_t`` and the
new events to produce ``c_{t+k}``.  :class:`EmbeddingStore` owns that
state:

- :meth:`bulk_load` embeds a whole dataset through the fused runtime with
  a globally length-sorted batch plan (near-zero padded steps) and records
  every entity's final state;
- :meth:`update` folds a chunk of new events into one entity's state,
  bit-equal to a full recompute (the boundary time-delta is carried over);
- :meth:`snapshot` / :meth:`restore` persist the store between ETL runs
  via the shared ``.npz`` serialization layer.
"""

from __future__ import annotations

import numpy as np

from ..data.batches import collate
from ..nn.serialization import load_arrays, save_arrays
from .engine import FusedEncoderRuntime

__all__ = ["EmbeddingStore"]


class EmbeddingStore:
    """Per-entity embedding/state registry backed by a fused runtime.

    Parameters
    ----------
    encoder:
        A trained :class:`~repro.encoders.RnnSeqEncoder`, or an already
        constructed :class:`FusedEncoderRuntime`.
    """

    def __init__(self, encoder):
        if isinstance(encoder, FusedEncoderRuntime):
            self.runtime = encoder
        else:
            self.runtime = FusedEncoderRuntime(encoder)
        self._hidden = {}      # entity id -> (H,) float64
        self._cell = {}        # entity id -> (H,) float64 (LSTM only)
        self._last_times = {}  # entity id -> float timestamp of last event

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self):
        return len(self._hidden)

    def __contains__(self, entity_id):
        return entity_id in self._hidden

    def known_entities(self):
        return sorted(self._hidden)

    def last_time(self, entity_id):
        """Timestamp of the entity's most recent folded event (or None)."""
        return self._last_times.get(entity_id)

    # ------------------------------------------------------------------
    # bulk path
    # ------------------------------------------------------------------
    def bulk_load(self, dataset, batch_size=64):
        """Embed every sequence of ``dataset`` and persist all final states.

        Batches follow a globally length-sorted plan, so each batch pads
        to a near-uniform length.  Returns the ``(N, d)`` embedding matrix
        in dataset order.
        """
        embeddings = np.zeros((len(dataset), self.runtime.output_dim))
        for chunk, sequences, last in self.runtime.run_dataset(dataset,
                                                              batch_size):
            hidden = self.runtime.hidden_of(last)
            embeddings[chunk] = self.runtime.head(hidden)
            for row, seq in enumerate(sequences):
                self._hidden[seq.seq_id] = hidden[row].copy()
                if self.runtime.is_lstm:
                    self._cell[seq.seq_id] = last[1][row].copy()
                self._last_times[seq.seq_id] = float(
                    seq.fields[dataset.schema.time_field][-1]
                )
        return embeddings

    # ------------------------------------------------------------------
    # incremental path
    # ------------------------------------------------------------------
    def _state_rows(self, entity_id):
        """The entity's stored state as (1, H) buffers, or None if new."""
        hidden = self._hidden.get(entity_id)
        if hidden is None:
            return None
        if self.runtime.is_lstm:
            return hidden[None, :], self._cell[entity_id][None, :]
        return hidden[None, :]

    def update(self, entity_id, events, schema):
        """Fold new ``events`` (an :class:`EventSequence`) into the state.

        Returns the refreshed embedding.  The previous chunk's last
        timestamp seeds the boundary time-delta so the result matches a
        full recompute exactly.
        """
        if len(events) == 0:
            raise ValueError("update requires at least one new event")
        batch = collate([events], schema)
        prev_time = self._last_times.get(entity_id)
        prev_times = None if prev_time is None else np.array([prev_time])
        state = self.runtime.advance(batch, initial=self._state_rows(entity_id),
                                     prev_times=prev_times)
        if self.runtime.is_lstm:
            self._hidden[entity_id] = state[0][0].copy()
            self._cell[entity_id] = state[1][0].copy()
        else:
            self._hidden[entity_id] = state[0].copy()
        self._last_times[entity_id] = float(
            events.fields[schema.time_field][-1]
        )
        return self.embedding(entity_id)

    def embedding(self, entity_id):
        """Current embedding of one entity, ``(d,)``."""
        if entity_id not in self._hidden:
            raise KeyError("unknown entity %r" % entity_id)
        hidden = self._hidden[entity_id][None, :]
        return self.runtime.head(hidden)[0]

    def embeddings(self, entity_ids=None):
        """Embedding matrix for ``entity_ids`` (default: all known, sorted)."""
        if entity_ids is None:
            entity_ids = self.known_entities()
        if not len(entity_ids):
            return np.zeros((0, self.runtime.output_dim))
        hidden = np.stack([self._state_row_checked(e) for e in entity_ids])
        return self.runtime.head(hidden)

    def _state_row_checked(self, entity_id):
        if entity_id not in self._hidden:
            raise KeyError("unknown entity %r" % entity_id)
        return self._hidden[entity_id]

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def snapshot(self, path):
        """Write all per-entity states to ``path`` (npz)."""
        ids = self.known_entities()
        arrays = {
            "entity_ids": np.asarray(ids),
            "hidden": (np.stack([self._hidden[e] for e in ids]) if ids
                       else np.zeros((0, self.runtime.output_dim))),
            "last_times": np.asarray([self._last_times[e] for e in ids]),
            "kind": np.asarray("lstm" if self.runtime.is_lstm else "gru"),
        }
        if self.runtime.is_lstm:
            arrays["cell"] = (np.stack([self._cell[e] for e in ids]) if ids
                              else np.zeros((0, self.runtime.output_dim)))
        save_arrays(path, arrays)

    def restore(self, path):
        """Load a snapshot written by :meth:`snapshot`; returns self."""
        arrays = load_arrays(path)
        kind = str(arrays["kind"])
        expected = "lstm" if self.runtime.is_lstm else "gru"
        if kind != expected:
            raise ValueError(
                "snapshot holds %s states but the runtime encoder is %s"
                % (kind, expected)
            )
        hidden = arrays["hidden"]
        if hidden.shape[1:] != (self.runtime.output_dim,):
            raise ValueError(
                "snapshot state width %s does not match encoder hidden size %d"
                % (hidden.shape[1:], self.runtime.output_dim)
            )
        self._hidden = {}
        self._cell = {}
        self._last_times = {}
        for row, entity_id in enumerate(arrays["entity_ids"].tolist()):
            self._hidden[entity_id] = hidden[row].copy()
            if self.runtime.is_lstm:
                self._cell[entity_id] = arrays["cell"][row].copy()
            self._last_times[entity_id] = float(arrays["last_times"][row])
        return self
