"""Fused, graph-free numpy kernels for the training and inference hot paths.

The autograd :class:`~repro.nn.Tensor` builds one Python graph node per op
and per timestep.  These kernels drop to raw float64 numpy instead:

- the input projection of *all* timesteps is computed as one matmul
  (``(B*T, D) @ (D, G*H)``) instead of T small ones;
- per step only the hidden projection remains, written into preallocated
  hidden buffers;
- padding is never computed when the batch is sorted by length (the batch
  planner's output): each step operates on the *active* row prefix only —
  the numpy analogue of cuDNN's packed sequences.  Unsorted batches fall
  back to mask-freezing, exactly like the Tensor path.

Two kernel families share those tricks:

- **inference**: :func:`gru_forward` / :func:`lstm_forward` /
  :func:`rnn_forward` and :func:`encode_events` — forward only, nothing
  retained;
- **training**: :func:`gru_forward_train` / :func:`lstm_forward_train`
  stash the per-step activations a backward pass needs, and
  :func:`gru_backward` / :func:`lstm_backward` run hand-derived BPTT over
  that cache — loss gradient in, weight gradients out, no graph ever
  built.  Per-gate input gradients accumulate into one ``(B*T, G*H)``
  buffer so the weight_ih/bias_ih/input gradients are three fused matmuls
  at the end, mirroring the fused input projection of the forward.

Every kernel follows the same op order and formulas as the differentiable
modules, so outputs agree with the Tensor path to float64 rounding
(< 1e-10) and gradients to < 1e-8 — asserted by
``tests/runtime/test_fused_equivalence.py`` and
``tests/runtime/test_fused_training.py``.

Weight layout is *not* re-declared here: kernels consume the
:class:`~repro.nn.CellWeights` view exported by the ``nn.rnn`` modules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "sigmoid",
    "l2_normalize_rows",
    "l2_normalize_rows_backward",
    "rnn_forward",
    "gru_forward",
    "lstm_forward",
    "encode_events",
    "encode_events_train",
    "RnnTrainCache",
    "rnn_forward_train",
    "gru_forward_train",
    "lstm_forward_train",
    "rnn_backward",
    "gru_backward",
    "lstm_backward",
]


def sigmoid(x):
    """Logistic function, same formula as ``Tensor.sigmoid``."""
    return 1.0 / (1.0 + np.exp(-x))


def l2_normalize_rows(x, eps=1e-12):
    """Unit-normalise rows; mirrors ``nn.functional.l2_normalize``."""
    norm = np.sqrt(np.maximum((x * x).sum(axis=-1, keepdims=True), eps))
    return x / norm


def l2_normalize_rows_backward(x, grad, eps=1e-12):
    """Gradient of :func:`l2_normalize_rows` wrt ``x``.

    For ``y = x / ||x||``: ``dx = g/||x|| - x (g·x)/||x||^3``, with the
    norm term dropped where the squared norm hit the ``eps`` clip —
    exactly the gradient the autograd ``nn.functional.l2_normalize``
    produces (its clipped sqrt passes no gradient when clipping).
    """
    sq = (x * x).sum(axis=-1, keepdims=True)
    norm = np.sqrt(np.maximum(sq, eps))
    dot = (grad * x).sum(axis=-1, keepdims=True)
    return grad / norm - x * (dot * (sq > eps) / norm**3)


def _input_gates(weights, x):
    """Fused input projection of all timesteps: ``(B, T, D) -> (B, T, G*H)``."""
    batch, steps, dim = x.shape
    flat = x.reshape(batch * steps, dim) @ weights.weight_ih.T + weights.bias_ih
    return flat.reshape(batch, steps, -1)


def _initial(vector, batch):
    """Broadcast a learnt ``(H,)`` initial state to a ``(B, H)`` buffer."""
    return np.tile(np.asarray(vector, dtype=np.float64), (batch, 1))


def _active_counts(lengths, steps):
    """Per-step active row count for a batch sorted longest-first.

    Returns None when the batch is not sorted by non-increasing length
    (the caller then uses the mask-freezing path).
    """
    if lengths is None:
        return None
    lengths = np.asarray(lengths)
    if len(lengths) > 1 and np.any(np.diff(lengths) > 0):
        return None
    return np.count_nonzero(
        lengths[:, None] > np.arange(steps)[None, :], axis=0
    )


def _mask_from_lengths(lengths, steps):
    return np.arange(steps)[None, :] < np.asarray(lengths)[:, None]


def gru_forward(weights, x, lengths=None, mask=None, initial=None,
                return_outputs=False):
    """Fused GRU forward over a padded batch.

    Parameters
    ----------
    weights:
        A :class:`~repro.nn.CellWeights` with ``kind == "gru"``.
    x:
        Event representations ``(B, T, D)`` (raw numpy).
    lengths:
        True sequence lengths ``(B,)``.  When sorted longest-first (the
        batch planner's output) each step runs on the active prefix only.
    mask:
        Optional boolean ``(B, T)``; used when ``lengths`` is absent or
        unsorted.  False entries freeze the state.
    initial:
        Optional ``(B, H)`` state overriding the learnt c_0.
    return_outputs:
        When True also return the per-step states ``(B, T, H)``.

    Returns
    -------
    (outputs, last): outputs is None unless requested; last is ``(B, H)``,
    the state after each sequence's final real event.
    """
    batch, steps, _ = x.shape
    size = weights.hidden_size
    hidden = (np.array(initial, dtype=np.float64, copy=True)
              if initial is not None else _initial(weights.init_state, batch))
    gates_x = _input_gates(weights, x)
    outputs = np.empty((batch, steps, size)) if return_outputs else None
    w_hh_t = weights.weight_hh.T
    bias_hh = weights.bias_hh
    counts = _active_counts(lengths, steps)
    if counts is None and lengths is not None and mask is None:
        mask = _mask_from_lengths(lengths, steps)
    for t in range(steps):
        active = batch if counts is None else int(counts[t])
        if active == 0:
            if outputs is not None:
                outputs[:, t:] = hidden[:, None, :]
            break
        h_act = hidden[:active]
        gx = gates_x[:active, t]
        gh = h_act @ w_hh_t + bias_hh
        # One sigmoid over the contiguous (r, z) block — identical
        # elementwise values, half the ufunc dispatches.
        gates = sigmoid(gx[:, :2 * size] + gh[:, :2 * size])
        reset = gates[:, :size]
        update = gates[:, size:]
        candidate = np.tanh(gx[:, 2 * size:] + reset * gh[:, 2 * size:])
        new_hidden = (1.0 - update) * candidate + update * h_act
        if counts is None and mask is not None:
            hidden = np.where(mask[:, t:t + 1], new_hidden, hidden)
        elif active == batch:
            hidden = new_hidden
        else:
            hidden[:active] = new_hidden
        if outputs is not None:
            outputs[:, t] = hidden
    return outputs, hidden


def lstm_forward(weights, x, lengths=None, mask=None, initial=None,
                 return_outputs=False):
    """Fused LSTM forward; ``initial`` and the final state are (h, c) pairs.

    Same contract as :func:`gru_forward`.
    """
    batch, steps, _ = x.shape
    size = weights.hidden_size
    if initial is not None:
        hidden = np.array(initial[0], dtype=np.float64, copy=True)
        cell = np.array(initial[1], dtype=np.float64, copy=True)
    else:
        hidden = _initial(weights.init_state, batch)
        cell = _initial(weights.init_cell, batch)
    gates_x = _input_gates(weights, x)
    outputs = np.empty((batch, steps, size)) if return_outputs else None
    w_hh_t = weights.weight_hh.T
    bias_hh = weights.bias_hh
    counts = _active_counts(lengths, steps)
    if counts is None and lengths is not None and mask is None:
        mask = _mask_from_lengths(lengths, steps)
    for t in range(steps):
        active = batch if counts is None else int(counts[t])
        if active == 0:
            if outputs is not None:
                outputs[:, t:] = hidden[:, None, :]
            break
        h_act = hidden[:active]
        c_act = cell[:active]
        gx = gates_x[:active, t]
        gh = h_act @ w_hh_t + bias_hh
        # One sigmoid over the contiguous (i, f) block — identical
        # elementwise values, fewer ufunc dispatches.
        gates = sigmoid(gx[:, :2 * size] + gh[:, :2 * size])
        in_gate = gates[:, :size]
        forget = gates[:, size:]
        candidate = np.tanh(gx[:, 2 * size:3 * size] + gh[:, 2 * size:3 * size])
        out_gate = sigmoid(gx[:, 3 * size:] + gh[:, 3 * size:])
        new_cell = forget * c_act + in_gate * candidate
        new_hidden = out_gate * np.tanh(new_cell)
        if counts is None and mask is not None:
            step_mask = mask[:, t:t + 1]
            hidden = np.where(step_mask, new_hidden, hidden)
            cell = np.where(step_mask, new_cell, cell)
        elif active == batch:
            hidden, cell = new_hidden, new_cell
        else:
            hidden[:active] = new_hidden
            cell[:active] = new_cell
        if outputs is not None:
            outputs[:, t] = hidden
    return outputs, (hidden, cell)


def rnn_forward(weights, x, lengths=None, mask=None, initial=None,
                return_outputs=False):
    """Dispatch to the fused GRU or LSTM kernel by ``weights.kind``."""
    if weights.kind == "gru":
        return gru_forward(weights, x, lengths=lengths, mask=mask,
                           initial=initial, return_outputs=return_outputs)
    if weights.kind == "lstm":
        return lstm_forward(weights, x, lengths=lengths, mask=mask,
                            initial=initial, return_outputs=return_outputs)
    raise ValueError("unknown cell kind %r" % weights.kind)


# ----------------------------------------------------------------------
# training kernels: forward with an activation cache + hand-derived BPTT
# ----------------------------------------------------------------------

@dataclass
class RnnTrainCache:
    """Per-step activations stashed by a training forward pass.

    Produced by :func:`gru_forward_train` / :func:`lstm_forward_train` and
    consumed exactly once by the matching backward kernel.  Rows beyond a
    step's active count hold stale values in ``gates``/``gate_hidden`` —
    the backward kernels never read them.
    """

    kind: str                # "gru" | "lstm"
    x: np.ndarray            # (B, T, D) event representations
    gates: np.ndarray        # (B, T, G*H): r,z,n (GRU) or i,f,g,o (LSTM)
    hidden_seq: np.ndarray   # (B, T, H) post-step hidden states
    hidden_0: np.ndarray     # (B, H) initial hidden state
    counts: np.ndarray       # (T,) active rows per step, or None
    mask: np.ndarray         # (B, T) boolean, or None (full batch)
    last: object             # (B, H) or (h, c) — the forward result
    gate_hidden: np.ndarray = None  # (B, T, H) GRU only: gh_n (for dr)
    cell_seq: np.ndarray = None     # (B, T, H) LSTM only: post-step cells
    cell_0: np.ndarray = None       # (B, H) LSTM only: initial cell
    tanh_cell: np.ndarray = None    # (B, T, H) LSTM only: tanh(c_t)


def _train_setup(weights, x, lengths, mask, initial):
    """Shared preamble of the training forwards: buffers + step schedule."""
    batch, steps, _ = x.shape
    gates_x = _input_gates(weights, x)
    counts = _active_counts(lengths, steps)
    if counts is None and lengths is not None and mask is None:
        mask = _mask_from_lengths(lengths, steps)
    return batch, steps, gates_x, counts, mask


def gru_forward_train(weights, x, lengths=None, mask=None, initial=None):
    """GRU forward stashing what :func:`gru_backward` needs.

    Same contract as :func:`gru_forward` (active-prefix execution when
    ``lengths`` is sorted longest-first, mask-freezing otherwise), but
    returns an :class:`RnnTrainCache` whose ``last`` field carries the
    final ``(B, H)`` state.
    """
    batch, steps, gates_x, counts, mask = _train_setup(
        weights, x, lengths, mask, initial)
    size = weights.hidden_size
    hidden = (np.array(initial, dtype=np.float64, copy=True)
              if initial is not None else _initial(weights.init_state, batch))
    hidden_0 = hidden.copy()
    gates = np.empty((batch, steps, 3 * size))
    gate_hidden = np.empty((batch, steps, size))
    hidden_seq = np.empty((batch, steps, size))
    w_hh_t = weights.weight_hh.T
    bias_hh = weights.bias_hh
    for t in range(steps):
        active = batch if counts is None else int(counts[t])
        if active == 0:
            hidden_seq[:, t:] = hidden[:, None, :]
            break
        h_act = hidden[:active]
        gx = gates_x[:active, t]
        gh = h_act @ w_hh_t + bias_hh
        gate_block = sigmoid(gx[:, :2 * size] + gh[:, :2 * size])
        reset = gate_block[:, :size]
        update = gate_block[:, size:]
        gh_n = gh[:, 2 * size:]
        candidate = np.tanh(gx[:, 2 * size:] + reset * gh_n)
        gates[:active, t, :2 * size] = gate_block
        gates[:active, t, 2 * size:] = candidate
        gate_hidden[:active, t] = gh_n
        new_hidden = (1.0 - update) * candidate + update * h_act
        if counts is None and mask is not None:
            hidden = np.where(mask[:, t:t + 1], new_hidden, hidden)
        elif active == batch:
            hidden = new_hidden
        else:
            hidden[:active] = new_hidden
        hidden_seq[:, t] = hidden
    return RnnTrainCache(kind="gru", x=x, gates=gates, hidden_seq=hidden_seq,
                         hidden_0=hidden_0, counts=counts, mask=mask,
                         last=hidden, gate_hidden=gate_hidden)


def lstm_forward_train(weights, x, lengths=None, mask=None, initial=None):
    """LSTM forward stashing what :func:`lstm_backward` needs.

    ``initial`` and ``cache.last`` are ``(h, c)`` pairs; otherwise the
    contract of :func:`gru_forward_train`.
    """
    batch, steps, gates_x, counts, mask = _train_setup(
        weights, x, lengths, mask, initial)
    size = weights.hidden_size
    if initial is not None:
        hidden = np.array(initial[0], dtype=np.float64, copy=True)
        cell = np.array(initial[1], dtype=np.float64, copy=True)
    else:
        hidden = _initial(weights.init_state, batch)
        cell = _initial(weights.init_cell, batch)
    hidden_0 = hidden.copy()
    cell_0 = cell.copy()
    gates = np.empty((batch, steps, 4 * size))
    hidden_seq = np.empty((batch, steps, size))
    cell_seq = np.empty((batch, steps, size))
    tanh_cell = np.empty((batch, steps, size))
    w_hh_t = weights.weight_hh.T
    bias_hh = weights.bias_hh
    for t in range(steps):
        active = batch if counts is None else int(counts[t])
        if active == 0:
            hidden_seq[:, t:] = hidden[:, None, :]
            cell_seq[:, t:] = cell[:, None, :]
            break
        h_act = hidden[:active]
        c_act = cell[:active]
        gx = gates_x[:active, t]
        gh = h_act @ w_hh_t + bias_hh
        gate_block = sigmoid(gx[:, :2 * size] + gh[:, :2 * size])
        in_gate = gate_block[:, :size]
        forget = gate_block[:, size:]
        candidate = np.tanh(gx[:, 2 * size:3 * size] + gh[:, 2 * size:3 * size])
        out_gate = sigmoid(gx[:, 3 * size:] + gh[:, 3 * size:])
        gates[:active, t, :2 * size] = gate_block
        gates[:active, t, 2 * size:3 * size] = candidate
        gates[:active, t, 3 * size:] = out_gate
        new_cell = forget * c_act + in_gate * candidate
        tanh_new = np.tanh(new_cell)
        new_hidden = out_gate * tanh_new
        tanh_cell[:active, t] = tanh_new
        if counts is None and mask is not None:
            step_mask = mask[:, t:t + 1]
            hidden = np.where(step_mask, new_hidden, hidden)
            cell = np.where(step_mask, new_cell, cell)
        elif active == batch:
            hidden, cell = new_hidden, new_cell
        else:
            hidden[:active] = new_hidden
            cell[:active] = new_cell
        hidden_seq[:, t] = hidden
        cell_seq[:, t] = cell
    return RnnTrainCache(kind="lstm", x=x, gates=gates, hidden_seq=hidden_seq,
                         hidden_0=hidden_0, counts=counts, mask=mask,
                         last=(hidden, cell), cell_seq=cell_seq, cell_0=cell_0,
                         tanh_cell=tanh_cell)


def rnn_forward_train(weights, x, lengths=None, mask=None, initial=None):
    """Dispatch to the GRU or LSTM training forward by ``weights.kind``."""
    if weights.kind == "gru":
        return gru_forward_train(weights, x, lengths=lengths, mask=mask,
                                 initial=initial)
    if weights.kind == "lstm":
        return lstm_forward_train(weights, x, lengths=lengths, mask=mask,
                                  initial=initial)
    raise ValueError("unknown cell kind %r" % weights.kind)


def _step_rows(cache, t):
    """(active, mask_col) execution descriptor of step ``t`` in backward.

    ``active`` is the row-prefix length for the packed path (0 skips the
    step); ``mask_col`` is the ``(B, 1)`` boolean column for the
    mask-freezing path (None on the packed path).
    """
    batch = cache.x.shape[0]
    if cache.counts is not None:
        return int(cache.counts[t]), None
    if cache.mask is not None:
        return batch, cache.mask[:, t:t + 1]
    return batch, None


def _finish_input_grads(weights, x, d_gates_x):
    """The fused tail of BPTT: input-side gradients as three big matmuls."""
    batch, steps, dim = x.shape
    flat_x = x.reshape(batch * steps, dim)
    flat_g = d_gates_x.reshape(batch * steps, -1)
    return {
        "weight_ih": flat_g.T @ flat_x,
        "bias_ih": flat_g.sum(axis=0),
        "d_x": (flat_g @ weights.weight_ih).reshape(batch, steps, dim),
    }


def gru_backward(weights, cache, d_last, d_outputs=None):
    """Hand-derived BPTT through a cached GRU forward.

    Parameters
    ----------
    weights:
        The :class:`~repro.nn.CellWeights` the forward ran with.
    cache:
        The :class:`RnnTrainCache` from :func:`gru_forward_train`.
    d_last:
        Loss gradient wrt the final hidden state, ``(B, H)``.
    d_outputs:
        Optional loss gradient wrt every per-step state, ``(B, T, H)``
        (CPC-style objectives).

    Returns
    -------
    dict with ``d_x`` (gradient wrt the event representations, ``(B, T,
    D)``) and per-parameter gradients ``weight_ih``, ``weight_hh``,
    ``bias_ih``, ``bias_hh``, ``init_state`` — the exact quantities the
    autograd path accumulates, to < 1e-8.
    """
    batch, steps, _ = cache.x.shape
    size = weights.hidden_size
    d_hidden = np.array(d_last, dtype=np.float64, copy=True)
    d_gates_x = np.zeros((batch, steps, 3 * size))
    d_weight_hh = np.zeros_like(weights.weight_hh)
    d_bias_hh = np.zeros_like(weights.bias_hh)
    w_hh = weights.weight_hh
    for t in range(steps - 1, -1, -1):
        if d_outputs is not None:
            d_hidden += d_outputs[:, t]
        active, mask_col = _step_rows(cache, t)
        if active == 0:
            continue
        dh = d_hidden[:active] if mask_col is None else d_hidden * mask_col
        h_prev = (cache.hidden_seq[:active, t - 1] if t > 0
                  else cache.hidden_0[:active])
        gate_block = cache.gates[:active, t]
        reset = gate_block[:, :size]
        update = gate_block[:, size:2 * size]
        candidate = gate_block[:, 2 * size:]
        gh_n = cache.gate_hidden[:active, t]
        d_candidate = dh * (1.0 - update)
        d_update = dh * (h_prev - candidate)
        d_prev = dh * update
        da_n = d_candidate * (1.0 - candidate * candidate)
        d_reset = da_n * gh_n
        da_r = d_reset * reset * (1.0 - reset)
        da_z = d_update * update * (1.0 - update)
        d_gh = np.concatenate([da_r, da_z, da_n * reset], axis=1)
        d_gates_x[:active, t, :2 * size] = d_gh[:, :2 * size]
        d_gates_x[:active, t, 2 * size:] = da_n
        d_prev = d_prev + d_gh @ w_hh
        d_weight_hh += d_gh.T @ h_prev
        d_bias_hh += d_gh.sum(axis=0)
        if mask_col is None:
            d_hidden[:active] = d_prev
        else:
            d_hidden = np.where(mask_col, d_prev, d_hidden)
    grads = _finish_input_grads(weights, cache.x, d_gates_x)
    grads["weight_hh"] = d_weight_hh
    grads["bias_hh"] = d_bias_hh
    grads["init_state"] = d_hidden.sum(axis=0)
    return grads


def lstm_backward(weights, cache, d_last, d_outputs=None):
    """Hand-derived BPTT through a cached LSTM forward.

    Same contract as :func:`gru_backward`; ``d_last`` is the gradient wrt
    the final *hidden* state only (the loss never sees the cell), and the
    result additionally carries ``init_cell``.
    """
    batch, steps, _ = cache.x.shape
    size = weights.hidden_size
    d_hidden = np.array(d_last, dtype=np.float64, copy=True)
    d_cell = np.zeros((batch, size))
    d_gates_x = np.zeros((batch, steps, 4 * size))
    d_weight_hh = np.zeros_like(weights.weight_hh)
    d_bias_hh = np.zeros_like(weights.bias_hh)
    w_hh = weights.weight_hh
    for t in range(steps - 1, -1, -1):
        if d_outputs is not None:
            d_hidden += d_outputs[:, t]
        active, mask_col = _step_rows(cache, t)
        if active == 0:
            continue
        if mask_col is None:
            dh = d_hidden[:active]
            dc = d_cell[:active]
        else:
            dh = d_hidden * mask_col
            dc = d_cell * mask_col
        h_prev = (cache.hidden_seq[:active, t - 1] if t > 0
                  else cache.hidden_0[:active])
        c_prev = (cache.cell_seq[:active, t - 1] if t > 0
                  else cache.cell_0[:active])
        gate_block = cache.gates[:active, t]
        in_gate = gate_block[:, :size]
        forget = gate_block[:, size:2 * size]
        candidate = gate_block[:, 2 * size:3 * size]
        out_gate = gate_block[:, 3 * size:]
        tanh_c = cache.tanh_cell[:active, t]
        d_out = dh * tanh_c
        dc = dc + dh * out_gate * (1.0 - tanh_c * tanh_c)
        d_in = dc * candidate
        d_forget = dc * c_prev
        d_candidate = dc * in_gate
        d_cell_prev = dc * forget
        da_i = d_in * in_gate * (1.0 - in_gate)
        da_f = d_forget * forget * (1.0 - forget)
        da_g = d_candidate * (1.0 - candidate * candidate)
        da_o = d_out * out_gate * (1.0 - out_gate)
        d_gh = np.concatenate([da_i, da_f, da_g, da_o], axis=1)
        d_gates_x[:active, t] = d_gh
        d_prev = d_gh @ w_hh
        d_weight_hh += d_gh.T @ h_prev
        d_bias_hh += d_gh.sum(axis=0)
        if mask_col is None:
            d_hidden[:active] = d_prev
            d_cell[:active] = d_cell_prev
        else:
            d_hidden = np.where(mask_col, d_prev, d_hidden)
            d_cell = np.where(mask_col, d_cell_prev, d_cell)
    grads = _finish_input_grads(weights, cache.x, d_gates_x)
    grads["weight_hh"] = d_weight_hh
    grads["bias_hh"] = d_bias_hh
    grads["init_state"] = d_hidden.sum(axis=0)
    grads["init_cell"] = d_cell.sum(axis=0)
    return grads


def rnn_backward(weights, cache, d_last, d_outputs=None):
    """Dispatch to the GRU or LSTM backward kernel by ``cache.kind``."""
    if cache.kind == "gru":
        return gru_backward(weights, cache, d_last, d_outputs=d_outputs)
    if cache.kind == "lstm":
        return lstm_backward(weights, cache, d_last, d_outputs=d_outputs)
    raise ValueError("unknown cell kind %r" % cache.kind)


def _embedding_parts(trx_encoder, batch):
    """Categorical embedding lookups as raw arrays, schema order.

    Ids are range-checked with the same error as ``Embedding.forward`` so
    the fused paths reject exactly the batches the Tensor path rejects
    (a negative id must not silently wrap to the table's last row).
    """
    parts = []
    for name in trx_encoder.schema.categorical:
        module = trx_encoder.embeddings[name]
        ids = np.asarray(batch.fields[name])
        if ids.min() < 0 or ids.max() >= module.num_embeddings:
            raise IndexError(
                "embedding ids out of range [0, %d): min=%d max=%d"
                % (module.num_embeddings, ids.min(), ids.max())
            )
        parts.append(module.weight.data[ids])
    return parts


def _batchnorm_stats(norm, numeric, mask, training):
    """The (mean, var) a ``BatchNorm1d`` would use, updating its buffers.

    Mirrors ``BatchNorm1d.forward`` exactly: training mode computes the
    masked batch statistics and folds them into the running buffers with
    the module's own momentum/_set_buffer, eval mode reads the running
    buffers — so checkpoints from the fused and Tensor engines carry
    identical statistics.
    """
    if not training:
        return norm.running_mean, norm.running_var
    flat = numeric[np.asarray(mask, dtype=bool)]
    if len(flat) == 0:
        raise ValueError("batch norm received an empty batch")
    mean = flat.mean(axis=0)
    var = flat.var(axis=0)
    norm._set_buffer(
        "running_mean",
        (1 - norm.momentum) * norm.running_mean + norm.momentum * mean,
    )
    norm._set_buffer(
        "running_var",
        (1 - norm.momentum) * norm.running_var + norm.momentum * var,
    )
    return mean, var


def _encode(trx_encoder, batch, prev_times, training):
    """Shared event-encoding pipeline behind both fused entry points."""
    trx_encoder.check_batch_schema(batch)
    parts = _embedding_parts(trx_encoder, batch)
    scaled = None
    norm = trx_encoder.numeric_norm
    if norm is not None:
        numeric = trx_encoder._numeric_array(batch, prev_times=prev_times)
        mean, var = _batchnorm_stats(norm, numeric, batch.mask,
                                     training and norm.training)
        scaled = (numeric - mean) / np.sqrt(var + norm.eps)
        parts.append(scaled * norm.weight.data + norm.bias.data)
    if not parts:
        raise ValueError("schema has no event fields to encode")
    x = np.concatenate(parts, axis=-1) if len(parts) > 1 else parts[0]
    return x, scaled


def encode_events(trx_encoder, batch, prev_times=None):
    """Graph-free event encoding: the eval-mode ``TrxEncoder`` as raw numpy.

    Embedding lookups read the tables directly and batch norm applies the
    running statistics, which is exactly the Tensor path in eval mode
    (training-mode statistics are a training concern and never used when
    serving).  Returns ``(B, T, D)`` float64.
    """
    x, _ = _encode(trx_encoder, batch, prev_times, training=False)
    return x


def encode_events_train(trx_encoder, batch):
    """Event encoding under *training* semantics, plus the backward stash.

    Same pipeline as :func:`encode_events` (one shared implementation),
    but when the encoder's batch norm is in training mode it normalises
    by the masked batch statistics and updates the running buffers —
    op-for-op what ``TrxEncoder.forward`` does.  Returns ``(x, scaled)``
    where ``scaled`` is the pre-affine normalised numeric block the batch
    norm backward needs (None without numeric features).
    """
    return _encode(trx_encoder, batch, None, training=True)
