"""Fused, graph-free numpy kernels for the training and inference hot paths.

The autograd :class:`~repro.nn.Tensor` builds one Python graph node per op
and per timestep.  These kernels drop to raw numpy instead:

- the input projection of *all* timesteps is computed as one matmul
  (``(B*T, D) @ (D, G*H)``) instead of T small ones, and is stored
  time-major (``(T, B, G*H)``) so every step reads a contiguous block;
- per step only the hidden projection remains, written into preallocated
  scratch buffers (no per-step allocations on the packed path);
- padding is never computed when the batch is sorted by length (the batch
  planner's output): each step operates on the *active* row prefix only —
  the numpy analogue of cuDNN's packed sequences.  Unsorted batches fall
  back to mask-freezing, exactly like the Tensor path.

**Precision policy.**  Every kernel consumes a :class:`WeightPlan` — the
per-weight work (dtype cast, transposes, bias folding) precomputed once
per ``CellWeights`` generation:

- ``float64`` plans preserve the historical op order exactly (biases stay
  per-step), so results match the Tensor path to float64 rounding
  (< 1e-10) and gradients to < 1e-8 — the parity-test reference;
- ``float32`` plans additionally fold the recurrent bias into the input
  projection where algebraically exact (all LSTM gates; the GRU r/z
  gates — the n-gate bias must stay inside the reset multiply), halving
  bytes per GEMM for ~2x throughput at a property-bounded drift vs the
  float64 reference.

A raw :class:`~repro.nn.CellWeights` passed where a plan is expected is
promoted to a float64 plan on the fly (:func:`as_plan`), so direct kernel
callers keep reference semantics.  Plans hold *references* to their
source parameter buffers; :func:`plan_matches` detects optimiser steps
(optimisers rebind ``param.data``) so cached plans are rebuilt exactly
when the weights change.

Two kernel families share those tricks:

- **inference**: :func:`gru_forward` / :func:`lstm_forward` /
  :func:`rnn_forward` and :func:`encode_events` — forward only, nothing
  retained;
- **training**: :func:`gru_forward_train` / :func:`lstm_forward_train`
  stash the per-step activations a backward pass needs (time-major, in
  the plan dtype), and :func:`gru_backward` / :func:`lstm_backward` run
  hand-derived BPTT over that cache — loss gradient in, weight gradients
  out, no graph ever built.  Per-gate input gradients accumulate into one
  time-major buffer so the weight_ih/bias_ih/input gradients are three
  fused matmuls at the end, mirroring the fused input projection of the
  forward.

Weight layout is *not* re-declared here: plans are built from the
:class:`~repro.nn.CellWeights` view exported by the ``nn.rnn`` modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "PRECISIONS",
    "resolve_precision",
    "sigmoid",
    "l2_normalize_rows",
    "l2_normalize_rows_backward",
    "WeightPlan",
    "build_weight_plan",
    "plan_matches",
    "as_plan",
    "EncodePlan",
    "build_encode_plan",
    "encode_plan_matches",
    "rnn_forward",
    "gru_forward",
    "lstm_forward",
    "encode_events",
    "encode_events_train",
    "RnnTrainCache",
    "rnn_forward_train",
    "gru_forward_train",
    "lstm_forward_train",
    "rnn_backward",
    "gru_backward",
    "lstm_backward",
]

#: The two supported compute dtypes of the precision policy.
PRECISIONS = {"float32": np.float32, "float64": np.float64}

#: ``|x|`` beyond which the logistic saturates exactly in both dtypes
#: (``1 + exp(-60)`` rounds to ``1.0`` even in float64), so clipping the
#: exponent changes nothing representable while preventing ``np.exp``
#: overflow warnings in float32.
_SIGMOID_CLIP = 60.0


def resolve_precision(precision):
    """Canonicalise a precision knob to a numpy dtype.

    Accepts the policy strings ``"float32"``/``"float64"`` (or the
    corresponding numpy dtypes); anything else raises ``ValueError``.
    """
    if isinstance(precision, str):
        try:
            return np.dtype(PRECISIONS[precision])
        except KeyError:
            raise ValueError(
                "unknown precision %r (use 'float32' or 'float64')"
                % precision
            ) from None
    dtype = np.dtype(precision)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(
            "unknown precision %r (use 'float32' or 'float64')" % precision
        )
    return dtype


def precision_name(dtype):
    """The policy string of a resolved dtype (``"float32"``/``"float64"``)."""
    return "float32" if np.dtype(dtype) == np.dtype(np.float32) else "float64"


def sigmoid(x, out=None):
    """Numerically-safe logistic function.

    The exponent is clipped to ``±60`` before ``exp``: past that point
    ``1 + exp(-|x|)`` already rounds to ``1.0`` in float64 (let alone
    float32), so the clip is value-preserving while keeping float32
    forwards free of overflow ``RuntimeWarning``s on saturated gates.
    With ``out`` the computation runs fully in-place (``out is x`` is
    allowed).
    """
    # Negate first, then cap the exponent from above only: exp of a
    # large *negative* argument underflows silently to 0.0 (numpy's
    # default underflow handling), which already yields the exact
    # result 1.0 downstream — so a single-sided cap gives bit-identical
    # values to a symmetric clip with one fewer ufunc dispatch.  This
    # runs once per timestep on the serving hot path, where np.clip's
    # python wrapper was measurable.
    out = np.negative(x, out=out)
    np.minimum(out, _SIGMOID_CLIP, out=out)
    np.exp(out, out=out)
    out += 1.0
    np.reciprocal(out, out=out)
    return out


def l2_normalize_rows(x, eps=1e-12):
    """Unit-normalise rows; mirrors ``nn.functional.l2_normalize``."""
    norm = np.sqrt(np.maximum((x * x).sum(axis=-1, keepdims=True), eps))
    return x / norm


def l2_normalize_rows_backward(x, grad, eps=1e-12):
    """Gradient of :func:`l2_normalize_rows` wrt ``x``.

    For ``y = x / ||x||``: ``dx = g/||x|| - x (g·x)/||x||^3``, with the
    norm term dropped where the squared norm hit the ``eps`` clip —
    exactly the gradient the autograd ``nn.functional.l2_normalize``
    produces (its clipped sqrt passes no gradient when clipping).
    """
    sq = (x * x).sum(axis=-1, keepdims=True)
    norm = np.sqrt(np.maximum(sq, eps))
    dot = (grad * x).sum(axis=-1, keepdims=True)
    return grad / norm - x * (dot * (sq > eps) / norm**3)


# ----------------------------------------------------------------------
# weight plans: per-generation precompute (cast, transpose, bias folding)
# ----------------------------------------------------------------------

@dataclass
class WeightPlan:
    """Packed, dtype-cast view of one :class:`~repro.nn.CellWeights`.

    Built once per weight generation by :func:`build_weight_plan`; every
    kernel call then runs off the pre-transposed, pre-cast buffers.  The
    per-gate blocks stay stacked, so each timestep is a single recurrent
    GEMM (``(B, H) @ (H, G*H)``) instead of slice-and-dispatch.

    ``sources`` keeps references to the live parameter buffers the plan
    was built from; :func:`plan_matches` compares identities, which is
    exactly the granularity at which the optimisers invalidate weights
    (they rebind ``param.data`` rather than writing in place).

    Bias handling is dtype-dependent (see the module docstring):
    ``bias_step`` is the full per-step recurrent bias for float64 plans
    (None when folded), ``b_hn`` is the GRU n-gate recurrent bias kept
    per-step under float32 folding (None otherwise).
    """

    kind: str                 # "gru" | "lstm"
    hidden_size: int
    dtype: np.dtype
    w_ih_t: np.ndarray        # (D, G*H) contiguous, policy dtype
    w_hh_t: np.ndarray        # (H, G*H) contiguous, policy dtype
    bias_x: np.ndarray        # (G*H,) input-side bias (+ folded parts)
    bias_step: np.ndarray     # (G*H,) per-step recurrent bias, or None
    b_hn: np.ndarray          # (H,) GRU n-gate recurrent bias, or None
    init_state: np.ndarray    # (H,) policy dtype
    init_cell: np.ndarray = None   # (H,) policy dtype, LSTM only
    sources: tuple = field(default=(), repr=False)

    @property
    def input_size(self):
        """Width ``D`` of the event representations the plan consumes."""
        return self.w_ih_t.shape[0]

    @property
    def num_gates(self):
        """Gate count ``G`` of the cell (3 for GRU, 4 for LSTM)."""
        return self.w_ih_t.shape[1] // self.hidden_size


def _weight_sources(weights):
    """The live arrays whose identities define a weight generation."""
    return (weights.weight_ih, weights.weight_hh, weights.bias_ih,
            weights.bias_hh, weights.init_state, weights.init_cell)


def build_weight_plan(weights, precision="float64"):
    """Precompute the per-weight work of the kernels for one generation.

    ``weights`` is a :class:`~repro.nn.CellWeights` view of the live
    float64 parameter buffers; the plan stores pre-cast, pre-transposed
    copies in the ``precision`` dtype.  ``float64`` keeps the recurrent
    bias per-step (historical op order, bit-comparable to the Tensor
    path); ``float32`` folds it into the input projection where exact
    (everything except the GRU n-gate).
    """
    dtype = resolve_precision(precision)
    size = weights.hidden_size
    fold = dtype == np.dtype(np.float32)
    bias_x = np.asarray(weights.bias_ih, dtype=dtype)
    bias_step = np.asarray(weights.bias_hh, dtype=dtype)
    b_hn = None
    if fold:
        bias_x = bias_x.copy()
        if weights.kind == "gru":
            bias_x[:2 * size] += bias_step[:2 * size]
            b_hn = np.ascontiguousarray(bias_step[2 * size:])
        else:
            bias_x += bias_step
        bias_step = None
    return WeightPlan(
        kind=weights.kind,
        hidden_size=size,
        dtype=dtype,
        w_ih_t=np.ascontiguousarray(weights.weight_ih.T, dtype=dtype),
        w_hh_t=np.ascontiguousarray(weights.weight_hh.T, dtype=dtype),
        bias_x=bias_x,
        bias_step=bias_step,
        b_hn=b_hn,
        init_state=np.ascontiguousarray(weights.init_state, dtype=dtype),
        init_cell=(None if weights.init_cell is None else
                   np.ascontiguousarray(weights.init_cell, dtype=dtype)),
        sources=_weight_sources(weights),
    )


def plan_matches(plan, weights):
    """Whether ``plan`` was built from exactly these live weight buffers.

    ``weights`` is the current :class:`~repro.nn.CellWeights` view; the
    comparison is by array *identity* (``is``), which is exactly the
    granularity at which the optimisers invalidate (they rebind
    ``param.data`` to a fresh buffer every step).
    """
    if plan is None:
        return False
    current = _weight_sources(weights)
    if len(plan.sources) != len(current):
        return False
    return all(a is b for a, b in zip(plan.sources, current))


def as_plan(weights, precision=None):
    """Promote a :class:`~repro.nn.CellWeights` to a plan (pass plans through).

    Raw weights default to a **float64** plan — direct kernel callers
    (the parity tests) keep reference semantics without opting in to a
    precision policy.
    """
    if isinstance(weights, WeightPlan):
        return weights
    return build_weight_plan(weights, precision or "float64")


# ----------------------------------------------------------------------
# encode plans: pre-cast embedding tables + batch-norm affine
# ----------------------------------------------------------------------

@dataclass
class EncodePlan:
    """Dtype-cast view of a ``TrxEncoder``'s lookup tables.

    Under float64 the tables *are* the live parameter buffers (no copy,
    bit-identical encoding); under float32 they are pre-cast copies so
    the big per-event gathers move half the bytes.  Invalidated by
    source-identity checks like :class:`WeightPlan`.
    """

    dtype: np.dtype
    tables: dict                   # field name -> (V, d) table, policy dtype
    sources: tuple = field(default=(), repr=False)


def _encode_sources(trx_encoder):
    parts = [trx_encoder.embeddings[name].weight.data
             for name in trx_encoder.schema.categorical]
    return tuple(parts)


def build_encode_plan(trx_encoder, precision="float64"):
    """Pre-cast the categorical embedding tables to the policy dtype."""
    dtype = resolve_precision(precision)
    tables = {}
    for name in trx_encoder.schema.categorical:
        table = trx_encoder.embeddings[name].weight.data
        tables[name] = (table if table.dtype == dtype
                        else np.ascontiguousarray(table, dtype=dtype))
    return EncodePlan(dtype=dtype, tables=tables,
                      sources=_encode_sources(trx_encoder))


def encode_plan_matches(plan, trx_encoder):
    """Whether ``plan`` still mirrors the encoder's live tables."""
    if plan is None:
        return False
    current = _encode_sources(trx_encoder)
    if len(plan.sources) != len(current):
        return False
    return all(a is b for a, b in zip(plan.sources, current))


# ----------------------------------------------------------------------
# shared forward plumbing
# ----------------------------------------------------------------------

def _plan_input_gates(plan, x):
    """Fused input projection, time-major: ``(B, T, D) -> (T, B, G*H)``.

    One GEMM over all timesteps against the pre-transposed contiguous
    ``w_ih_t``, bias added in place, then laid out time-major so each
    step of the recurrence reads one contiguous ``(B, G*H)`` block.
    """
    batch, steps, dim = x.shape
    # Transpose the *input* to time-major before the GEMM rather than
    # the projected gates after it: the copy moves (T, B, D) elements
    # instead of (T, B, G*H) — D is a fraction of G*H — and the GEMM
    # then writes the time-major layout directly.  Each output row is
    # the same dot product either way, so the float64 parity contract
    # is unaffected.
    xt = x.swapaxes(0, 1)
    if xt.dtype != plan.dtype:
        xt = xt.astype(plan.dtype, order="C", copy=False)
    else:
        xt = np.ascontiguousarray(xt)
    gates = xt.reshape(steps * batch, dim) @ plan.w_ih_t
    gates += plan.bias_x
    return gates.reshape(steps, batch, -1)


def _initial(vector, batch, dtype=np.float64):
    """Broadcast a learnt ``(H,)`` initial state to a ``(B, H)`` buffer."""
    return np.tile(np.asarray(vector, dtype=dtype), (batch, 1))


def _initial_hidden(plan, batch, initial):
    """The caller's initial state (cast+copied) or the learnt c_0."""
    if initial is not None:
        return np.array(initial, dtype=plan.dtype, copy=True)
    return np.tile(plan.init_state, (batch, 1))


def _active_counts(lengths, steps):
    """Per-step active row count for a batch sorted longest-first.

    Returns None when the batch is not sorted by non-increasing length
    (the caller then uses the mask-freezing path).  Computed via
    ``searchsorted`` over the (reversed, ascending) lengths — O(T log B)
    with no B×T intermediate.
    """
    if lengths is None:
        return None
    lengths = np.asarray(lengths, dtype=np.intp)
    if len(lengths) > 1 and np.any(np.diff(lengths) > 0):
        return None
    return len(lengths) - np.searchsorted(
        lengths[::-1], np.arange(steps, dtype=np.intp), side="right")


def _mask_from_lengths(lengths, steps):
    return (np.arange(steps, dtype=np.intp)[None, :]
            < np.asarray(lengths, dtype=np.intp)[:, None])


# ----------------------------------------------------------------------
# inference forwards
# ----------------------------------------------------------------------

def gru_forward(weights, x, lengths=None, mask=None, initial=None,
                return_outputs=False):
    """Fused GRU forward over a padded batch.

    Parameters
    ----------
    weights:
        A :class:`WeightPlan` (or a raw :class:`~repro.nn.CellWeights`,
        promoted to a float64 plan).
    x:
        Event representations ``(B, T, D)`` (raw numpy, any float dtype).
    lengths:
        True sequence lengths ``(B,)``.  When sorted longest-first (the
        batch planner's output) each step runs on the active prefix only.
    mask:
        Optional boolean ``(B, T)``; used when ``lengths`` is absent or
        unsorted.  False entries freeze the state.
    initial:
        Optional ``(B, H)`` state overriding the learnt c_0.
    return_outputs:
        When True also return the per-step states ``(B, T, H)``.

    Returns
    -------
    (outputs, last): outputs is None unless requested; last is ``(B, H)``
    in the plan dtype, the state after each sequence's final real event.
    """
    plan = as_plan(weights)
    dt = plan.dtype
    batch, steps, _ = x.shape
    size = plan.hidden_size
    two = 2 * size
    hidden = _initial_hidden(plan, batch, initial)
    gates_x = _plan_input_gates(plan, x)
    outputs = (np.empty((batch, steps, size), dtype=dt)
               if return_outputs else None)
    counts = _active_counts(lengths, steps)
    if counts is None and lengths is not None and mask is None:
        mask = _mask_from_lengths(lengths, steps)
    gh = np.empty((batch, 3 * size), dtype=dt)
    rz = np.empty((batch, two), dtype=dt)
    new_h = np.empty((batch, size), dtype=dt)
    tmp = np.empty((batch, size), dtype=dt)
    # Hoisted loop invariants: attribute loads and per-plan branches are
    # measurable at one python-level iteration per timestep.
    w_hh_t = plan.w_hh_t
    bias_step = plan.bias_step
    b_hn = plan.b_hn
    count_list = None if counts is None else counts.tolist()
    # float64 keeps the seed's exact h-update op order (the 1e-10 parity
    # contract); float32 uses the algebraically-equal 3-op form
    # ``h + z*(h_prev - h_cand)`` — one fewer dispatch per step, and the
    # float32 path is drift-bounded rather than order-pinned.
    fast_update = dt == np.dtype(np.float32)
    for t in range(steps):
        active = batch if count_list is None else count_list[t]
        if active == 0:
            if outputs is not None:
                outputs[:, t:] = hidden[:, None, :]
            break
        h_act = hidden[:active]
        gx = gates_x[t, :active]
        gh_a = gh[:active]
        np.dot(h_act, w_hh_t, out=gh_a)
        if bias_step is not None:
            gh_a += bias_step
        # One sigmoid over the contiguous (r, z) block — identical
        # elementwise values, half the ufunc dispatches.
        g = rz[:active]
        np.add(gx[:, :two], gh_a[:, :two], out=g)
        sigmoid(g, out=g)
        reset = g[:, :size]
        update = g[:, size:]
        ghn = gh_a[:, two:]
        if b_hn is not None:
            ghn += b_hn
        ghn *= reset
        ghn += gx[:, two:]
        candidate = np.tanh(ghn, out=ghn)
        out_h = new_h[:active]
        if fast_update:
            # new_h = candidate + update * (h_prev - candidate)
            np.subtract(h_act, candidate, out=out_h)
            out_h *= update
            out_h += candidate
        else:
            # new_h = (1 - update) * candidate + update * h_prev
            np.subtract(1.0, update, out=out_h)
            out_h *= candidate
            t_a = tmp[:active]
            np.multiply(update, h_act, out=t_a)
            out_h += t_a
        if count_list is None and mask is not None:
            np.copyto(hidden, out_h, where=mask[:, t:t + 1])
        else:
            hidden[:active] = out_h
        if outputs is not None:
            outputs[:, t] = hidden
    return outputs, hidden


def lstm_forward(weights, x, lengths=None, mask=None, initial=None,
                 return_outputs=False):
    """Fused LSTM forward; ``initial`` and the final state are (h, c) pairs.

    Same contract as :func:`gru_forward`.
    """
    plan = as_plan(weights)
    dt = plan.dtype
    batch, steps, _ = x.shape
    size = plan.hidden_size
    two, three = 2 * size, 3 * size
    if initial is not None:
        hidden = np.array(initial[0], dtype=dt, copy=True)
        cell = np.array(initial[1], dtype=dt, copy=True)
    else:
        hidden = np.tile(plan.init_state, (batch, 1))
        cell = np.tile(plan.init_cell, (batch, 1))
    gates_x = _plan_input_gates(plan, x)
    outputs = (np.empty((batch, steps, size), dtype=dt)
               if return_outputs else None)
    counts = _active_counts(lengths, steps)
    if counts is None and lengths is not None and mask is None:
        mask = _mask_from_lengths(lengths, steps)
    gh = np.empty((batch, 4 * size), dtype=dt)
    sig = np.empty((batch, two), dtype=dt)
    cand = np.empty((batch, size), dtype=dt)
    out_gate_buf = np.empty((batch, size), dtype=dt)
    new_c = np.empty((batch, size), dtype=dt)
    new_h = np.empty((batch, size), dtype=dt)
    tmp = np.empty((batch, size), dtype=dt)
    for t in range(steps):
        active = batch if counts is None else int(counts[t])
        if active == 0:
            if outputs is not None:
                outputs[:, t:] = hidden[:, None, :]
            break
        h_act = hidden[:active]
        c_act = cell[:active]
        gx = gates_x[t, :active]
        gh_a = gh[:active]
        np.dot(h_act, plan.w_hh_t, out=gh_a)
        if plan.bias_step is not None:
            gh_a += plan.bias_step
        # One sigmoid over the contiguous (i, f) block — identical
        # elementwise values, fewer ufunc dispatches.
        g = sig[:active]
        np.add(gx[:, :two], gh_a[:, :two], out=g)
        sigmoid(g, out=g)
        in_gate = g[:, :size]
        forget = g[:, size:]
        cd = cand[:active]
        np.add(gx[:, two:three], gh_a[:, two:three], out=cd)
        np.tanh(cd, out=cd)
        og = out_gate_buf[:active]
        np.add(gx[:, three:], gh_a[:, three:], out=og)
        sigmoid(og, out=og)
        # new_c = forget * c_prev + in * candidate
        nc = new_c[:active]
        np.multiply(forget, c_act, out=nc)
        t_a = tmp[:active]
        np.multiply(in_gate, cd, out=t_a)
        nc += t_a
        nh = new_h[:active]
        np.tanh(nc, out=t_a)
        np.multiply(og, t_a, out=nh)
        if counts is None and mask is not None:
            step_mask = mask[:, t:t + 1]
            np.copyto(hidden, nh, where=step_mask)
            np.copyto(cell, nc, where=step_mask)
        else:
            hidden[:active] = nh
            cell[:active] = nc
        if outputs is not None:
            outputs[:, t] = hidden
    return outputs, (hidden, cell)


def rnn_forward(weights, x, lengths=None, mask=None, initial=None,
                return_outputs=False):
    """Dispatch to the fused GRU or LSTM kernel by ``weights.kind``.

    ``weights`` is a :class:`~repro.nn.CellWeights` view or an already
    packed :class:`WeightPlan`; ``x`` is the ``(B, T, D)`` event array
    (cast to the plan dtype on entry); ``lengths`` are per-row step
    counts (ints), ``mask`` the ``(B, T)`` boolean validity mask, and
    ``initial`` the ``(B, H)`` seed state (an ``(h, c)`` pair for LSTM)
    in any float dtype — it is copied into the plan dtype.
    """
    if weights.kind == "gru":
        return gru_forward(weights, x, lengths=lengths, mask=mask,
                           initial=initial, return_outputs=return_outputs)
    if weights.kind == "lstm":
        return lstm_forward(weights, x, lengths=lengths, mask=mask,
                            initial=initial, return_outputs=return_outputs)
    raise ValueError("unknown cell kind %r" % weights.kind)


# ----------------------------------------------------------------------
# training kernels: forward with an activation cache + hand-derived BPTT
# ----------------------------------------------------------------------

@dataclass
class RnnTrainCache:
    """Per-step activations stashed by a training forward pass.

    Produced by :func:`gru_forward_train` / :func:`lstm_forward_train` and
    consumed exactly once by the matching backward kernel.  Per-step
    arrays are **time-major** (``(T, B, ·)``) so both directions of BPTT
    touch contiguous blocks; rows beyond a step's active count hold stale
    values in ``gates``/``gate_hidden`` — the backward kernels never read
    them.  Everything is stored in the plan dtype.
    """

    kind: str                # "gru" | "lstm"
    plan: WeightPlan         # the plan the forward ran with
    x: np.ndarray            # (B, T, D) event representations, plan dtype
    gates: np.ndarray        # (T, B, G*H): r,z,n (GRU) or i,f,g,o (LSTM)
    hidden_seq: np.ndarray   # (T, B, H) post-step hidden states
    hidden_0: np.ndarray     # (B, H) initial hidden state
    counts: np.ndarray       # (T,) active rows per step, or None
    mask: np.ndarray         # (B, T) boolean, or None (full batch)
    last: object             # (B, H) or (h, c) — the forward result
    gate_hidden: np.ndarray = None  # (T, B, H) GRU only: gh_n (for dr)
    cell_seq: np.ndarray = None     # (T, B, H) LSTM only: post-step cells
    cell_0: np.ndarray = None       # (B, H) LSTM only: initial cell
    tanh_cell: np.ndarray = None    # (T, B, H) LSTM only: tanh(c_t)

    @property
    def states(self):
        """Per-step hidden states in batch-major ``(B, T, H)`` layout."""
        return self.hidden_seq.transpose(1, 0, 2)


def _train_setup(weights, x, lengths, mask):
    """Shared preamble of the training forwards: plan + step schedule."""
    plan = as_plan(weights)
    batch, steps, _ = x.shape
    if x.dtype != plan.dtype:
        x = x.astype(plan.dtype, copy=False)
    gates_x = _plan_input_gates(plan, x)
    counts = _active_counts(lengths, steps)
    if counts is None and lengths is not None and mask is None:
        mask = _mask_from_lengths(lengths, steps)
    return plan, x, batch, steps, gates_x, counts, mask


def gru_forward_train(weights, x, lengths=None, mask=None, initial=None):
    """GRU forward stashing what :func:`gru_backward` needs.

    Same contract as :func:`gru_forward` (active-prefix execution when
    ``lengths`` is sorted longest-first, mask-freezing otherwise), but
    returns an :class:`RnnTrainCache` whose ``last`` field carries the
    final ``(B, H)`` state.
    """
    plan, x, batch, steps, gates_x, counts, mask = _train_setup(
        weights, x, lengths, mask)
    dt = plan.dtype
    size = plan.hidden_size
    two = 2 * size
    hidden = _initial_hidden(plan, batch, initial)
    hidden_0 = hidden.copy()
    gates = np.empty((steps, batch, 3 * size), dtype=dt)
    gate_hidden = np.empty((steps, batch, size), dtype=dt)
    hidden_seq = np.empty((steps, batch, size), dtype=dt)
    gh = np.empty((batch, 3 * size), dtype=dt)
    new_h = np.empty((batch, size), dtype=dt)
    tmp = np.empty((batch, size), dtype=dt)
    # Hoisted loop invariants (see gru_forward): the same rationale, the
    # loop runs once per timestep on the training hot path.
    w_hh_t = plan.w_hh_t
    bias_step = plan.bias_step
    b_hn = plan.b_hn
    count_list = None if counts is None else counts.tolist()
    fast_update = dt == np.dtype(np.float32)
    for t in range(steps):
        active = batch if count_list is None else count_list[t]
        if active == 0:
            hidden_seq[t:] = hidden[None, :, :]
            break
        h_act = hidden[:active]
        gx = gates_x[t, :active]
        gh_a = gh[:active]
        np.dot(h_act, w_hh_t, out=gh_a)
        if bias_step is not None:
            gh_a += bias_step
        gate_block = gates[t, :active]
        np.add(gx[:, :two], gh_a[:, :two], out=gate_block[:, :two])
        sigmoid(gate_block[:, :two], out=gate_block[:, :two])
        reset = gate_block[:, :size]
        update = gate_block[:, size:two]
        ghn = gh_a[:, two:]
        if b_hn is not None:
            ghn += b_hn
        gate_hidden[t, :active] = ghn
        candidate = gate_block[:, two:]
        np.multiply(ghn, reset, out=candidate)
        candidate += gx[:, two:]
        np.tanh(candidate, out=candidate)
        if count_list is None and mask is not None:
            # Mask-freezing path: stage in scratch, then masked-copy.
            out_h = new_h[:active]
        else:
            # Packed path: write the update straight into the cached
            # step row — no staging copy, frozen rows carried below.
            out_h = hidden_seq[t, :active]
        if fast_update:
            # new_h = candidate + update * (h_prev - candidate): same
            # 3-op form as the float32 inference path (drift-bounded);
            # the backward's analytic formulas are order-independent.
            np.subtract(h_act, candidate, out=out_h)
            out_h *= update
            out_h += candidate
        else:
            # float64 keeps the seed's exact op order (1e-8 parity).
            np.subtract(1.0, update, out=out_h)
            out_h *= candidate
            t_a = tmp[:active]
            np.multiply(update, h_act, out=t_a)
            out_h += t_a
        if count_list is None and mask is not None:
            np.copyto(hidden, out_h, where=mask[:, t:t + 1])
            hidden_seq[t] = hidden
        else:
            if active < batch:
                hidden_seq[t, active:] = hidden[active:]
            hidden = hidden_seq[t]
    return RnnTrainCache(kind="gru", plan=plan, x=x, gates=gates,
                         hidden_seq=hidden_seq, hidden_0=hidden_0,
                         counts=counts, mask=mask, last=hidden,
                         gate_hidden=gate_hidden)


def lstm_forward_train(weights, x, lengths=None, mask=None, initial=None):
    """LSTM forward stashing what :func:`lstm_backward` needs.

    ``initial`` and ``cache.last`` are ``(h, c)`` pairs; otherwise the
    contract of :func:`gru_forward_train`.
    """
    plan, x, batch, steps, gates_x, counts, mask = _train_setup(
        weights, x, lengths, mask)
    dt = plan.dtype
    size = plan.hidden_size
    two, three = 2 * size, 3 * size
    if initial is not None:
        hidden = np.array(initial[0], dtype=dt, copy=True)
        cell = np.array(initial[1], dtype=dt, copy=True)
    else:
        hidden = np.tile(plan.init_state, (batch, 1))
        cell = np.tile(plan.init_cell, (batch, 1))
    hidden_0 = hidden.copy()
    cell_0 = cell.copy()
    gates = np.empty((steps, batch, 4 * size), dtype=dt)
    hidden_seq = np.empty((steps, batch, size), dtype=dt)
    cell_seq = np.empty((steps, batch, size), dtype=dt)
    tanh_cell = np.empty((steps, batch, size), dtype=dt)
    gh = np.empty((batch, 4 * size), dtype=dt)
    new_c = np.empty((batch, size), dtype=dt)
    new_h = np.empty((batch, size), dtype=dt)
    tmp = np.empty((batch, size), dtype=dt)
    for t in range(steps):
        active = batch if counts is None else int(counts[t])
        if active == 0:
            hidden_seq[t:] = hidden[None, :, :]
            cell_seq[t:] = cell[None, :, :]
            break
        h_act = hidden[:active]
        c_act = cell[:active]
        gx = gates_x[t, :active]
        gh_a = gh[:active]
        np.dot(h_act, plan.w_hh_t, out=gh_a)
        if plan.bias_step is not None:
            gh_a += plan.bias_step
        gate_block = gates[t, :active]
        np.add(gx[:, :two], gh_a[:, :two], out=gate_block[:, :two])
        sigmoid(gate_block[:, :two], out=gate_block[:, :two])
        in_gate = gate_block[:, :size]
        forget = gate_block[:, size:two]
        candidate = gate_block[:, two:three]
        np.add(gx[:, two:three], gh_a[:, two:three], out=candidate)
        np.tanh(candidate, out=candidate)
        out_gate = gate_block[:, three:]
        np.add(gx[:, three:], gh_a[:, three:], out=out_gate)
        sigmoid(out_gate, out=out_gate)
        nc = new_c[:active]
        np.multiply(forget, c_act, out=nc)
        t_a = tmp[:active]
        np.multiply(in_gate, candidate, out=t_a)
        nc += t_a
        tanh_new = tanh_cell[t, :active]
        np.tanh(nc, out=tanh_new)
        nh = new_h[:active]
        np.multiply(out_gate, tanh_new, out=nh)
        if counts is None and mask is not None:
            step_mask = mask[:, t:t + 1]
            np.copyto(hidden, nh, where=step_mask)
            np.copyto(cell, nc, where=step_mask)
        else:
            hidden[:active] = nh
            cell[:active] = nc
        hidden_seq[t] = hidden
        cell_seq[t] = cell
    return RnnTrainCache(kind="lstm", plan=plan, x=x, gates=gates,
                         hidden_seq=hidden_seq, hidden_0=hidden_0,
                         counts=counts, mask=mask, last=(hidden, cell),
                         cell_seq=cell_seq, cell_0=cell_0,
                         tanh_cell=tanh_cell)


def rnn_forward_train(weights, x, lengths=None, mask=None, initial=None):
    """Dispatch to the GRU or LSTM training forward by ``weights.kind``.

    Same argument contract as :func:`rnn_forward` — ``x`` is ``(B, T,
    D)``, ``mask`` ``(B, T)`` boolean, ``initial`` ``(B, H)`` (pair for
    LSTM) — but returns the activation-caching forward used by BPTT.
    """
    if weights.kind == "gru":
        return gru_forward_train(weights, x, lengths=lengths, mask=mask,
                                 initial=initial)
    if weights.kind == "lstm":
        return lstm_forward_train(weights, x, lengths=lengths, mask=mask,
                                  initial=initial)
    raise ValueError("unknown cell kind %r" % weights.kind)


def _step_rows(cache, t):
    """(active, mask_col) execution descriptor of step ``t`` in backward.

    ``active`` is the row-prefix length for the packed path (0 skips the
    step); ``mask_col`` is the ``(B, 1)`` boolean column for the
    mask-freezing path (None on the packed path).
    """
    batch = cache.x.shape[0]
    if cache.counts is not None:
        return int(cache.counts[t]), None
    if cache.mask is not None:
        return batch, cache.mask[:, t:t + 1]
    return batch, None


def _finish_input_grads(plan, x, d_gates_x):
    """The fused tail of BPTT: input-side gradients as three big matmuls.

    ``d_gates_x`` arrives time-major ``(T, B, G*H)`` and is flattened to
    the batch-major order of ``x`` once, here.
    """
    batch, steps, dim = x.shape
    # Work in the time-major order d_gates_x already has: transposing
    # the (D-wide) input and output instead of the (G*H-wide) gate
    # gradient moves a fraction of the bytes.  Each weight/bias entry is
    # the same reduction over the same rows either way.
    flat_xt = np.ascontiguousarray(x.swapaxes(0, 1)).reshape(
        batch * steps, dim)
    flat_g = d_gates_x.reshape(batch * steps, -1)
    d_x_tm = (flat_g @ plan.w_ih_t.T).reshape(steps, batch, dim)
    return {
        "weight_ih": flat_g.T @ flat_xt,
        "bias_ih": flat_g.sum(axis=0),
        "d_x": np.ascontiguousarray(d_x_tm.swapaxes(0, 1)),
    }


def gru_backward(weights, cache, d_last, d_outputs=None):
    """Hand-derived BPTT through a cached GRU forward.

    Parameters
    ----------
    weights:
        The weights/plan the forward ran with (the cached plan wins).
    cache:
        The :class:`RnnTrainCache` from :func:`gru_forward_train`.
    d_last:
        Loss gradient wrt the final hidden state, ``(B, H)``.
    d_outputs:
        Optional loss gradient wrt every per-step state, ``(B, T, H)``
        (CPC-style objectives).

    Returns
    -------
    dict with ``d_x`` (gradient wrt the event representations, ``(B, T,
    D)``) and per-parameter gradients ``weight_ih``, ``weight_hh``,
    ``bias_ih``, ``bias_hh``, ``init_state`` — the exact quantities the
    autograd path accumulates, to < 1e-8 under the float64 policy.
    """
    plan = cache.plan if cache.plan is not None else as_plan(weights)
    dt = plan.dtype
    batch, steps, _ = cache.x.shape
    size = plan.hidden_size
    two = 2 * size
    d_hidden = np.array(d_last, dtype=dt, copy=True)
    d_gates_x = np.zeros((steps, batch, 3 * size), dtype=dt)
    # Pre-activation gradients wrt the recurrent projection, stashed
    # time-major so d_weight_hh/d_bias_hh reduce to ONE big GEMM/sum
    # after the loop instead of a small GEMM + accumulate per step.
    d_gates_h = np.zeros((steps, batch, 3 * size), dtype=dt)
    w_hh = plan.w_hh_t.T
    hidden_seq, hidden_0 = cache.hidden_seq, cache.hidden_0
    gates, gate_hidden = cache.gates, cache.gate_hidden
    count_list = (None if cache.counts is None else cache.counts.tolist())
    freeze_mask = cache.mask
    # Per-step scratch (views sliced to the active prefix): the loop
    # runs once per timestep, where temporary allocations are
    # measurable on the training hot path.
    s1 = np.empty((batch, size), dtype=dt)
    s2 = np.empty((batch, size), dtype=dt)
    s3 = np.empty((batch, size), dtype=dt)
    for t in range(steps - 1, -1, -1):
        if d_outputs is not None:
            d_hidden += d_outputs[:, t]
        if count_list is not None:
            active, mask_col = count_list[t], None
        elif freeze_mask is not None:
            active, mask_col = batch, freeze_mask[:, t:t + 1]
        else:
            active, mask_col = batch, None
        if active == 0:
            continue
        dh = d_hidden[:active] if mask_col is None else d_hidden * mask_col
        h_prev = (hidden_seq[t - 1, :active] if t > 0
                  else hidden_0[:active])
        gate_block = gates[t, :active]
        reset = gate_block[:, :size]
        update = gate_block[:, size:two]
        candidate = gate_block[:, two:]
        gh_n = gate_hidden[t, :active]
        dgh = d_gates_h[t, :active]
        dgx = d_gates_x[t, :active]
        c1, c2, c3 = s1[:active], s2[:active], s3[:active]
        # sigmoid' for the whole (r, z) block in one 2H-wide pass; the
        # per-gate upstream gradients scale the halves below.
        np.subtract(1.0, gate_block[:, :two], out=dgh[:, :two])
        dgh[:, :two] *= gate_block[:, :two]
        # da_n = dh * (1 - update) * (1 - candidate^2), written straight
        # into the n-column of d_gates_x.
        da_n = dgx[:, two:]
        np.subtract(1.0, update, out=c1)
        c1 *= dh
        np.multiply(candidate, candidate, out=c2)
        np.subtract(1.0, c2, out=c2)
        np.multiply(c1, c2, out=da_n)
        np.multiply(da_n, reset, out=dgh[:, two:])
        # d_reset = da_n * gh_n scales the r half ...
        np.multiply(da_n, gh_n, out=c3)
        dgh[:, :size] *= c3
        # ... and d_update = dh * (h_prev - candidate) the z half.
        np.subtract(h_prev, candidate, out=c1)
        c1 *= dh
        dgh[:, size:two] *= c1
        # d_prev = dh * update + dgh @ w_hh
        if mask_col is None:
            # dh aliases d_hidden[:active]: updating it in place IS the
            # carry to step t-1 (no copy-back needed).
            dh *= update
            np.dot(dgh, w_hh, out=c3)
            dh += c3
        else:
            np.multiply(dh, update, out=c2)
            np.dot(dgh, w_hh, out=c3)
            c2 += c3
            d_hidden = np.where(mask_col, c2, d_hidden)
    # The r/z columns of the input-side gate gradient equal the
    # recurrent-side ones (the pre-activations are a sum); one bulk copy
    # instead of a per-step one.
    d_gates_x[:, :, :two] = d_gates_h[:, :, :two]
    flat_gh = d_gates_h.reshape(steps * batch, -1)
    if steps > 1:
        h_prev_seq = np.concatenate([hidden_0[None], hidden_seq[:-1]])
    else:
        h_prev_seq = hidden_0[None]
    grads = _finish_input_grads(plan, cache.x, d_gates_x)
    grads["weight_hh"] = flat_gh.T @ h_prev_seq.reshape(steps * batch, size)
    grads["bias_hh"] = flat_gh.sum(axis=0)
    grads["init_state"] = d_hidden.sum(axis=0)
    return grads


def lstm_backward(weights, cache, d_last, d_outputs=None):
    """Hand-derived BPTT through a cached LSTM forward.

    Same contract as :func:`gru_backward`: ``d_last`` is the ``(B, H)``
    gradient wrt the final *hidden* state only (the loss never sees the
    cell), ``d_outputs`` the optional ``(B, T, H)`` per-step gradients;
    both are cast to the plan dtype.  The result additionally carries
    ``init_cell``.
    """
    plan = cache.plan if cache.plan is not None else as_plan(weights)
    dt = plan.dtype
    batch, steps, _ = cache.x.shape
    size = plan.hidden_size
    two, three = 2 * size, 3 * size
    d_hidden = np.array(d_last, dtype=dt, copy=True)
    d_cell = np.zeros((batch, size), dtype=dt)
    d_gates_x = np.zeros((steps, batch, 4 * size), dtype=dt)
    d_weight_hh = np.zeros((4 * size, size), dtype=dt)
    d_bias_hh = np.zeros(4 * size, dtype=dt)
    w_hh = plan.w_hh_t.T
    d_gh = np.empty((batch, 4 * size), dtype=dt)
    for t in range(steps - 1, -1, -1):
        if d_outputs is not None:
            d_hidden += d_outputs[:, t]
        active, mask_col = _step_rows(cache, t)
        if active == 0:
            continue
        if mask_col is None:
            dh = d_hidden[:active]
            dc = d_cell[:active]
        else:
            dh = d_hidden * mask_col
            dc = d_cell * mask_col
        h_prev = (cache.hidden_seq[t - 1, :active] if t > 0
                  else cache.hidden_0[:active])
        c_prev = (cache.cell_seq[t - 1, :active] if t > 0
                  else cache.cell_0[:active])
        gate_block = cache.gates[t, :active]
        in_gate = gate_block[:, :size]
        forget = gate_block[:, size:two]
        candidate = gate_block[:, two:three]
        out_gate = gate_block[:, three:]
        tanh_c = cache.tanh_cell[t, :active]
        d_out = dh * tanh_c
        dc = dc + dh * out_gate * (1.0 - tanh_c * tanh_c)
        d_in = dc * candidate
        d_forget = dc * c_prev
        d_candidate = dc * in_gate
        d_cell_prev = dc * forget
        dgh = d_gh[:active]
        np.multiply(d_in * in_gate, 1.0 - in_gate, out=dgh[:, :size])
        np.multiply(d_forget * forget, 1.0 - forget, out=dgh[:, size:two])
        np.multiply(d_candidate, 1.0 - candidate * candidate,
                    out=dgh[:, two:three])
        np.multiply(d_out * out_gate, 1.0 - out_gate, out=dgh[:, three:])
        d_gates_x[t, :active] = dgh
        d_prev = dgh @ w_hh
        d_weight_hh += dgh.T @ h_prev
        d_bias_hh += dgh.sum(axis=0)
        if mask_col is None:
            d_hidden[:active] = d_prev
            d_cell[:active] = d_cell_prev
        else:
            d_hidden = np.where(mask_col, d_prev, d_hidden)
            d_cell = np.where(mask_col, d_cell_prev, d_cell)
    grads = _finish_input_grads(plan, cache.x, d_gates_x)
    grads["weight_hh"] = d_weight_hh
    grads["bias_hh"] = d_bias_hh
    grads["init_state"] = d_hidden.sum(axis=0)
    grads["init_cell"] = d_cell.sum(axis=0)
    return grads


def rnn_backward(weights, cache, d_last, d_outputs=None):
    """Dispatch to the GRU or LSTM backward kernel by ``cache.kind``.

    ``d_last`` is the ``(B, H)`` gradient wrt the final hidden state,
    ``d_outputs`` the optional ``(B, T, H)`` per-step state gradients
    (both accepted in any float dtype, cast to the plan dtype).
    """
    if cache.kind == "gru":
        return gru_backward(weights, cache, d_last, d_outputs=d_outputs)
    if cache.kind == "lstm":
        return lstm_backward(weights, cache, d_last, d_outputs=d_outputs)
    raise ValueError("unknown cell kind %r" % cache.kind)


# ----------------------------------------------------------------------
# event encoding
# ----------------------------------------------------------------------

def _embedding_parts(trx_encoder, batch, tables=None):
    """Categorical embedding lookups as raw arrays, schema order.

    Ids are range-checked with the same error as ``Embedding.forward`` so
    the fused paths reject exactly the batches the Tensor path rejects
    (a negative id must not silently wrap to the table's last row).
    ``tables`` (an :class:`EncodePlan`'s pre-cast copies) replaces the
    live float64 tables when a precision policy is active.
    """
    parts = []
    for name in trx_encoder.schema.categorical:
        module = trx_encoder.embeddings[name]
        # reprolint: disable=RP001 -- categorical ids keep their input
        # integer dtype; the embedding gather never touches the policy.
        ids = np.asarray(batch.fields[name])
        if ids.min() < 0 or ids.max() >= module.num_embeddings:
            raise IndexError(
                "embedding ids out of range [0, %d): min=%d max=%d"
                % (module.num_embeddings, ids.min(), ids.max())
            )
        table = module.weight.data if tables is None else tables[name]
        parts.append(table[ids])
    return parts


def _batchnorm_stats(norm, numeric, mask, training):
    """The (mean, var) a ``BatchNorm1d`` would use, updating its buffers.

    Mirrors ``BatchNorm1d.forward`` exactly: training mode computes the
    masked batch statistics and folds them into the running buffers with
    the module's own momentum/_set_buffer, eval mode reads the running
    buffers — so checkpoints from the fused and Tensor engines carry
    identical statistics.  Always float64: the buffers are part of the
    checkpoint contract and must not depend on the compute policy.
    """
    if not training:
        return norm.running_mean, norm.running_var
    flat = numeric[np.asarray(mask, dtype=bool)]
    if len(flat) == 0:
        raise ValueError("batch norm received an empty batch")
    mean = flat.mean(axis=0)
    var = flat.var(axis=0)
    norm._set_buffer(
        "running_mean",
        (1 - norm.momentum) * norm.running_mean + norm.momentum * mean,
    )
    norm._set_buffer(
        "running_var",
        (1 - norm.momentum) * norm.running_var + norm.momentum * var,
    )
    return mean, var


def _encode(trx_encoder, batch, prev_times, training, plan=None):
    """Shared event-encoding pipeline behind both fused entry points."""
    trx_encoder.check_batch_schema(batch)
    dtype = np.float64 if plan is None else plan.dtype
    parts = _embedding_parts(trx_encoder, batch,
                             tables=None if plan is None else plan.tables)
    scaled = None
    norm = trx_encoder.numeric_norm
    if norm is not None:
        numeric = trx_encoder._numeric_array(batch, prev_times=prev_times)
        mean, var = _batchnorm_stats(norm, numeric, batch.mask,
                                     training and norm.training)
        scaled = (numeric - mean) / np.sqrt(var + norm.eps)
        part = scaled * norm.weight.data + norm.bias.data
        if part.dtype != dtype:
            part = part.astype(dtype, copy=False)
        parts.append(part)
    if not parts:
        raise ValueError("schema has no event fields to encode")
    x = np.concatenate(parts, axis=-1) if len(parts) > 1 else parts[0]
    return x, scaled


def encode_events(trx_encoder, batch, prev_times=None, plan=None):
    """Graph-free event encoding: the eval-mode ``TrxEncoder`` as raw numpy.

    Embedding lookups read the tables directly and batch norm applies the
    running statistics, which is exactly the Tensor path in eval mode
    (training-mode statistics are a training concern and never used when
    serving).  Returns ``(B, T, D)`` — float64 without a ``plan``, the
    plan dtype otherwise.
    """
    x, _ = _encode(trx_encoder, batch, prev_times, training=False, plan=plan)
    return x


def encode_events_train(trx_encoder, batch, plan=None):
    """Event encoding under *training* semantics, plus the backward stash.

    Same pipeline as :func:`encode_events` (one shared implementation),
    but when the encoder's batch norm is in training mode it normalises
    by the masked batch statistics and updates the running buffers —
    op-for-op what ``TrxEncoder.forward`` does (statistics always run in
    float64, so checkpoints are policy-independent).  Returns ``(x,
    scaled)`` where ``scaled`` is the pre-affine normalised numeric block
    the batch norm backward needs (None without numeric features).
    """
    return _encode(trx_encoder, batch, None, training=True, plan=plan)
