"""Fused, graph-free numpy kernels for the inference hot path.

Training runs through the autograd :class:`~repro.nn.Tensor`, which builds
one Python graph node per op and per timestep.  Serving does not need
gradients, so these kernels drop to raw float64 numpy:

- the input projection of *all* timesteps is computed as one matmul
  (``(B*T, D) @ (D, G*H)``) instead of T small ones;
- per step only the hidden projection remains, written into preallocated
  hidden buffers;
- padding is never computed when the batch is sorted by length (the batch
  planner's output): each step operates on the *active* row prefix only —
  the numpy analogue of cuDNN's packed sequences.  Unsorted batches fall
  back to mask-freezing, exactly like the Tensor path.

Every kernel follows the same op order and formulas as the differentiable
modules, so outputs agree with the Tensor path to float64 rounding
(< 1e-10 — asserted by ``tests/runtime/test_fused_equivalence.py``).

Weight layout is *not* re-declared here: kernels consume the
:class:`~repro.nn.CellWeights` view exported by the ``nn.rnn`` modules.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sigmoid",
    "l2_normalize_rows",
    "rnn_forward",
    "gru_forward",
    "lstm_forward",
    "encode_events",
]


def sigmoid(x):
    """Logistic function, same formula as ``Tensor.sigmoid``."""
    return 1.0 / (1.0 + np.exp(-x))


def l2_normalize_rows(x, eps=1e-12):
    """Unit-normalise rows; mirrors ``nn.functional.l2_normalize``."""
    norm = np.sqrt(np.maximum((x * x).sum(axis=-1, keepdims=True), eps))
    return x / norm


def _input_gates(weights, x):
    """Fused input projection of all timesteps: ``(B, T, D) -> (B, T, G*H)``."""
    batch, steps, dim = x.shape
    flat = x.reshape(batch * steps, dim) @ weights.weight_ih.T + weights.bias_ih
    return flat.reshape(batch, steps, -1)


def _initial(vector, batch):
    """Broadcast a learnt ``(H,)`` initial state to a ``(B, H)`` buffer."""
    return np.tile(np.asarray(vector, dtype=np.float64), (batch, 1))


def _active_counts(lengths, steps):
    """Per-step active row count for a batch sorted longest-first.

    Returns None when the batch is not sorted by non-increasing length
    (the caller then uses the mask-freezing path).
    """
    if lengths is None:
        return None
    lengths = np.asarray(lengths)
    if len(lengths) > 1 and np.any(np.diff(lengths) > 0):
        return None
    return np.count_nonzero(
        lengths[:, None] > np.arange(steps)[None, :], axis=0
    )


def _mask_from_lengths(lengths, steps):
    return np.arange(steps)[None, :] < np.asarray(lengths)[:, None]


def gru_forward(weights, x, lengths=None, mask=None, initial=None,
                return_outputs=False):
    """Fused GRU forward over a padded batch.

    Parameters
    ----------
    weights:
        A :class:`~repro.nn.CellWeights` with ``kind == "gru"``.
    x:
        Event representations ``(B, T, D)`` (raw numpy).
    lengths:
        True sequence lengths ``(B,)``.  When sorted longest-first (the
        batch planner's output) each step runs on the active prefix only.
    mask:
        Optional boolean ``(B, T)``; used when ``lengths`` is absent or
        unsorted.  False entries freeze the state.
    initial:
        Optional ``(B, H)`` state overriding the learnt c_0.
    return_outputs:
        When True also return the per-step states ``(B, T, H)``.

    Returns
    -------
    (outputs, last): outputs is None unless requested; last is ``(B, H)``,
    the state after each sequence's final real event.
    """
    batch, steps, _ = x.shape
    size = weights.hidden_size
    hidden = (np.array(initial, dtype=np.float64, copy=True)
              if initial is not None else _initial(weights.init_state, batch))
    gates_x = _input_gates(weights, x)
    outputs = np.empty((batch, steps, size)) if return_outputs else None
    w_hh_t = weights.weight_hh.T
    bias_hh = weights.bias_hh
    counts = _active_counts(lengths, steps)
    if counts is None and lengths is not None and mask is None:
        mask = _mask_from_lengths(lengths, steps)
    for t in range(steps):
        active = batch if counts is None else int(counts[t])
        if active == 0:
            if outputs is not None:
                outputs[:, t:] = hidden[:, None, :]
            break
        h_act = hidden[:active]
        gx = gates_x[:active, t]
        gh = h_act @ w_hh_t + bias_hh
        # One sigmoid over the contiguous (r, z) block — identical
        # elementwise values, half the ufunc dispatches.
        gates = sigmoid(gx[:, :2 * size] + gh[:, :2 * size])
        reset = gates[:, :size]
        update = gates[:, size:]
        candidate = np.tanh(gx[:, 2 * size:] + reset * gh[:, 2 * size:])
        new_hidden = (1.0 - update) * candidate + update * h_act
        if counts is None and mask is not None:
            hidden = np.where(mask[:, t:t + 1], new_hidden, hidden)
        elif active == batch:
            hidden = new_hidden
        else:
            hidden[:active] = new_hidden
        if outputs is not None:
            outputs[:, t] = hidden
    return outputs, hidden


def lstm_forward(weights, x, lengths=None, mask=None, initial=None,
                 return_outputs=False):
    """Fused LSTM forward; ``initial`` and the final state are (h, c) pairs.

    Same contract as :func:`gru_forward`.
    """
    batch, steps, _ = x.shape
    size = weights.hidden_size
    if initial is not None:
        hidden = np.array(initial[0], dtype=np.float64, copy=True)
        cell = np.array(initial[1], dtype=np.float64, copy=True)
    else:
        hidden = _initial(weights.init_state, batch)
        cell = _initial(weights.init_cell, batch)
    gates_x = _input_gates(weights, x)
    outputs = np.empty((batch, steps, size)) if return_outputs else None
    w_hh_t = weights.weight_hh.T
    bias_hh = weights.bias_hh
    counts = _active_counts(lengths, steps)
    if counts is None and lengths is not None and mask is None:
        mask = _mask_from_lengths(lengths, steps)
    for t in range(steps):
        active = batch if counts is None else int(counts[t])
        if active == 0:
            if outputs is not None:
                outputs[:, t:] = hidden[:, None, :]
            break
        h_act = hidden[:active]
        c_act = cell[:active]
        gx = gates_x[:active, t]
        gh = h_act @ w_hh_t + bias_hh
        # One sigmoid over the contiguous (i, f) block — identical
        # elementwise values, fewer ufunc dispatches.
        gates = sigmoid(gx[:, :2 * size] + gh[:, :2 * size])
        in_gate = gates[:, :size]
        forget = gates[:, size:]
        candidate = np.tanh(gx[:, 2 * size:3 * size] + gh[:, 2 * size:3 * size])
        out_gate = sigmoid(gx[:, 3 * size:] + gh[:, 3 * size:])
        new_cell = forget * c_act + in_gate * candidate
        new_hidden = out_gate * np.tanh(new_cell)
        if counts is None and mask is not None:
            step_mask = mask[:, t:t + 1]
            hidden = np.where(step_mask, new_hidden, hidden)
            cell = np.where(step_mask, new_cell, cell)
        elif active == batch:
            hidden, cell = new_hidden, new_cell
        else:
            hidden[:active] = new_hidden
            cell[:active] = new_cell
        if outputs is not None:
            outputs[:, t] = hidden
    return outputs, (hidden, cell)


def rnn_forward(weights, x, lengths=None, mask=None, initial=None,
                return_outputs=False):
    """Dispatch to the fused GRU or LSTM kernel by ``weights.kind``."""
    if weights.kind == "gru":
        return gru_forward(weights, x, lengths=lengths, mask=mask,
                           initial=initial, return_outputs=return_outputs)
    if weights.kind == "lstm":
        return lstm_forward(weights, x, lengths=lengths, mask=mask,
                            initial=initial, return_outputs=return_outputs)
    raise ValueError("unknown cell kind %r" % weights.kind)


def encode_events(trx_encoder, batch, prev_times=None):
    """Graph-free event encoding: the eval-mode ``TrxEncoder`` as raw numpy.

    Embedding lookups read the tables directly and batch norm applies the
    running statistics, which is exactly the Tensor path in eval mode
    (training-mode statistics are a training concern and never used when
    serving).  Returns ``(B, T, D)`` float64.
    """
    trx_encoder.check_batch_schema(batch)
    parts = []
    for name in trx_encoder.schema.categorical:
        table = trx_encoder.embeddings[name].weight.data
        parts.append(table[batch.fields[name]])
    norm = trx_encoder.numeric_norm
    if norm is not None:
        numeric = trx_encoder._numeric_array(batch, prev_times=prev_times)
        scaled = (numeric - norm.running_mean) / np.sqrt(
            norm.running_var + norm.eps
        )
        parts.append(scaled * norm.weight.data + norm.bias.data)
    if not parts:
        raise ValueError("schema has no event fields to encode")
    return np.concatenate(parts, axis=-1) if len(parts) > 1 else parts[0]
