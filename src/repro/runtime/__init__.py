"""Fused runtime: graph-free kernels for training *and* serving hot paths.

The execution-path split of the codebase:

- **autograd** (:mod:`repro.nn`) — the differentiable Tensor substrate,
  one graph node per op; still used by the losses (small graphs over
  embeddings, per-step states or event representations wrapped as leaf
  tensors) and as the parity reference for every fused kernel;
- **fused training** (:mod:`~repro.runtime.training`) — a
  :class:`FusedTrainStep` runs the encoder forward and hand-derived
  backward — BPTT (:func:`~repro.runtime.kernels.rnn_backward`) for
  recurrent encoders, the attention reverse pass
  (:func:`~repro.runtime.attention.transformer_backward`) for
  transformers — as raw numpy.  ``engine="auto"`` resolves to fused for
  *every* repro encoder via :func:`resolve_engine`, covering
  final-embedding objectives (CoLES losses, NSP/SOP), per-step
  objectives (CPC, RTD) through the ``d_states``/``d_events`` gradient
  interface, and supervised fine-tuning through the hand-derived
  :func:`softmax_head_gradient`;
- **serving** — the same forward kernels driven by a
  :class:`FusedEncoderRuntime`, with per-entity state owned by an
  :class:`EmbeddingStore` over a pluggable :class:`StateBackend`
  (in-RAM dicts or out-of-core memmap shards) and an at-rest
  :class:`StateCodec` (identity / float16 / int8 / uint4).

All paths share one weight layout per encoder family
(:class:`repro.nn.CellWeights` for RNN cells, the
:func:`~repro.runtime.attention.transformer_parameters` walk for
transformers): fused-trained weights drop directly into the serving
stack.  Forward equivalence to the Tensor path is < 1e-10 and gradient
equivalence < 1e-8, asserted property-style by ``tests/runtime/``.
"""

from . import attention, kernels
from .attention import (TransformerPlan, build_transformer_plan,
                        transformer_plan_matches)
from .backends import (DictStateBackend, Float16Codec, IdentityCodec,
                       MemmapStateBackend, QuantizedCodec, StateBackend,
                       StateCodec, resolve_backend, resolve_codec)
from .engine import FusedEncoderRuntime
from .store import (AdvanceResult, EmbeddingStore, advance_entities,
                    bulk_load_states)
from .training import (FusedForwardCache, FusedTrainStep, loss_gradient,
                       resolve_engine, softmax_head_gradient,
                       softmax_head_probabilities)

__all__ = ["kernels", "attention", "TransformerPlan",
           "build_transformer_plan", "transformer_plan_matches",
           "FusedEncoderRuntime", "EmbeddingStore", "AdvanceResult",
           "advance_entities", "bulk_load_states", "FusedTrainStep",
           "FusedForwardCache", "loss_gradient", "softmax_head_gradient",
           "softmax_head_probabilities", "resolve_engine",
           "StateBackend", "DictStateBackend", "MemmapStateBackend",
           "StateCodec", "IdentityCodec", "Float16Codec", "QuantizedCodec",
           "resolve_backend", "resolve_codec"]
