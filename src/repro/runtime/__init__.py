"""Serving runtime: fused inference kernels + per-entity embedding store.

The train/serve split of the codebase:

- **training** runs through the autograd :mod:`repro.nn` substrate
  (differentiable, one graph node per op);
- **serving** runs through this package — graph-free fused numpy kernels
  (:mod:`~repro.runtime.kernels`) driven by a
  :class:`~repro.runtime.FusedEncoderRuntime`, with per-entity state owned
  by an :class:`~repro.runtime.EmbeddingStore`.

Both paths share one weight layout (:class:`repro.nn.CellWeights`) and are
equivalent to < 1e-10, which the test-suite asserts property-style.
"""

from . import kernels
from .engine import FusedEncoderRuntime
from .store import EmbeddingStore, advance_entities, bulk_load_states

__all__ = ["kernels", "FusedEncoderRuntime", "EmbeddingStore",
           "advance_entities", "bulk_load_states"]
