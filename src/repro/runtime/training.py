"""Fused training runtime: graph-free forward+backward for the encoder.

PR 1 gave *inference* the fused kernels; training still stepped the
autograd :class:`~repro.nn.Tensor` graph one timestep at a time.  This
module closes that gap.  :class:`FusedTrainStep` runs a
:class:`~repro.encoders.RnnSeqEncoder`'s whole training forward —
event encoding with *training-mode* batch norm, the recurrence over a
length-sorted packed batch, the unit-norm head — in raw numpy, and then
backpropagates a loss gradient through hand-derived BPTT
(:func:`repro.runtime.kernels.rnn_backward`) into the very
:class:`~repro.nn.Parameter` objects the optimisers update.  No Tensor
graph is ever built for the encoder.

The split of labour is the **loss-gradient interface**: the encoder side
(the ``(B, T)`` hot path) is fused, while the loss itself still runs
through autograd on leaf tensors.  Two families of objectives fit the
interface:

- **final-embedding** objectives — a function of the small ``(B, H)``
  embedding matrix (every metric-learning loss in :mod:`repro.losses`,
  the NSP/SOP pair heads) — driven via :func:`loss_gradient` and
  :meth:`FusedTrainStep.backward`'s ``d_embeddings``;
- **per-step** objectives — functions of the cached per-step hidden
  states and (for CPC) the trx-encoder event representations — driven by
  wrapping :attr:`FusedForwardCache.states` / ``.events`` in leaf
  tensors and feeding the leaf gradients back through ``d_states`` /
  ``d_events``, which route into
  :func:`repro.runtime.kernels.rnn_backward`'s per-step ``d_outputs``
  interface and the embedding scatter path.

The supervised fine-tuning head (softmax over classes) is simpler than
either: cross-entropy through a single ``Linear`` has a closed-form
gradient, so :func:`softmax_head_gradient` /
:meth:`FusedTrainStep.backward_classification` hand-derive it too and no
autograd graph is built at all — the last training loop over recurrent
encoders runs fully fused.

Equivalence contract: gradients match the autograd path to < 1e-8 and
batch-norm running statistics update identically, so
``TrainConfig(engine="fused")`` and ``engine="tensor"`` walk the same
optimisation trajectory — property-tested by
``tests/runtime/test_fused_training.py``.  The weights live in the same
:class:`~repro.nn.CellWeights` layout, so a fused-trained encoder drops
directly into :class:`~repro.runtime.FusedEncoderRuntime` and the serving
stack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..encoders.seq_encoder import RnnSeqEncoder, TransformerSeqEncoder
from ..nn.tensor import Tensor
from . import attention, kernels

__all__ = ["FusedTrainStep", "FusedForwardCache", "loss_gradient",
           "softmax_head_gradient", "softmax_head_probabilities",
           "resolve_engine"]


def resolve_engine(engine, encoder):
    """Resolve the ``"auto"`` engine default for a concrete encoder.

    Every repro sequence encoder — recurrent
    (:class:`~repro.encoders.RnnSeqEncoder`) and transformer
    (:class:`~repro.encoders.TransformerSeqEncoder`) — defaults to the
    fused engine: gradient-equivalent to autograd and several times
    faster.  Encoders outside those families (custom modules) fall back
    to the Tensor engine.  Explicit ``"tensor"``/``"fused"`` requests
    pass through unchanged, so pinning an engine still works.
    """
    if engine == "auto":
        fused = isinstance(encoder, (RnnSeqEncoder, TransformerSeqEncoder))
        return "fused" if fused else "tensor"
    return engine


def loss_gradient(loss_fn, embeddings, groups, rng=None):
    """Evaluate a loss and its gradient wrt a raw embedding matrix.

    The adapter between the fused encoder and the autograd losses: wraps
    the ``(B, H)`` numpy ``embeddings`` in a leaf
    :class:`~repro.nn.Tensor`, calls ``loss_fn(leaf, groups, rng=rng)``
    and backpropagates through the (small) loss graph only.  Returns
    ``(loss_value, d_embeddings)``.

    Because the loss sees the same embedding values and the same ``rng``,
    negative sampling, pair mining and every loss variant behave exactly
    as on the Tensor engine.
    """
    leaf = Tensor(embeddings, requires_grad=True)
    loss = loss_fn(leaf, groups, rng=rng)
    loss.backward()
    grad = leaf.grad
    if grad is None:
        grad = np.zeros_like(leaf.data)
    return loss.item(), grad


def _head_softmax_parts(head, embeddings):
    """The one softmax-head forward: ``(shifted_logits, exp, row_sums)``.

    Shared by :func:`softmax_head_gradient` (training) and
    :func:`softmax_head_probabilities` (inference) so the two paths can
    never drift numerically: max-shifted logits of ``head(embeddings)``
    in raw numpy, their exponentials, and the per-row partition sums.
    """
    logits = embeddings @ head.weight.data.T
    if head.bias is not None:
        logits = logits + head.bias.data
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return shifted, exp, exp.sum(axis=-1, keepdims=True)


def softmax_head_probabilities(head, embeddings):
    """Class probabilities of a softmax ``Linear`` head, raw numpy.

    ``embeddings`` is the ``(B, H)`` embedding matrix in any float
    dtype (promoted to float64: head math is always reference
    precision).  The inference half of the fused classification path (what
    ``SequenceClassifier.predict_proba`` applies to fused-runtime
    embeddings).  Matches ``F.softmax(head(embeddings))`` on the Tensor
    path to float64 rounding.
    """
    _, exp, total = _head_softmax_parts(
        head, np.asarray(embeddings, dtype=np.float64))
    return exp / total


def softmax_head_gradient(head, embeddings, targets):
    """Hand-derived forward+backward of a softmax classification head.

    The fine-tuning analogue of :func:`loss_gradient`, with no autograd
    graph at all: runs the ``(B, H)`` embedding matrix through the
    :class:`~repro.nn.Linear` ``head`` and the mean cross-entropy in raw
    numpy, accumulates the head's weight/bias gradients (additive into
    ``param.grad``, like everything on the fused path), and returns
    ``(loss_value, d_embeddings)`` ready for
    :meth:`FusedTrainStep.backward`.

    The closed form: with ``p = softmax(e W^T + b)`` and one-hot targets
    ``y``, the logit gradient of the mean NLL is ``(p - y) / B``; the
    head gradients and ``d_embeddings`` follow by the linear-layer chain
    rule.  Matches ``F.cross_entropy(head(embeddings), targets)`` +
    ``Tensor.backward`` to float64 rounding.
    """
    embeddings = np.asarray(embeddings, dtype=np.float64)
    targets = np.asarray(targets)  # reprolint: disable=RP001 -- int labels
    shifted, exp, total = _head_softmax_parts(head, embeddings)
    rows = np.arange(len(targets), dtype=np.intp)
    loss = float(np.mean(np.log(total[:, 0]) - shifted[rows, targets]))
    d_logits = exp / total
    d_logits[rows, targets] -= 1.0
    d_logits /= len(targets)
    _accumulate(head.weight, d_logits.T @ embeddings)
    if head.bias is not None:
        _accumulate(head.bias, d_logits.sum(axis=0))
    return loss, d_logits @ head.weight.data


@dataclass
class FusedForwardCache:
    """Everything one fused training forward retains for its backward.

    ``embeddings`` (the post-head ``(B, H)`` matrix, batch order) plus
    the :attr:`states` / :attr:`events` views are the only things
    callers should read; the rest is consumed by
    :meth:`FusedTrainStep.backward` exactly once.
    """

    batch: object            # the PaddedBatch the step ran on
    rnn_cache: object        # kernels.RnnTrainCache (rows sorted) or
    #                          attention.TransformerTrainCache (batch order)
    perm: np.ndarray         # batch-order -> sorted-order permutation
    inverse: np.ndarray      # sorted-order -> batch-order permutation
    hidden: np.ndarray       # (B, H) final states, batch order, pre-head
    embeddings: np.ndarray   # (B, H) post-head embeddings, batch order
    bn_scaled: np.ndarray    # (B, T, F) normalised numericals (or None)

    @property
    def states(self):
        """Per-step hidden states ``(B, T, H)`` in batch order.

        Identical to the Tensor path's ``rnn(x, mask=...)`` outputs:
        states at padded steps hold the frozen value of the last real
        step.  Per-step objectives (CPC, RTD) wrap this in a leaf tensor
        and feed the leaf gradient back as ``d_states``.
        """
        return self.rnn_cache.states[self.inverse]

    @property
    def events(self):
        """Trx-encoder event representations ``(B, T, D)``, batch order.

        The same array the recurrence consumed (training-mode batch
        norm included).  CPC scores its predictions against these;
        gradients taken wrt them feed back as ``d_events``.
        """
        return self.rnn_cache.x[self.inverse]


class FusedTrainStep:
    """Graph-free forward+backward for a recurrent sequence encoder.

    Usage (what ``ContrastiveTrainer`` does under ``engine="fused"``)::

        step = FusedTrainStep(encoder)
        cache = step.forward(batch)
        value, d_emb = loss_gradient(loss_fn, cache.embeddings,
                                     batch.seq_ids, rng)
        optimizer.zero_grad()
        step.backward(cache, d_emb)
        optimizer.step()

    The forward sorts the batch rows longest-first so the recurrence (and
    its BPTT) runs on shrinking active row prefixes — training batches
    from the CoLES augmentation pipeline arrive unsorted, and mask-frozen
    padded steps would otherwise burn most of the kernel time.  Batch
    statistics, loss inputs and all gradients are computed in (or mapped
    back to) the original row order, so the sort is invisible to callers.

    Like :class:`~repro.runtime.FusedEncoderRuntime`, weights are read
    through :meth:`~repro.nn.rnn._RecurrentBase.export_weights` on every
    call and gradients are written through
    :meth:`~repro.nn.rnn._RecurrentBase.cell_parameters`, so the step
    always trains the encoder's current parameters.  A cached
    :class:`~repro.runtime.kernels.WeightPlan` in the step's precision
    policy feeds the kernels; the optimizer rebinds ``param.data`` each
    step, which invalidates the plan, so training always runs on the
    freshly updated weights.

    Transformer encoders run the same contract through the fused
    attention kernels (:mod:`repro.runtime.attention`): graph-free
    forward with training-mode batch norm and stream-aligned dropout
    draws, hand-derived backward (softmax-Jacobian attention, LayerNorm,
    GELU), gradients into the same live parameters.  Rows are not
    re-sorted on that path — attention cost is set by the padded batch
    shape, not by active row prefixes.

    ``precision`` selects the compute/cache dtype of the fused step:
    ``"float64"`` (the default — gradient-equivalent to autograd, the
    engine-parity reference) or ``"float32"`` (mixed precision: forward,
    cache and gradients in float32, master weights and optimizer state
    stay float64).

    Raises ``TypeError`` for encoders outside the two fused families.
    """

    def __init__(self, encoder, precision="float64"):
        if not isinstance(encoder, (RnnSeqEncoder, TransformerSeqEncoder)):
            raise TypeError(
                "the fused training engine requires an RnnSeqEncoder or "
                "TransformerSeqEncoder (got %s); use "
                "TrainConfig(engine=\"tensor\") for custom encoders"
                % type(encoder).__name__
            )
        self.encoder = encoder
        self.dtype = kernels.resolve_precision(precision)
        self.precision = kernels.precision_name(self.dtype)
        self._weight_plan = None
        self._encode_plan = None

    @property
    def is_recurrent(self):
        """Whether the step drives the RNN kernels (else the attention path)."""
        return isinstance(self.encoder, RnnSeqEncoder)

    def weight_plan(self):
        """The cached packed weight plan, rebuilt after each optimizer step."""
        if not self.is_recurrent:
            if not attention.transformer_plan_matches(self._weight_plan,
                                                      self.encoder):
                self._weight_plan = attention.build_transformer_plan(
                    self.encoder, self.precision)
            return self._weight_plan
        weights = self.encoder.rnn.export_weights()
        if not kernels.plan_matches(self._weight_plan, weights):
            self._weight_plan = kernels.build_weight_plan(weights,
                                                          self.precision)
        return self._weight_plan

    def encode_plan(self):
        """The cached pre-cast encode plan (see :class:`EncodePlan`)."""
        trx = self.encoder.trx_encoder
        if not kernels.encode_plan_matches(self._encode_plan, trx):
            self._encode_plan = kernels.build_encode_plan(trx, self.precision)
        return self._encode_plan

    # ------------------------------------------------------------------
    # forward
    # ------------------------------------------------------------------
    def forward(self, batch):
        """Run the training forward; returns a :class:`FusedForwardCache`.

        Training-mode semantics match ``encoder.embed(batch)`` with the
        encoder in train mode: batch norm uses (and updates) the masked
        batch statistics.  In eval mode the running statistics are used,
        exactly like the Tensor path.
        """
        x, bn_scaled = kernels.encode_events_train(self.encoder.trx_encoder,
                                                   batch,
                                                   plan=self.encode_plan())
        if not self.is_recurrent:
            return self._forward_transformer(batch, x, bn_scaled)
        lengths = np.asarray(batch.lengths, dtype=np.intp)
        perm = np.argsort(-lengths, kind="stable")
        inverse = np.empty_like(perm)
        inverse[perm] = np.arange(len(perm), dtype=np.intp)
        rnn_cache = kernels.rnn_forward_train(
            self.weight_plan(), x[perm], lengths=lengths[perm])
        last = rnn_cache.last
        hidden_sorted = last[0] if rnn_cache.kind == "lstm" else last
        hidden = hidden_sorted[inverse]
        if self.encoder.normalize:
            embeddings = kernels.l2_normalize_rows(hidden)
        else:
            # reprolint: disable=RP001 -- defensive copy preserves the
            # kernel's policy dtype by construction.
            embeddings = np.array(hidden, copy=True)
        return FusedForwardCache(batch=batch, rnn_cache=rnn_cache, perm=perm,
                                 inverse=inverse, hidden=hidden,
                                 embeddings=embeddings, bn_scaled=bn_scaled)

    def _forward_transformer(self, batch, x, bn_scaled):
        """The attention-path forward: no row sort, pooled state as hidden."""
        cache = attention.transformer_forward_train(self.weight_plan(), x,
                                                    mask=batch.mask)
        identity = np.arange(len(batch.lengths), dtype=np.intp)
        hidden = cache.pooled
        if self.encoder.normalize:
            embeddings = kernels.l2_normalize_rows(hidden)
        else:
            # reprolint: disable=RP001 -- defensive copy preserves the
            # kernel's policy dtype by construction.
            embeddings = np.array(hidden, copy=True)
        return FusedForwardCache(batch=batch, rnn_cache=cache, perm=identity,
                                 inverse=identity, hidden=hidden,
                                 embeddings=embeddings, bn_scaled=bn_scaled)

    # ------------------------------------------------------------------
    # backward
    # ------------------------------------------------------------------
    def backward(self, cache, d_embeddings=None, d_states=None,
                 d_events=None):
        """Accumulate encoder gradients from an objective's gradients.

        ``d_embeddings`` is dLoss/dEmbeddings, ``(B, H)`` in batch order
        (what :func:`loss_gradient` returns).  Per-step objectives pass
        ``d_states`` — dLoss/dStates ``(B, T, H)`` over the cached
        per-step hidden states (routed through the kernels' ``d_outputs``
        BPTT interface) — and/or ``d_events`` — dLoss/dEvents
        ``(B, T, D)`` over the event representations the objective read
        directly (CPC's targets), added to the recurrence's input
        gradient before the embedding/batch-norm scatter.  All three are
        optional and additive, in batch order.

        Gradients accumulate into ``param.grad`` of the live encoder
        parameters — additive, like ``Tensor.backward`` — so clipping
        and the optimisers work unchanged.  A cache must not be used
        twice.
        """
        if d_embeddings is None:
            d_hidden = np.zeros_like(cache.hidden)
        else:
            d_hidden = np.asarray(d_embeddings, dtype=self.dtype)
            if self.encoder.normalize:
                d_hidden = kernels.l2_normalize_rows_backward(cache.hidden,
                                                              d_hidden)
        if not self.is_recurrent:
            grads = attention.transformer_backward(
                self.weight_plan(), cache.rnn_cache, d_hidden,
                d_states=(None if d_states is None
                          else np.asarray(d_states, dtype=self.dtype)))
            params = attention.transformer_parameters(self.encoder)
            for name, param in params.items():
                _accumulate(param, grads.get(name))
            d_x = grads["d_x"]
            if d_events is not None:
                d_x = d_x + np.asarray(d_events, dtype=self.dtype)
            self._encode_events_backward(cache.batch, d_x, cache.bn_scaled)
            return
        d_outputs = None
        if d_states is not None:
            d_outputs = np.asarray(d_states, dtype=self.dtype)[cache.perm]
        weights = self.encoder.rnn.export_weights()
        grads = kernels.rnn_backward(weights, cache.rnn_cache,
                                     d_hidden[cache.perm],
                                     d_outputs=d_outputs)
        for name, param in self.encoder.rnn.cell_parameters().items():
            _accumulate(param, grads.get(name))
        d_x = grads["d_x"][cache.inverse]
        if d_events is not None:
            d_x = d_x + np.asarray(d_events, dtype=self.dtype)
        self._encode_events_backward(cache.batch, d_x, cache.bn_scaled)

    def backward_classification(self, cache, head, targets):
        """Supervised fine-tuning backward: softmax head + cross-entropy.

        Runs :func:`softmax_head_gradient` on the cached embeddings (the
        head's gradients accumulate into its live parameters) and routes
        the resulting ``d_embeddings`` through :meth:`backward` into the
        encoder — the whole fine-tuning step is hand-derived, no Tensor
        graph anywhere.  ``targets`` are integer class labels ``(B,)`` in
        batch order.  Returns the scalar cross-entropy value.  Like
        :meth:`backward`, a cache must not be used twice.
        """
        loss, d_embeddings = softmax_head_gradient(head, cache.embeddings,
                                                   targets)
        self.backward(cache, d_embeddings)
        return loss

    def _encode_events_backward(self, batch, d_x, bn_scaled):
        """Route ``dLoss/dx`` into the embedding tables and batch norm.

        Splits the event-representation gradient along the concat layout
        of ``_encode_events_train``: per-field scatter-adds into the
        embedding tables (the ``take_rows`` gradient) and the affine batch
        norm gradients.  The batch statistics are constants in the
        autograd path, so — exactly like there — no gradient flows into
        the raw numeric features.
        """
        trx = self.encoder.trx_encoder
        offset = 0
        for name in trx.schema.categorical:
            weight = trx.embeddings[name].weight
            dim = weight.data.shape[1]
            d_table = np.zeros_like(weight.data)
            _scatter_add_rows(d_table, batch.fields[name],
                              d_x[..., offset:offset + dim])
            _accumulate(weight, d_table)
            offset += dim
        norm = trx.numeric_norm
        if norm is not None:
            d_out = d_x[..., offset:]
            _accumulate(norm.weight, (d_out * bn_scaled).sum(axis=(0, 1)))
            _accumulate(norm.bias, d_out.sum(axis=(0, 1)))


def _scatter_add_rows(table, indices, grads):
    """Sum ``grads`` rows into ``table`` rows by index (``np.add.at``
    semantics, segment-sum implementation).

    A stable argsort groups occurrences of each index, and
    ``np.add.reduceat`` sums every group left-to-right — the same
    addition order per table row as ``np.add.at``'s sequential walk, so
    same-dtype results are bitwise identical (under the mixed float32
    policy the segment sum rounds in float32 before the float64 table
    add, within the policy's drift bound), but the inner loop is
    vectorised C instead of per-element dispatch (~10x on the training
    hot path).
    """
    idx = np.asarray(indices).ravel()  # reprolint: disable=RP001 -- int ids
    if idx.size == 0:
        return
    flat = np.ascontiguousarray(grads).reshape(idx.size, -1)
    order = np.argsort(idx, kind="stable")
    sorted_idx = idx[order]
    starts = np.flatnonzero(np.diff(sorted_idx)) + 1
    starts = np.concatenate([[0], starts])
    sums = np.add.reduceat(flat[order], starts, axis=0)
    table[sorted_idx[starts]] += sums


def _accumulate(param, grad):
    """Add a raw-numpy gradient into a Parameter (None-safe both sides)."""
    if param is None or grad is None:
        return
    if param.grad is None:
        param.grad = grad
    else:
        param.grad = param.grad + grad
