"""Graph-free transformer kernels: fused attention forward + backward.

The transformer analogue of :mod:`repro.runtime.kernels`: the whole
pre-norm encoder stack of :class:`repro.nn.TransformerEncoder` —
sinusoidal positions, multi-head attention with key-padding masks, GELU
feed-forward blocks, masked mean pooling — evaluated as raw numpy with
no autograd graph, plus the hand-derived reverse pass (softmax-Jacobian
attention backward, LayerNorm backward, GELU backward) that
:class:`repro.runtime.FusedTrainStep` drives for training.

The module follows the same three contracts as the recurrent kernels:

- **packed weight plans** — :func:`build_transformer_plan` pre-casts and
  pre-transposes every parameter into a :class:`TransformerPlan` (the
  q/k/v projections additionally pack into one ``(D, 3D)`` GEMM);
  :func:`transformer_plan_matches` invalidates on parameter-buffer
  identity exactly like :func:`repro.runtime.kernels.plan_matches`;
- **precision policy** — plans carry the ``"float32"``/``"float64"``
  compute dtype; float64 preserves the Tensor-engine op order and is the
  parity reference (< 1e-10 forward, < 1e-8 gradients, property-tested
  by ``tests/runtime/test_fused_transformer.py``);
- **training parity** — the train forward mirrors the autograd path's
  dropout draws (same rng objects, same draw order) and the backward
  reproduces autograd's ``masked_fill`` semantics (no gradient through
  masked score positions), so both engines walk identical optimisation
  trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import kernels

__all__ = [
    "TransformerPlan",
    "TransformerLayerPlan",
    "TransformerTrainCache",
    "build_transformer_plan",
    "transformer_plan_matches",
    "transformer_parameters",
    "transformer_forward",
    "transformer_forward_train",
    "transformer_backward",
]

#: Additive score mask for padded key positions — the same finite fill
#: value as ``MultiHeadAttention`` (``-1e9`` rather than ``-inf``), so a
#: fully-padded row degrades to a uniform attention distribution instead
#: of a ``nan`` softmax.
MASK_FILL = -1e9

_GELU_C = np.sqrt(2.0 / np.pi)
_GELU_A = 0.044715


# ----------------------------------------------------------------------
# weight plans
# ----------------------------------------------------------------------

@dataclass
class TransformerLayerPlan:
    """Packed, dtype-cast buffers of one :class:`TransformerEncoderLayer`.

    Linear weights are stored transposed (``x @ w_t + b`` evaluates the
    layer) and the query/key/value projections are packed side by side
    into a single ``(D, 3D)`` matrix so each layer runs one input GEMM
    instead of three.
    """

    ln1_w: np.ndarray        # (D,) norm1 scale
    ln1_b: np.ndarray        # (D,) norm1 shift
    qkv_t: np.ndarray        # (D, 3D) packed [query | key | value]
    qkv_b: np.ndarray        # (3D,)
    out_t: np.ndarray        # (D, D) attention output projection
    out_b: np.ndarray        # (D,)
    ln2_w: np.ndarray        # (D,) norm2 scale
    ln2_b: np.ndarray        # (D,) norm2 shift
    ff1_t: np.ndarray        # (D, F) feed-forward expansion
    ff1_b: np.ndarray        # (F,)
    ff2_t: np.ndarray        # (F, D) feed-forward contraction
    ff2_b: np.ndarray        # (D,)


@dataclass
class TransformerPlan:
    """Packed, dtype-cast view of a whole ``TransformerSeqEncoder`` stack.

    Built once per weight generation by :func:`build_transformer_plan`;
    every kernel call then runs off the pre-transposed, pre-cast buffers.
    ``sources`` keeps references to the live parameter buffers the plan
    was built from — :func:`transformer_plan_matches` compares
    identities, the granularity at which the optimisers invalidate
    weights (they rebind ``param.data``).  ``module`` references the live
    :class:`~repro.nn.TransformerEncoder` for the per-``(dtype, length)``
    positional-slice cache and the training-mode dropout modules.
    """

    dtype: np.dtype
    dim: int                  # model width D
    num_heads: int
    head_dim: int
    ln_eps: float             # LayerNorm epsilon (uniform across the stack)
    in_t: np.ndarray          # (D_trx, D) input projection, transposed
    in_b: np.ndarray          # (D,)
    layers: tuple             # of TransformerLayerPlan
    final_w: np.ndarray       # (D,) final_norm scale
    final_b: np.ndarray       # (D,) final_norm shift
    module: object = field(default=None, repr=False)
    sources: tuple = field(default=(), repr=False)

    @property
    def scale(self):
        """The ``1/sqrt(head_dim)`` attention score scale."""
        return 1.0 / np.sqrt(self.head_dim)

    def positional(self, steps):
        """The ``(1, steps, D)`` positional slice in the plan dtype."""
        return self.module.positional_slice(steps, self.dtype)


def transformer_parameters(encoder):
    """Canonical flat name -> live Parameter map of a transformer encoder.

    The transformer analogue of
    :meth:`~repro.nn.rnn._RecurrentBase.cell_parameters`: one walk shared
    by :func:`build_transformer_plan` (which packs the ``.data`` buffers)
    and :meth:`~repro.runtime.FusedTrainStep.backward` (which accumulates
    the gradient dict of :func:`transformer_backward` into the same
    names), so the two sides can never drift.
    """
    params = {
        "input_proj.weight": encoder.input_proj.weight,
        "input_proj.bias": encoder.input_proj.bias,
    }
    transformer = encoder.transformer
    for index, layer in enumerate(transformer.layers):
        prefix = "transformer.layers.%d." % index
        attn = layer.attention
        for name, linear in (("query", attn.query), ("key", attn.key),
                             ("value", attn.value), ("out", attn.out),
                             ("ff1", layer.ff1), ("ff2", layer.ff2)):
            target = prefix + ("attention.%s" % name
                               if name in ("query", "key", "value", "out")
                               else name)
            params[target + ".weight"] = linear.weight
            params[target + ".bias"] = linear.bias
        for name, norm in (("norm1", layer.norm1), ("norm2", layer.norm2)):
            params[prefix + name + ".weight"] = norm.weight
            params[prefix + name + ".bias"] = norm.bias
    params["transformer.final_norm.weight"] = transformer.final_norm.weight
    params["transformer.final_norm.bias"] = transformer.final_norm.bias
    return params


def _plan_sources(encoder):
    """The live arrays whose identities define a weight generation."""
    return tuple(param.data
                 for param in transformer_parameters(encoder).values())


def _cast(array, dtype):
    """A contiguous policy-dtype copy of a parameter buffer."""
    return np.ascontiguousarray(array, dtype=dtype)


def build_transformer_plan(encoder, precision="float64"):
    """Precompute the per-weight work of the attention kernels.

    ``encoder`` is a :class:`~repro.encoders.TransformerSeqEncoder`;
    ``precision`` selects the compute dtype of every packed buffer
    (float64 is the Tensor-path parity reference).
    """
    dtype = kernels.resolve_precision(precision)
    transformer = encoder.transformer
    layers = []
    for layer in transformer.layers:
        attn = layer.attention
        qkv_t = np.concatenate(
            [attn.query.weight.data.T, attn.key.weight.data.T,
             attn.value.weight.data.T], axis=1)
        qkv_b = np.concatenate([attn.query.bias.data, attn.key.bias.data,
                                attn.value.bias.data])
        layers.append(TransformerLayerPlan(
            ln1_w=_cast(layer.norm1.weight.data, dtype),
            ln1_b=_cast(layer.norm1.bias.data, dtype),
            qkv_t=_cast(qkv_t, dtype),
            qkv_b=_cast(qkv_b, dtype),
            out_t=_cast(attn.out.weight.data.T, dtype),
            out_b=_cast(attn.out.bias.data, dtype),
            ln2_w=_cast(layer.norm2.weight.data, dtype),
            ln2_b=_cast(layer.norm2.bias.data, dtype),
            ff1_t=_cast(layer.ff1.weight.data.T, dtype),
            ff1_b=_cast(layer.ff1.bias.data, dtype),
            ff2_t=_cast(layer.ff2.weight.data.T, dtype),
            ff2_b=_cast(layer.ff2.bias.data, dtype),
        ))
    first_attn = transformer.layers[0].attention if len(layers) else None
    num_heads = first_attn.num_heads if first_attn else 1
    return TransformerPlan(
        dtype=dtype,
        dim=transformer.dim,
        num_heads=num_heads,
        head_dim=transformer.dim // num_heads,
        ln_eps=transformer.final_norm.eps,
        in_t=_cast(encoder.input_proj.weight.data.T, dtype),
        in_b=_cast(encoder.input_proj.bias.data, dtype),
        layers=tuple(layers),
        final_w=_cast(transformer.final_norm.weight.data, dtype),
        final_b=_cast(transformer.final_norm.bias.data, dtype),
        module=transformer,
        sources=_plan_sources(encoder),
    )


def transformer_plan_matches(plan, encoder):
    """Whether ``plan`` was built from exactly these live weight buffers."""
    if plan is None:
        return False
    current = _plan_sources(encoder)
    if len(plan.sources) != len(current):
        return False
    return all(a is b for a, b in zip(plan.sources, current))


# ----------------------------------------------------------------------
# shared math helpers
# ----------------------------------------------------------------------

def _layer_norm(x, weight, bias, eps):
    """LayerNorm forward; returns ``(out, xhat, inv_std)``.

    Mirrors :class:`repro.nn.LayerNorm` op for op: mean over the last
    axis, biased variance of the centered values, ``centered /
    sqrt(var + eps)``, then the affine map.
    """
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    var = (centered * centered).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = centered * inv_std
    return xhat * weight + bias, xhat, inv_std


def _layer_norm_backward(d_out, xhat, inv_std, weight):
    """Closed-form LayerNorm input gradient; returns ``(d_x, d_w, d_b)``.

    With ``xhat = (x - mean) / sqrt(var + eps)`` the input gradient is
    ``inv_std * (d_xhat - mean(d_xhat) - xhat * mean(d_xhat * xhat))``
    (means over the feature axis) — algebraically identical to autograd's
    reverse walk through the mean/var/sqrt graph.
    """
    d_xhat = d_out * weight
    d_x = inv_std * (
        d_xhat
        - d_xhat.mean(axis=-1, keepdims=True)
        - xhat * (d_xhat * xhat).mean(axis=-1, keepdims=True)
    )
    axes = tuple(range(d_out.ndim - 1))
    return d_x, (d_out * xhat).sum(axis=axes), d_out.sum(axis=axes)


def _softmax(scores):
    """Max-shifted softmax over the last axis (``F.softmax`` as numpy)."""
    shifted = scores - scores.max(axis=-1, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=-1, keepdims=True)
    return shifted


def _gelu(x):
    """Tanh-approximation GELU, op-for-op ``nn.functional.gelu``."""
    inner = (x + x * x * x * _GELU_A) * _GELU_C
    return x * 0.5 * (np.tanh(inner) + 1.0)


def _gelu_backward(x, d_out):
    """Gradient of the tanh-approximation GELU wrt its input."""
    x_sq = x * x
    inner = (x + x * x_sq * _GELU_A) * _GELU_C
    tanh = np.tanh(inner)
    d_inner = _GELU_C * (1.0 + 3.0 * _GELU_A * x_sq)
    return d_out * (0.5 * (tanh + 1.0)
                    + x * 0.5 * (1.0 - tanh * tanh) * d_inner)


def _split_heads(x, num_heads, head_dim):
    """``(B, T, D) -> (B, heads, T, head_dim)``."""
    batch, steps, _ = x.shape
    return x.reshape(batch, steps, num_heads, head_dim).transpose(0, 2, 1, 3)


def _merge_heads(x):
    """``(B, heads, T, head_dim) -> (B, T, D)`` (contiguous)."""
    batch, num_heads, steps, head_dim = x.shape
    return np.ascontiguousarray(x.transpose(0, 2, 1, 3)).reshape(
        batch, steps, num_heads * head_dim)


def _pool_weights(mask, batch, steps, dtype):
    """Masked-mean pooling weights ``(B, T)`` (uniform without a mask)."""
    if mask is None:
        return np.full((batch, steps), 1.0 / steps, dtype=dtype)
    # reprolint: disable=RP002 -- deliberate: the mask sum/divide runs in
    # float64 to match the autograd reference op order bit-for-bit; the
    # single astype below is the one policy cast (parity tests pin this).
    mask_arr = np.asarray(mask, dtype=np.float64)
    weights = mask_arr / np.maximum(mask_arr.sum(axis=1, keepdims=True), 1.0)
    return weights.astype(dtype, copy=False)


def _keep_mask(module, shape, dtype):
    """One inverted-dropout keep mask, drawn exactly like ``F.dropout``.

    Returns None when the module is in eval mode or ``p <= 0`` — i.e.
    when the autograd path would not consume an rng draw either, so the
    two engines stay stream-aligned.
    """
    if not module.training or module.p <= 0.0:
        return None
    keep = (module.rng.random(shape) >= module.p) / (1.0 - module.p)
    return keep.astype(dtype, copy=False)


def _apply_keep(x, keep):
    """Apply a dropout keep mask (identity for ``None``)."""
    return x if keep is None else x * keep


# ----------------------------------------------------------------------
# forward (inference)
# ----------------------------------------------------------------------

def transformer_forward(plan, x, mask=None):
    """Eval-mode fused forward over event representations.

    ``x`` is the ``(B, T, D_trx)`` trx-encoder output (policy dtype);
    ``mask`` is the ``(B, T)`` boolean key-padding mask (True marks real
    events).  Returns ``(states, pooled)`` — per-position states after
    the final LayerNorm and the masked-mean pooled embedding *before*
    the normalisation head — matching the Tensor path's
    ``TransformerSeqEncoder.forward`` to < 1e-10 in float64.  Dropout is
    never applied (eval semantics, like the recurrent kernels' use of
    batch-norm running statistics).
    """
    batch, steps, _ = x.shape
    h = x @ plan.in_t + plan.in_b
    h += plan.positional(steps)
    pad = None if mask is None else ~np.asarray(mask, dtype=bool)
    for layer in plan.layers:
        normed, _, _ = _layer_norm(h, layer.ln1_w, layer.ln1_b, plan.ln_eps)
        qkv = normed @ layer.qkv_t + layer.qkv_b
        q = _split_heads(qkv[..., :plan.dim], plan.num_heads, plan.head_dim)
        k = _split_heads(qkv[..., plan.dim:2 * plan.dim], plan.num_heads,
                         plan.head_dim)
        v = _split_heads(qkv[..., 2 * plan.dim:], plan.num_heads,
                         plan.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * plan.scale
        if pad is not None:
            scores = np.where(pad[:, None, None, :],
                              scores.dtype.type(MASK_FILL), scores)
        attn = _softmax(scores)
        merged = _merge_heads(attn @ v)
        h = h + (merged @ layer.out_t + layer.out_b)
        normed, _, _ = _layer_norm(h, layer.ln2_w, layer.ln2_b, plan.ln_eps)
        hidden = _gelu(normed @ layer.ff1_t + layer.ff1_b)
        h = h + (hidden @ layer.ff2_t + layer.ff2_b)
    states, _, _ = _layer_norm(h, plan.final_w, plan.final_b, plan.ln_eps)
    weights = _pool_weights(mask, batch, steps, plan.dtype)
    pooled = (states * weights[:, :, None]).sum(axis=1)
    return states, pooled


# ----------------------------------------------------------------------
# forward (training) + backward
# ----------------------------------------------------------------------

@dataclass
class _LayerCache:
    """Per-layer intermediates one train forward retains for backward."""

    h0: np.ndarray           # (B, T, D) block input
    xhat1: np.ndarray        # (B, T, D) norm1 normalised values
    istd1: np.ndarray        # (B, T, 1) norm1 inverse std
    q: np.ndarray            # (B, heads, T, head_dim)
    k: np.ndarray            # (B, heads, T, head_dim)
    v: np.ndarray            # (B, heads, T, head_dim)
    attn: np.ndarray         # (B, heads, T, T) post-softmax, pre-dropout
    attn_keep: np.ndarray    # attention dropout keep mask (or None)
    attn_used: np.ndarray    # (B, heads, T, T) the probabilities applied
    merged: np.ndarray       # (B, T, D) merged heads, out-proj input
    proj_keep: np.ndarray    # residual dropout keep mask (or None)
    h1: np.ndarray           # (B, T, D) after the attention residual
    xhat2: np.ndarray        # (B, T, D) norm2 normalised values
    istd2: np.ndarray        # (B, T, 1) norm2 inverse std
    ff_pre: np.ndarray       # (B, T, F) pre-GELU activations
    ff_act: np.ndarray       # (B, T, F) GELU output, ff2 input
    hid_keep: np.ndarray     # feed-forward dropout keep mask (or None)


@dataclass
class TransformerTrainCache:
    """Everything one fused transformer train forward retains.

    Exposes the same ``states`` / ``x`` surface as
    :class:`repro.runtime.kernels.RnnTrainCache` (batch order — the
    transformer path never permutes rows), so
    :class:`~repro.runtime.FusedForwardCache` serves per-step objectives
    identically on both encoder families.
    """

    x: np.ndarray            # (B, T, D_trx) trx-encoder events
    mask: object             # the (B, T) boolean mask (or None)
    pad: np.ndarray          # ~mask (or None)
    layer_caches: list       # of _LayerCache, stack order
    xhat_f: np.ndarray       # (B, T, D) final_norm normalised values
    istd_f: np.ndarray       # (B, T, 1) final_norm inverse std
    states: np.ndarray       # (B, T, D) post-final-norm states
    pool_w: np.ndarray       # (B, T) pooling weights
    pooled: np.ndarray       # (B, D) pooled embedding, pre-head
    last: np.ndarray = None  # alias of ``pooled`` (RnnTrainCache surface)

    def __post_init__(self):
        self.last = self.pooled


def transformer_forward_train(plan, x, mask=None):
    """Training-mode fused forward; returns a :class:`TransformerTrainCache`.

    ``x`` is the ``(B, T, D)`` event-representation array in the plan's
    dtype and ``mask`` an optional ``(B, T)`` boolean validity array.
    Identical math to :func:`transformer_forward` plus the dropout draws
    of the autograd path: each active :class:`~repro.nn.Dropout` module
    of the live stack (``plan.module``) consumes one ``rng.random`` draw
    per application, in the exact order the Tensor path consumes them
    (attention probabilities, attention residual, feed-forward residual,
    per layer) — so with shared rng state both engines compute identical
    activations.
    """
    batch, steps, _ = x.shape
    h = x @ plan.in_t + plan.in_b
    h += plan.positional(steps)
    pad = None if mask is None else ~np.asarray(mask, dtype=bool)
    caches = []
    for layer, module in zip(plan.layers, plan.module.layers):
        h0 = h
        normed, xhat1, istd1 = _layer_norm(h0, layer.ln1_w, layer.ln1_b,
                                           plan.ln_eps)
        qkv = normed @ layer.qkv_t + layer.qkv_b
        q = _split_heads(qkv[..., :plan.dim], plan.num_heads, plan.head_dim)
        k = _split_heads(qkv[..., plan.dim:2 * plan.dim], plan.num_heads,
                         plan.head_dim)
        v = _split_heads(qkv[..., 2 * plan.dim:], plan.num_heads,
                         plan.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * plan.scale
        if pad is not None:
            scores = np.where(pad[:, None, None, :],
                              scores.dtype.type(MASK_FILL), scores)
        attn = _softmax(scores)
        attn_keep = _keep_mask(module.attention.dropout, attn.shape,
                               plan.dtype)
        attn_used = _apply_keep(attn, attn_keep)
        merged = _merge_heads(attn_used @ v)
        projected = merged @ layer.out_t + layer.out_b
        proj_keep = _keep_mask(module.dropout, projected.shape, plan.dtype)
        h1 = h0 + _apply_keep(projected, proj_keep)
        normed2, xhat2, istd2 = _layer_norm(h1, layer.ln2_w, layer.ln2_b,
                                            plan.ln_eps)
        ff_pre = normed2 @ layer.ff1_t + layer.ff1_b
        ff_act = _gelu(ff_pre)
        hidden = ff_act @ layer.ff2_t + layer.ff2_b
        hid_keep = _keep_mask(module.dropout, hidden.shape, plan.dtype)
        h = h1 + _apply_keep(hidden, hid_keep)
        caches.append(_LayerCache(
            h0=h0, xhat1=xhat1, istd1=istd1, q=q, k=k, v=v, attn=attn,
            attn_keep=attn_keep, attn_used=attn_used, merged=merged,
            proj_keep=proj_keep, h1=h1, xhat2=xhat2, istd2=istd2,
            ff_pre=ff_pre, ff_act=ff_act, hid_keep=hid_keep,
        ))
    states, xhat_f, istd_f = _layer_norm(h, plan.final_w, plan.final_b,
                                         plan.ln_eps)
    pool_w = _pool_weights(mask, batch, steps, plan.dtype)
    pooled = (states * pool_w[:, :, None]).sum(axis=1)
    return TransformerTrainCache(
        x=x, mask=mask, pad=pad, layer_caches=caches,
        xhat_f=xhat_f, istd_f=istd_f, states=states, pool_w=pool_w,
        pooled=pooled,
    )


def _linear_backward(d_out, x_in, w_t, grads, name):
    """Backward of ``x_in @ w_t + b``; returns ``d_x_in``.

    Accumulates the ``(out, in)``-layout weight gradient and the bias
    gradient into ``grads`` under ``name + ".weight"/".bias"``.
    """
    d_flat = d_out.reshape(-1, d_out.shape[-1])
    x_flat = x_in.reshape(-1, x_in.shape[-1])
    grads[name + ".weight"] = d_flat.T @ x_flat
    grads[name + ".bias"] = d_flat.sum(axis=0)
    return d_out @ w_t.T


def transformer_backward(plan, cache, d_pooled, d_states=None):
    """Hand-derived reverse pass of :func:`transformer_forward_train`.

    ``d_pooled`` is dLoss/dPooled ``(B, D)`` (pre-head, what
    :class:`~repro.runtime.FusedTrainStep` produces after the
    l2-normalisation backward); ``d_states`` optionally adds
    dLoss/dStates ``(B, T, D)`` over the post-final-norm per-position
    states (the per-step objective interface).  Returns a dict mapping
    the :func:`transformer_parameters` names to parameter gradients plus
    ``"d_x"`` — dLoss/dEvents ``(B, T, D_trx)`` ready for the embedding
    scatter.  A cache must not be consumed twice.
    """
    grads = {}
    d_final = cache.pool_w[:, :, None] * d_pooled[:, None, :]
    if d_states is not None:
        d_final = d_final + d_states
    d_h, d_w, d_b = _layer_norm_backward(d_final, cache.xhat_f, cache.istd_f,
                                         plan.final_w)
    grads["transformer.final_norm.weight"] = d_w
    grads["transformer.final_norm.bias"] = d_b
    for index in range(len(plan.layers) - 1, -1, -1):
        layer = plan.layers[index]
        lc = cache.layer_caches[index]
        prefix = "transformer.layers.%d." % index
        # --- feed-forward block: h2 = h1 + dropout(ff2(gelu(ff1(n2)))) ---
        d_hidden = _apply_keep(d_h, lc.hid_keep)
        d_act = _linear_backward(d_hidden, lc.ff_act, layer.ff2_t, grads,
                                 prefix + "ff2")
        d_pre = _gelu_backward(lc.ff_pre, d_act)
        normed2 = lc.xhat2 * layer.ln2_w + layer.ln2_b
        d_n2 = _linear_backward(d_pre, normed2, layer.ff1_t, grads,
                                prefix + "ff1")
        d_from_norm2, d_w, d_b = _layer_norm_backward(d_n2, lc.xhat2,
                                                      lc.istd2, layer.ln2_w)
        grads[prefix + "norm2.weight"] = d_w
        grads[prefix + "norm2.bias"] = d_b
        d_h1 = d_h + d_from_norm2
        # --- attention block: h1 = h0 + dropout(out(merged)) ---
        d_proj = _apply_keep(d_h1, lc.proj_keep)
        d_merged = _linear_backward(d_proj, lc.merged, layer.out_t, grads,
                                    prefix + "attention.out")
        batch, steps, _ = d_merged.shape
        d_mixed = d_merged.reshape(batch, steps, plan.num_heads,
                                   plan.head_dim).transpose(0, 2, 1, 3)
        d_attn_used = d_mixed @ lc.v.transpose(0, 1, 3, 2)
        grads_v = lc.attn_used.transpose(0, 1, 3, 2) @ d_mixed
        d_attn = _apply_keep(d_attn_used, lc.attn_keep)
        # Softmax Jacobian along the key axis, then the masked_fill
        # backward: autograd passes no gradient through filled scores.
        d_scores = lc.attn * (
            d_attn - (d_attn * lc.attn).sum(axis=-1, keepdims=True))
        if cache.pad is not None:
            d_scores = d_scores * ~cache.pad[:, None, None, :]
        d_scores = d_scores * plan.scale
        d_q = d_scores @ lc.k
        d_k = d_scores.transpose(0, 1, 3, 2) @ lc.q
        d_qkv = np.concatenate(
            [_merge_heads(d_q), _merge_heads(d_k), _merge_heads(grads_v)],
            axis=-1)
        normed1 = lc.xhat1 * layer.ln1_w + layer.ln1_b
        d_flat = d_qkv.reshape(-1, 3 * plan.dim)
        n_flat = normed1.reshape(-1, plan.dim)
        d_wqkv = d_flat.T @ n_flat
        d_bqkv = d_flat.sum(axis=0)
        for part, name in enumerate(("query", "key", "value")):
            target = prefix + "attention." + name
            grads[target + ".weight"] = d_wqkv[part * plan.dim:
                                               (part + 1) * plan.dim]
            grads[target + ".bias"] = d_bqkv[part * plan.dim:
                                             (part + 1) * plan.dim]
        d_n1 = d_qkv @ plan.layers[index].qkv_t.T
        d_from_norm1, d_w, d_b = _layer_norm_backward(d_n1, lc.xhat1,
                                                      lc.istd1, layer.ln1_w)
        grads[prefix + "norm1.weight"] = d_w
        grads[prefix + "norm1.bias"] = d_b
        d_h = d_h1 + d_from_norm1
    # The positional table is a constant buffer; the input projection is
    # the only consumer of the event-representation gradient.
    grads["d_x"] = _linear_backward(d_h, cache.x, plan.in_t, grads,
                                    "input_proj")
    return grads
