"""The fused inference engine: one encoder, two execution paths.

:class:`FusedEncoderRuntime` wraps a trained sequence encoder — a
recurrent :class:`RnnSeqEncoder` or a
:class:`~repro.encoders.TransformerSeqEncoder` — and runs its forward
pass through the graph-free kernels of :mod:`repro.runtime.kernels`
(RNN cells) or :mod:`repro.runtime.attention` (the transformer stack).
Weights are read through live parameter views on every call — a cached
packed plan (pre-cast, pre-transposed, bias-folded) is rebuilt whenever
the live parameter buffers change identity — so the runtime always
serves the encoder's current parameters: fine-tune, then keep serving,
no re-wrap needed.

Two execution knobs make up the serving policy:

- ``precision`` — ``"float32"`` (the default: half the bytes per GEMM,
  roughly double the throughput, embedding drift vs the float64
  reference property-bounded by the precision tests) or ``"float64"``
  (bit-comparable to the Tensor path, the parity-test reference);
- ``workers`` — independent length-buckets of a dataset pass run
  concurrently on a thread pool (BLAS releases the GIL).  ``workers=1``
  is the serial path; results are bit-identical for any worker count
  because each planned batch is computed exactly as in the serial order.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..data.batches import collate
from ..data.bucketing import plan_batches
from ..encoders.seq_encoder import RnnSeqEncoder, TransformerSeqEncoder
from . import attention, kernels

__all__ = ["FusedEncoderRuntime"]

#: Serving-side default of the precision policy (training defaults to
#: float64 — see ``TrainConfig.precision``).
DEFAULT_PRECISION = "float32"


class FusedEncoderRuntime:
    """Graph-free serving runtime for any repro sequence encoder.

    Recurrent encoders run the RNN kernels of
    :mod:`repro.runtime.kernels`; transformer encoders run the fused
    attention kernels of :mod:`repro.runtime.attention` (no autograd
    graph either way).  The *incremental* surface — :meth:`advance`,
    :meth:`default_state` — stays recurrence-specific: a transformer
    cannot fold new events into a carried state (which is exactly why
    the paper deploys GRUs for the streaming ETL, Section 4.3.1), so
    those methods raise ``TypeError`` for transformer runtimes while the
    bulk paths work for every encoder.

    The encoder's train/eval mode is left untouched: the kernels always
    read the batch-norm *running* statistics and never apply dropout
    (eval semantics), so the runtime serves correctly even mid-training
    and never freezes the encoder's training-mode statistics as a side
    effect.

    Parameters
    ----------
    encoder:
        The :class:`~repro.encoders.RnnSeqEncoder` or
        :class:`~repro.encoders.TransformerSeqEncoder` to serve.
    precision:
        Compute/state dtype policy: ``"float32"`` (default) or
        ``"float64"`` (the parity reference).
    workers:
        Thread-pool width for bucket-parallel dataset passes (1 = serial,
        any value is bit-identical to serial).
    """

    def __init__(self, encoder, precision=DEFAULT_PRECISION, workers=1):
        if not isinstance(encoder, (RnnSeqEncoder, TransformerSeqEncoder)):
            raise TypeError(
                "the fused runtime requires an RnnSeqEncoder or "
                "TransformerSeqEncoder (got %s)" % type(encoder).__name__
            )
        self.encoder = encoder
        self.dtype = kernels.resolve_precision(precision)
        self.precision = kernels.precision_name(self.dtype)
        self.workers = max(1, int(workers))
        self._weight_plan = None
        self._encode_plan = None

    # ------------------------------------------------------------------
    @property
    def is_recurrent(self):
        """Whether the wrapped encoder carries recurrent state."""
        return isinstance(self.encoder, RnnSeqEncoder)

    @property
    def state_kind(self):
        """The stored-state family: ``"gru"``, ``"lstm"`` or ``"transformer"``."""
        return self.encoder.cell if self.is_recurrent else "transformer"

    @property
    def is_lstm(self):
        """Whether states are ``(h, c)`` pairs (LSTM) or plain ``(B, H)``."""
        return self.state_kind == "lstm"

    @property
    def output_dim(self):
        """Embedding dimensionality ``d`` of the wrapped encoder."""
        return self.encoder.output_dim

    def weights(self):
        """Fresh :class:`~repro.nn.CellWeights` view of the live parameters."""
        return self.encoder.rnn.export_weights()

    def weight_plan(self):
        """The cached packed weight plan of the wrapped encoder.

        A :class:`~repro.runtime.kernels.WeightPlan` for recurrent
        encoders, a :class:`~repro.runtime.attention.TransformerPlan` for
        transformers.  Rebuilt exactly when the live parameter buffers
        change identity (optimisers rebind ``param.data``), so the
        runtime keeps serving live weights with zero per-call repacking
        in the steady state.
        """
        if not self.is_recurrent:
            if not attention.transformer_plan_matches(self._weight_plan,
                                                      self.encoder):
                self._weight_plan = attention.build_transformer_plan(
                    self.encoder, self.precision)
            return self._weight_plan
        weights = self.weights()
        if not kernels.plan_matches(self._weight_plan, weights):
            self._weight_plan = kernels.build_weight_plan(weights,
                                                          self.precision)
        return self._weight_plan

    def encode_plan(self):
        """The cached :class:`~repro.runtime.kernels.EncodePlan`."""
        trx = self.encoder.trx_encoder
        if not kernels.encode_plan_matches(self._encode_plan, trx):
            self._encode_plan = kernels.build_encode_plan(trx, self.precision)
        return self._encode_plan

    # ------------------------------------------------------------------
    def encode_events(self, batch, prev_times=None):
        """Event representations ``z_t`` as raw ``(B, T, D)`` numpy."""
        return kernels.encode_events(self.encoder.trx_encoder, batch,
                                     prev_times=prev_times,
                                     plan=self.encode_plan())

    def forward(self, batch, initial=None, prev_times=None,
                return_outputs=False):
        """Run the fused encoder forward over a padded batch.

        Returns ``(outputs, last_state)``.  For recurrent encoders
        ``last_state`` is ``(B, H)`` (or an ``(h, c)`` pair for LSTM)
        *before* the normalisation head — the state to persist for
        incremental updates.  For transformers ``last_state`` is the
        masked-mean pooled ``(B, H)`` embedding (pre-head) and
        ``initial`` must be None (no state carry exists to seed).
        """
        events = self.encode_events(batch, prev_times=prev_times)
        if not self.is_recurrent:
            if initial is not None:
                raise TypeError(
                    "transformer encoders accept no initial state: "
                    "incremental state carry is recurrence-specific"
                )
            states, pooled = attention.transformer_forward(
                self.weight_plan(), events, mask=batch.mask)
            return (states if return_outputs else None), pooled
        return kernels.rnn_forward(self.weight_plan(), events,
                                   lengths=batch.lengths, initial=initial,
                                   return_outputs=return_outputs)

    def hidden_of(self, state):
        """The ``(B, H)`` hidden buffer of a state (drops the LSTM cell)."""
        return state[0] if self.is_lstm else state

    def default_state(self, batch_size):
        """The learnt initial state broadcast to ``batch_size`` rows.

        Returns the same structure :meth:`forward` accepts as ``initial``:
        a ``(B, H)`` buffer in the policy dtype, or an ``(h, c)`` pair for
        LSTM.  Used to seed rows of entities the serving layer has never
        seen, so known and unknown entities can share one batched
        :meth:`advance` call.  Raises ``TypeError`` for transformer
        runtimes, which have no carryable state.
        """
        if not self.is_recurrent:
            raise TypeError(
                "transformer encoders have no carryable state: "
                "incremental state advance is recurrence-specific"
            )
        plan = self.weight_plan()
        hidden = np.tile(plan.init_state, (batch_size, 1))
        if self.is_lstm:
            return hidden, np.tile(plan.init_cell, (batch_size, 1))
        return hidden

    def head(self, hidden):
        """Embedding head on ``(B, H)`` hidden states: l2 when configured."""
        if self.encoder.normalize:
            return kernels.l2_normalize_rows(hidden)
        # reprolint: disable=RP001 -- defensive copy preserves the stored
        # state's policy dtype by construction.
        return np.array(hidden, copy=True)

    def embed_batch(self, batch):
        """Whole-sequence embeddings for a padded batch, ``(B, d)`` numpy."""
        _, last = self.forward(batch)
        return self.head(self.hidden_of(last))

    def run_dataset(self, dataset, batch_size=64, workers=None):
        """Run the whole dataset under a length-sorted batch plan.

        Yields ``(indices, sequences, final_state)`` per planned batch —
        the single bulk loop shared by :func:`repro.core.embed_dataset`
        and :meth:`repro.runtime.EmbeddingStore.bulk_load`.  With
        ``workers > 1`` (default: the runtime's ``workers``) independent
        buckets run concurrently; yield order and every result are
        bit-identical to the serial pass.
        """
        workers = self.workers if workers is None else max(1, int(workers))
        chunks = plan_batches(dataset.lengths(), batch_size)

        def run(chunk):
            """Collate and embed one planned bucket."""
            sequences = [dataset.sequences[i] for i in chunk]
            batch = collate(sequences, dataset.schema)
            _, last = self.forward(batch)
            return chunk, sequences, last

        if workers == 1 or len(chunks) <= 1:
            for chunk in chunks:
                yield run(chunk)
            return
        # Build the plans once before fanning out: workers only read them.
        self.weight_plan()
        self.encode_plan()
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for result in pool.map(run, chunks):
                yield result

    def embed_dataset(self, dataset, batch_size=64, workers=None):
        """Bulk embeddings ``(N, d)`` in dataset order."""
        embeddings = np.zeros((len(dataset), self.output_dim),
                              dtype=self.dtype)
        for chunk, _, last in self.run_dataset(dataset, batch_size,
                                               workers=workers):
            embeddings[chunk] = self.head(self.hidden_of(last))
        return embeddings

    def advance(self, batch, initial=None, prev_times=None):
        """Fold a chunk of new events into per-entity states.

        ``initial`` is a ``(B, H)`` state buffer (an ``(h, c)`` pair for
        LSTM) and ``prev_times`` a ``(B,)`` float64 array of boundary
        timestamps, both row-aligned with ``batch``.  Like
        :meth:`forward` but named for the streaming use: the returned
        state is ``c_{t+k}`` computed from ``c_t`` (``initial``) and the new
        events only — the paper's incremental ETL property.  Raises
        ``TypeError`` for transformer runtimes: attention reads the whole
        history, so there is no state from which to advance.
        """
        if not self.is_recurrent:
            raise TypeError(
                "transformer encoders cannot advance incrementally: "
                "attention reads the whole event history (use the bulk "
                "paths, or a recurrent encoder for streaming updates)"
            )
        _, last = self.forward(batch, initial=initial, prev_times=prev_times)
        return last
