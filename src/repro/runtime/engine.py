"""The fused inference engine: one encoder, two execution paths.

:class:`FusedEncoderRuntime` wraps a trained :class:`RnnSeqEncoder` and
runs its forward pass through the graph-free kernels of
:mod:`repro.runtime.kernels`.  Weights are read through the
:meth:`~repro.nn.rnn._RecurrentBase.export_weights` view on every call, so
the runtime always serves the encoder's current parameters — fine-tune,
then keep serving, no re-wrap needed.
"""

from __future__ import annotations

import numpy as np

from ..data.batches import collate
from ..data.bucketing import plan_batches
from ..encoders.seq_encoder import RnnSeqEncoder
from . import kernels

__all__ = ["FusedEncoderRuntime"]


class FusedEncoderRuntime:
    """Graph-free serving runtime for a recurrent sequence encoder.

    Raises ``TypeError`` for non-recurrent encoders: the fused kernels (and
    the incremental state carry they enable) are recurrence-specific, which
    is exactly why the paper deploys GRUs (Section 4.3.1).

    The encoder's train/eval mode is left untouched: the kernels always
    read the batch-norm *running* statistics (eval semantics), so the
    runtime serves correctly even mid-training and never freezes the
    encoder's training-mode statistics as a side effect.
    """

    def __init__(self, encoder):
        if not isinstance(encoder, RnnSeqEncoder):
            raise TypeError(
                "the fused runtime requires a recurrent encoder "
                "(got %s)" % type(encoder).__name__
            )
        self.encoder = encoder

    # ------------------------------------------------------------------
    @property
    def is_lstm(self):
        """Whether states are ``(h, c)`` pairs (LSTM) or plain ``(B, H)``."""
        return self.encoder.cell == "lstm"

    @property
    def output_dim(self):
        """Embedding dimensionality ``d`` of the wrapped encoder."""
        return self.encoder.output_dim

    def weights(self):
        """Fresh :class:`~repro.nn.CellWeights` view of the live parameters."""
        return self.encoder.rnn.export_weights()

    # ------------------------------------------------------------------
    def encode_events(self, batch, prev_times=None):
        """Event representations ``z_t`` as raw ``(B, T, D)`` numpy."""
        return kernels.encode_events(self.encoder.trx_encoder, batch,
                                     prev_times=prev_times)

    def forward(self, batch, initial=None, prev_times=None,
                return_outputs=False):
        """Run the recurrence over a padded batch.

        Returns ``(outputs, last_state)`` where ``last_state`` is ``(B, H)``
        (or an ``(h, c)`` pair for LSTM) *before* the normalisation head —
        this is the state to persist for incremental updates.
        """
        events = self.encode_events(batch, prev_times=prev_times)
        return kernels.rnn_forward(self.weights(), events,
                                   lengths=batch.lengths, initial=initial,
                                   return_outputs=return_outputs)

    def hidden_of(self, state):
        """The ``(B, H)`` hidden buffer of a state (drops the LSTM cell)."""
        return state[0] if self.is_lstm else state

    def default_state(self, batch_size):
        """The learnt initial state broadcast to ``batch_size`` rows.

        Returns the same structure :meth:`forward` accepts as ``initial``:
        a ``(B, H)`` buffer, or an ``(h, c)`` pair for LSTM.  Used to seed
        rows of entities the serving layer has never seen, so known and
        unknown entities can share one batched :meth:`advance` call.
        """
        weights = self.weights()
        hidden = kernels._initial(weights.init_state, batch_size)
        if self.is_lstm:
            return hidden, kernels._initial(weights.init_cell, batch_size)
        return hidden

    def head(self, hidden):
        """Embedding head on ``(B, H)`` hidden states: l2 when configured."""
        if self.encoder.normalize:
            return kernels.l2_normalize_rows(hidden)
        return np.array(hidden, copy=True)

    def embed_batch(self, batch):
        """Whole-sequence embeddings for a padded batch, ``(B, d)`` numpy."""
        _, last = self.forward(batch)
        return self.head(self.hidden_of(last))

    def run_dataset(self, dataset, batch_size=64):
        """Run the whole dataset under a length-sorted batch plan.

        Yields ``(indices, sequences, final_state)`` per planned batch —
        the single bulk loop shared by :func:`repro.core.embed_dataset`
        and :meth:`repro.runtime.EmbeddingStore.bulk_load`.
        """
        for chunk in plan_batches(dataset.lengths(), batch_size):
            sequences = [dataset.sequences[i] for i in chunk]
            batch = collate(sequences, dataset.schema)
            _, last = self.forward(batch)
            yield chunk, sequences, last

    def embed_dataset(self, dataset, batch_size=64):
        """Bulk embeddings ``(N, d)`` in dataset order."""
        embeddings = np.zeros((len(dataset), self.output_dim))
        for chunk, _, last in self.run_dataset(dataset, batch_size):
            embeddings[chunk] = self.head(self.hidden_of(last))
        return embeddings

    def advance(self, batch, initial=None, prev_times=None):
        """Fold a chunk of new events into per-entity states.

        Like :meth:`forward` but named for the streaming use: the returned
        state is ``c_{t+k}`` computed from ``c_t`` (``initial``) and the new
        events only — the paper's incremental ETL property.
        """
        _, last = self.forward(batch, initial=initial, prev_times=prev_times)
        return last
