"""Pluggable state storage for the embedding stores: backends and codecs.

The out-of-core redesign of the serving state layer: the paper targets a
90M-card population (Section 4.3.1), which does not fit per-entity float
dicts in RAM.  Two orthogonal contracts split the problem:

- a :class:`StateBackend` owns **where** per-entity recurrent state
  lives (``get`` / ``put`` / ``update_many`` / ``snapshot`` /
  ``restore`` / ``bytes_per_entity``).  :class:`DictStateBackend` keeps
  policy-dtype arrays in RAM — the historical behaviour and the default.
  :class:`MemmapStateBackend` keeps fixed-capacity ``.npy`` shards on
  disk, opened via ``np.load(..., mmap_mode="r")``, promotes an LRU of
  hot shards into RAM and writes dirty shards back on eviction and
  flush, so resident memory is bounded by ``cache_shards *
  shard_capacity`` states regardless of entity count;
- a :class:`StateCodec` owns **how** state blocks are encoded at rest.
  :class:`IdentityCodec` stores raw policy-dtype arrays (lossless),
  :class:`Float16Codec` halves them, and :class:`QuantizedCodec` wires
  :mod:`repro.core.quantization` into int8/uint4 linear quantization
  with per-shard minimum/scale metadata (4-bit codes packed
  two-per-byte).

Codecs apply **at rest** (shard files, snapshots); the runtime's
``precision`` policy applies at compute.  The identity codec preserves
the 1e-10 replay-vs-recompute contract on both backends; quantized
codecs carry an explicit per-encode drift bound — ``scales / 2`` per
dimension (:meth:`~repro.core.quantization.QuantizedEmbeddings.quantization_error`)
— property-tested in ``tests/runtime/test_backends.py``.

Both backends persist through one manifest-driven directory layout::

    <dir>/
      state_manifest.json          format, kind, dim, codec, shard count
      shard_0000.hidden.npy        codec data array (codes or raw values)
      shard_0000.cell.npy          LSTM only
      shard_0000.meta.npz          entity ids, last-event times, codec meta

which doubles as the :class:`MemmapStateBackend`'s live storage — a
memmap directory can be reopened in place by a fresh backend.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
from collections import OrderedDict

import numpy as np

from ..nn.serialization import load_arrays, save_arrays

__all__ = [
    "StateCodec",
    "IdentityCodec",
    "Float16Codec",
    "QuantizedCodec",
    "resolve_codec",
    "StateBackend",
    "DictStateBackend",
    "MemmapStateBackend",
    "resolve_backend",
]

#: Format tag written into every state bundle manifest.
STATE_FORMAT = "repro-state-v1"

_MANIFEST_NAME = "state_manifest.json"

#: Rows per on-disk shard when the dict backend snapshots (the block over
#: which quantized codecs compute their minimum/scale metadata).
SNAPSHOT_SHARD_ENTITIES = 4096


def _quantization():
    """Deferred import of :mod:`repro.core.quantization`.

    ``repro.core``'s package init imports :mod:`repro.core.inference`,
    which imports :mod:`repro.runtime` — importing the quantization
    module at this module's import time would close that cycle while
    both packages are half-initialised.  By first use every package is
    fully loaded.
    """
    from ..core import quantization
    return quantization


# ----------------------------------------------------------------------
# codecs: how state blocks are encoded at rest
# ----------------------------------------------------------------------
class StateCodec:
    """At-rest encoding of ``(N, H)`` state blocks.

    A codec turns a float state block into the arrays persisted on disk
    and back.  ``encode`` returns a dict that always contains
    :attr:`data_key` — the per-row data array, stored as a standalone
    ``.npy`` so the memmap backend can open it lazily — plus any
    per-block metadata arrays (quantization minimums/scales).
    ``decode`` consumes the same dict.  Codecs are stateless and
    shareable across backends and threads.
    """

    #: Name under which the codec registers (and its manifest spec).
    name = "identity"
    #: Key of the per-row data array within an encoded block.
    data_key = "values"
    #: Whether a decode reproduces the encoded block exactly.
    lossless = True

    def encode(self, block):
        """Encode a ``(N, H)`` float block into persistable arrays."""
        raise NotImplementedError

    def decode(self, arrays, width, dtype):
        """Decode :meth:`encode` output back to a ``(N, width)`` array.

        Always returns a fresh, writable array in ``dtype`` (the
        caller's compute/state dtype), never a view into the inputs —
        the inputs may be read-only memmaps.
        """
        raise NotImplementedError

    def values_nbytes(self, rows, width, dtype):
        """At-rest bytes of the per-row data for ``rows`` states."""
        raise NotImplementedError

    def meta_nbytes(self, width, dtype):
        """At-rest bytes of the per-block metadata (0 when none)."""
        return 0

    def spec(self):
        """JSON-serialisable codec description for state manifests."""
        return {"name": self.name}


class IdentityCodec(StateCodec):
    """Lossless codec: store the policy-dtype arrays as-is."""

    name = "identity"

    def encode(self, block):
        """Pass the ``(rows, width)`` policy-dtype block through unchanged."""
        return {"values": np.ascontiguousarray(block)}

    def decode(self, arrays, width, dtype):
        """Cast back to the requested dtype (fresh array)."""
        # reprolint: disable=RP001 -- the stored dtype is whatever encode
        # persisted; the astype right after is the one policy cast.
        return np.asarray(arrays["values"]).astype(dtype, copy=True)

    def values_nbytes(self, rows, width, dtype):
        """``rows * width`` values at the storage dtype's width."""
        return rows * width * np.dtype(dtype).itemsize


class Float16Codec(StateCodec):
    """Half-precision at rest: 2 bytes per value, ~1e-3 relative error."""

    name = "float16"
    lossless = False

    def encode(self, block):
        """Down-cast the block to float16."""
        return {"values": np.asarray(block, dtype=np.float16)}

    def decode(self, arrays, width, dtype):
        """Up-cast the stored float16 values to the compute dtype."""
        # reprolint: disable=RP001 -- the stored values are float16 by
        # construction; the astype right after is the one policy cast.
        return np.asarray(arrays["values"]).astype(dtype, copy=True)

    def values_nbytes(self, rows, width, dtype):
        """Two bytes per stored value."""
        return rows * width * 2


class QuantizedCodec(StateCodec):
    """Linear quantization at rest via :mod:`repro.core.quantization`.

    ``levels=256`` is the int8 codec (1 byte per value); ``levels<=16``
    packs two 4-bit codes per byte (the paper's uint4 production
    setting).  Minimums and scales are computed **per encoded block** —
    one shard of the owning backend — and stored next to the codes, so
    each shard dequantizes independently.  Reconstruction error is
    bounded by ``scales / 2`` per dimension per encode
    (:meth:`~repro.core.quantization.QuantizedEmbeddings.quantization_error`).
    """

    data_key = "codes"
    lossless = False

    def __init__(self, levels=256):
        if levels < 2 or levels > 256:
            raise ValueError("levels must be in [2, 256]")
        self.levels = int(levels)
        self.packed = self.levels <= 16
        if self.levels == 256:
            self.name = "int8"
        elif self.levels == 16:
            self.name = "uint4"
        else:
            self.name = "quant%d" % self.levels

    def encode(self, block):
        """Quantize a ``(rows, width)`` float block; 4-bit codes pack two-per-byte."""
        quant = _quantization()
        # reprolint: disable=RP001 -- quantization ranges are computed in
        # the block's own (policy) dtype; no cast belongs here.
        block = np.asarray(block)
        if block.shape[0] == 0:
            width = block.shape[1]
            stored = (width + 1) // 2 if self.packed else width
            return {"codes": np.zeros((0, stored), dtype=np.uint8),
                    "minimums": np.zeros(width, dtype=block.dtype),
                    "scales": np.ones(width, dtype=block.dtype)}
        encoded = quant.quantize_embeddings(block, levels=self.levels)
        codes = (quant.pack_uint4(encoded.codes) if self.packed
                 else encoded.codes)
        return {"codes": codes, "minimums": encoded.minimums,
                "scales": encoded.scales}

    def decode(self, arrays, width, dtype):
        """Dequantize stored codes back to the compute dtype."""
        quant = _quantization()
        # reprolint: disable=RP001 -- codes are uint8 and minimums/scales
        # carry the encode-time dtype; dequantize() applies the policy cast.
        codes = np.asarray(arrays["codes"])
        if self.packed:
            codes = quant.unpack_uint4(codes, width)
        block = quant.QuantizedEmbeddings(
            codes=codes,
            minimums=np.asarray(arrays["minimums"]),  # reprolint: disable=RP001 -- stored dtype
            scales=np.asarray(arrays["scales"]),  # reprolint: disable=RP001 -- stored dtype
            levels=self.levels,
        ).dequantize(dtype=dtype)
        return np.ascontiguousarray(block)

    def values_nbytes(self, rows, width, dtype):
        """One byte per code, or one byte per two packed 4-bit codes."""
        return rows * ((width + 1) // 2 if self.packed else width)

    def meta_nbytes(self, width, dtype):
        """Per-block minimums + scales, at the block's float dtype."""
        return 2 * width * np.dtype(dtype).itemsize

    def spec(self):
        """Name plus the level count (needed to rebuild the codec)."""
        return {"name": self.name, "levels": self.levels}


#: Codec registry: spec string -> zero-arg constructor.
CODECS = {
    "identity": IdentityCodec,
    "float16": Float16Codec,
    "int8": lambda: QuantizedCodec(levels=256),
    "uint4": lambda: QuantizedCodec(levels=16),
}


def resolve_codec(codec):
    """Canonicalise a codec knob to a :class:`StateCodec` instance.

    Accepts ``None`` (identity), a registry string (``"identity"``,
    ``"float16"``, ``"int8"``, ``"uint4"``), a manifest spec dict
    (``{"name": ..., "levels": ...}``), or an existing instance.
    """
    if codec is None:
        return IdentityCodec()
    if isinstance(codec, StateCodec):
        return codec
    if isinstance(codec, dict):
        name = codec.get("name")
        if "levels" in codec and name not in ("identity", "float16"):
            return QuantizedCodec(levels=int(codec["levels"]))
        codec = name
    if isinstance(codec, str):
        try:
            return CODECS[codec]()
        except KeyError:
            raise ValueError(
                "unknown state codec %r (use one of %s)"
                % (codec, sorted(CODECS))
            ) from None
    raise TypeError("codec must be a name, spec dict or StateCodec "
                    "(got %s)" % type(codec).__name__)


# ----------------------------------------------------------------------
# the shared on-disk state bundle format
# ----------------------------------------------------------------------
def _shard_files(directory, index):
    """Paths of one shard's hidden / cell / metadata files."""
    base = os.path.join(str(directory), "shard_%04d" % index)
    return base + ".hidden.npy", base + ".cell.npy", base + ".meta.npz"


def write_state_shard(directory, index, entity_ids, hidden, cell,
                      last_times, codec):
    """Persist one encoded state shard (data ``.npy`` + ``meta.npz``).

    ``hidden`` (and ``cell`` for LSTM states) are ``(rows, H)`` blocks in
    the runtime's policy dtype; ``last_times`` is stored as float64.
    """
    hidden_path, cell_path, meta_path = _shard_files(directory, index)
    # reprolint: disable=RP001 -- entity ids keep their input integer dtype.
    meta = {"entity_ids": np.asarray(entity_ids),
            "last_times": np.asarray(last_times, dtype=np.float64)}
    for field, block, path in (("hidden", hidden, hidden_path),
                               ("cell", cell, cell_path)):
        if block is None:
            continue
        encoded = codec.encode(block)
        np.save(path, encoded.pop(codec.data_key))
        for key, value in encoded.items():
            meta["%s__%s" % (field, key)] = value
    save_arrays(meta_path, meta)


def read_state_shard(directory, index, codec, width, dtype, with_cell,
                     mmap=True):
    """Load one shard: ``(entity_ids, hidden, cell, last_times)``.

    ``mmap=True`` opens the data arrays with ``mmap_mode="r"`` so only
    the decoded shard is materialised in RAM; the decode itself always
    returns fresh writable arrays.
    """
    hidden_path, cell_path, meta_path = _shard_files(directory, index)
    meta = load_arrays(meta_path)

    def field(name, path):
        """Decode one field's data array + its prefixed metadata."""
        arrays = {codec.data_key: np.load(path,
                                          mmap_mode="r" if mmap else None)}
        prefix = name + "__"
        arrays.update({key[len(prefix):]: value for key, value in meta.items()
                       if key.startswith(prefix)})
        return codec.decode(arrays, width, dtype)

    hidden = field("hidden", hidden_path)
    cell = field("cell", cell_path) if with_cell else None
    return meta["entity_ids"].tolist(), hidden, cell, meta["last_times"]


def write_state_manifest(directory, kind, dim, codec, shards, entities,
                         **extra):
    """Write ``state_manifest.json`` describing a state bundle."""
    manifest = {"format": STATE_FORMAT, "kind": kind, "dim": int(dim),
                "codec": codec.spec(), "shards": int(shards),
                "entities": int(entities)}
    manifest.update(extra)
    with open(os.path.join(str(directory), _MANIFEST_NAME), "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return manifest


def read_state_manifest(directory):
    """Read a bundle manifest; ``FileNotFoundError`` when absent."""
    path = os.path.join(str(directory), _MANIFEST_NAME)
    if not os.path.exists(path):
        raise FileNotFoundError("no state bundle manifest at %r" % path)
    with open(path) as handle:
        return json.load(handle)


# ----------------------------------------------------------------------
# backends: where per-entity state lives
# ----------------------------------------------------------------------
class StateBackend:
    """Where per-entity recurrent state lives — the storage protocol.

    A backend stores ``(hidden, cell, last_time)`` triples keyed by
    entity id on behalf of an :class:`~repro.runtime.EmbeddingStore`.
    Lifecycle: construct (storage knobs only) → :meth:`attach` (the
    owning store provides the state geometry, compute dtype and at-rest
    codec) → ``get``/``put`` traffic → :meth:`snapshot` /
    :meth:`restore` / :meth:`flush`.

    Required overrides: :meth:`get`, :meth:`put`, :meth:`entity_ids`,
    ``__len__``, ``__contains__``, :meth:`last_time`, :meth:`clear` and
    :meth:`_snapshot_shards`.  ``update_many``, ``snapshot``,
    ``restore``, ``flush`` and ``bytes_per_entity`` have shared default
    implementations.
    """

    def __init__(self):
        self.dim = None
        self.kind = None
        self.dtype = None
        self.codec = None

    # -- lifecycle ------------------------------------------------------
    def attach(self, dim, kind, dtype, codec):
        """Bind the backend to a store's state geometry and codec.

        ``kind`` names the state family: recurrent ``"gru"``/``"lstm"``
        states (``"lstm"`` adds a cell buffer per entity) or
        ``"transformer"`` pooled-embedding states (hidden buffer only,
        like GRU).
        """
        if kind not in ("gru", "lstm", "transformer"):
            raise ValueError(
                "kind must be 'gru', 'lstm' or 'transformer' (got %r)"
                % kind)
        self.dim = int(dim)
        self.kind = kind
        self.dtype = np.dtype(dtype)
        self.codec = resolve_codec(codec)
        return self

    @property
    def is_lstm(self):
        """Whether stored states carry a cell buffer."""
        return self.kind == "lstm"

    # -- required storage primitives -------------------------------------
    def get(self, entity_id):
        """``(hidden, cell, last_time)`` of an entity, or ``None``."""
        raise NotImplementedError

    def put(self, entity_id, hidden, cell, last_time):
        """Store one entity's state (buffers owned by the backend)."""
        raise NotImplementedError

    def entity_ids(self):
        """Iterable of every stored entity id (unordered)."""
        raise NotImplementedError

    def last_time(self, entity_id):
        """Timestamp of the entity's last folded event, or ``None``."""
        raise NotImplementedError

    def clear(self):
        """Drop all stored state."""
        raise NotImplementedError

    def __len__(self):
        raise NotImplementedError

    def __contains__(self, entity_id):
        raise NotImplementedError

    def _snapshot_shards(self):
        """Yield ``(entity_ids, hidden, cell, last_times)`` blocks."""
        raise NotImplementedError

    # -- shared default implementations -----------------------------------
    def update_many(self, items):
        """Store a batch of ``(entity_id, hidden, cell, last_time)``."""
        for entity_id, hidden, cell, last_time in items:
            self.put(entity_id, hidden, cell, last_time)

    def flush(self):
        """Make pending writes durable (no-op for in-RAM backends)."""

    def close(self):
        """Release background resources (no-op for most backends)."""

    def snapshot(self, directory):
        """Write the full state bundle to ``directory``."""
        directory = str(directory)
        os.makedirs(directory, exist_ok=True)
        count = 0
        for ids, hidden, cell, last_times in self._snapshot_shards():
            write_state_shard(directory, count, ids, hidden, cell,
                              last_times, self.codec)
            count += 1
        write_state_manifest(directory, self.kind, self.dim, self.codec,
                             count, len(self))

    def restore(self, directory):
        """Replace all state with a bundle written by :meth:`snapshot`.

        The bundle decodes through **its own** recorded codec, then
        re-encodes at rest through this backend's codec — so bundles
        restore across codecs (and across backends; the layout is
        shared).  Kind and state width must match.
        """
        manifest = read_state_manifest(directory)
        if manifest.get("kind") != self.kind:
            raise ValueError(
                "snapshot holds %s states but the runtime encoder is %s"
                % (manifest.get("kind"), self.kind)
            )
        if int(manifest.get("dim", -1)) != self.dim:
            raise ValueError(
                "snapshot state width (%s,) does not match encoder hidden "
                "size %d" % (manifest.get("dim"), self.dim)
            )
        codec = resolve_codec(manifest.get("codec"))
        self.clear()
        for index in range(int(manifest.get("shards", 0))):
            ids, hidden, cell, last_times = read_state_shard(
                directory, index, codec, self.dim, self.dtype,
                with_cell=self.is_lstm, mmap=False,
            )
            self.update_many(
                (entity_id, hidden[row].copy(),
                 cell[row].copy() if cell is not None else None,
                 float(last_times[row]))
                for row, entity_id in enumerate(ids)
            )
        self.flush()
        return self

    def _meta_block_entities(self):
        """Entities per at-rest block (amortises codec metadata)."""
        return SNAPSHOT_SHARD_ENTITIES

    def bytes_per_entity(self):
        """At-rest bytes per entity under this backend's codec + layout.

        Counts the encoded state values, the per-shard codec metadata
        amortised over the shard size, and the 8-byte last-event
        timestamp.  The float64 in-RAM dict baseline is
        ``dim * 8 + 8`` (``2 * dim * 8 + 8`` for LSTM); this is the
        number recorded as ``bytes_per_entity`` in
        ``BENCH_serving.json``.
        """
        block = max(1, self._meta_block_entities())
        per_state = (self.codec.values_nbytes(1, self.dim, self.dtype)
                     + self.codec.meta_nbytes(self.dim, self.dtype) / block)
        if self.is_lstm:
            per_state *= 2
        return float(per_state + 8.0)

    def stats(self):
        """Backend telemetry (entity count; subclasses add their own)."""
        return {"entities": len(self)}


class DictStateBackend(StateBackend):
    """In-RAM per-entity dicts — the historical default backend.

    Live state is raw policy-dtype arrays (reads return the stored
    buffers; callers must not mutate them).  The codec applies to
    snapshots only: blocks of :data:`SNAPSHOT_SHARD_ENTITIES` entities
    encode per block on :meth:`snapshot` and decode on :meth:`restore`.
    """

    def __init__(self):
        super().__init__()
        self._hidden = {}
        self._cell = {}
        self._last = {}

    def get(self, entity_id):
        """The live stored buffers (do not mutate), or ``None``."""
        hidden = self._hidden.get(entity_id)
        if hidden is None:
            return None
        return hidden, self._cell.get(entity_id), self._last.get(entity_id)

    def put(self, entity_id, hidden, cell, last_time):
        """Store the given buffers (the backend takes ownership)."""
        self._hidden[entity_id] = hidden
        if cell is not None:
            self._cell[entity_id] = cell
        self._last[entity_id] = float(last_time)

    def entity_ids(self):
        """All stored entity ids."""
        return list(self._hidden)

    def last_time(self, entity_id):
        """Last folded-event timestamp without touching the state."""
        return self._last.get(entity_id)

    def clear(self):
        """Drop all stored state."""
        self._hidden = {}
        self._cell = {}
        self._last = {}

    def __len__(self):
        return len(self._hidden)

    def __contains__(self, entity_id):
        return entity_id in self._hidden

    def _snapshot_shards(self):
        """Sorted ids in blocks of :data:`SNAPSHOT_SHARD_ENTITIES`."""
        ids = sorted(self._hidden)
        for start in range(0, len(ids), SNAPSHOT_SHARD_ENTITIES):
            chunk = ids[start:start + SNAPSHOT_SHARD_ENTITIES]
            hidden = np.stack([self._hidden[e] for e in chunk])
            cell = (np.stack([self._cell[e] for e in chunk])
                    if self.is_lstm else None)
            last_times = np.asarray([self._last[e] for e in chunk],
                            dtype=np.float64)
            yield chunk, hidden, cell, last_times


class _HotShard:
    """One memmap shard promoted to RAM: decoded buffers + dirty flag."""

    __slots__ = ("hidden", "cell", "dirty")

    def __init__(self, hidden, cell, dirty):
        self.hidden = hidden
        self.cell = cell
        self.dirty = dirty


class MemmapStateBackend(StateBackend):
    """Out-of-core state: ``.npy`` memmap shards + an LRU of hot shards.

    Entities append to fixed-capacity shards in arrival order (the
    entity→(shard, row) index and last-event timestamps stay in RAM —
    a few dozen bytes per entity; the *states* live on disk).  A read or
    write promotes the owning shard into an LRU of at most
    ``cache_shards`` decoded in-RAM shards; evicting a dirty shard
    encodes it through the codec and writes it back.  :meth:`flush`
    writes back every dirty hot shard and the manifest, after which the
    directory is a complete state bundle that a fresh backend reopens in
    place (construct with the same ``directory`` and attach).

    Resident state memory is bounded by ``cache_shards * shard_capacity``
    rows; everything else pages through the memmaps shard-by-shard.

    ``writeback="sync"`` (the default) encodes + writes a dirty shard on
    the evicting thread — the historical behaviour, where the ingest
    path pays for quantization and disk I/O inline.
    ``writeback="async"`` hands evicted dirty shards to one background
    writer thread instead: the ingest path only snapshots the shard's
    row metadata and enqueues, and :meth:`flush` remains the durability
    barrier (it waits for the writer to finish every queued eviction —
    re-raising any deferred write error — before writing the manifest).
    A queued-but-unwritten shard that is read again is reclaimed from
    the queue without touching disk, so reads never observe stale
    files.  Both modes store bit-identical bytes; async only moves
    *when* they are written.
    """

    def __init__(self, directory, shard_capacity=1024, cache_shards=4,
                 writeback="sync"):
        super().__init__()
        if shard_capacity < 1:
            raise ValueError("shard_capacity must be >= 1")
        if cache_shards < 1:
            raise ValueError("cache_shards must be >= 1")
        if writeback not in ("sync", "async"):
            raise ValueError("writeback must be 'sync' or 'async' (got %r)"
                             % (writeback,))
        self.directory = str(directory)
        self.shard_capacity = int(shard_capacity)
        self.cache_shards = int(cache_shards)
        self.writeback = writeback
        self._index = {}        # entity id -> (shard, row)
        self._last = {}         # entity id -> float timestamp
        self._shard_ids = []    # shard -> [entity ids in row order]
        self._hot = OrderedDict()  # shard -> _HotShard (LRU order)
        self.evictions = 0
        self.shard_loads = 0
        self.async_writebacks = 0
        # Background write-back machinery (writeback="async" only): one
        # condition guards the job queue, the in-flight marker and the
        # deferred-error list; the writer is a plain daemon thread.
        self._wb_cond = threading.Condition()
        self._wb_jobs = OrderedDict()  # shard -> (hot, ids, last_times)
        self._wb_inflight = None       # shard currently being written
        self._wb_errors = []
        self._wb_closed = False
        self._writer = None
        if writeback == "async":
            self._writer = threading.Thread(target=self._writeback_loop,
                                            name="repro-memmap-writeback",
                                            daemon=True)
            self._writer.start()

    # -- lifecycle ------------------------------------------------------
    def attach(self, dim, kind, dtype, codec):
        """Bind geometry/codec; reopen the directory if it holds state."""
        super().attach(dim, kind, dtype, codec)
        os.makedirs(self.directory, exist_ok=True)
        if os.path.exists(os.path.join(self.directory, _MANIFEST_NAME)):
            self._reopen()
        return self

    def _reopen(self):
        """Adopt an existing state bundle in ``directory`` as live state."""
        manifest = read_state_manifest(self.directory)
        if manifest.get("kind") != self.kind:
            raise ValueError(
                "state directory %r holds %s states but the runtime encoder "
                "is %s" % (self.directory, manifest.get("kind"), self.kind)
            )
        if int(manifest.get("dim", -1)) != self.dim:
            raise ValueError(
                "state directory %r holds width-%s states but the encoder "
                "hidden size is %d"
                % (self.directory, manifest.get("dim"), self.dim)
            )
        if resolve_codec(manifest.get("codec")).spec() != self.codec.spec():
            raise ValueError(
                "state directory %r was written with codec %r but this "
                "backend is configured with %r — pass the matching codec "
                "(or restore() through a snapshot to transcode)"
                % (self.directory, manifest.get("codec"), self.codec.spec())
            )
        self._index = {}
        self._last = {}
        self._shard_ids = []
        self._hot = OrderedDict()
        for shard in range(int(manifest.get("shards", 0))):
            meta = load_arrays(_shard_files(self.directory, shard)[2])
            ids = meta["entity_ids"].tolist()
            self._shard_ids.append(ids)
            for row, entity_id in enumerate(ids):
                self._index[entity_id] = (shard, row)
                self._last[entity_id] = float(meta["last_times"][row])

    # -- shard plumbing ---------------------------------------------------
    def _new_hot(self, dirty):
        """A zeroed capacity-sized hot shard buffer pair."""
        hidden = np.zeros((self.shard_capacity, self.dim), dtype=self.dtype)
        cell = (np.zeros((self.shard_capacity, self.dim), dtype=self.dtype)
                if self.is_lstm else None)
        return _HotShard(hidden, cell, dirty)

    def _admit(self, shard, hot):
        """Insert a shard into the LRU, evicting (and writing back) LRUs."""
        self._hot[shard] = hot
        self._hot.move_to_end(shard)
        while len(self._hot) > self.cache_shards:
            old_shard, old_hot = self._hot.popitem(last=False)
            if old_hot.dirty:
                if self._writer is None:
                    self._write_shard(old_shard, old_hot)
                else:
                    self._enqueue_writeback(old_shard, old_hot)
            self.evictions += 1

    def _enqueue_writeback(self, shard, hot):
        """Queue an evicted dirty shard for the background writer.

        The shard's entity-id row map and last-event times are
        snapshotted *now*: the calling (ingest) thread keeps mutating
        ``_shard_ids``/``_last`` after this returns.  The state buffers
        themselves transfer safely — an evicted ``hot`` is no longer
        reachable from the LRU, so nothing mutates it until a reclaim
        pulls it back under the same condition lock.
        """
        ids = list(self._shard_ids[shard])
        last_times = np.asarray([self._last[e] for e in ids],
                                dtype=np.float64)
        with self._wb_cond:
            # A re-eviction of the same shard supersedes its queued job.
            self._wb_jobs[shard] = (hot, ids, last_times)
            self._wb_cond.notify_all()

    def _writeback_loop(self):
        """Writer thread: encode + persist queued shards, FIFO order."""
        while True:
            with self._wb_cond:
                while not self._wb_jobs and not self._wb_closed:
                    self._wb_cond.wait()
                if not self._wb_jobs:
                    return  # closed and drained
                shard, (hot, ids, last_times) = self._wb_jobs.popitem(
                    last=False)
                self._wb_inflight = shard
            try:
                write_state_shard(
                    self.directory, shard, ids, hot.hidden[:len(ids)],
                    hot.cell[:len(ids)] if self.is_lstm else None,
                    last_times, self.codec,
                )
                hot.dirty = False
                with self._wb_cond:
                    self.async_writebacks += 1
            except Exception as error:  # deferred, surfaced at flush()
                with self._wb_cond:
                    self._wb_errors.append(error)
            finally:
                with self._wb_cond:
                    self._wb_inflight = None
                    self._wb_cond.notify_all()

    def _reclaim_writeback(self, shard):
        """Pull a queued (unwritten) eviction back as the hot buffer.

        Returns the shard's still-dirty buffer if its write-back had not
        started, else ``None`` — after waiting out an in-flight write of
        this very shard, so the subsequent disk read sees the complete,
        current file.
        """
        if self._writer is None:
            return None
        with self._wb_cond:
            job = self._wb_jobs.pop(shard, None)
            if job is not None:
                return job[0]  # still dirty; never handed to the writer
            while self._wb_inflight == shard:
                self._wb_cond.wait()
        return None

    def _drain_writebacks(self):
        """Wait until the writer queue is empty; re-raise deferred errors."""
        if self._writer is None:
            return
        with self._wb_cond:
            while self._wb_jobs or self._wb_inflight is not None:
                self._wb_cond.wait()
            errors, self._wb_errors = self._wb_errors, []
        if errors:
            raise errors[0]

    def _load_shard(self, shard):
        """The hot buffer of ``shard``, promoting it from disk if cold."""
        hot = self._hot.get(shard)
        if hot is not None:
            self._hot.move_to_end(shard)
            return hot
        hot = self._reclaim_writeback(shard)
        if hot is not None:
            self._admit(shard, hot)
            return hot
        hot = self._new_hot(dirty=False)
        meta_path = _shard_files(self.directory, shard)[2]
        if os.path.exists(meta_path):
            _, hidden, cell, _ = read_state_shard(
                self.directory, shard, self.codec, self.dim, self.dtype,
                with_cell=self.is_lstm,
            )
            hot.hidden[:hidden.shape[0]] = hidden
            if self.is_lstm:
                hot.cell[:cell.shape[0]] = cell
            self.shard_loads += 1
        self._admit(shard, hot)
        return hot

    def _write_shard(self, shard, hot):
        """Encode and persist one shard's used rows."""
        ids = self._shard_ids[shard]
        rows = len(ids)
        last_times = np.asarray([self._last[e] for e in ids],
                                dtype=np.float64)
        write_state_shard(
            self.directory, shard, ids, hot.hidden[:rows],
            hot.cell[:rows] if self.is_lstm else None, last_times,
            self.codec,
        )
        hot.dirty = False

    def _reserve(self, entity_id):
        """Assign a (shard, row) slot to a new entity (no data write)."""
        if (not self._shard_ids
                or len(self._shard_ids[-1]) >= self.shard_capacity):
            self._shard_ids.append([])
            self._admit(len(self._shard_ids) - 1, self._new_hot(dirty=True))
        shard = len(self._shard_ids) - 1
        row = len(self._shard_ids[shard])
        self._shard_ids[shard].append(entity_id)
        self._index[entity_id] = (shard, row)
        return shard, row

    # -- the storage protocol ----------------------------------------------
    def get(self, entity_id):
        """Decode one entity's state (fresh copies), or ``None``."""
        location = self._index.get(entity_id)
        if location is None:
            return None
        shard, row = location
        hot = self._load_shard(shard)
        hidden = hot.hidden[row].copy()
        cell = hot.cell[row].copy() if self.is_lstm else None
        return hidden, cell, self._last.get(entity_id)

    def put(self, entity_id, hidden, cell, last_time):
        """Write one entity's state into its (possibly new) shard row.

        ``hidden`` (and ``cell`` for LSTM states) are ``(H,)`` buffers in
        the backend's policy dtype; the shard row copies them.
        """
        location = self._index.get(entity_id)
        if location is None:
            location = self._reserve(entity_id)
        shard, row = location
        hot = self._load_shard(shard)
        hot.hidden[row] = hidden
        if self.is_lstm:
            hot.cell[row] = cell
        hot.dirty = True
        self._last[entity_id] = float(last_time)

    def update_many(self, items):
        """Batched put with shard-local write order.

        New entities reserve rows in input order (allocation stays
        deterministic), then writes group by shard so a batch touching
        many shards promotes each one once instead of ping-ponging
        through the LRU.
        """
        items = list(items)
        for entity_id, _, _, last_time in items:
            if entity_id not in self._index:
                self._reserve(entity_id)
                # A reserved row's shard can be evicted (and written back)
                # before its put below — give it a timestamp already.
                self._last[entity_id] = float(last_time)
        items.sort(key=lambda item: self._index[item[0]])
        for entity_id, hidden, cell, last_time in items:
            self.put(entity_id, hidden, cell, last_time)

    def entity_ids(self):
        """All stored entity ids."""
        return list(self._index)

    def last_time(self, entity_id):
        """Last folded-event timestamp (RAM index; no shard touch)."""
        return self._last.get(entity_id)

    def clear(self):
        """Forget all live state (stale files are overwritten lazily)."""
        if self._writer is not None:
            with self._wb_cond:
                # Queued write-backs describe state being dropped.
                self._wb_jobs.clear()
                while self._wb_inflight is not None:
                    self._wb_cond.wait()
                self._wb_errors = []
        self._index = {}
        self._last = {}
        self._shard_ids = []
        self._hot = OrderedDict()

    def __len__(self):
        return len(self._index)

    def __contains__(self, entity_id):
        return entity_id in self._index

    # -- durability ---------------------------------------------------------
    def flush(self):
        """Write back every dirty shard + the bundle manifest.

        With ``writeback="async"`` this is the durability barrier: it
        first waits for the background writer to finish every queued
        eviction (re-raising the oldest deferred write error, if any),
        then writes the remaining dirty hot shards and the manifest on
        the calling thread.
        """
        self._drain_writebacks()
        for shard, hot in self._hot.items():
            if hot.dirty:
                self._write_shard(shard, hot)
        write_state_manifest(self.directory, self.kind, self.dim, self.codec,
                             len(self._shard_ids), len(self),
                             shard_capacity=self.shard_capacity)

    def close(self):
        """Stop the background writer; idempotent.

        Queued evictions are still written before the thread exits
        (nothing is discarded) and deferred write errors are re-raised.
        The backend stays usable afterwards — write-back just degrades
        to synchronous.
        """
        if self._writer is None:
            return
        with self._wb_cond:
            self._wb_closed = True
            self._wb_cond.notify_all()
        self._writer.join()
        self._writer = None
        errors, self._wb_errors = self._wb_errors, []
        if errors:
            raise errors[0]

    def snapshot(self, directory):
        """Flush, then copy the encoded shard files verbatim.

        Verbatim copies keep quantized snapshots **lossless relative to
        the live files** — no decode/re-encode cycle, so snapshotting
        never adds drift.  Snapshotting into the live directory is just
        a flush.
        """
        self.flush()
        target = os.path.abspath(str(directory))
        if target == os.path.abspath(self.directory):
            return
        os.makedirs(target, exist_ok=True)
        for shard in range(len(self._shard_ids)):
            sources = _shard_files(self.directory, shard)
            destinations = _shard_files(target, shard)
            for source, destination in zip(sources, destinations):
                if os.path.exists(source):
                    shutil.copyfile(source, destination)
        write_state_manifest(target, self.kind, self.dim, self.codec,
                             len(self._shard_ids), len(self),
                             shard_capacity=self.shard_capacity)

    def _meta_block_entities(self):
        """Codec metadata amortises over one shard's capacity."""
        return self.shard_capacity

    def _snapshot_shards(self):
        """Decoded shard blocks (used only by cross-backend copies)."""
        for shard, ids in enumerate(self._shard_ids):
            hot = self._load_shard(shard)
            rows = len(ids)
            yield (list(ids), hot.hidden[:rows].copy(),
                   hot.cell[:rows].copy() if self.is_lstm else None,
                   np.asarray([self._last[e] for e in ids],
                              dtype=np.float64))

    def stats(self):
        """Shard/LRU telemetry on top of the base entity count."""
        stats = super().stats()
        with self._wb_cond:
            queued = len(self._wb_jobs) + (self._wb_inflight is not None)
        stats.update({
            "shards": len(self._shard_ids),
            "hot_shards": len(self._hot),
            "shard_capacity": self.shard_capacity,
            "cache_shards": self.cache_shards,
            "evictions": self.evictions,
            "shard_loads": self.shard_loads,
            "writeback": self.writeback,
            "queued_writebacks": queued,
            "async_writebacks": self.async_writebacks,
        })
        return stats


def resolve_backend(backend, backend_dir=None):
    """Canonicalise a backend knob to a :class:`StateBackend` instance.

    Accepts ``None``/``"dict"`` (a fresh :class:`DictStateBackend`),
    ``"memmap"`` (a :class:`MemmapStateBackend` rooted at
    ``backend_dir``, which is then required), a zero-arg callable
    factory, or an existing instance (``backend_dir`` must be ``None``).
    """
    if isinstance(backend, StateBackend):
        if backend_dir is not None:
            raise ValueError(
                "backend_dir conflicts with an explicit StateBackend "
                "instance — the instance already owns its directory"
            )
        return backend
    if callable(backend):
        backend = backend()
        if not isinstance(backend, StateBackend):
            raise TypeError("backend factory must return a StateBackend")
        return backend
    if backend is None or backend == "dict":
        return DictStateBackend()
    if backend == "memmap":
        if backend_dir is None:
            raise ValueError(
                "backend='memmap' needs a directory: pass backend_dir=... "
                "(or construct MemmapStateBackend(directory) yourself)"
            )
        return MemmapStateBackend(backend_dir)
    raise ValueError(
        "unknown state backend %r (use 'dict', 'memmap', a factory, or a "
        "StateBackend instance)" % (backend,)
    )
