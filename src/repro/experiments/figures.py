"""Runners regenerating each figure of the paper's evaluation section."""

from __future__ import annotations

from ..baselines import handcrafted_features
from ..data import subsample_labels, train_test_split
from ..data.synthetic import make_texts_dataset
from ..eval import (
    ComparisonTable,
    ascii_histogram,
    ascii_series,
    evaluate_features,
    slice_kl_experiment,
    task_metric,
)
from .configs import PROFILES, scaled_profile
from .runners import (
    cv_embedding_metric,
    gbm_config_for,
    phase2b_test_metric,
    train_coles,
)

__all__ = ["run_figure2", "run_figure3", "run_figure4"]

_FIGURE2_FIELDS = {
    "age": "trx_type",
    "assessment": "event_code",
    "retail": "product_level",
}


def run_figure2(num_pairs=300, seed=0):
    """Figure 2: KL of same-sequence vs different-sequence slices.

    Reports the median of each histogram plus the separation ratio; the
    transactional worlds must separate (ratio >> 1) and the texts control
    must not (ratio ~ 1), reproducing panels (a)–(d).
    """
    results = {}
    table = ComparisonTable(
        "Figure 2: repeatability (median KL, same vs different)",
        ["dataset", "same", "different", "ratio", "expected"],
    )
    def record(name, outcome, expected):
        summary = outcome.summary()
        summary["histogram"] = "(%s)\n%s" % (
            name,
            ascii_histogram(
                {
                    "same sequence": outcome.same_sequence,
                    "different sequences": outcome.different_sequences,
                },
                num_bins=12, width=30,
            ),
        )
        results[name] = summary
        table.add_row(name, summary["same_median"],
                      summary["different_median"],
                      summary["separation_ratio"], expected)

    for name, field in _FIGURE2_FIELDS.items():
        dataset = PROFILES[name].make_dataset(seed=seed)
        record(name, slice_kl_experiment(dataset, field, num_pairs=num_pairs,
                                         seed=seed), "separated")
    texts = make_texts_dataset(num_posts=150, seed=seed)
    record("texts", slice_kl_experiment(texts, "token", num_pairs=num_pairs,
                                        seed=seed), "overlapping")
    return results, table


def run_figure3(dataset_name="age", sizes=(8, 16, 32, 64), seed=0):
    """Figure 3: downstream quality vs embedding dimensionality.

    The paper sweeps 32..2400 dims and finds diminishing (then negative)
    returns; the scaled sweep covers the same shape at 8..64.
    """
    profile = PROFILES[dataset_name]
    dataset = profile.make_dataset(seed=seed)
    results = {}
    table = ComparisonTable(
        "Figure 3: embedding size vs quality (%s)" % dataset_name,
        ["embedding size", "measured metric"],
    )
    for size in sizes:
        model = train_coles(profile, dataset, seed=seed, hidden_size=size)
        results[size] = cv_embedding_metric(profile, dataset, model, seed=seed)
        table.add_row(str(size), results[size])
    table.footer = ascii_series(
        {"quality": (list(results), list(results.values()))}, height=8
    )
    return results, table


FIGURE4_SETUPS = ("designed", "cpc_finetune", "coles_finetune", "supervised")


def run_figure4(dataset_name="churn", label_counts=(20, 40, 80), seed=0):
    """Figure 4: quality vs number of labeled datapoints.

    Self-supervised pre-training uses *all* sequences; only the supervised
    head sees the (subsampled) labels.  The paper's claim: the CoLES margin
    over supervised-only grows as labels shrink.
    """
    # A longer self-supervised phase, as in the Table 6/7 runners: the
    # pre-trained encoder is shared across all label counts.
    profile = scaled_profile(dataset_name, num_epochs=6)
    dataset = profile.make_dataset(seed=seed, labeled_fraction=1.0,
                                   num_clients=200)
    train, test = train_test_split(dataset, 0.25, seed=seed)
    test_labels = test.label_array()
    metric = task_metric(test_labels)

    results = {setup: {} for setup in FIGURE4_SETUPS}
    table = ComparisonTable(
        "Figure 4: labels vs quality (%s, %s)" % (dataset_name, metric),
        ["setup"] + ["n=%d" % n for n in label_counts],
    )
    for setup in FIGURE4_SETUPS:
        cells = [setup]
        for count in label_counts:
            limited = subsample_labels(train, count, seed=seed)
            if setup == "designed":
                labeled = limited.labeled()
                measured = evaluate_features(
                    handcrafted_features(labeled), labeled.label_array(),
                    handcrafted_features(test), test_labels,
                    gbm_config=gbm_config_for(profile), metric=metric,
                )
            elif setup == "supervised":
                measured = phase2b_test_metric(profile, "supervised",
                                               limited, test, seed=seed)
            elif setup == "cpc_finetune":
                measured = phase2b_test_metric(profile, "cpc",
                                               limited, test, seed=seed)
            else:  # coles_finetune
                measured = phase2b_test_metric(profile, "coles",
                                               limited, test, seed=seed)
            results[setup][count] = measured
            cells.append(measured)
        table.add_row(*cells)
    table.footer = ascii_series(
        {
            setup: (list(label_counts),
                    [results[setup][count] for count in label_counts])
            for setup in FIGURE4_SETUPS
        },
        height=10,
    )
    return results, table
