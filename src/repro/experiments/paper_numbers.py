"""Every number the paper reports in its evaluation tables.

Kept verbatim so benchmark output and EXPERIMENTS.md can show
paper-vs-measured side by side.  Figure series are digitised
approximately where exact values are not printed in the paper.
"""

TABLE2_SAMPLING = {
    # strategy -> {dataset: metric}
    "random_samples": {"age": 0.613, "churn": 0.820, "assessment": 0.563,
                       "retail": 0.523},
    "random_disjoint": {"age": 0.619, "churn": 0.819, "assessment": 0.563,
                        "retail": 0.505},
    "random_slices": {"age": 0.639, "churn": 0.823, "assessment": 0.618,
                      "retail": 0.542},
}

TABLE3_ENCODERS = {
    "lstm": {"age": 0.621, "churn": 0.823, "assessment": 0.620, "retail": 0.535},
    "gru": {"age": 0.638, "churn": 0.812, "assessment": 0.618, "retail": 0.542},
    "transformer": {"age": 0.622, "churn": 0.780, "assessment": 0.542,
                    "retail": 0.499},
}

TABLE4_LOSSES = {
    "contrastive": {"age": 0.639, "churn": 0.823, "assessment": 0.618,
                    "retail": 0.542},
    "binomial_deviance": {"age": 0.621, "churn": 0.769, "assessment": 0.589,
                          "retail": 0.535},
    "histogram": {"age": 0.632, "churn": 0.815, "assessment": 0.615,
                  "retail": 0.533},
    "margin": {"age": 0.638, "churn": 0.823, "assessment": 0.612,
               "retail": 0.541},
    "triplet": {"age": 0.636, "churn": 0.781, "assessment": 0.600,
                "retail": 0.541},
}

TABLE5_NEGATIVE_SAMPLING = {
    "hard": {"age": 0.639, "churn": 0.823, "assessment": 0.618, "retail": 0.542},
    "random": {"age": 0.626, "churn": 0.815, "assessment": 0.593,
               "retail": 0.530},
    "distance_weighted": {"age": 0.629, "churn": 0.821, "assessment": 0.603,
                          "retail": 0.536},
}

TABLE6_UNSUPERVISED = {
    # method -> {dataset: (mean, std)}
    "designed": {"age": (0.631, 0.003), "churn": (0.825, 0.004),
                 "assessment": (0.602, 0.005), "retail": (0.547, 0.001),
                 "scoring": (0.779, 0.001)},
    "sop": {"age": (0.493, 0.002), "churn": (0.782, 0.005),
            "assessment": (0.577, 0.002), "retail": (0.428, 0.001),
            "scoring": (0.724, 0.001)},
    "nsp": {"age": (0.622, 0.004), "churn": (0.830, 0.004),
            "assessment": (0.581, 0.003), "retail": (0.425, 0.002),
            "scoring": (0.766, 0.001)},
    "rtd": {"age": (0.632, 0.002), "churn": (0.801, 0.004),
            "assessment": (0.580, 0.003), "retail": (0.520, 0.001),
            "scoring": (0.791, 0.001)},
    "cpc": {"age": (0.594, 0.002), "churn": (0.802, 0.003),
            "assessment": (0.588, 0.002), "retail": (0.525, 0.001),
            "scoring": (0.791, 0.001)},
    "coles": {"age": (0.638, 0.007), "churn": (0.843, 0.003),
              "assessment": (0.601, 0.002), "retail": (0.539, 0.001),
              "scoring": (0.792, 0.001)},
}

TABLE7_FINETUNED = {
    "designed": {"age": (0.631, 0.003), "churn": (0.825, 0.004),
                 "assessment": (0.602, 0.005), "retail": (0.547, 0.001)},
    "supervised": {"age": (0.628, 0.004), "churn": (0.817, 0.009),
                   "assessment": (0.602, 0.005), "retail": (0.542, 0.001)},
    "rtd": {"age": (0.635, 0.006), "churn": (0.819, 0.005),
            "assessment": (0.586, 0.003), "retail": (0.544, 0.002)},
    "cpc": {"age": (0.615, 0.009), "churn": (0.810, 0.006),
            "assessment": (0.606, 0.004), "retail": (0.549, 0.001)},
    "coles": {"age": (0.644, 0.004), "churn": (0.827, 0.004),
              "assessment": (0.615, 0.003), "retail": (0.552, 0.001)},
}

TABLE10_LEGAL_ENTITIES = {
    # task -> {scenario: AUROC}
    "insurance_lead": {"baseline": 0.71, "coles": 0.85, "hybrid": 0.85},
    "credit_lead": {"baseline": 0.75, "coles": 0.79, "hybrid": 0.79},
    "credit_scoring": {"baseline": 0.73, "coles": 0.71, "hybrid": 0.77},
    "holding_structure": {"baseline": 0.92, "coles": 0.97, "hybrid": 0.97},
    "fraud": {"baseline": 0.82, "coles": 0.84, "hybrid": 0.85},
}

TABLE11_RETAIL_CUSTOMERS = {
    "credit_scoring": {"baseline": 0.88, "coles": 0.87, "hybrid": 0.92},
    "churn": {"baseline": 0.74, "coles": 0.65, "hybrid": 0.76},
    "insurance_lead": {"baseline": 0.75, "coles": 0.74, "hybrid": 0.78},
}

# Figure 3: embedding size grids used per dataset in the paper.
FIGURE3_SIZES = {
    "age": (32, 64, 96, 160, 224, 480, 800, 1200, 2400),
    "churn": (32, 64, 128, 256, 512, 1024, 3072),
    "assessment": (32, 64, 100, 200, 400),
    "retail": (64, 160, 480, 800),
}

# Section 4.0.4: single training batch of 64 entities x 5 sub-sequences
# (~28800 transactions) processed in 142 ms on a Tesla P-100.
THROUGHPUT_MS_PER_BATCH = 142.0
