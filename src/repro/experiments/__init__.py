"""Experiment runners: one per table/figure of the paper's evaluation."""

from . import paper_numbers
from .configs import PAPER_TABLE1, PROFILES, DatasetProfile, scaled_profile
from .figures import run_figure2, run_figure3, run_figure4
from .runners import (
    cv_embedding_metric,
    gbm_config_for,
    phase2a_test_metric,
    phase2b_test_metric,
    pretrain_method,
    train_coles,
)
from .tables import (
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
    run_table10,
    run_table11,
)

__all__ = [
    "PROFILES",
    "DatasetProfile",
    "scaled_profile",
    "PAPER_TABLE1",
    "paper_numbers",
    "train_coles",
    "cv_embedding_metric",
    "pretrain_method",
    "phase2a_test_metric",
    "phase2b_test_metric",
    "gbm_config_for",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
    "run_table10",
    "run_table11",
    "run_figure2",
    "run_figure3",
    "run_figure4",
]
