"""Shared experiment machinery: train a CoLES variant, score it downstream.

Every table/figure runner composes these three steps:

1. build + pre-train an embedding method on the training split
   (self-supervised, labels never used),
2. embed the labeled sequences,
3. score features with the GBM (Phase 2a) or fine-tune (Phase 2b).
"""

from __future__ import annotations

import numpy as np

from ..baselines import (
    CPC,
    NSP,
    RTD,
    SOP,
    FineTuneConfig,
    PretrainConfig,
    handcrafted_features,
)
from ..core import CoLES
from ..encoders import build_encoder
from ..eval import (
    cross_val_features,
    evaluate_features,
    evaluate_predictions,
    fine_tune_and_evaluate,
    task_metric,
)
from ..gbm import GBMConfig

__all__ = [
    "train_coles",
    "cv_embedding_metric",
    "pretrain_method",
    "phase2a_test_metric",
    "phase2b_test_metric",
    "gbm_config_for",
]


def gbm_config_for(profile):
    return GBMConfig(num_rounds=profile.gbm_rounds, max_depth=3,
                     learning_rate=0.1, seed=0)


def train_coles(profile, dataset, seed=0, **overrides):
    """Build and fit a CoLES model per the profile, with overrides.

    Overrides accept the CoLES constructor arguments (``strategy``,
    ``encoder_type``, ``loss``, ``sampler``, ``hidden_size`` ...).
    """
    kwargs = {
        "hidden_size": profile.hidden_size,
        "encoder_type": profile.encoder,
        "min_length": profile.slice_min,
        "max_length": profile.slice_max,
        "num_samples": profile.num_slices,
        "seed": seed,
    }
    kwargs.update(overrides)
    model = CoLES(dataset.schema, **kwargs)
    model.fit(
        dataset,
        num_epochs=profile.num_epochs,
        batch_size=profile.batch_size,
        learning_rate=profile.learning_rate,
    )
    return model


def cv_embedding_metric(profile, dataset, model, n_folds=3, seed=0):
    """The Tables 2–5 protocol: embeddings -> GBM, k-fold CV metric."""
    labeled = dataset.labeled()
    embeddings = model.embed(labeled)
    labels = labeled.label_array()
    scores = cross_val_features(embeddings, labels, n_folds=n_folds,
                                gbm_config=gbm_config_for(profile), seed=seed)
    return float(scores.mean())


def pretrain_method(method, profile, dataset, seed=0):
    """Pre-train one of the Table 6/7 methods; returns (embed_fn, encoder).

    ``method`` is one of coles/cpc/nsp/sop/rtd.  ``embed_fn(ds)`` maps a
    dataset to an embedding matrix; ``encoder`` is the trained encoder
    usable for fine-tuning.
    """
    pre_config = PretrainConfig(
        num_epochs=profile.num_epochs,
        batch_size=profile.batch_size,
        learning_rate=profile.learning_rate,
        max_seq_length=profile.max_length,
        seed=seed,
    )
    if method == "coles":
        model = train_coles(profile, dataset, seed=seed)
        return model.embed, model.encoder
    if method == "cpc":
        model = CPC(dataset.schema, hidden_size=profile.hidden_size, seed=seed)
        model.fit(dataset, pre_config)
        return model.embed, model.encoder
    if method == "rtd":
        model = RTD(dataset.schema, hidden_size=profile.hidden_size, seed=seed)
        model.fit(dataset, pre_config)
        return model.embed, model.encoder
    if method in ("nsp", "sop"):
        encoder = build_encoder(dataset.schema, profile.hidden_size,
                                profile.encoder,
                                rng=np.random.default_rng(seed))
        cls = NSP if method == "nsp" else SOP
        model = cls(encoder, dataset.schema, seed=seed)
        model.fit(dataset, pre_config)
        return model.embed, model.encoder
    raise ValueError("unknown method %r" % method)


def phase2a_test_metric(profile, method, train, test, seed=0):
    """Table 6 protocol: pre-train on train split, embeddings -> GBM -> test."""
    test_labels = test.label_array()
    metric = task_metric(test_labels)
    if method == "designed":
        train_feats = handcrafted_features(train.labeled())
        test_feats = handcrafted_features(test)
        return evaluate_features(
            train_feats, train.labeled().label_array(),
            test_feats, test_labels,
            gbm_config=gbm_config_for(profile), metric=metric,
        )
    embed_fn, _ = pretrain_method(method, profile, train, seed=seed)
    train_labeled = train.labeled()
    return evaluate_features(
        embed_fn(train_labeled), train_labeled.label_array(),
        embed_fn(test), test_labels,
        gbm_config=gbm_config_for(profile), metric=metric,
    )


def phase2b_test_metric(profile, method, train, test, seed=0, engine="auto"):
    """Table 7 protocol: (pre-trained) encoder + head fine-tuned on labels.

    ``engine`` selects the fine-tuning execution engine (the default
    ``"auto"`` resolves to fused for every profile encoder, recurrent
    and transformer alike); pre-training keeps its own ``"auto"``.
    """
    test_labels = test.label_array()
    metric = task_metric(test_labels)
    config = FineTuneConfig(
        num_epochs=profile.fine_tune_epochs,
        batch_size=profile.batch_size,
        learning_rate=profile.learning_rate,
        seed=seed,
        engine=engine,
    )
    if method == "designed":
        return phase2a_test_metric(profile, "designed", train, test, seed=seed)
    if method == "supervised":
        encoder = build_encoder(train.schema, profile.hidden_size,
                                profile.encoder,
                                rng=np.random.default_rng(seed))
    else:
        _, encoder = pretrain_method(method, profile, train, seed=seed)
    return fine_tune_and_evaluate(encoder, train, test, config=config,
                                  metric=metric, seed=seed)
