"""Scaled experiment configurations.

Table 1 of the paper lists the CoLES hyper-parameters per dataset (800–1024
embedding dims, 30–150 epochs, 44M–443M transactions on a Tesla P-100).
This module keeps those *paper* values for reference and defines the
CPU-scale profiles actually run by the benchmarks: the same pipeline with
clients, sequence lengths, dimensions and epochs reduced ~100x.  The
benchmark harness reports paper-vs-measured side by side; orderings are
expected to transfer, magnitudes are not.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..data.synthetic import (
    make_age_dataset,
    make_assessment_dataset,
    make_churn_dataset,
    make_retail_dataset,
    make_scoring_dataset,
)

__all__ = ["DatasetProfile", "PROFILES", "PAPER_TABLE1", "scaled_profile"]

# Paper Table 1 (for reference / documentation in reports).
PAPER_TABLE1 = {
    "age": {"embedding_size": 800, "learning_rate": 0.001, "batch": 64,
            "epochs": 150, "min_len": 25, "max_len": 200, "encoder": "GRU"},
    "churn": {"embedding_size": 1024, "learning_rate": 0.004, "batch": 128,
              "epochs": 60, "min_len": 15, "max_len": 150, "encoder": "LSTM"},
    "assessment": {"embedding_size": 100, "learning_rate": 0.002, "batch": 256,
                   "epochs": 100, "min_len": 100, "max_len": 500,
                   "encoder": "GRU"},
    "retail": {"embedding_size": 800, "learning_rate": 0.002, "batch": 256,
               "epochs": 30, "min_len": 30, "max_len": 180, "encoder": "GRU"},
}


@dataclass(frozen=True)
class DatasetProfile:
    """One dataset's scaled experiment settings."""

    name: str
    factory: object                      # callable(num_clients, seed, ...) -> dataset
    num_clients: int = 100
    mean_length: int = 60
    min_length: int = 30
    max_length: int = 90
    # CoLES settings (scaled analogue of Table 1).
    hidden_size: int = 24
    slice_min: int = 8
    slice_max: int = 50
    num_slices: int = 5                  # paper: always 5
    encoder: str = "gru"
    num_epochs: int = 3
    batch_size: int = 16
    learning_rate: float = 0.01
    # Downstream settings.
    gbm_rounds: int = 40
    fine_tune_epochs: int = 12

    def make_dataset(self, seed=0, labeled_fraction=None, num_clients=None):
        kwargs = {
            "num_clients": num_clients or self.num_clients,
            "mean_length": self.mean_length,
            "min_length": self.min_length,
            "max_length": self.max_length,
            "seed": seed,
        }
        if labeled_fraction is not None:
            kwargs["labeled_fraction"] = labeled_fraction
        return self.factory(**kwargs)


PROFILES = {
    "age": DatasetProfile(
        name="age", factory=make_age_dataset,
        num_clients=110, mean_length=70, min_length=30, max_length=110,
        hidden_size=24, slice_min=5, slice_max=110, encoder="gru",
    ),
    "churn": DatasetProfile(
        name="churn", factory=make_churn_dataset,
        num_clients=110, mean_length=60, min_length=15, max_length=100,
        hidden_size=24, slice_min=5, slice_max=100, encoder="lstm",
    ),
    "assessment": DatasetProfile(
        name="assessment", factory=make_assessment_dataset,
        num_clients=90, mean_length=110, min_length=100, max_length=150,
        hidden_size=16, slice_min=20, slice_max=150, encoder="gru",
    ),
    "retail": DatasetProfile(
        name="retail", factory=make_retail_dataset,
        num_clients=110, mean_length=60, min_length=30, max_length=90,
        hidden_size=24, slice_min=5, slice_max=90, encoder="gru",
    ),
    "scoring": DatasetProfile(
        name="scoring", factory=make_scoring_dataset,
        num_clients=400, mean_length=50, min_length=30, max_length=70,
        hidden_size=16, slice_min=5, slice_max=70, encoder="gru",
        num_epochs=2,
    ),
}


def scaled_profile(name, **overrides):
    """Fetch a profile with optional field overrides."""
    return replace(PROFILES[name], **overrides)
