"""Runners regenerating each table of the paper's evaluation section.

Every ``run_table*`` returns ``(results, table)`` where results is a nested
dict and table a rendered :class:`~repro.eval.ComparisonTable` showing the
paper's value next to the measured one.
"""

from __future__ import annotations

import numpy as np

from ..baselines import handcrafted_features
from ..data import train_test_split
from ..data.synthetic import (
    holding_pairs,
    make_legal_entities_dataset,
    make_retail_customers_dataset,
    with_label_channel,
)
from ..eval import ComparisonTable, evaluate_features, mean_std, task_metric
from ..gbm import GBMConfig
from . import paper_numbers
from .configs import PROFILES, scaled_profile
from .runners import (
    cv_embedding_metric,
    phase2a_test_metric,
    phase2b_test_metric,
    train_coles,
)

__all__ = [
    "run_design_choice_table",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
    "run_table10",
    "run_table11",
]

DEFAULT_ABLATION_DATASETS = ("age", "churn")


def run_design_choice_table(title, variants, paper, datasets, seed=0,
                            num_seeds=2):
    """Generic Tables 2–5 runner: grid of CoLES variants x datasets.

    ``variants`` maps variant name -> CoLES constructor overrides.
    ``paper`` is the corresponding paper_numbers dict.  Each cell is the
    5-fold CV metric averaged over ``num_seeds`` training seeds (the paper
    uses one CV estimate on far larger data; seed-averaging plays the same
    variance-reduction role at toy scale).
    """
    results = {}
    table = ComparisonTable(
        title, ["variant"] + ["%s paper/measured" % d for d in datasets]
    )
    cached_datasets = {
        name: PROFILES[name].make_dataset(seed=seed, labeled_fraction=1.0)
        if "labeled_fraction" in PROFILES[name].factory.__code__.co_varnames
        else PROFILES[name].make_dataset(seed=seed)
        for name in datasets
    }
    for variant, overrides in variants.items():
        results[variant] = {}
        cells = [variant]
        for name in datasets:
            profile = PROFILES[name]
            dataset = cached_datasets[name]
            runs = []
            for run_seed in range(seed, seed + num_seeds):
                model = train_coles(profile, dataset, seed=run_seed, **overrides)
                runs.append(
                    cv_embedding_metric(profile, dataset, model,
                                        n_folds=5, seed=seed)
                )
            measured = float(np.mean(runs))
            results[variant][name] = measured
            cells.append("%.3f / %.3f" % (paper[variant][name], measured))
        table.add_row(*cells)
    return results, table


def run_table2(datasets=DEFAULT_ABLATION_DATASETS, seed=0, num_seeds=2):
    """Table 2: batch-generation strategies."""
    variants = {
        "random_samples": {"strategy": "random_samples"},
        "random_disjoint": {"strategy": "random_disjoint"},
        "random_slices": {"strategy": "random_slices"},
    }
    return run_design_choice_table(
        "Table 2: sub-sequence sampling strategies", variants,
        paper_numbers.TABLE2_SAMPLING, datasets, seed=seed, num_seeds=num_seeds,
    )


def run_table3(datasets=DEFAULT_ABLATION_DATASETS, seed=0, num_seeds=2):
    """Table 3: encoder architectures."""
    variants = {
        "lstm": {"encoder_type": "lstm"},
        "gru": {"encoder_type": "gru"},
        "transformer": {"encoder_type": "transformer"},
    }
    return run_design_choice_table(
        "Table 3: encoder types", variants,
        paper_numbers.TABLE3_ENCODERS, datasets, seed=seed, num_seeds=num_seeds,
    )


def run_table4(datasets=DEFAULT_ABLATION_DATASETS, seed=0, num_seeds=2):
    """Table 4: contrastive-learning losses."""
    variants = {
        "contrastive": {"loss": "contrastive"},
        "binomial_deviance": {"loss": "binomial_deviance"},
        "histogram": {"loss": "histogram"},
        "margin": {"loss": "margin"},
        "triplet": {"loss": "triplet"},
    }
    return run_design_choice_table(
        "Table 4: contrastive losses", variants,
        paper_numbers.TABLE4_LOSSES, datasets, seed=seed, num_seeds=num_seeds,
    )


def run_table5(datasets=DEFAULT_ABLATION_DATASETS, seed=0, num_seeds=2):
    """Table 5: negative-sampling strategies."""
    variants = {
        "hard": {"sampler": "hard"},
        "random": {"sampler": "random"},
        "distance_weighted": {"sampler": "distance_weighted"},
    }
    return run_design_choice_table(
        "Table 5: negative sampling", variants,
        paper_numbers.TABLE5_NEGATIVE_SAMPLING, datasets, seed=seed, num_seeds=num_seeds,
    )


TABLE6_METHODS = ("designed", "sop", "nsp", "rtd", "cpc", "coles")


def run_table6(datasets=("age", "churn"), methods=TABLE6_METHODS, num_seeds=2,
               num_clients=240):
    """Table 6: unsupervised embeddings as features for the downstream GBM."""
    results = {}
    table = ComparisonTable(
        "Table 6: embeddings as GBM features (test metric, mean±std)",
        ["method"] + ["%s paper/measured" % d for d in datasets],
    )
    splits = {}
    for name in datasets:
        dataset = PROFILES[name].make_dataset(seed=0, num_clients=num_clients)
        splits[name] = train_test_split(dataset, 0.25, seed=0)
    # Larger worlds warrant a longer self-supervised phase (still ~25x
    # fewer epochs than the paper's Table 1).
    profiles = {name: scaled_profile(name, num_epochs=6) for name in datasets}
    for method in methods:
        results[method] = {}
        cells = [method]
        for name in datasets:
            profile = profiles[name]
            train, test = splits[name]
            runs = [
                phase2a_test_metric(profile, method, train, test, seed=seed)
                for seed in range(num_seeds)
            ]
            measured = mean_std(runs)
            results[method][name] = measured
            paper_mean, paper_std = paper_numbers.TABLE6_UNSUPERVISED[method][name]
            cells.append(
                "%.3f±%.3f / %.3f±%.3f"
                % (paper_mean, paper_std, measured[0], measured[1])
            )
        table.add_row(*cells)
    return results, table


TABLE7_METHODS = ("designed", "supervised", "rtd", "cpc", "coles")


def run_table7(datasets=("age", "churn"), methods=TABLE7_METHODS, num_seeds=2,
               num_clients=240):
    """Table 7: pre-trained encoders fine-tuned on the downstream task."""
    results = {}
    table = ComparisonTable(
        "Table 7: fine-tuned models (test metric, mean±std)",
        ["method"] + ["%s paper/measured" % d for d in datasets],
    )
    splits = {}
    for name in datasets:
        dataset = PROFILES[name].make_dataset(seed=0, num_clients=num_clients)
        splits[name] = train_test_split(dataset, 0.25, seed=0)
    profiles = {name: scaled_profile(name, num_epochs=6) for name in datasets}
    for method in methods:
        results[method] = {}
        cells = [method]
        for name in datasets:
            profile = profiles[name]
            train, test = splits[name]
            runs = [
                phase2b_test_metric(profile, method, train, test, seed=seed)
                for seed in range(num_seeds)
            ]
            measured = mean_std(runs)
            results[method][name] = measured
            paper_mean, paper_std = paper_numbers.TABLE7_FINETUNED[method][name]
            cells.append(
                "%.3f±%.3f / %.3f±%.3f"
                % (paper_mean, paper_std, measured[0], measured[1])
            )
        table.add_row(*cells)
    return results, table


# ---------------------------------------------------------------------------
# Commercial tables
# ---------------------------------------------------------------------------

def _pair_features(matrix, pairs):
    """Features for a company pair: |u-v| and u*v (order-invariant)."""
    left = matrix[pairs[:, 0]]
    right = matrix[pairs[:, 1]]
    return np.concatenate([np.abs(left - right), left * right], axis=1)


def _three_scenarios(baseline, embeddings, labels, gbm_config, seed=0):
    """baseline / coles / hybrid metric triple via a fixed split."""
    from ..data.split import stratified_kfold

    baseline = np.asarray(baseline.values if hasattr(baseline, "values")
                          else baseline)
    hybrid = np.concatenate([baseline, embeddings], axis=1)
    metric = task_metric(labels)
    out = {}
    for scenario, features in (("baseline", baseline), ("coles", embeddings),
                               ("hybrid", hybrid)):
        scores = []
        for train_idx, valid_idx in stratified_kfold(labels, 3, seed=seed):
            scores.append(
                evaluate_features(features[train_idx], labels[train_idx],
                                  features[valid_idx], labels[valid_idx],
                                  gbm_config=gbm_config, metric=metric)
            )
        out[scenario] = float(np.mean(scores))
    return out


def run_table10(num_companies=260, seed=0, num_epochs=6):
    """Table 10: legal-entity downstream tasks.

    Hand-crafted features may only group by currency/transfer type (the
    counterparty id is too high-cardinality to aggregate on — the paper's
    Section 4.3 point); CoLES embeds the full event stream.
    """
    dataset = make_legal_entities_dataset(num_companies=num_companies, seed=seed)
    profile = scaled_profile("age", hidden_size=24, slice_min=8, slice_max=50,
                             num_epochs=num_epochs)
    model = train_coles(profile, dataset, seed=seed)
    embeddings = model.embed(dataset)
    baseline = handcrafted_features(
        dataset, group_fields=("currency", "transfer_type")
    )
    gbm_config = GBMConfig(num_rounds=40, max_depth=3, seed=0)

    results = {}
    table = ComparisonTable(
        "Table 10: legal entities (AUROC, paper/measured)",
        ["task", "baseline", "coles", "hybrid"],
    )
    for task in ("insurance_lead", "credit_lead", "credit_scoring", "fraud"):
        labels = with_label_channel(dataset, task).label_array()
        scenario = _three_scenarios(baseline, embeddings, labels, gbm_config,
                                    seed=seed)
        results[task] = scenario
        paper = paper_numbers.TABLE10_LEGAL_ENTITIES[task]
        table.add_row(
            task,
            "%.2f / %.3f" % (paper["baseline"], scenario["baseline"]),
            "%.2f / %.3f" % (paper["coles"], scenario["coles"]),
            "%.2f / %.3f" % (paper["hybrid"], scenario["hybrid"]),
        )

    # Holding-structure restoration is a pair task.
    pairs, pair_labels = holding_pairs(dataset, num_pairs=240, seed=seed)
    scenario = _three_scenarios(
        _pair_features(baseline.values, pairs),
        _pair_features(embeddings, pairs),
        pair_labels, gbm_config, seed=seed,
    )
    results["holding_structure"] = scenario
    paper = paper_numbers.TABLE10_LEGAL_ENTITIES["holding_structure"]
    table.add_row(
        "holding_structure",
        "%.2f / %.3f" % (paper["baseline"], scenario["baseline"]),
        "%.2f / %.3f" % (paper["coles"], scenario["coles"]),
        "%.2f / %.3f" % (paper["hybrid"], scenario["hybrid"]),
    )
    return results, table


def run_table11(num_clients=260, seed=0, num_epochs=6):
    """Table 11: retail-customer downstream tasks.

    Here merchant type is an effective grouping key, so the hand-crafted
    baseline is strong and CoLES mostly helps through the hybrid.
    """
    dataset = make_retail_customers_dataset(num_clients=num_clients, seed=seed)
    profile = scaled_profile("age", hidden_size=24, slice_min=10, slice_max=60,
                             num_epochs=num_epochs)
    model = train_coles(profile, dataset, seed=seed)
    embeddings = model.embed(dataset)
    baseline = handcrafted_features(dataset)  # full grouping incl. merchant
    gbm_config = GBMConfig(num_rounds=40, max_depth=3, seed=0)

    results = {}
    table = ComparisonTable(
        "Table 11: retail customers (AUROC, paper/measured)",
        ["task", "baseline", "coles", "hybrid"],
    )
    for task in ("credit_scoring", "churn", "insurance_lead"):
        labels = with_label_channel(dataset, task).label_array()
        scenario = _three_scenarios(baseline, embeddings, labels, gbm_config,
                                    seed=seed)
        results[task] = scenario
        paper = paper_numbers.TABLE11_RETAIL_CUSTOMERS[task]
        table.add_row(
            task,
            "%.2f / %.3f" % (paper["baseline"], scenario["baseline"]),
            "%.2f / %.3f" % (paper["coles"], scenario["coles"]),
            "%.2f / %.3f" % (paper["hybrid"], scenario["hybrid"]),
        )
    return results, table
