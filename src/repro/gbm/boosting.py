"""Gradient boosting on binned features — the LightGBM substitute.

Implements the downstream model of the paper's Phase 2a (Figure 1): a GBM
trained on either hand-crafted aggregates or sequence embeddings.  The
algorithm is standard second-order boosting: per round, fit one regression
tree (per class for multiclass) to the objective's gradients/hessians on
quantile-binned features, with shrinkage, optional row subsampling and
early stopping on a validation set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .binning import BinMapper
from .objectives import resolve_objective
from .tree import RegressionTree, TreeParams

__all__ = ["GBMConfig", "GradientBoostingClassifier"]


@dataclass(frozen=True)
class GBMConfig:
    """Boosting hyper-parameters (LightGBM-style defaults, scaled down)."""

    num_rounds: int = 60
    learning_rate: float = 0.1
    max_depth: int = 3
    min_samples_leaf: int = 5
    reg_lambda: float = 1.0
    max_bins: int = 64
    subsample: float = 1.0
    early_stopping_rounds: int = 0  # 0 disables
    seed: int = 0

    def __post_init__(self):
        if self.num_rounds < 1:
            raise ValueError("num_rounds must be >= 1")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")


class GradientBoostingClassifier:
    """Binary or multiclass GBM; the objective is inferred from the labels."""

    def __init__(self, config=None):
        self.config = config or GBMConfig()
        self.mapper_ = None
        self.objective_ = None
        self.trees_ = []          # list of per-round lists (one tree per column)
        self.train_losses_ = []
        self.valid_losses_ = []
        self.best_round_ = None

    # ------------------------------------------------------------------
    def fit(self, features, targets, eval_set=None):
        """Train; ``eval_set=(X_valid, y_valid)`` enables early stopping."""
        config = self.config
        features = np.asarray(features, dtype=np.float64)
        self.objective_ = resolve_objective(targets)
        targets = self.objective_.validate_targets(targets)
        self.mapper_ = BinMapper(config.max_bins)
        binned = self.mapper_.fit_transform(features)

        valid_binned = valid_targets = None
        if eval_set is not None:
            valid_binned = self.mapper_.transform(np.asarray(eval_set[0]))
            valid_targets = self.objective_.validate_targets(eval_set[1])

        rng = np.random.default_rng(config.seed)
        scores = self.objective_.initial_scores(targets)
        self.init_row_ = scores[0].copy()
        valid_scores = (
            None if valid_binned is None
            else np.tile(scores[0], (len(valid_binned), 1))
        )
        tree_params = TreeParams(
            max_depth=config.max_depth,
            min_samples_leaf=config.min_samples_leaf,
            reg_lambda=config.reg_lambda,
        )
        self.trees_ = []
        self.train_losses_ = []
        self.valid_losses_ = []
        best_valid = np.inf
        rounds_since_best = 0
        for round_index in range(config.num_rounds):
            gradients, hessians = self.objective_.gradients_hessians(
                scores, targets
            )
            if config.subsample < 1.0:
                keep = rng.random(len(binned)) < config.subsample
                if keep.sum() < 2 * config.min_samples_leaf:
                    keep[:] = True
            else:
                keep = slice(None)
            round_trees = []
            for column in range(self.objective_.num_score_columns):
                tree = RegressionTree(tree_params)
                tree.fit(binned[keep], gradients[keep, column],
                         hessians[keep, column])
                update = tree.predict(binned)
                scores[:, column] += config.learning_rate * update
                if valid_scores is not None:
                    valid_scores[:, column] += config.learning_rate * tree.predict(
                        valid_binned
                    )
                round_trees.append(tree)
            self.trees_.append(round_trees)
            self.train_losses_.append(self.objective_.loss(scores, targets))
            if valid_scores is not None:
                valid_loss = self.objective_.loss(valid_scores, valid_targets)
                self.valid_losses_.append(valid_loss)
                if valid_loss < best_valid - 1e-9:
                    best_valid = valid_loss
                    self.best_round_ = round_index
                    rounds_since_best = 0
                else:
                    rounds_since_best += 1
                    if (config.early_stopping_rounds
                            and rounds_since_best >= config.early_stopping_rounds):
                        break
        if self.best_round_ is None:
            self.best_round_ = len(self.trees_) - 1
        return self

    # ------------------------------------------------------------------
    def _raw_scores(self, features, num_rounds=None):
        if self.mapper_ is None:
            raise RuntimeError("model is not fitted")
        binned = self.mapper_.transform(np.asarray(features, dtype=np.float64))
        use_rounds = (
            len(self.trees_) if num_rounds is None
            else min(num_rounds, len(self.trees_))
        )
        scores = np.tile(self.init_row_, (len(binned), 1))
        for round_trees in self.trees_[:use_rounds]:
            for column, tree in enumerate(round_trees):
                scores[:, column] += self.config.learning_rate * tree.predict(binned)
        return scores

    def predict_proba(self, features):
        """Class probabilities ``(n, C)`` using early-stopped round count."""
        if self.objective_ is None:
            raise RuntimeError("model is not fitted")
        rounds = self.best_round_ + 1 if self.valid_losses_ else None
        return self.objective_.predict_proba(
            self._raw_scores(features, num_rounds=rounds)
        )

    def predict(self, features):
        return self.predict_proba(features).argmax(axis=1)

    @property
    def num_trees(self):
        return sum(len(round_trees) for round_trees in self.trees_)
