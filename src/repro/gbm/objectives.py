"""Boosting objectives: binary logistic and multiclass softmax.

Each objective provides per-sample gradients/hessians of the loss w.r.t.
raw scores, plus the link from raw scores to probabilities.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BinaryLogistic", "MulticlassSoftmax", "resolve_objective"]


def _sigmoid(x):
    return 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))


def _softmax(scores):
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class BinaryLogistic:
    """Log-loss on a single raw score column."""

    num_score_columns = 1

    def __init__(self):
        self.init_score_ = None

    def validate_targets(self, targets):
        targets = np.asarray(targets)
        unique = np.unique(targets)
        if not np.isin(unique, [0, 1]).all():
            raise ValueError("binary objective expects labels in {0, 1}")
        return targets.astype(np.float64)

    def initial_scores(self, targets):
        prior = np.clip(targets.mean(), 1e-6, 1 - 1e-6)
        self.init_score_ = float(np.log(prior / (1 - prior)))
        return np.full((len(targets), 1), self.init_score_)

    def gradients_hessians(self, scores, targets):
        probs = _sigmoid(scores[:, 0])
        grad = probs - targets
        hess = np.maximum(probs * (1 - probs), 1e-12)
        return grad[:, None], hess[:, None]

    def predict_proba(self, scores):
        positive = _sigmoid(scores[:, 0])
        return np.column_stack([1 - positive, positive])

    def loss(self, scores, targets):
        probs = np.clip(_sigmoid(scores[:, 0]), 1e-12, 1 - 1e-12)
        return float(-(targets * np.log(probs)
                       + (1 - targets) * np.log(1 - probs)).mean())


class MulticlassSoftmax:
    """Softmax cross-entropy with one score column per class."""

    def __init__(self, num_classes):
        if num_classes < 2:
            raise ValueError("num_classes must be >= 2")
        self.num_classes = num_classes
        self.num_score_columns = num_classes

    def validate_targets(self, targets):
        targets = np.asarray(targets)
        if targets.min() < 0 or targets.max() >= self.num_classes:
            raise ValueError("labels out of range [0, %d)" % self.num_classes)
        return targets.astype(np.int64)

    def initial_scores(self, targets):
        counts = np.bincount(targets, minlength=self.num_classes)
        priors = np.clip(counts / counts.sum(), 1e-6, 1.0)
        return np.tile(np.log(priors), (len(targets), 1))

    def gradients_hessians(self, scores, targets):
        probs = _softmax(scores)
        grad = probs.copy()
        grad[np.arange(len(targets)), targets] -= 1.0
        hess = np.maximum(probs * (1 - probs), 1e-12)
        return grad, hess

    def predict_proba(self, scores):
        return _softmax(scores)

    def loss(self, scores, targets):
        probs = np.clip(_softmax(scores), 1e-12, 1.0)
        return float(-np.log(probs[np.arange(len(targets)), targets]).mean())


def resolve_objective(targets):
    """Pick the objective from the observed label set."""
    unique = np.unique(np.asarray(targets))
    if len(unique) < 2:
        raise ValueError("need at least two classes")
    if set(unique.tolist()) <= {0, 1}:
        return BinaryLogistic()
    return MulticlassSoftmax(int(unique.max()) + 1)
