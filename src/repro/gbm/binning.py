"""Quantile feature binning — the "histogram" in histogram gradient boosting.

LightGBM's core trick (and the reason it is fast) is mapping continuous
features to a small number of integer bins once, then building all split
histograms by bin index.  :class:`BinMapper` reproduces that preprocessing.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BinMapper"]


class BinMapper:
    """Per-feature quantile binning into at most ``max_bins`` codes."""

    def __init__(self, max_bins=64):
        if not 2 <= max_bins <= 256:
            raise ValueError("max_bins must be in [2, 256]")
        self.max_bins = max_bins
        self.edges_ = None

    def fit(self, features):
        """Learn bin edges from the training matrix ``(n, f)``."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("expected a 2-D feature matrix")
        self.edges_ = []
        quantiles = np.linspace(0, 1, self.max_bins + 1)[1:-1]
        for column in features.T:
            finite = column[np.isfinite(column)]
            if len(finite) == 0:
                self.edges_.append(np.array([]))
                continue
            edges = np.unique(np.quantile(finite, quantiles))
            # Drop edges that cannot split (>= column maximum), so constant
            # columns map to the single bin 0.
            edges = edges[edges < finite.max()]
            self.edges_.append(edges)
        return self

    @property
    def num_bins(self):
        """Actual bin count per feature (<= max_bins)."""
        self._check_fitted()
        return np.array([len(edges) + 1 for edges in self.edges_])

    def transform(self, features):
        """Map features to uint8 bin codes."""
        self._check_fitted()
        features = np.asarray(features, dtype=np.float64)
        if features.shape[1] != len(self.edges_):
            raise ValueError(
                "feature count mismatch: %d vs %d"
                % (features.shape[1], len(self.edges_))
            )
        binned = np.zeros(features.shape, dtype=np.uint8)
        for j, edges in enumerate(self.edges_):
            if len(edges) == 0:
                continue
            binned[:, j] = np.searchsorted(edges, features[:, j], side="right")
        return binned

    def fit_transform(self, features):
        return self.fit(features).transform(features)

    def _check_fitted(self):
        if self.edges_ is None:
            raise RuntimeError("BinMapper is not fitted")
