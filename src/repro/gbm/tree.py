"""Regression trees on binned features with second-order (Newton) leaves.

Each tree fits the per-sample gradients/hessians of the boosting objective.
Split gain and leaf values follow the XGBoost/LightGBM formulation:

    leaf value = -G / (H + lambda)
    gain       = G_L²/(H_L+lambda) + G_R²/(H_R+lambda) - G²/(H+lambda)

Histograms over bin codes make each split search O(n + bins) per feature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TreeParams", "RegressionTree"]


@dataclass(frozen=True)
class TreeParams:
    max_depth: int = 3
    min_samples_leaf: int = 5
    reg_lambda: float = 1.0
    min_gain: float = 1e-6

    def __post_init__(self):
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if self.reg_lambda < 0:
            raise ValueError("reg_lambda must be >= 0")


class _Node:
    __slots__ = ("feature", "threshold_bin", "left", "right", "value")

    def __init__(self, value=0.0):
        self.feature = -1
        self.threshold_bin = -1
        self.left = None
        self.right = None
        self.value = value

    @property
    def is_leaf(self):
        return self.left is None


class RegressionTree:
    """One boosting tree; operates on uint8-binned features."""

    def __init__(self, params=None):
        self.params = params or TreeParams()
        self.root_ = None
        self.num_leaves_ = 0

    # ------------------------------------------------------------------
    def fit(self, binned, gradients, hessians):
        binned = np.asarray(binned)
        gradients = np.asarray(gradients, dtype=np.float64)
        hessians = np.asarray(hessians, dtype=np.float64)
        if binned.ndim != 2:
            raise ValueError("binned features must be 2-D")
        if len(binned) != len(gradients) or len(binned) != len(hessians):
            raise ValueError("rows/gradients/hessians length mismatch")
        indices = np.arange(len(binned))
        self.num_leaves_ = 0
        self.root_ = self._grow(binned, gradients, hessians, indices, depth=0)
        return self

    def _leaf_value(self, grad_sum, hess_sum):
        return -grad_sum / (hess_sum + self.params.reg_lambda)

    def _grow(self, binned, gradients, hessians, indices, depth):
        grad_sum = gradients[indices].sum()
        hess_sum = hessians[indices].sum()
        node = _Node(self._leaf_value(grad_sum, hess_sum))
        if depth >= self.params.max_depth or len(indices) < 2 * self.params.min_samples_leaf:
            self.num_leaves_ += 1
            return node

        best = self._best_split(binned, gradients, hessians, indices,
                                grad_sum, hess_sum)
        if best is None:
            self.num_leaves_ += 1
            return node

        feature, threshold_bin, _ = best
        goes_left = binned[indices, feature] <= threshold_bin
        node.feature = feature
        node.threshold_bin = threshold_bin
        node.left = self._grow(binned, gradients, hessians,
                               indices[goes_left], depth + 1)
        node.right = self._grow(binned, gradients, hessians,
                                indices[~goes_left], depth + 1)
        return node

    def _best_split(self, binned, gradients, hessians, indices,
                    grad_sum, hess_sum):
        """Histogram split search; returns (feature, bin, gain) or None."""
        params = self.params
        reg = params.reg_lambda
        parent_score = grad_sum * grad_sum / (hess_sum + reg)
        best = None
        best_gain = params.min_gain
        rows = binned[indices]
        node_grad = gradients[indices]
        node_hess = hessians[indices]
        for feature in range(binned.shape[1]):
            codes = rows[:, feature]
            top = int(codes.max())
            if top == 0:
                continue  # constant feature in this node
            grad_hist = np.bincount(codes, weights=node_grad, minlength=top + 1)
            hess_hist = np.bincount(codes, weights=node_hess, minlength=top + 1)
            count_hist = np.bincount(codes, minlength=top + 1)

            grad_left = np.cumsum(grad_hist)[:-1]
            hess_left = np.cumsum(hess_hist)[:-1]
            count_left = np.cumsum(count_hist)[:-1]
            grad_right = grad_sum - grad_left
            hess_right = hess_sum - hess_left
            count_right = len(indices) - count_left

            valid = (count_left >= params.min_samples_leaf) & (
                count_right >= params.min_samples_leaf
            )
            if not valid.any():
                continue
            gains = (
                grad_left**2 / (hess_left + reg)
                + grad_right**2 / (hess_right + reg)
                - parent_score
            )
            gains[~valid] = -np.inf
            pick = int(np.argmax(gains))
            if gains[pick] > best_gain:
                best_gain = gains[pick]
                best = (feature, pick, float(gains[pick]))
        return best

    # ------------------------------------------------------------------
    def predict(self, binned):
        if self.root_ is None:
            raise RuntimeError("tree is not fitted")
        binned = np.asarray(binned)
        out = np.zeros(len(binned))
        # Iterative routing: stack of (node, row indices).
        stack = [(self.root_, np.arange(len(binned)))]
        while stack:
            node, rows = stack.pop()
            if len(rows) == 0:
                continue
            if node.is_leaf:
                out[rows] = node.value
                continue
            goes_left = binned[rows, node.feature] <= node.threshold_bin
            stack.append((node.left, rows[goes_left]))
            stack.append((node.right, rows[~goes_left]))
        return out

    def depth(self):
        """Actual tree depth (0 for a stump that never split)."""

        def walk(node):
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)
