"""Histogram gradient boosting — the downstream GBM of Phase 2a."""

from .binning import BinMapper
from .boosting import GBMConfig, GradientBoostingClassifier
from .objectives import BinaryLogistic, MulticlassSoftmax, resolve_objective
from .tree import RegressionTree, TreeParams

__all__ = [
    "BinMapper",
    "RegressionTree",
    "TreeParams",
    "BinaryLogistic",
    "MulticlassSoftmax",
    "resolve_objective",
    "GradientBoostingClassifier",
    "GBMConfig",
]
