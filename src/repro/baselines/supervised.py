"""Supervised sequence classification and fine-tuning (Figure 1, Phase 2b).

A :class:`SequenceClassifier` is a sequence encoder with a softmax head
``h`` trained jointly on labeled data.  Two uses map onto the paper:

- *supervised-only baseline* (Table 7): fresh encoder, no pre-training;
- *fine-tuning* (Table 7, Figure 4): the encoder comes pre-trained by
  CoLES/CPC/RTD and continues training with the head.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.batches import iterate_batches
from ..nn import Adam, Linear, clip_grad_norm, no_grad
from ..nn import functional as F

__all__ = ["FineTuneConfig", "SequenceClassifier"]


@dataclass
class FineTuneConfig:
    """Hyper-parameters of the supervised phase."""

    num_epochs: int = 10
    batch_size: int = 32
    learning_rate: float = 0.002
    encoder_learning_rate: float = None  # defaults to learning_rate
    clip_norm: float = 5.0
    seed: int = 0
    verbose: bool = False

    def __post_init__(self):
        if self.encoder_learning_rate is None:
            self.encoder_learning_rate = self.learning_rate


class SequenceClassifier:
    """Encoder + single-layer softmax head (the paper's fine-tuning setup)."""

    def __init__(self, encoder, num_classes, seed=0):
        if num_classes < 2:
            raise ValueError("num_classes must be >= 2")
        self.encoder = encoder
        self.num_classes = num_classes
        rng = np.random.default_rng(seed)
        self.head = Linear(encoder.output_dim, num_classes, rng=rng)
        self.history = []

    def _logits(self, batch):
        return self.head(self.encoder.embed(batch))

    def fit(self, dataset, config=None):
        """Train on the labeled part of ``dataset`` (unlabeled are ignored)."""
        config = config or FineTuneConfig()
        labeled = dataset.labeled()
        if len(labeled) == 0:
            raise ValueError("no labeled sequences to fit on")
        rng = np.random.default_rng(config.seed)
        parameters = list(self.encoder.parameters()) + list(self.head.parameters())
        optimizer = Adam(parameters, lr=config.learning_rate)
        self.encoder.train()
        for epoch in range(config.num_epochs):
            losses = []
            for batch in iterate_batches(labeled.sequences, labeled.schema,
                                         config.batch_size, rng=rng):
                logits = self._logits(batch)
                loss = F.cross_entropy(logits, batch.label_array())
                optimizer.zero_grad()
                loss.backward()
                if config.clip_norm:
                    clip_grad_norm(parameters, config.clip_norm)
                optimizer.step()
                losses.append(loss.item())
            mean_loss = float(np.mean(losses))
            self.history.append(mean_loss)
            if config.verbose:
                print("epoch %3d  loss %.4f" % (epoch, mean_loss))
        self.encoder.eval()
        return self

    def predict_proba(self, dataset, batch_size=64):
        """Class probabilities ``(N, C)`` for every sequence."""
        self.encoder.eval()
        probs = np.zeros((len(dataset), self.num_classes))
        with no_grad():
            for start in range(0, len(dataset), batch_size):
                chunk = dataset.sequences[start:start + batch_size]
                from ..data.batches import collate

                batch = collate(chunk, dataset.schema)
                logits = self._logits(batch)
                probs[start:start + len(chunk)] = F.softmax(logits, axis=-1).data
        return probs

    def predict(self, dataset, batch_size=64):
        return self.predict_proba(dataset, batch_size).argmax(axis=1)
