"""Supervised sequence classification and fine-tuning (Figure 1, Phase 2b).

A :class:`SequenceClassifier` is a sequence encoder with a softmax head
``h`` trained jointly on labeled data.  Two uses map onto the paper:

- *supervised-only baseline* (Table 7): fresh encoder, no pre-training;
- *fine-tuning* (Table 7, Figure 4): the encoder comes pre-trained by
  CoLES/CPC/RTD and continues training with the head.

Like every other training loop, fine-tuning runs on the fused graph-free
engine by default (``FineTuneConfig(engine="auto")`` resolves via
:func:`repro.runtime.resolve_engine` for recurrent *and* transformer
encoders): the encoder forward+backward is hand-derived (BPTT for
GRU/LSTM, the attention reverse pass for transformers) and the
cross-entropy + linear-head backward is closed-form
(:func:`repro.runtime.softmax_head_gradient`), so no autograd graph is
built at all.  Both engines produce the same gradients to < 1e-8,
including distinct per-group learning rates for the encoder and the head.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.batches import collate, iterate_batches
from ..encoders.seq_encoder import RnnSeqEncoder, TransformerSeqEncoder
from ..nn import Adam, Linear, clip_grad_norm, no_grad
from ..nn import functional as F
from ..runtime.training import (FusedTrainStep, resolve_engine,
                                softmax_head_probabilities)

__all__ = ["FineTuneConfig", "SequenceClassifier"]


@dataclass
class FineTuneConfig:
    """Hyper-parameters of the supervised phase."""

    num_epochs: int = 10
    batch_size: int = 32
    learning_rate: float = 0.002
    # Separate (usually gentler) rate for the pre-trained encoder's
    # parameters; the head always trains at learning_rate.
    encoder_learning_rate: float | None = None  # defaults to learning_rate
    clip_norm: float = 5.0
    seed: int = 0
    verbose: bool = False
    # Length-bucketing shuffle window (in batches) for the batch planner;
    # None keeps the fully random order.
    bucket_window: int | None = None
    # Encoder execution engine: "auto" resolves to the fused graph-free
    # runtime (repro.runtime.training) for every repro encoder family;
    # "tensor" and "fused" pin one explicitly.
    engine: str = "auto"
    # Fused-engine compute dtype: "float64" (default, the parity
    # reference) or "float32" (mixed precision).  Tensor engine: ignored.
    precision: str = "float64"

    def __post_init__(self):
        if self.num_epochs < 1:
            raise ValueError("num_epochs must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.encoder_learning_rate is None:
            self.encoder_learning_rate = self.learning_rate
        elif self.encoder_learning_rate <= 0:
            raise ValueError("encoder_learning_rate must be positive")
        if self.engine not in ("auto", "tensor", "fused"):
            raise ValueError(
                "unknown engine %r (use 'auto', 'tensor' or 'fused')"
                % self.engine
            )
        if self.precision not in ("float32", "float64"):
            raise ValueError(
                "unknown precision %r (use 'float32' or 'float64')"
                % self.precision
            )


class SequenceClassifier:
    """Encoder + single-layer softmax head (the paper's fine-tuning setup)."""

    def __init__(self, encoder, num_classes, seed=0):
        if num_classes < 2:
            raise ValueError("num_classes must be >= 2")
        self.encoder = encoder
        self.num_classes = num_classes
        rng = np.random.default_rng(seed)
        self.head = Linear(encoder.output_dim, num_classes, rng=rng)
        self.history = []
        self.engine = None  # resolved engine of the last fit()

    def _logits(self, batch):
        return self.head(self.encoder.embed(batch))

    def fit(self, dataset, config=None):
        """Train on the labeled part of ``dataset`` (unlabeled are ignored).

        Under the resolved ``engine="fused"`` (the default for recurrent
        encoders) each step is fully hand-derived: fused encoder forward,
        closed-form cross-entropy + linear-head backward, fused BPTT.
        The encoder's parameter group trains at
        ``config.encoder_learning_rate`` and the head at
        ``config.learning_rate`` on either engine.
        """
        config = config or FineTuneConfig()
        labeled = dataset.labeled()
        if len(labeled) == 0:
            raise ValueError("no labeled sequences to fit on")
        rng = np.random.default_rng(config.seed)
        self.engine = resolve_engine(config.engine, self.encoder)
        fused_step = (FusedTrainStep(self.encoder,
                                     precision=config.precision)
                      if self.engine == "fused" else None)
        encoder_params = list(self.encoder.parameters())
        head_params = list(self.head.parameters())
        parameters = encoder_params + head_params
        optimizer = Adam(
            [{"params": encoder_params, "lr": config.encoder_learning_rate},
             {"params": head_params, "lr": config.learning_rate}],
            lr=config.learning_rate,
        )
        self.encoder.train()
        for epoch in range(config.num_epochs):
            losses = []
            for batch in iterate_batches(labeled.sequences, labeled.schema,
                                         config.batch_size, rng=rng,
                                         bucket_window=config.bucket_window):
                targets = batch.label_array()
                optimizer.zero_grad()
                if fused_step is not None:
                    cache = fused_step.forward(batch)
                    value = fused_step.backward_classification(
                        cache, self.head, targets)
                else:
                    loss = F.cross_entropy(self._logits(batch), targets)
                    loss.backward()
                    value = loss.item()
                if config.clip_norm:
                    clip_grad_norm(parameters, config.clip_norm)
                optimizer.step()
                losses.append(value)
            mean_loss = float(np.mean(losses))
            self.history.append(mean_loss)
            if config.verbose:
                print("epoch %3d  loss %.4f" % (epoch, mean_loss))
        self.encoder.eval()
        return self

    def predict_proba(self, dataset, batch_size=64, precision="float64"):
        """Class probabilities ``(N, C)`` for every sequence.

        Every repro encoder (recurrent and transformer) runs through the
        fused inference runtime
        (:class:`~repro.runtime.FusedEncoderRuntime`, length-sorted batch
        plan); custom encoders fall back to the Tensor path under
        ``no_grad``.  Under the default ``precision="float64"`` the two
        paths agree to < 1e-10; ``"float32"`` serves faster at a
        property-bounded drift.
        """
        self.encoder.eval()
        if isinstance(self.encoder, (RnnSeqEncoder, TransformerSeqEncoder)):
            embeddings = self.encoder.fused_runtime(
                precision=precision).embed_dataset(dataset,
                                                   batch_size=batch_size)
            return softmax_head_probabilities(self.head, embeddings)
        probs = np.zeros((len(dataset), self.num_classes))
        with no_grad():
            for start in range(0, len(dataset), batch_size):
                chunk = dataset.sequences[start:start + batch_size]
                batch = collate(chunk, dataset.schema)
                logits = self._logits(batch)
                probs[start:start + len(chunk)] = F.softmax(logits, axis=-1).data
        return probs

    def predict(self, dataset, batch_size=64, precision="float64"):
        return self.predict_proba(dataset, batch_size,
                                  precision=precision).argmax(axis=1)
