"""Shared configuration and helpers for the self-supervised baselines."""

from __future__ import annotations

from dataclasses import dataclass

from ..data.batches import iterate_batches

__all__ = ["PretrainConfig", "pretrain_batches", "require_tensor_engine",
           "truncate_tail", "random_slice_pair"]


@dataclass
class PretrainConfig:
    """Hyper-parameters shared by CPC/NSP/SOP/RTD pre-training."""

    num_epochs: int = 10
    batch_size: int = 16
    learning_rate: float = 0.002
    clip_norm: float = 5.0
    max_seq_length: int = 150  # truncate long sequences for speed
    seed: int = 0
    verbose: bool = False
    # Shuffle window (in batches) for the length-bucketed batch planner;
    # None disables bucketing.
    bucket_window: int = None
    # Encoder execution engine: "tensor" (autograd, works everywhere) or
    # "fused" (graph-free BPTT via repro.runtime.training).  The fused
    # engine covers objectives expressed on the final embeddings (NSP and
    # SOP); CPC and RTD consume per-step states and reject
    # engine="fused" via require_tensor_engine.
    engine: str = "tensor"

    def __post_init__(self):
        if self.engine not in ("tensor", "fused"):
            raise ValueError(
                "unknown engine %r (use 'tensor' or 'fused')" % self.engine
            )


def require_tensor_engine(config, method):
    """Fail loudly when a method cannot honour ``engine="fused"``.

    The fused engine covers objectives expressed on the *final*
    embeddings; methods whose loss consumes per-step states and event
    representations (CPC, RTD) must reject the request instead of
    silently training on the tensor engine.
    """
    if config.engine == "fused":
        raise ValueError(
            "%s consumes per-step states, which the fused engine does not "
            "cover — use PretrainConfig(engine=\"tensor\")" % method
        )


def pretrain_batches(dataset, config, rng, drop_last=False):
    """One epoch of padded batches under the config's batch plan.

    All baselines draw their epochs through this helper so the bucketed
    planner (``config.bucket_window``) applies uniformly.
    """
    return iterate_batches(dataset.sequences, dataset.schema,
                           config.batch_size, rng=rng, drop_last=drop_last,
                           bucket_window=config.bucket_window)


def truncate_tail(sequence, max_length):
    """Keep the most recent ``max_length`` events (the informative tail)."""
    if len(sequence) <= max_length:
        return sequence
    return sequence.slice(len(sequence) - max_length, len(sequence))


def random_slice_pair(sequence, rng, min_length=5):
    """Two consecutive slices (A, B) from one sequence, or None if too short.

    Used by NSP (B follows A 50% of the time) and SOP (order prediction).
    """
    total = len(sequence)
    if total < 2 * min_length + 1:
        return None
    split = int(rng.integers(min_length, total - min_length))
    a_start = int(rng.integers(0, max(split - 3 * min_length, 0) + 1))
    b_stop = int(rng.integers(min(split + 3 * min_length, total), total + 1))
    first = sequence.slice(a_start, split)
    second = sequence.slice(split, b_stop)
    if len(first) < 1 or len(second) < 1:
        return None
    return first, second
