"""Shared configuration and helpers for the self-supervised baselines."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.batches import iterate_batches

__all__ = ["PretrainConfig", "pretrain_batches", "leaf_grad",
           "truncate_tail", "random_slice_pair"]


@dataclass
class PretrainConfig:
    """Hyper-parameters shared by CPC/NSP/SOP/RTD pre-training."""

    num_epochs: int = 10
    batch_size: int = 16
    learning_rate: float = 0.002
    clip_norm: float = 5.0
    max_seq_length: int = 150  # truncate long sequences for speed
    seed: int = 0
    verbose: bool = False
    # Shuffle window (in batches) for the length-bucketed batch planner;
    # None disables bucketing.
    bucket_window: int | None = None
    # Encoder execution engine: "auto" picks the fused graph-free BPTT
    # runtime (repro.runtime.training) for recurrent encoders and falls
    # back to the autograd tensor engine for transformers; "tensor" and
    # "fused" pin an engine explicitly.  All four baselines (CPC, NSP,
    # SOP, RTD) run on either engine with gradients equivalent to
    # < 1e-8.
    engine: str = "auto"
    # Fused-engine compute dtype: "float64" (default, the parity
    # reference) or "float32" (mixed precision).  Tensor engine: ignored.
    precision: str = "float64"

    def __post_init__(self):
        if self.num_epochs < 1:
            raise ValueError("num_epochs must be >= 1")
        if self.batch_size < 2:
            raise ValueError("batch_size must be >= 2 (negatives needed)")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.engine not in ("auto", "tensor", "fused"):
            raise ValueError(
                "unknown engine %r (use 'auto', 'tensor' or 'fused')"
                % self.engine
            )
        if self.precision not in ("float32", "float64"):
            raise ValueError(
                "unknown precision %r (use 'float32' or 'float64')"
                % self.precision
            )


def leaf_grad(leaf):
    """A leaf tensor's accumulated gradient (zeros if it never got one).

    The fused-engine loops wrap fused-forward outputs (embeddings,
    per-step states, event representations) in leaf tensors, run the
    objective through autograd, and feed the leaf gradients back into
    :meth:`~repro.runtime.FusedTrainStep.backward`.  An objective may
    legitimately never touch a leaf (e.g. a batch too short for any CPC
    horizon to read a given input) — that is a zero gradient, not an
    error.
    """
    return leaf.grad if leaf.grad is not None else np.zeros_like(leaf.data)


def pretrain_batches(dataset, config, rng, drop_last=False):
    """One epoch of padded batches under the config's batch plan.

    All baselines draw their epochs through this helper so the bucketed
    planner (``config.bucket_window``) applies uniformly.
    """
    return iterate_batches(dataset.sequences, dataset.schema,
                           config.batch_size, rng=rng, drop_last=drop_last,
                           bucket_window=config.bucket_window)


def truncate_tail(sequence, max_length):
    """Keep the most recent ``max_length`` events (the informative tail)."""
    if len(sequence) <= max_length:
        return sequence
    return sequence.slice(len(sequence) - max_length, len(sequence))


def random_slice_pair(sequence, rng, min_length=5):
    """Two consecutive slices (A, B) from one sequence, or None if too short.

    Used by NSP (B follows A 50% of the time) and SOP (order prediction).
    """
    total = len(sequence)
    if total < 2 * min_length + 1:
        return None
    split = int(rng.integers(min_length, total - min_length))
    a_start = int(rng.integers(0, max(split - 3 * min_length, 0) + 1))
    b_stop = int(rng.integers(min(split + 3 * min_length, total), total + 1))
    first = sequence.slice(a_start, split)
    second = sequence.slice(split, b_stop)
    if len(first) < 1 or len(second) < 1:
        return None
    return first, second
