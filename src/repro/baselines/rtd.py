"""Replaced token detection (ELECTRA-style) — Section 4.1.3.

15% of the events in each sequence are replaced by events taken from
other sequences in the batch, and a per-event binary head on the RNN
states learns to detect the replacements.  The encoder must model what is
"normal" for the entity — an anomaly-detection flavour the paper notes
works well for credit scoring.

The detection head reads *per-step* states, so under the fused engine
the head + BCE run through autograd on a leaf tensor over the fused
forward's cached states and the leaf gradient feeds back through
``FusedTrainStep.backward(d_states=...)``.
"""

from __future__ import annotations

import numpy as np

from ..data.sequences import SequenceDataset
from ..encoders import RnnSeqEncoder, TrxEncoder
from ..nn import Adam, Linear, Tensor, clip_grad_norm
from ..nn import functional as F
from ..runtime.training import FusedTrainStep, resolve_engine
from .pretrain_common import (PretrainConfig, leaf_grad, pretrain_batches,
                              truncate_tail)

__all__ = ["RTD", "corrupt_batch"]


def corrupt_batch(batch, schema, replace_prob, rng):
    """Replace a fraction of events with events from other rows.

    Event times are kept (replacement would break monotonicity); all other
    fields of the chosen positions are overwritten by a random *valid*
    donor position from a different row.  Returns the corrupted fields and
    the boolean replacement-target matrix.

    Donors are drawn vectorised: one uniform draw over all valid
    positions per target, with same-row picks redrawn (rejection
    sampling) — the donor distribution is exactly uniform over the other
    rows' valid events, as the old per-position loop produced, without
    the O(replacements x valid_events) Python work.
    """
    if not 0.0 < replace_prob < 1.0:
        raise ValueError("replace_prob must be in (0, 1)")
    mask = batch.mask
    valid_b, valid_t = np.nonzero(mask)
    replaced = np.zeros_like(mask)
    fields = {name: values.copy() for name, values in batch.fields.items()}
    if batch.batch_size < 2:
        return fields, replaced

    chosen = rng.random(len(valid_b)) < replace_prob
    target_rows = valid_b[chosen]
    target_cols = valid_t[chosen]
    # A target is only corruptible when some OTHER row has a valid
    # event to donate (collated batches always do; hand-built ones may
    # concentrate every valid event in one row) — without this filter
    # the redraw loop below could never terminate.
    row_valid = mask.sum(axis=1)
    has_donor = row_valid[target_rows] < len(valid_b)
    target_rows = target_rows[has_donor]
    target_cols = target_cols[has_donor]
    if len(target_rows) == 0:
        return fields, replaced
    picks = rng.integers(0, len(valid_b), size=len(target_rows))
    same_row = np.flatnonzero(valid_b[picks] == target_rows)
    while len(same_row):
        picks[same_row] = rng.integers(0, len(valid_b), size=len(same_row))
        same_row = same_row[valid_b[picks[same_row]] == target_rows[same_row]]
    donor_rows, donor_cols = valid_b[picks], valid_t[picks]
    for name in fields:
        if name == schema.time_field:
            continue
        fields[name][target_rows, target_cols] = \
            batch.fields[name][donor_rows, donor_cols]
    replaced[target_rows, target_cols] = True
    return fields, replaced


class RTD:
    """RTD pre-training for event sequences.

    ``cell`` selects the recurrent encoder (``"gru"``, the paper
    default, or ``"lstm"``).
    """

    def __init__(self, schema, hidden_size=64, replace_prob=0.15, cell="gru",
                 seed=0):
        rng = np.random.default_rng(seed)
        trx = TrxEncoder(schema, rng=rng)
        self.encoder = RnnSeqEncoder(trx, hidden_size, cell=cell,
                                     normalize=False, rng=rng)
        self.schema = schema
        self.replace_prob = replace_prob
        self.head = Linear(hidden_size, 1, rng=rng)
        self.history = []
        self.engine = None  # resolved engine of the last fit()

    def _parameters(self):
        return list(self.encoder.parameters()) + list(self.head.parameters())

    def _detection_loss(self, states, replaced, mask):
        """Per-event BCE of the detection head over valid positions.

        ``states`` is the ``(B, T, H)`` state tensor — a live autograd
        output (tensor engine) or a leaf over the fused cache.
        """
        logits = self.head(states).reshape(states.shape[0], states.shape[1])
        rows, cols = np.nonzero(mask)
        picked_logits = logits[rows, cols]
        targets = replaced[rows, cols].astype(np.float64)
        return F.binary_cross_entropy_with_logits(picked_logits, targets)

    def _corrupted(self, batch, rng):
        """The corrupted twin of ``batch`` plus its replacement targets."""
        corrupted_fields, replaced = corrupt_batch(
            batch, self.schema, self.replace_prob, rng
        )
        corrupted = type(batch)(
            fields=corrupted_fields,
            lengths=batch.lengths,
            seq_ids=batch.seq_ids,
            labels=batch.labels,
            schema=batch.schema,
        )
        return corrupted, replaced

    def fit(self, dataset, config=None):
        """Pre-train on all sequences (labels unused)."""
        config = config or PretrainConfig()
        engine = resolve_engine(config.engine, self.encoder)
        self.engine = engine
        fused_step = (FusedTrainStep(self.encoder,
                                     precision=config.precision)
                      if engine == "fused" else None)
        rng = np.random.default_rng(config.seed)
        truncated = SequenceDataset(
            [truncate_tail(seq, config.max_seq_length) for seq in dataset],
            dataset.schema,
        )
        optimizer = Adam(self._parameters(), lr=config.learning_rate)
        self.encoder.train()
        for epoch in range(config.num_epochs):
            losses = []
            for batch in pretrain_batches(truncated, config, rng):
                if batch.batch_size < 2:
                    continue
                corrupted, replaced = self._corrupted(batch, rng)
                if fused_step is not None:
                    cache = fused_step.forward(corrupted)
                    states = Tensor(cache.states, requires_grad=True)
                else:
                    cache = None
                    states, _ = self.encoder(corrupted)
                loss = self._detection_loss(states, replaced, batch.mask)
                optimizer.zero_grad()
                # On the fused engine this graph stops at the states
                # leaf: the head gets its gradients here and the encoder
                # gets them from the fused BPTT below.
                loss.backward()
                if fused_step is not None:
                    fused_step.backward(cache, d_states=leaf_grad(states))
                if config.clip_norm:
                    clip_grad_norm(self._parameters(), config.clip_norm)
                optimizer.step()
                losses.append(loss.item())
            mean_loss = float(np.mean(losses)) if losses else float("nan")
            self.history.append(mean_loss)
            if config.verbose:
                print("rtd epoch %3d  loss %.4f" % (epoch, mean_loss))
        self.encoder.eval()
        return self

    def embed(self, dataset, batch_size=64):
        from ..core.inference import embed_dataset

        return embed_dataset(self.encoder, dataset, batch_size=batch_size)
