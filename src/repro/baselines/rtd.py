"""Replaced token detection (ELECTRA-style) — Section 4.1.3.

15% of the events in each sequence are replaced by events taken from
other sequences in the batch, and a per-event binary head on the RNN
states learns to detect the replacements.  The encoder must model what is
"normal" for the entity — an anomaly-detection flavour the paper notes
works well for credit scoring.
"""

from __future__ import annotations

import numpy as np

from ..data.sequences import SequenceDataset
from ..encoders import RnnSeqEncoder, TrxEncoder
from ..nn import Adam, Linear, clip_grad_norm
from ..nn import functional as F
from .pretrain_common import (PretrainConfig, pretrain_batches,
                              require_tensor_engine, truncate_tail)

__all__ = ["RTD", "corrupt_batch"]


def corrupt_batch(batch, schema, replace_prob, rng):
    """Replace a fraction of events with events from other rows.

    Event times are kept (replacement would break monotonicity); all other
    fields of the chosen positions are overwritten by a random *valid*
    donor position from a different row.  Returns the corrupted fields and
    the boolean replacement-target matrix.
    """
    if not 0.0 < replace_prob < 1.0:
        raise ValueError("replace_prob must be in (0, 1)")
    mask = batch.mask
    valid_b, valid_t = np.nonzero(mask)
    replaced = np.zeros_like(mask)
    fields = {name: values.copy() for name, values in batch.fields.items()}
    if batch.batch_size < 2:
        return fields, replaced

    chosen = rng.random(len(valid_b)) < replace_prob
    target_rows = valid_b[chosen]
    target_cols = valid_t[chosen]
    replaceable = [name for name in fields if name != schema.time_field]
    for row, col in zip(target_rows, target_cols):
        donor_choices = np.flatnonzero(valid_b != row)
        if len(donor_choices) == 0:
            continue
        pick = donor_choices[rng.integers(0, len(donor_choices))]
        donor_row, donor_col = valid_b[pick], valid_t[pick]
        for name in replaceable:
            fields[name][row, col] = batch.fields[name][donor_row, donor_col]
        replaced[row, col] = True
    return fields, replaced


class RTD:
    """RTD pre-training for event sequences."""

    def __init__(self, schema, hidden_size=64, replace_prob=0.15, seed=0):
        rng = np.random.default_rng(seed)
        trx = TrxEncoder(schema, rng=rng)
        self.encoder = RnnSeqEncoder(trx, hidden_size, cell="gru",
                                     normalize=False, rng=rng)
        self.schema = schema
        self.replace_prob = replace_prob
        self.head = Linear(hidden_size, 1, rng=rng)
        self.history = []

    def _parameters(self):
        return list(self.encoder.parameters()) + list(self.head.parameters())

    def _step_loss(self, batch, rng):
        corrupted_fields, replaced = corrupt_batch(
            batch, self.schema, self.replace_prob, rng
        )
        corrupted = type(batch)(
            fields=corrupted_fields,
            lengths=batch.lengths,
            seq_ids=batch.seq_ids,
            labels=batch.labels,
            schema=batch.schema,
        )
        states, _ = self.encoder(corrupted)
        logits = self.head(states).reshape(states.shape[0], states.shape[1])
        mask = batch.mask
        rows, cols = np.nonzero(mask)
        picked_logits = logits[rows, cols]
        targets = replaced[rows, cols].astype(np.float64)
        return F.binary_cross_entropy_with_logits(picked_logits, targets)

    def fit(self, dataset, config=None):
        """Pre-train on all sequences; requires the tensor engine."""
        config = config or PretrainConfig()
        require_tensor_engine(config, "RTD")
        rng = np.random.default_rng(config.seed)
        truncated = SequenceDataset(
            [truncate_tail(seq, config.max_seq_length) for seq in dataset],
            dataset.schema,
        )
        optimizer = Adam(self._parameters(), lr=config.learning_rate)
        self.encoder.train()
        for epoch in range(config.num_epochs):
            losses = []
            for batch in pretrain_batches(truncated, config, rng):
                if batch.batch_size < 2:
                    continue
                loss = self._step_loss(batch, rng)
                optimizer.zero_grad()
                loss.backward()
                if config.clip_norm:
                    clip_grad_norm(self._parameters(), config.clip_norm)
                optimizer.step()
                losses.append(loss.item())
            mean_loss = float(np.mean(losses)) if losses else float("nan")
            self.history.append(mean_loss)
            if config.verbose:
                print("rtd epoch %3d  loss %.4f" % (epoch, mean_loss))
        self.encoder.eval()
        return self

    def embed(self, dataset, batch_size=64):
        from ..core.inference import embed_dataset

        return embed_dataset(self.encoder, dataset, batch_size=batch_size)
