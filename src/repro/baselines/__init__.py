"""Baselines: hand-crafted features and self-supervised alternatives
(Section 4.1), plus the supervised/fine-tuning classifier (Phase 2b)."""

from .cpc import CPC
from .handcrafted import FeatureMatrix, handcrafted_features
from .pair_tasks import NSP, SOP
from .pretrain_common import (PretrainConfig, pretrain_batches,
                              random_slice_pair, truncate_tail)
from .rtd import RTD, corrupt_batch
from .supervised import FineTuneConfig, SequenceClassifier

__all__ = [
    "handcrafted_features",
    "FeatureMatrix",
    "SequenceClassifier",
    "FineTuneConfig",
    "PretrainConfig",
    "pretrain_batches",
    "truncate_tail",
    "random_slice_pair",
    "CPC",
    "NSP",
    "SOP",
    "RTD",
    "corrupt_batch",
]
