"""Hand-crafted aggregate features (Section 4.1.2).

Numerical attributes get global aggregation functions (sum, mean, std,
min, max) over the sequence; categorical attributes get per-value counts
plus per-value aggregates of each numerical attribute (e.g. "mean amount
for the specific MCC code").  Activity statistics (event count, duration,
events/day) are added as the natural "engineered" extras.

``group_fields`` controls which categorical fields are used as grouping
keys.  This is the lever behind the Table 10 vs Table 11 asymmetry: for
card transactions the merchant type is an obvious key, while for legal-
entity transfers the counterparty id is too high-cardinality to aggregate
on (Section 4.3's discussion), so a realistic hand-crafted set omits it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["handcrafted_features", "FeatureMatrix"]

_GLOBAL_AGGREGATES = ("sum", "mean", "std", "min", "max")


class FeatureMatrix:
    """A feature matrix with column names (a tiny dataframe substitute)."""

    def __init__(self, values, names):
        self.values = np.asarray(values, dtype=np.float64)
        self.names = list(names)
        if self.values.shape[1] != len(self.names):
            raise ValueError("values/names width mismatch")

    @property
    def shape(self):
        return self.values.shape

    def concat(self, other):
        """Column-wise concatenation (the paper's hybrid Baseline+CoLES)."""
        return FeatureMatrix(
            np.concatenate([self.values, np.asarray(other.values
                            if isinstance(other, FeatureMatrix) else other)],
                           axis=1),
            self.names + (other.names if isinstance(other, FeatureMatrix)
                          else ["emb_%d" % i for i in range(np.asarray(other).shape[1])]),
        )


def _aggregate(values, how):
    if len(values) == 0:
        return 0.0
    if how == "sum":
        return float(values.sum())
    if how == "mean":
        return float(values.mean())
    if how == "std":
        return float(values.std())
    if how == "min":
        return float(values.min())
    if how == "max":
        return float(values.max())
    raise ValueError("unknown aggregate %r" % how)


def handcrafted_features(dataset, group_fields=None, aggregates=_GLOBAL_AGGREGATES):
    """Build the hand-crafted feature matrix for a dataset.

    Parameters
    ----------
    dataset:
        A :class:`~repro.data.SequenceDataset`.
    group_fields:
        Categorical fields used as grouping keys; defaults to all declared
        categorical fields.

    Returns
    -------
    :class:`FeatureMatrix` of shape ``(len(dataset), F)``.
    """
    schema = dataset.schema
    if group_fields is None:
        group_fields = tuple(schema.categorical)
    unknown = set(group_fields) - set(schema.categorical)
    if unknown:
        raise ValueError("group_fields not in schema: %s" % unknown)

    names = ["length", "duration", "events_per_day"]
    for numeric in schema.numerical:
        names.extend("%s_%s" % (numeric, how) for how in aggregates)
    for cat in group_fields:
        cardinality = schema.categorical[cat]
        for code in range(1, cardinality):
            names.append("%s_%d_count" % (cat, code))
            for numeric in schema.numerical:
                names.append("%s_%d_%s_mean" % (cat, code, numeric))

    rows = np.zeros((len(dataset), len(names)))
    for row, seq in enumerate(dataset):
        cursor = 0
        times = seq.fields[schema.time_field]
        duration = float(times[-1] - times[0]) if len(seq) > 1 else 0.0
        rows[row, 0] = len(seq)
        rows[row, 1] = duration
        rows[row, 2] = len(seq) / max(duration, 1e-9)
        cursor = 3
        for numeric in schema.numerical:
            values = seq.fields[numeric]
            for how in aggregates:
                rows[row, cursor] = _aggregate(values, how)
                cursor += 1
        for cat in group_fields:
            cardinality = schema.categorical[cat]
            codes = seq.fields[cat]
            for code in range(1, cardinality):
                member = codes == code
                rows[row, cursor] = member.sum() / max(len(seq), 1)
                cursor += 1
                for numeric in schema.numerical:
                    values = seq.fields[numeric][member]
                    rows[row, cursor] = _aggregate(values, "mean")
                    cursor += 1
    return FeatureMatrix(rows, names)
