"""NSP and SOP pre-training baselines (Section 4.1.3).

Both train the encoder through a binary classification over a *pair* of
sub-sequence embeddings:

- **NSP** (next sequence prediction, after BERT): B truly follows A in the
  same sequence (positive) or is a random fragment of another sequence
  (negative, 50%).
- **SOP** (sequence order prediction, after ALBERT): the pair is always
  two consecutive slices of one sequence; the label says whether their
  order was swapped.

The pair head consumes ``[u, v, u*v, u-v]``: the elementwise product lets
a linear head express similarity (needed by NSP) and the signed difference
keeps order information (needed by SOP).
"""

from __future__ import annotations

import numpy as np

from ..data.batches import collate
from ..nn import Adam, Linear, Tensor, clip_grad_norm, concat
from ..nn import functional as F
from ..runtime.training import FusedTrainStep, resolve_engine
from .pretrain_common import (PretrainConfig, leaf_grad, random_slice_pair,
                              truncate_tail)

__all__ = ["NSP", "SOP"]


class _PairPretrainer:
    """Shared machinery: build (A, B, label) batches and train the head."""

    def __init__(self, encoder, schema, seed=0):
        self.encoder = encoder
        self.schema = schema
        rng = np.random.default_rng(seed)
        self.head = Linear(4 * encoder.output_dim, 1, rng=rng)
        self.history = []
        self.engine = None  # resolved engine of the last fit()

    def _pair_features(self, emb_a, emb_b):
        return concat([emb_a, emb_b, emb_a * emb_b, emb_a - emb_b], axis=1)

    def _make_pairs(self, sequences, rng):
        """Return (first_views, second_views, labels) for one batch."""
        raise NotImplementedError

    def _parameters(self):
        return list(self.encoder.parameters()) + list(self.head.parameters())

    def fit(self, dataset, config=None):
        """Pre-train the encoder through the pair objective."""
        config = config or PretrainConfig()
        engine = resolve_engine(config.engine, self.encoder)
        self.engine = engine
        fused_step = (FusedTrainStep(self.encoder,
                                     precision=config.precision)
                      if engine == "fused" else None)
        rng = np.random.default_rng(config.seed)
        sequences = [truncate_tail(seq, config.max_seq_length) for seq in dataset]
        optimizer = Adam(self._parameters(), lr=config.learning_rate)
        self.encoder.train()
        for epoch in range(config.num_epochs):
            losses = []
            order = np.arange(len(sequences))
            rng.shuffle(order)
            for start in range(0, len(order), config.batch_size):
                chunk = [sequences[i] for i in order[start:start + config.batch_size]]
                made = self._make_pairs(chunk, rng)
                if made is None:
                    continue
                first, second, labels = made
                batch_a = collate(first, self.schema)
                batch_b = collate(second, self.schema)
                if fused_step is not None:
                    cache_a = fused_step.forward(batch_a)
                    cache_b = fused_step.forward(batch_b)
                    emb_a = Tensor(cache_a.embeddings, requires_grad=True)
                    emb_b = Tensor(cache_b.embeddings, requires_grad=True)
                else:
                    cache_a = cache_b = None
                    emb_a = self.encoder.embed(batch_a)
                    emb_b = self.encoder.embed(batch_b)
                logits = self.head(self._pair_features(emb_a, emb_b)).reshape(-1)
                loss = F.binary_cross_entropy_with_logits(logits, labels)
                optimizer.zero_grad()
                # On the fused engine this graph stops at the two
                # embedding leaves: the head gets its gradients here and
                # the encoder gets them from the fused BPTT below.
                loss.backward()
                if fused_step is not None:
                    fused_step.backward(cache_a, leaf_grad(emb_a))
                    fused_step.backward(cache_b, leaf_grad(emb_b))
                if config.clip_norm:
                    clip_grad_norm(self._parameters(), config.clip_norm)
                optimizer.step()
                losses.append(loss.item())
            mean_loss = float(np.mean(losses)) if losses else float("nan")
            self.history.append(mean_loss)
            if config.verbose:
                print("%s epoch %3d  loss %.4f"
                      % (type(self).__name__.lower(), epoch, mean_loss))
        self.encoder.eval()
        return self

    def embed(self, dataset, batch_size=64):
        from ..core.inference import embed_dataset

        return embed_dataset(self.encoder, dataset, batch_size=batch_size)


class NSP(_PairPretrainer):
    """Next-sequence-prediction pre-training."""

    def _make_pairs(self, sequences, rng):
        first, second, labels = [], [], []
        for index, seq in enumerate(sequences):
            pair = random_slice_pair(seq, rng)
            if pair is None:
                continue
            a, b = pair
            if rng.random() < 0.5 or len(sequences) < 2:
                first.append(a)
                second.append(b)
                labels.append(1.0)
            else:
                # Random fragment of a *different* sequence.
                other_index = index
                while other_index == index:
                    other_index = int(rng.integers(0, len(sequences)))
                other_pair = random_slice_pair(sequences[other_index], rng)
                if other_pair is None:
                    continue
                first.append(a)
                second.append(other_pair[1])
                labels.append(0.0)
        if not first:
            return None
        return first, second, np.array(labels)


class SOP(_PairPretrainer):
    """Sequence-order-prediction pre-training."""

    def _make_pairs(self, sequences, rng):
        first, second, labels = [], [], []
        for seq in sequences:
            pair = random_slice_pair(seq, rng)
            if pair is None:
                continue
            a, b = pair
            if rng.random() < 0.5:
                first.append(a)
                second.append(b)
                labels.append(1.0)  # correct order
            else:
                first.append(b)
                second.append(a)
                labels.append(0.0)  # swapped
        if not first:
            return None
        return first, second, np.array(labels)
