"""Contrastive Predictive Coding (van den Oord et al., 2018) — Section 4.1.3.

The autoregressive context ``c_t = GRU(z_{1..t})`` predicts future event
representations ``z_{t+k}`` through per-horizon linear maps ``W_k``; the
InfoNCE objective scores the true future against the other sequences'
events at the same offset (the in-batch negatives).

After pre-training, the GRU's final context state is the sequence
embedding used for downstream tasks.
"""

from __future__ import annotations

import numpy as np

from ..data.sequences import SequenceDataset
from ..encoders import RnnSeqEncoder, TrxEncoder
from ..nn import Adam, Linear, clip_grad_norm
from ..nn import functional as F
from .pretrain_common import (PretrainConfig, pretrain_batches,
                              require_tensor_engine, truncate_tail)

__all__ = ["CPC"]


class CPC:
    """CPC pre-training for event sequences.

    Parameters
    ----------
    schema:
        Dataset schema.
    hidden_size:
        Context (and embedding) dimensionality.
    num_horizons:
        How many future steps K are predicted (W_1 ... W_K).
    """

    def __init__(self, schema, hidden_size=64, num_horizons=3, seed=0):
        if num_horizons < 1:
            raise ValueError("num_horizons must be >= 1")
        rng = np.random.default_rng(seed)
        trx = TrxEncoder(schema, rng=rng)
        # The context network; embeddings are raw final states (no
        # unit-norm head — CPC's scores are unnormalised dot products).
        self.encoder = RnnSeqEncoder(trx, hidden_size, cell="gru",
                                     normalize=False, rng=rng)
        self.schema = schema
        self.num_horizons = num_horizons
        self.predictors = [
            Linear(hidden_size, trx.output_dim, rng=rng)
            for _ in range(num_horizons)
        ]
        self.history = []

    def _parameters(self):
        params = list(self.encoder.parameters())
        for predictor in self.predictors:
            params.extend(predictor.parameters())
        return params

    def _info_nce(self, batch):
        """InfoNCE loss over one padded batch; returns (loss, num_terms)."""
        z = self.encoder.trx_encoder(batch)          # (B, T, D)
        states, _ = self.encoder.rnn(z, mask=batch.mask)  # (B, T, H)
        mask = batch.mask
        batch_size, steps = mask.shape
        total, terms = None, 0
        for k, predictor in enumerate(self.predictors, start=1):
            if steps <= k:
                continue
            pred = predictor(states[:, :steps - k, :])   # (B, T-k, D)
            target = z[:, k:, :]                          # (B, T-k, D)
            # (T-k, B, D) x (T-k, D, B) -> per-offset score matrices.
            scores = pred.transpose(0, 1) @ target.transpose(0, 1).transpose(-1, -2)
            target_valid = mask[:, k:]                    # (B, T-k)
            anchor_valid = mask[:, k:]                    # anchor t valid iff t+k real
            # Mask out columns whose target is padding.
            col_mask = ~target_valid.T[:, None, :]        # (T-k, 1, B)
            scores = scores.masked_fill(
                np.broadcast_to(col_mask, scores.shape), -1e9
            )
            logp = F.log_softmax(scores, axis=-1)
            t_idx, b_idx = np.nonzero(anchor_valid.T)     # valid (t, b) anchors
            if len(t_idx) == 0:
                continue
            picked = logp[t_idx, b_idx, b_idx]
            term = -picked.sum()
            total = term if total is None else total + term
            terms += len(t_idx)
        if total is None:
            raise ValueError("batch too short for any prediction horizon")
        return total * (1.0 / terms), terms

    def fit(self, dataset, config=None):
        """Pre-train on all sequences (labels unused)."""
        config = config or PretrainConfig()
        require_tensor_engine(config, "CPC")
        rng = np.random.default_rng(config.seed)
        truncated = SequenceDataset(
            [truncate_tail(seq, config.max_seq_length) for seq in dataset],
            dataset.schema,
        )
        optimizer = Adam(self._parameters(), lr=config.learning_rate)
        self.encoder.train()
        for epoch in range(config.num_epochs):
            losses = []
            for batch in pretrain_batches(truncated, config, rng):
                if batch.batch_size < 2:
                    continue
                loss, _ = self._info_nce(batch)
                optimizer.zero_grad()
                loss.backward()
                if config.clip_norm:
                    clip_grad_norm(self._parameters(), config.clip_norm)
                optimizer.step()
                losses.append(loss.item())
            mean_loss = float(np.mean(losses)) if losses else float("nan")
            self.history.append(mean_loss)
            if config.verbose:
                print("cpc epoch %3d  loss %.4f" % (epoch, mean_loss))
        self.encoder.eval()
        return self

    def embed(self, dataset, batch_size=64):
        from ..core.inference import embed_dataset

        return embed_dataset(self.encoder, dataset, batch_size=batch_size)
