"""Contrastive Predictive Coding (van den Oord et al., 2018) — Section 4.1.3.

The autoregressive context ``c_t = GRU(z_{1..t})`` predicts future event
representations ``z_{t+k}`` through per-horizon linear maps ``W_k``; the
InfoNCE objective scores the true future against the other sequences'
events at the same offset (the in-batch negatives).

After pre-training, the RNN's final context state is the sequence
embedding used for downstream tasks.

The objective consumes *per-step* context states and event
representations, so under the fused engine the loss runs through
autograd on two leaf tensors over the fused forward's cached arrays
(``FusedForwardCache.states`` / ``.events``) and the leaf gradients feed
back through ``FusedTrainStep.backward(d_states=..., d_events=...)`` —
the per-step counterpart of the loss-gradient interface.
"""

from __future__ import annotations

import numpy as np

from ..data.sequences import SequenceDataset
from ..encoders import RnnSeqEncoder, TrxEncoder
from ..nn import Adam, Linear, Tensor, clip_grad_norm
from ..nn import functional as F
from ..runtime.training import FusedTrainStep, resolve_engine
from .pretrain_common import (PretrainConfig, leaf_grad, pretrain_batches,
                              truncate_tail)

__all__ = ["CPC"]


class CPC:
    """CPC pre-training for event sequences.

    Parameters
    ----------
    schema:
        Dataset schema.
    hidden_size:
        Context (and embedding) dimensionality.
    num_horizons:
        How many future steps K are predicted (W_1 ... W_K).
    cell:
        Recurrent context network: ``"gru"`` (paper default) or
        ``"lstm"``.
    """

    def __init__(self, schema, hidden_size=64, num_horizons=3, cell="gru",
                 seed=0):
        if num_horizons < 1:
            raise ValueError("num_horizons must be >= 1")
        rng = np.random.default_rng(seed)
        trx = TrxEncoder(schema, rng=rng)
        # The context network; embeddings are raw final states (no
        # unit-norm head — CPC's scores are unnormalised dot products).
        self.encoder = RnnSeqEncoder(trx, hidden_size, cell=cell,
                                     normalize=False, rng=rng)
        self.schema = schema
        self.num_horizons = num_horizons
        self.predictors = [
            Linear(hidden_size, trx.output_dim, rng=rng)
            for _ in range(num_horizons)
        ]
        self.history = []
        self.engine = None  # resolved engine of the last fit()

    def _parameters(self):
        params = list(self.encoder.parameters())
        for predictor in self.predictors:
            params.extend(predictor.parameters())
        return params

    def _info_nce(self, states, events, mask):
        """InfoNCE loss from per-step context states and event targets.

        ``states`` is the ``(B, T, H)`` context tensor, ``events`` the
        ``(B, T, D)`` event representations ``z`` — either live autograd
        outputs (tensor engine) or leaf tensors over the fused forward's
        cached arrays.  Returns ``(loss, num_terms)``.

        An anchor ``(b, t)`` for horizon ``k`` counts only when *both*
        position ``t`` (the context read) and position ``t+k`` (the
        target) are real events — the two conditions are checked
        explicitly, so the loss stays correct for any mask shape, not
        just right-padded prefix masks where ``mask[t+k]`` implies
        ``mask[t]``.
        """
        batch_size, steps = mask.shape
        total, terms = None, 0
        for k, predictor in enumerate(self.predictors, start=1):
            if steps <= k:
                continue
            pred = predictor(states[:, :steps - k, :])   # (B, T-k, D)
            target = events[:, k:, :]                     # (B, T-k, D)
            # (T-k, B, D) x (T-k, D, B) -> per-offset score matrices.
            scores = pred.transpose(0, 1) @ target.transpose(0, 1).transpose(-1, -2)
            target_valid = mask[:, k:]                    # (B, T-k)
            # Anchor t contributes iff its context t AND target t+k are
            # real events.
            anchor_valid = mask[:, :steps - k] & mask[:, k:]
            # Mask out columns whose target is padding.
            col_mask = ~target_valid.T[:, None, :]        # (T-k, 1, B)
            scores = scores.masked_fill(
                np.broadcast_to(col_mask, scores.shape), -1e9
            )
            logp = F.log_softmax(scores, axis=-1)
            t_idx, b_idx = np.nonzero(anchor_valid.T)     # valid (t, b) anchors
            if len(t_idx) == 0:
                continue
            picked = logp[t_idx, b_idx, b_idx]
            term = -picked.sum()
            total = term if total is None else total + term
            terms += len(t_idx)
        if total is None:
            raise ValueError("batch too short for any prediction horizon")
        return total * (1.0 / terms), terms

    def fit(self, dataset, config=None):
        """Pre-train on all sequences (labels unused)."""
        config = config or PretrainConfig()
        engine = resolve_engine(config.engine, self.encoder)
        self.engine = engine
        fused_step = (FusedTrainStep(self.encoder,
                                     precision=config.precision)
                      if engine == "fused" else None)
        rng = np.random.default_rng(config.seed)
        truncated = SequenceDataset(
            [truncate_tail(seq, config.max_seq_length) for seq in dataset],
            dataset.schema,
        )
        optimizer = Adam(self._parameters(), lr=config.learning_rate)
        self.encoder.train()
        for epoch in range(config.num_epochs):
            losses = []
            for batch in pretrain_batches(truncated, config, rng):
                if batch.batch_size < 2:
                    continue
                if fused_step is not None:
                    cache = fused_step.forward(batch)
                    states = Tensor(cache.states, requires_grad=True)
                    events = Tensor(cache.events, requires_grad=True)
                else:
                    cache = None
                    events = self.encoder.trx_encoder(batch)      # (B, T, D)
                    states, _ = self.encoder.rnn(events, mask=batch.mask)
                loss, _ = self._info_nce(states, events, batch.mask)
                optimizer.zero_grad()
                # On the fused engine this graph stops at the two
                # leaves: the predictors get their gradients here and
                # the encoder gets them from the fused BPTT below.
                loss.backward()
                if fused_step is not None:
                    fused_step.backward(cache, d_states=leaf_grad(states),
                                        d_events=leaf_grad(events))
                if config.clip_norm:
                    clip_grad_norm(self._parameters(), config.clip_norm)
                optimizer.step()
                losses.append(loss.item())
            mean_loss = float(np.mean(losses)) if losses else float("nan")
            self.history.append(mean_loss)
            if config.verbose:
                print("cpc epoch %3d  loss %.4f" % (epoch, mean_loss))
        self.encoder.eval()
        return self

    def embed(self, dataset, batch_size=64):
        from ..core.inference import embed_dataset

        return embed_dataset(self.encoder, dataset, batch_size=batch_size)
