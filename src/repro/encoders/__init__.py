"""Encoders: event-level phi_evt and sequence-level phi_seq (Section 3.4)."""

from .seq_encoder import (
    RnnSeqEncoder,
    SeqEncoder,
    TransformerSeqEncoder,
    build_encoder,
)
from .trx_encoder import TrxEncoder, default_embedding_dim

__all__ = [
    "TrxEncoder",
    "default_embedding_dim",
    "SeqEncoder",
    "RnnSeqEncoder",
    "TransformerSeqEncoder",
    "build_encoder",
]
