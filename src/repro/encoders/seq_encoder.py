"""Sequence-level encoders phi_seq (Section 3.4).

The composite encoder is ``M({x_t}) = phi_seq({phi_evt(x_t)})``.  Three
phi_seq variants reproduce Table 3: GRU (the paper default), LSTM and a
Transformer.  All expose the same interface:

- ``forward(batch)`` -> ``(states, embedding)`` where states is the
  per-step representation ``(B, T, H)`` (needed by CPC/RTD) and embedding
  is the whole-sequence vector ``(B, H)``;
- ``embed(batch)`` -> embedding only, unit-normalised when the encoder was
  built with ``normalize=True`` (the paper restricts M to unit vectors,
  Section 3.3).
"""

from __future__ import annotations

import numpy as np

from ..nn import GRU, LSTM, Linear, Module, TransformerEncoder
from ..nn import functional as F
from .trx_encoder import TrxEncoder

__all__ = ["SeqEncoder", "RnnSeqEncoder", "TransformerSeqEncoder", "build_encoder"]


class SeqEncoder(Module):
    """Base class fixing the encoder interface."""

    def __init__(self, trx_encoder, hidden_size, normalize):
        super().__init__()
        self.trx_encoder = trx_encoder
        self.hidden_size = hidden_size
        self.normalize = normalize

    @property
    def output_dim(self):
        return self.hidden_size

    def forward(self, batch):
        raise NotImplementedError

    def embed(self, batch):
        """Whole-sequence embedding ``c_e = M({x_e})``."""
        _, embedding = self.forward(batch)
        return embedding

    def _head(self, embedding):
        return F.l2_normalize(embedding) if self.normalize else embedding

    def fused_runtime(self, precision=None, workers=None):
        """Graph-free serving runtime sharing this encoder's weights.

        The returned :class:`~repro.runtime.FusedEncoderRuntime` reads the
        parameters live, so it keeps serving the current weights after
        further training.  Works for every repro encoder family (the
        runtime picks the RNN or attention kernels); ``precision``/
        ``workers`` configure the runtime's dtype policy and
        bucket-parallel worker count (None: the runtime defaults).
        """
        from ..runtime import FusedEncoderRuntime

        kwargs = {}
        if precision is not None:
            kwargs["precision"] = precision
        if workers is not None:
            kwargs["workers"] = workers
        return FusedEncoderRuntime(self, **kwargs)


class RnnSeqEncoder(SeqEncoder):
    """GRU/LSTM sequence encoder with a learnt initial state (paper default)."""

    def __init__(self, trx_encoder, hidden_size, cell="gru", normalize=True,
                 rng=None):
        super().__init__(trx_encoder, hidden_size, normalize)
        rng = rng or np.random.default_rng()
        if cell == "gru":
            self.rnn = GRU(trx_encoder.output_dim, hidden_size, rng=rng)
        elif cell == "lstm":
            self.rnn = LSTM(trx_encoder.output_dim, hidden_size, rng=rng)
        else:
            raise ValueError("unknown cell %r (use 'gru' or 'lstm')" % cell)
        self.cell = cell

    def forward(self, batch):
        events = self.trx_encoder(batch)
        states, last = self.rnn(events, mask=batch.mask)
        return states, self._head(last)


class TransformerSeqEncoder(SeqEncoder):
    """Transformer sequence encoder (Table 3's third option)."""

    def __init__(self, trx_encoder, hidden_size, num_heads=4, num_layers=2,
                 normalize=True, dropout=0.0, rng=None):
        super().__init__(trx_encoder, hidden_size, normalize)
        rng = rng or np.random.default_rng()
        self.input_proj = Linear(trx_encoder.output_dim, hidden_size, rng=rng)
        self.transformer = TransformerEncoder(
            hidden_size, num_heads=num_heads, num_layers=num_layers,
            dropout=dropout, rng=rng,
        )

    def forward(self, batch):
        events = self.input_proj(self.trx_encoder(batch))
        states, pooled = self.transformer(events, mask=batch.mask)
        return states, self._head(pooled)


def build_encoder(schema, hidden_size, encoder_type="gru", normalize=True,
                  embedding_dims=None, rng=None, **kwargs):
    """Factory covering the Table-3 encoder grid.

    ``encoder_type`` is one of ``gru``, ``lstm`` or ``transformer``.
    """
    rng = rng or np.random.default_rng()
    trx = TrxEncoder(schema, embedding_dims=embedding_dims, rng=rng)
    if encoder_type in ("gru", "lstm"):
        return RnnSeqEncoder(trx, hidden_size, cell=encoder_type,
                             normalize=normalize, rng=rng, **kwargs)
    if encoder_type == "transformer":
        return TransformerSeqEncoder(trx, hidden_size, normalize=normalize,
                                     rng=rng, **kwargs)
    raise ValueError("unknown encoder_type %r" % encoder_type)
