"""Event-level encoder phi_evt (Section 3.4).

Each event's categorical attributes pass through embedding tables (the
linear-layer-on-one-hot of the paper) and its numerical attributes through
batch normalisation; the results are concatenated into the event
representation ``z_t``.  A derived time-delta feature (days since the
previous event) is added by default — activity tempo is the one signal the
raw attributes do not carry.
"""

from __future__ import annotations

import numpy as np

from ..data.schema import EventSchema
from ..nn import BatchNorm1d, Embedding, Module, ModuleDict, Tensor, concat

__all__ = ["TrxEncoder", "default_embedding_dim"]


def default_embedding_dim(cardinality):
    """Heuristic embedding width: grows slowly with cardinality, capped."""
    return int(min(16, max(2, round(cardinality**0.5) + 1)))


class TrxEncoder(Module):
    """Encode a :class:`PaddedBatch` into per-event vectors ``(B, T, D)``."""

    def __init__(self, schema, embedding_dims=None, use_time_delta=True,
                 numeric_transform="log1p", rng=None):
        super().__init__()
        if not isinstance(schema, EventSchema):
            raise TypeError("schema must be an EventSchema")
        if numeric_transform not in ("log1p", "identity"):
            raise ValueError("unknown numeric_transform %r" % numeric_transform)
        rng = rng or np.random.default_rng()
        self.schema = schema
        self.use_time_delta = use_time_delta
        self.numeric_transform = numeric_transform

        embedding_dims = dict(embedding_dims or {})
        self.embeddings = ModuleDict()
        self._embedding_dims = {}
        for name, cardinality in schema.categorical.items():
            dim = embedding_dims.get(name, default_embedding_dim(cardinality))
            self.embeddings[name] = Embedding(cardinality, dim, padding_idx=0, rng=rng)
            self._embedding_dims[name] = dim

        self._numeric_fields = list(schema.numerical)
        num_numeric = len(self._numeric_fields) + int(use_time_delta)
        self.numeric_norm = BatchNorm1d(num_numeric) if num_numeric else None

    @property
    def output_dim(self):
        numeric = len(self._numeric_fields) + int(self.use_time_delta)
        return sum(self._embedding_dims.values()) + numeric

    def _numeric_array(self, batch, prev_times=None):
        """Stack numeric features into ``(B, T, F)`` with the transform applied.

        ``prev_times`` optionally supplies the timestamp preceding each
        sequence's first event (used by incremental inference so the
        boundary time-delta matches a full recompute).
        """
        columns = []
        for name in self._numeric_fields:
            values = batch.fields[name]
            if self.numeric_transform == "log1p":
                values = np.sign(values) * np.log1p(np.abs(values))
            columns.append(values)
        if self.use_time_delta:
            times = batch.fields[self.schema.time_field]
            if prev_times is None:
                prepend = times[:, :1]
            else:
                prepend = np.asarray(prev_times, dtype=np.float64).reshape(-1, 1)
            deltas = np.diff(times, axis=1, prepend=prepend)
            deltas = deltas * batch.mask  # zero deltas at padding
            columns.append(np.log1p(np.maximum(deltas, 0.0)))
        return np.stack(columns, axis=-1)

    def check_batch_schema(self, batch):
        """Reject batches collated under a different schema.

        Shared by the autograd forward and the fused serving kernels so
        the validation cannot drift between the two paths.
        """
        if batch.schema is not None and batch.schema != self.schema:
            raise ValueError(
                "batch was collated under a different schema than this "
                "encoder was built for (fields %s vs %s)"
                % (sorted(batch.fields), list(self.schema.field_names))
            )

    def forward(self, batch, prev_times=None):
        self.check_batch_schema(batch)
        parts = []
        for name, _ in self.schema.categorical.items():
            parts.append(self.embeddings[name](batch.fields[name]))
        if self.numeric_norm is not None:
            numeric = Tensor(self._numeric_array(batch, prev_times=prev_times))
            parts.append(self.numeric_norm(numeric, mask=batch.mask))
        if not parts:
            raise ValueError("schema has no event fields to encode")
        return concat(parts, axis=-1) if len(parts) > 1 else parts[0]
