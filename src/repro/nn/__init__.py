"""Pure-numpy neural-network substrate for the CoLES reproduction.

Replaces PyTorch: reverse-mode autograd (:mod:`repro.nn.tensor`), a module
system, the layers used by the paper's encoders (linear, embedding, batch
norm, layer norm, dropout), GRU/LSTM/Transformer sequence encoders,
SGD/Adam optimizers and state-dict serialization.
"""

from . import functional
from .layers import (
    BatchNorm1d,
    Dropout,
    Embedding,
    GELU,
    L2Normalize,
    LayerNorm,
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
)
from .module import Module, ModuleDict, ModuleList, Parameter, Sequential
from .optim import SGD, Adam, StepLR, clip_grad_norm
from .rnn import GRU, LSTM, CellWeights
from .serialization import load_arrays, load_state, save_arrays, save_state
from .tensor import Tensor, concat, is_grad_enabled, no_grad, stack, where
from .transformer import (
    MultiHeadAttention,
    TransformerEncoder,
    TransformerEncoderLayer,
    sinusoidal_positions,
)

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "concat",
    "stack",
    "where",
    "functional",
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "ModuleDict",
    "Linear",
    "Embedding",
    "BatchNorm1d",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "GELU",
    "L2Normalize",
    "GRU",
    "LSTM",
    "CellWeights",
    "MultiHeadAttention",
    "TransformerEncoder",
    "TransformerEncoderLayer",
    "sinusoidal_positions",
    "SGD",
    "Adam",
    "StepLR",
    "clip_grad_norm",
    "save_state",
    "load_state",
    "save_arrays",
    "load_arrays",
]
