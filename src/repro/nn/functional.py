"""Functional neural-network operations built on :mod:`repro.nn.tensor`.

These mirror the small subset of ``torch.nn.functional`` used by the CoLES
encoders, losses and baselines.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, concat, stack, where

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "dropout",
    "gelu",
    "l2_normalize",
    "pairwise_squared_distances",
    "concat",
    "stack",
    "where",
]


def softmax(x, axis=-1):
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x, axis=-1):
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits, targets, reduction="mean"):
    """Softmax cross-entropy for integer class ``targets``.

    Parameters
    ----------
    logits:
        Tensor of shape ``(N, C)``.
    targets:
        Integer array of shape ``(N,)``.
    """
    # reprolint: disable=RP001 -- int class labels, never a float buffer.
    targets = np.asarray(targets)
    logp = log_softmax(logits, axis=-1)
    picked = logp[np.arange(len(targets), dtype=np.intp), targets]
    loss = -picked
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    return loss


def binary_cross_entropy_with_logits(logits, targets, reduction="mean"):
    """Stable BCE: ``max(x,0) - x*y + log(1+exp(-|x|))``."""
    targets = Tensor.ensure(targets)
    relu_term = logits.clip_min(0.0)
    abs_term = logits.abs()
    loss = relu_term - logits * targets + ((-abs_term).exp() + 1.0).log()
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    return loss


def mse_loss(pred, target, reduction="mean"):
    """Mean squared error."""
    target = Tensor.ensure(target)
    diff = pred - target
    loss = diff * diff
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    return loss


def dropout(x, p, training, rng=None):
    """Inverted dropout: at train time zero entries with prob ``p``."""
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    keep = (rng.random(x.data.shape) >= p) / (1.0 - p)
    return x * Tensor(keep)


def gelu(x):
    """Gaussian error linear unit (tanh approximation)."""
    inner = (x + x * x * x * 0.044715) * np.sqrt(2.0 / np.pi)
    return x * 0.5 * (inner.tanh() + 1.0)


def l2_normalize(x, axis=-1, eps=1e-12):
    """Project rows of ``x`` onto the unit sphere (Section 3.3 of the paper)."""
    norm = (x * x).sum(axis=axis, keepdims=True).clip_min(eps).sqrt()
    return x / norm


def pairwise_squared_distances(embeddings):
    """All-pairs squared Euclidean distances of row vectors.

    Returns a Tensor of shape ``(N, N)``; used by the metric-learning
    losses.  For unit-norm embeddings this equals ``2 - 2 * cos`` as noted
    in Section 3.3 of the paper.
    """
    sq_norms = (embeddings * embeddings).sum(axis=1, keepdims=True)
    dots = embeddings @ embeddings.T
    dist = sq_norms + sq_norms.T - dots * 2.0
    return dist.clip_min(0.0)
