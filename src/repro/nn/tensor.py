"""Reverse-mode automatic differentiation on numpy arrays.

This module is the substrate replacing PyTorch's autograd in the CoLES
reproduction.  A :class:`Tensor` wraps a ``numpy.ndarray`` together with an
optional gradient buffer and a closure that propagates gradients to its
parents.  Calling :meth:`Tensor.backward` performs a topological sort of the
recorded computation graph and accumulates gradients in reverse order.

Broadcasting follows numpy semantics; gradients flowing into a broadcast
operand are summed back to the operand's original shape by
:func:`_unbroadcast`.

Only the operations needed by the CoLES encoders, losses and baselines are
implemented, but each follows the exact mathematical definition, and the
test-suite checks every op against central finite differences.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self):
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev
        return False


def is_grad_enabled():
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad, shape):
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value):
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got Tensor")
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A numpy array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to a float64 numpy array.
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` on backward.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad=False):
        self.data = _as_array(data)
        self.grad = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward = None
        self._parents = ()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data, parents, backward):
        """Create a graph node whose gradient flows to ``parents``."""
        parents = tuple(p for p in parents if isinstance(p, Tensor))
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=False)
        if requires:
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    @staticmethod
    def ensure(value):
        """Coerce ``value`` to a Tensor (constants get no gradient)."""
        return value if isinstance(value, Tensor) else Tensor(value)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    @property
    def size(self):
        return self.data.size

    def numpy(self):
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self):
        return float(self.data)

    def detach(self):
        """Return a new Tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self):
        self.grad = None

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        return "Tensor(%r, requires_grad=%r)" % (self.data, self.requires_grad)

    # ------------------------------------------------------------------
    # backward pass
    # ------------------------------------------------------------------
    def backward(self, grad=None):
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (so ``loss.backward()`` works on scalars).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)

        order = []
        seen = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        grads = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf: accumulate into .grad
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
                continue
            for parent, parent_grad in node._backward(node_grad):
                if not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + parent_grad
                else:
                    grads[key] = parent_grad

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other):
        other = Tensor.ensure(other)
        out_data = self.data + other.data

        def backward(grad):
            return (
                (self, _unbroadcast(grad, self.data.shape)),
                (other, _unbroadcast(grad, other.data.shape)),
            )

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __mul__(self, other):
        other = Tensor.ensure(other)
        out_data = self.data * other.data

        def backward(grad):
            return (
                (self, _unbroadcast(grad * other.data, self.data.shape)),
                (other, _unbroadcast(grad * self.data, other.data.shape)),
            )

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __neg__(self):
        def backward(grad):
            return ((self, -grad),)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other):
        other = Tensor.ensure(other)
        out_data = self.data - other.data

        def backward(grad):
            return (
                (self, _unbroadcast(grad, self.data.shape)),
                (other, _unbroadcast(-grad, other.data.shape)),
            )

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other):
        return Tensor.ensure(other) - self

    def __truediv__(self, other):
        other = Tensor.ensure(other)
        out_data = self.data / other.data

        def backward(grad):
            return (
                (self, _unbroadcast(grad / other.data, self.data.shape)),
                (
                    other,
                    _unbroadcast(
                        -grad * self.data / (other.data**2), other.data.shape
                    ),
                ),
            )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other):
        return Tensor.ensure(other) / self

    def __pow__(self, exponent):
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad):
            return ((self, grad * exponent * self.data ** (exponent - 1)),)

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other):
        other = Tensor.ensure(other)
        out_data = self.data @ other.data

        def backward(grad):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                ga = grad * b
                gb = grad * a
            elif a.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                ga = _unbroadcast(
                    (grad[..., None, :] * b).sum(axis=-1), a.shape
                )
                gb = _unbroadcast(a[:, None] * grad[..., None, :], b.shape)
            elif b.ndim == 1:
                # (..., m, k) @ (k,) -> (..., m)
                ga = _unbroadcast(grad[..., :, None] * b, a.shape)
                gb = _unbroadcast((grad[..., :, None] * a).sum(axis=-2), b.shape)
            else:
                ga = _unbroadcast(grad @ np.swapaxes(b, -1, -2), a.shape)
                gb = _unbroadcast(np.swapaxes(a, -1, -2) @ grad, b.shape)
            return ((self, ga), (other, gb))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # elementwise functions
    # ------------------------------------------------------------------
    def exp(self):
        out_data = np.exp(self.data)

        def backward(grad):
            return ((self, grad * out_data),)

        return Tensor._make(out_data, (self,), backward)

    def log(self):
        def backward(grad):
            return ((self, grad / self.data),)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self):
        out_data = np.sqrt(self.data)

        def backward(grad):
            return ((self, grad * 0.5 / out_data),)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(grad):
            return ((self, grad * (1.0 - out_data**2)),)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self):
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            return ((self, grad * out_data * (1.0 - out_data)),)

        return Tensor._make(out_data, (self,), backward)

    def relu(self):
        mask = self.data > 0

        def backward(grad):
            return ((self, grad * mask),)

        return Tensor._make(self.data * mask, (self,), backward)

    def abs(self):
        sign = np.sign(self.data)

        def backward(grad):
            return ((self, grad * sign),)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def clip_min(self, low):
        """Elementwise max(self, low); gradient is zero where clipped."""
        mask = self.data > low

        def backward(grad):
            return ((self, grad * mask),)

        return Tensor._make(np.maximum(self.data, low), (self,), backward)

    def clip_max(self, high):
        """Elementwise min(self, high); gradient is zero where clipped."""
        mask = self.data < high

        def backward(grad):
            return ((self, grad * mask),)

        return Tensor._make(np.minimum(self.data, high), (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims=False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return ((self, np.broadcast_to(g, self.data.shape).copy()),)

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims=False):
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims=False):
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                out = np.expand_dims(out, axis)
            mask = self.data == out
            # Split gradient equally between ties for determinism.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            return ((self, g * mask / counts),)

        return Tensor._make(out_data, (self,), backward)

    def min(self, axis=None, keepdims=False):
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        old_shape = self.data.shape

        def backward(grad):
            return ((self, grad.reshape(old_shape)),)

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, axis1=-1, axis2=-2):
        def backward(grad):
            return ((self, np.swapaxes(grad, axis1, axis2)),)

        return Tensor._make(np.swapaxes(self.data, axis1, axis2), (self,), backward)

    @property
    def T(self):
        return self.transpose(0, 1) if self.ndim == 2 else self.transpose()

    def __getitem__(self, index):
        out_data = self.data[index]

        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            return ((self, full),)

        return Tensor._make(out_data, (self,), backward)

    def take_rows(self, indices):
        """Gather rows along axis 0 (embedding-style lookup)."""
        # reprolint: disable=RP001 -- gather indices keep their
        # integer dtype.
        indices = np.asarray(indices)
        out_data = self.data[indices]

        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, indices, grad)
            return ((self, full),)

        return Tensor._make(out_data, (self,), backward)

    def masked_fill(self, mask, value):
        """Replace entries where ``mask`` is True with ``value`` (no grad there)."""
        mask = np.asarray(mask, dtype=bool)
        out_data = np.where(mask, value, self.data)

        def backward(grad):
            return ((self, grad * ~mask),)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # comparisons (no gradient; returned as plain arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other


def concat(tensors, axis=0):
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [Tensor.ensure(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        pairs = []
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            sl = [slice(None)] * grad.ndim
            sl[axis] = slice(start, stop)
            pairs.append((tensor, grad[tuple(sl)]))
        return tuple(pairs)

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors, axis=0):
    """Stack tensors along a new ``axis`` with gradient routing."""
    tensors = [Tensor.ensure(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        parts = np.split(grad, len(tensors), axis=axis)
        return tuple(
            (tensor, np.squeeze(part, axis=axis))
            for tensor, part in zip(tensors, parts)
        )

    return Tensor._make(out_data, tuple(tensors), backward)


def where(condition, a, b):
    """Elementwise select: ``a`` where condition else ``b``."""
    condition = np.asarray(condition, dtype=bool)
    a = Tensor.ensure(a)
    b = Tensor.ensure(b)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad):
        return (
            (a, _unbroadcast(grad * condition, a.data.shape)),
            (b, _unbroadcast(grad * ~condition, b.data.shape)),
        )

    return Tensor._make(out_data, (a, b), backward)
