"""Core layers: Linear, Embedding, normalisation, dropout, activations."""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = [
    "Linear",
    "Embedding",
    "BatchNorm1d",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "GELU",
    "L2Normalize",
]


class Linear(Module):
    """Affine map ``y = x W^T + b``; weights are Glorot-uniform."""

    def __init__(self, in_features, out_features, bias=True, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.bias = (Parameter(np.zeros(out_features, dtype=np.float64))
                     if bias else None)

    def forward(self, x):
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    ``padding_idx`` rows are initialised to zero; their gradient updates are
    masked by the caller passing masked batches (padding positions do not
    contribute to the loss in our pipelines).
    """

    def __init__(self, num_embeddings, embedding_dim, padding_idx=None, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        weight = init.normal((num_embeddings, embedding_dim), rng, std=0.05)
        if padding_idx is not None:
            weight[padding_idx] = 0.0
        self.weight = Parameter(weight)

    def forward(self, ids):
        # reprolint: disable=RP001 -- ids keep their integer dtype.
        ids = np.asarray(ids)
        if ids.min() < 0 or ids.max() >= self.num_embeddings:
            raise IndexError(
                "embedding ids out of range [0, %d): min=%d max=%d"
                % (self.num_embeddings, ids.min(), ids.max())
            )
        return self.weight.take_rows(ids)


class BatchNorm1d(Module):
    """Batch normalisation over the last axis for 2-D or masked 3-D input.

    The CoLES event encoder applies batch norm to numerical transaction
    attributes (Section 3.4).  For 3-D ``(B, T, C)`` input a boolean mask of
    shape ``(B, T)`` restricts statistics to real (non-padded) events.
    """

    def __init__(self, num_features, momentum=0.1, eps=1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.weight = Parameter(np.ones(num_features, dtype=np.float64))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float64))
        self.register_buffer("running_mean",
                             np.zeros(num_features, dtype=np.float64))
        self.register_buffer("running_var",
                             np.ones(num_features, dtype=np.float64))

    def forward(self, x, mask=None):
        if self.training:
            if mask is not None:
                mask_arr = np.asarray(mask, dtype=bool)
                flat = x.data[mask_arr]
            else:
                flat = x.data.reshape(-1, self.num_features)
            if len(flat) == 0:
                raise ValueError("batch norm received an empty batch")
            mean = flat.mean(axis=0)
            var = flat.var(axis=0)
            self._set_buffer(
                "running_mean",
                (1 - self.momentum) * self.running_mean + self.momentum * mean,
            )
            self._set_buffer(
                "running_var",
                (1 - self.momentum) * self.running_var + self.momentum * var,
            )
        else:
            mean = self.running_mean
            var = self.running_var
        centered = x - Tensor(mean)
        scaled = centered / Tensor(np.sqrt(var + self.eps))
        return scaled * self.weight + self.bias


class LayerNorm(Module):
    """Layer normalisation over the last axis (used by the Transformer)."""

    def __init__(self, num_features, eps=1e-5):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.weight = Parameter(np.ones(num_features, dtype=np.float64))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float64))

    def forward(self, x):
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.weight + self.bias


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p=0.1, rng=None):
        super().__init__()
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x):
        return F.dropout(x, self.p, self.training, rng=self.rng)


class ReLU(Module):
    def forward(self, x):
        return x.relu()


class Tanh(Module):
    def forward(self, x):
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x):
        return x.sigmoid()


class GELU(Module):
    def forward(self, x):
        return F.gelu(x)


class L2Normalize(Module):
    """Unit-norm projection head (Section 3.3: encoder outputs unit vectors)."""

    def forward(self, x):
        return F.l2_normalize(x, axis=-1)
