"""Weight initialisation helpers (Glorot/He/orthogonal)."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "kaiming_uniform", "orthogonal", "normal", "zeros"]


def xavier_uniform(shape, rng, gain=1.0):
    """Glorot uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape, rng):
    """He uniform: U(-a, a) with a = sqrt(6 / fan_in), for ReLU nets."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def orthogonal(shape, rng, gain=1.0):
    """Orthogonal init (used for recurrent weight matrices)."""
    rows, cols = shape
    flat = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]


def normal(shape, rng, std=0.02):
    return rng.standard_normal(shape) * std


def zeros(shape):
    return np.zeros(shape, dtype=np.float64)


def _fans(shape):
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out
