"""Recurrent sequence encoders: GRU and LSTM with padding masks.

The paper's sequence encoder phi_seq is a GRU computed by the recurrence
``c_{t+1} = GRU(z_{t+1}, c_t)`` starting from a *learnt* c_0 (Section 3.4).
Both cells follow the standard (PyTorch) gate conventions so that results
are directly comparable with the reference implementation.

Sequences arrive padded to a common length with a boolean mask; the hidden
state is frozen on padded steps, which makes the final state equal to the
state at each sequence's true last event.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor, where

__all__ = ["GRU", "LSTM", "CellWeights"]


@dataclass
class CellWeights:
    """Plain-numpy view of a recurrent cell's parameters.

    This is the single definition of the gate weight layout, shared by the
    differentiable :class:`GRU`/:class:`LSTM` modules (training) and the
    fused graph-free kernels in :mod:`repro.runtime.kernels` (serving).
    Gates are stacked along axis 0 of ``weight_ih``/``weight_hh`` in the
    PyTorch order: ``r, z, n`` for GRU and ``i, f, g, o`` for LSTM.

    The arrays are *references* to the live parameter buffers, not copies;
    export cheaply and re-export after optimiser steps (optimisers rebind
    ``param.data``).
    """

    kind: str                  # "gru" | "lstm"
    weight_ih: np.ndarray      # (num_gates * H, D)
    weight_hh: np.ndarray      # (num_gates * H, H)
    bias_ih: np.ndarray        # (num_gates * H,)
    bias_hh: np.ndarray        # (num_gates * H,)
    init_state: np.ndarray     # (H,) — the learnt c_0 (zeros if not learnt)
    init_cell: np.ndarray = None  # (H,), LSTM only

    @property
    def hidden_size(self):
        return self.weight_hh.shape[1]

    @property
    def input_size(self):
        return self.weight_ih.shape[1]

    @property
    def num_gates(self):
        return self.weight_ih.shape[0] // self.hidden_size


class _RecurrentBase(Module):
    """Shared weight layout for gated RNNs: stacked input/hidden projections."""

    num_gates = None

    def __init__(self, input_size, hidden_size, learn_init_state=True, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        gates = self.num_gates
        self.weight_ih = Parameter(
            init.xavier_uniform((gates * hidden_size, input_size), rng)
        )
        self.weight_hh = Parameter(
            np.concatenate(
                [
                    init.orthogonal((hidden_size, hidden_size), rng)
                    for _ in range(gates)
                ],
                axis=0,
            )
        )
        self.bias_ih = Parameter(np.zeros(gates * hidden_size,
                                          dtype=np.float64))
        self.bias_hh = Parameter(np.zeros(gates * hidden_size,
                                          dtype=np.float64))
        if learn_init_state:
            self.init_state = Parameter(np.zeros(hidden_size,
                                                 dtype=np.float64))
        else:
            self.init_state = None

    def initial_state(self, batch_size):
        """Initial hidden state ``c_0`` broadcast over the batch."""
        if self.init_state is not None:
            ones = Tensor(np.ones((batch_size, 1), dtype=np.float64))
            return ones @ self.init_state.reshape(1, self.hidden_size)
        return Tensor(np.zeros((batch_size, self.hidden_size),
                               dtype=np.float64))

    def _gate_chunks(self, x_t, hidden):
        """Input and hidden projections split per gate."""
        xi = x_t @ self.weight_ih.T + self.bias_ih
        hi = hidden @ self.weight_hh.T + self.bias_hh
        size = self.hidden_size
        x_parts = [xi[:, i * size:(i + 1) * size] for i in range(self.num_gates)]
        h_parts = [hi[:, i * size:(i + 1) * size] for i in range(self.num_gates)]
        return x_parts, h_parts

    def cell_parameters(self):
        """Live :class:`~repro.nn.Parameter` objects keyed by their
        :class:`CellWeights` field name.

        This is the gradient-side counterpart of :meth:`export_weights`:
        the fused training engine (:mod:`repro.runtime.training`) computes
        raw-numpy gradients under the CellWeights field names and uses
        this mapping to accumulate them into the very Parameters the
        optimisers update.  Fields whose parameter is not learnt
        (``init_state``/``init_cell`` with ``learn_init_state=False``) map
        to None — their gradients are discarded, exactly as the autograd
        path never produces them.
        """
        params = {
            "weight_ih": self.weight_ih,
            "weight_hh": self.weight_hh,
            "bias_ih": self.bias_ih,
            "bias_hh": self.bias_hh,
            "init_state": self.init_state,
        }
        if self.num_gates == 4:
            params["init_cell"] = self.init_cell
        return params

    def export_weights(self):
        """Export the cell parameters as a :class:`CellWeights` view.

        The fused inference kernels consume this instead of re-declaring
        the gate layout; both execution paths therefore share one weight
        format by construction.
        """
        hidden = self.hidden_size
        zeros = np.zeros(hidden, dtype=np.float64)
        init_cell = getattr(self, "init_cell", None)
        return CellWeights(
            kind="lstm" if self.num_gates == 4 else "gru",
            weight_ih=self.weight_ih.data,
            weight_hh=self.weight_hh.data,
            bias_ih=self.bias_ih.data,
            bias_hh=self.bias_hh.data,
            init_state=zeros if self.init_state is None else self.init_state.data,
            init_cell=(
                None if self.num_gates != 4
                else (zeros if init_cell is None else init_cell.data)
            ),
        )


class GRU(_RecurrentBase):
    """Gated recurrent unit (Cho et al., 2014)."""

    num_gates = 3

    def step(self, x_t, hidden):
        """One recurrence step: ``(B, D), (B, H) -> (B, H)``."""
        (xr, xz, xn), (hr, hz, hn) = self._gate_chunks(x_t, hidden)
        reset = (xr + hr).sigmoid()
        update = (xz + hz).sigmoid()
        candidate = (xn + reset * hn).tanh()
        return (1.0 - update) * candidate + update * hidden

    def forward(self, x, mask=None, initial=None):
        """Run over a padded batch.

        Parameters
        ----------
        x:
            Tensor of shape ``(B, T, D)``.
        mask:
            Optional boolean array ``(B, T)``; False entries freeze the state.
        initial:
            Optional ``(B, H)`` starting state overriding the learnt c_0.

        Returns
        -------
        (outputs, last) where outputs has shape ``(B, T, H)`` and last
        is the state after each sequence's final real event, ``(B, H)``.
        """
        batch, steps, _ = x.shape
        hidden = initial if initial is not None else self.initial_state(batch)
        per_step = []
        for t in range(steps):
            new_hidden = self.step(x[:, t, :], hidden)
            if mask is not None:
                hidden = where(mask[:, t:t + 1], new_hidden, hidden)
            else:
                hidden = new_hidden
            per_step.append(hidden)
        from .tensor import stack

        return stack(per_step, axis=1), hidden


class LSTM(_RecurrentBase):
    """Long short-term memory (Hochreiter & Schmidhuber, 1997)."""

    num_gates = 4

    def __init__(self, input_size, hidden_size, learn_init_state=True, rng=None):
        super().__init__(input_size, hidden_size, learn_init_state, rng)
        if learn_init_state:
            self.init_cell = Parameter(np.zeros(hidden_size,
                                                dtype=np.float64))
        else:
            self.init_cell = None

    def initial_cell(self, batch_size):
        if self.init_cell is not None:
            ones = Tensor(np.ones((batch_size, 1), dtype=np.float64))
            return ones @ self.init_cell.reshape(1, self.hidden_size)
        return Tensor(np.zeros((batch_size, self.hidden_size),
                               dtype=np.float64))

    def step(self, x_t, state):
        """One recurrence step on ``state = (hidden, cell)``."""
        hidden, cell = state
        (xi, xf, xg, xo), (hi, hf, hg, ho) = self._gate_chunks(x_t, hidden)
        in_gate = (xi + hi).sigmoid()
        forget = (xf + hf).sigmoid()
        candidate = (xg + hg).tanh()
        out_gate = (xo + ho).sigmoid()
        new_cell = forget * cell + in_gate * candidate
        new_hidden = out_gate * new_cell.tanh()
        return new_hidden, new_cell

    def forward(self, x, mask=None, initial=None):
        """Same contract as :meth:`GRU.forward`."""
        batch, steps, _ = x.shape
        if initial is not None:
            hidden, cell = initial
        else:
            hidden = self.initial_state(batch)
            cell = self.initial_cell(batch)
        per_step = []
        for t in range(steps):
            new_hidden, new_cell = self.step(x[:, t, :], (hidden, cell))
            if mask is not None:
                step_mask = mask[:, t:t + 1]
                hidden = where(step_mask, new_hidden, hidden)
                cell = where(step_mask, new_cell, cell)
            else:
                hidden, cell = new_hidden, new_cell
            per_step.append(hidden)
        from .tensor import stack

        return stack(per_step, axis=1), hidden
