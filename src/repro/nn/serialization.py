"""Save/load model state dicts (and generic array bundles) as ``.npz``."""

from __future__ import annotations

import numpy as np

__all__ = ["save_state", "load_state", "save_arrays", "load_arrays"]


def save_state(module, path):
    """Write ``module.state_dict()`` to ``path`` (npz)."""
    state = module.state_dict()
    np.savez(path, **{key: value for key, value in state.items()})


def load_state(module, path):
    """Load an npz state dict produced by :func:`save_state` into ``module``."""
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
    return module


def save_arrays(path, arrays):
    """Write a flat name -> ndarray mapping to ``path`` (npz).

    Shares the archive format with :func:`save_state` but carries arbitrary
    serving-side state — e.g. the per-entity recurrent states of an
    :class:`~repro.runtime.EmbeddingStore` snapshot.
    """
    # reprolint: disable=RP001 -- the archive preserves each array's
    # own dtype; casting here would corrupt integer/float16 payloads.
    np.savez(path, **{key: np.asarray(value) for key, value in arrays.items()})


def load_arrays(path):
    """Read back a mapping written by :func:`save_arrays`."""
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}
