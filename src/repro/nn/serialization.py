"""Save/load model state dicts as ``.npz`` archives."""

from __future__ import annotations

import numpy as np

__all__ = ["save_state", "load_state"]


def save_state(module, path):
    """Write ``module.state_dict()`` to ``path`` (npz)."""
    state = module.state_dict()
    np.savez(path, **{key: value for key, value in state.items()})


def load_state(module, path):
    """Load an npz state dict produced by :func:`save_state` into ``module``."""
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
    return module
