"""Optimizers: SGD with momentum, Adam, gradient clipping, LR schedules."""

from __future__ import annotations

import numpy as np

__all__ = ["SGD", "Adam", "clip_grad_norm", "StepLR"]


class Optimizer:
    """Base class holding parameter groups with per-group learning rates.

    ``parameters`` is either a flat iterable of parameters (one group at
    ``lr``) or an iterable of dicts ``{"params": [...], "lr": ...}`` —
    the ``torch.optim`` parameter-group contract.  A group without its
    own ``lr`` inherits the optimizer default.  Fine-tuning uses this to
    update a pre-trained encoder more gently than its fresh head.
    """

    def __init__(self, parameters, lr):
        entries = list(parameters)
        if entries and isinstance(entries[0], dict):
            self.param_groups = [
                {"params": list(entry["params"]), "lr": entry.get("lr", lr)}
                for entry in entries
            ]
        else:
            self.param_groups = [{"params": entries, "lr": lr}]
        self.parameters = [param for group in self.param_groups
                           for param in group["params"]]
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    @property
    def lr(self):
        """The first group's learning rate (the whole list's, pre-groups).

        Assigning sets every group to the same value; per-group schedules
        should mutate ``param_groups`` directly (what :class:`StepLR`
        does, preserving the ratios between groups).
        """
        return self.param_groups[0]["lr"]

    @lr.setter
    def lr(self, value):
        for group in self.param_groups:
            group["lr"] = value

    def _param_lrs(self):
        """Yield ``(param, lr)`` over all groups, flat parameter order."""
        for group in self.param_groups:
            for param in group["params"]:
                yield param, group["lr"]

    def zero_grad(self):
        for param in self.parameters:
            param.grad = None

    def step(self):
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters, lr=0.01, momentum=0.0, weight_decay=0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        for (param, lr), velocity in zip(self._param_lrs(), self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) — the optimizer used for all paper models."""

    def __init__(self, parameters, lr=0.001, betas=(0.9, 0.999), eps=1e-8,
                 weight_decay=0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first = [np.zeros_like(p.data) for p in self.parameters]
        self._second = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for (param, lr), first, second in zip(self._param_lrs(), self._first,
                                              self._second):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            first *= self.beta1
            first += (1.0 - self.beta1) * grad
            second *= self.beta2
            second += (1.0 - self.beta2) * grad * grad
            corrected_first = first / bias1
            corrected_second = second / bias2
            param.data = param.data - lr * corrected_first / (
                np.sqrt(corrected_second) + self.eps
            )


def clip_grad_norm(parameters, max_norm):
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging).
    """
    parameters = [p for p in parameters if p.grad is not None]
    total = np.sqrt(sum(float((p.grad**2).sum()) for p in parameters))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in parameters:
            param.grad = param.grad * scale
    return total


class StepLR:
    """Multiply the optimizer's lr by ``gamma`` every ``step_size`` epochs.

    Scales every parameter group, so per-group ratios (e.g. a gentler
    encoder rate under fine-tuning) are preserved across the schedule.
    """

    def __init__(self, optimizer, step_size, gamma=0.5):
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self):
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            for group in self.optimizer.param_groups:
                group["lr"] *= self.gamma
