"""Module/Parameter system: a minimal ``torch.nn.Module`` equivalent."""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList", "ModuleDict"]


class Parameter(Tensor):
    """A Tensor registered as a trainable leaf of a Module."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        # Parameters must stay trainable even if constructed under no_grad.
        self.requires_grad = True


class Module:
    """Base class with parameter registration, train/eval mode and state dicts."""

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name, value):
        """Track non-trainable state (e.g. batch-norm running stats)."""
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    def _set_buffer(self, name, value):
        """Update a registered buffer in place-compatible fashion."""
        arr = np.asarray(value, dtype=np.float64)
        self._buffers[name] = arr
        object.__setattr__(self, name, arr)

    # ------------------------------------------------------------------
    def parameters(self):
        """Yield all trainable parameters, depth-first, without duplicates."""
        seen = set()
        for param in self._parameters.values():
            if id(param) not in seen:
                seen.add(id(param))
                yield param
        for module in self._modules.values():
            for param in module.parameters():
                if id(param) not in seen:
                    seen.add(id(param))
                    yield param

    def named_parameters(self, prefix=""):
        for name, param in self._parameters.items():
            yield prefix + name, param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix + mod_name + ".")

    def named_buffers(self, prefix=""):
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix + mod_name + ".")

    def modules(self):
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def zero_grad(self):
        for param in self.parameters():
            param.grad = None

    def num_parameters(self):
        return sum(p.data.size for p in self.parameters())

    # ------------------------------------------------------------------
    def train(self, mode=True):
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self):
        return self.train(False)

    # ------------------------------------------------------------------
    def state_dict(self):
        """Flat dict of parameter and buffer arrays (copied)."""
        state = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state["buffer:" + name] = buf.copy()
        return state

    def load_state_dict(self, state):
        params = dict(self.named_parameters())
        for name, param in params.items():
            if name not in state:
                raise KeyError("missing parameter %r in state dict" % name)
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    "shape mismatch for %r: %s vs %s"
                    % (name, value.shape, param.data.shape)
                )
            param.data = value.copy()
        # Buffers are restored onto the owning module.
        for name in list(state):
            if not name.startswith("buffer:"):
                continue
            path = name[len("buffer:"):]
            module = self
            *parents, leaf = path.split(".")
            for part in parents:
                module = module._modules[part]
            module._set_buffer(leaf, state[name])

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Apply modules one after another."""

    def __init__(self, *modules):
        super().__init__()
        self._items = []
        for index, module in enumerate(modules):
            setattr(self, "m%d" % index, module)
            self._items.append(module)

    def __iter__(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)

    def forward(self, x):
        for module in self._items:
            x = module(x)
        return x


class ModuleList(Module):
    """A list of sub-modules that registers its items."""

    def __init__(self, modules=()):
        super().__init__()
        self._items = []
        for module in modules:
            self.append(module)

    def append(self, module):
        setattr(self, "m%d" % len(self._items), module)
        self._items.append(module)
        return self

    def __iter__(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)

    def __getitem__(self, index):
        return self._items[index]


class ModuleDict(Module):
    """A string-keyed mapping of sub-modules."""

    def __init__(self, modules=None):
        super().__init__()
        self._keys = []
        for key, module in (modules or {}).items():
            self[key] = module

    def __setitem__(self, key, module):
        if key not in self._keys:
            self._keys.append(key)
        setattr(self, key, module)

    def __getitem__(self, key):
        return self._modules[key]

    def __contains__(self, key):
        return key in self._modules

    def keys(self):
        return list(self._keys)

    def items(self):
        return [(key, self._modules[key]) for key in self._keys]
