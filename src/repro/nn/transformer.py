"""Transformer encoder (Vaswani et al., 2017) for event sequences.

Used as the third sequence-encoder option in Table 3 of the paper.  The
implementation is a standard pre-norm encoder stack with sinusoidal
positional encodings and key-padding masks.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .layers import Dropout, LayerNorm, Linear
from .module import Module, ModuleList
from .tensor import Tensor

__all__ = [
    "sinusoidal_positions",
    "MultiHeadAttention",
    "TransformerEncoderLayer",
    "TransformerEncoder",
]


def sinusoidal_positions(length, dim):
    """The fixed sin/cos positional table of the original Transformer."""
    positions = np.arange(length, dtype=np.float64)[:, None]
    half = (dim + 1) // 2
    freqs = np.exp(-np.log(10000.0)
                   * (np.arange(half, dtype=np.float64) / half))[None, :]
    angles = positions * freqs
    table = np.zeros((length, dim), dtype=np.float64)
    table[:, 0::2] = np.sin(angles)[:, : table[:, 0::2].shape[1]]
    table[:, 1::2] = np.cos(angles)[:, : table[:, 1::2].shape[1]]
    return table


class MultiHeadAttention(Module):
    """Scaled dot-product attention with ``num_heads`` parallel heads."""

    def __init__(self, dim, num_heads, dropout=0.0, rng=None):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError("dim %d not divisible by num_heads %d" % (dim, num_heads))
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.query = Linear(dim, dim, rng=rng)
        self.key = Linear(dim, dim, rng=rng)
        self.value = Linear(dim, dim, rng=rng)
        self.out = Linear(dim, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x, batch, steps):
        # (B, T, D) -> (B, heads, T, head_dim)
        return x.reshape(batch, steps, self.num_heads, self.head_dim).transpose(1, 2)

    def forward(self, x, key_padding_mask=None):
        """``x``: (B, T, D); mask: (B, T) True for real positions."""
        batch, steps, _ = x.shape
        q = self._split_heads(self.query(x), batch, steps)
        k = self._split_heads(self.key(x), batch, steps)
        v = self._split_heads(self.value(x), batch, steps)
        scores = (q @ k.transpose(-1, -2)) * (1.0 / np.sqrt(self.head_dim))
        if key_padding_mask is not None:
            pad = ~np.asarray(key_padding_mask, dtype=bool)
            # Broadcast over heads and query positions.
            scores = scores.masked_fill(pad[:, None, None, :], -1e9)
        attn = F.softmax(scores, axis=-1)
        attn = self.dropout(attn)
        mixed = attn @ v  # (B, heads, T, head_dim)
        merged = mixed.transpose(1, 2).reshape(batch, steps, self.dim)
        return self.out(merged)


class TransformerEncoderLayer(Module):
    """Pre-norm encoder block: MHA + position-wise feed-forward."""

    def __init__(self, dim, num_heads, ff_dim=None, dropout=0.0, rng=None):
        super().__init__()
        ff_dim = ff_dim or 4 * dim
        self.attention = MultiHeadAttention(dim, num_heads, dropout, rng=rng)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.ff1 = Linear(dim, ff_dim, rng=rng)
        self.ff2 = Linear(ff_dim, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x, key_padding_mask=None):
        attended = self.attention(self.norm1(x), key_padding_mask)
        x = x + self.dropout(attended)
        hidden = self.ff2(F.gelu(self.ff1(self.norm2(x))))
        return x + self.dropout(hidden)


class TransformerEncoder(Module):
    """Stack of encoder layers with sinusoidal positions and mean pooling.

    ``forward`` returns per-position states and a pooled sequence embedding
    (masked mean over real positions) — the transformer analogue of the
    GRU's final hidden state.
    """

    def __init__(self, dim, num_heads=4, num_layers=2, ff_dim=None, dropout=0.0,
                 max_len=4096, rng=None):
        super().__init__()
        self.dim = dim
        self.layers = ModuleList(
            TransformerEncoderLayer(dim, num_heads, ff_dim, dropout, rng=rng)
            for _ in range(num_layers)
        )
        self.final_norm = LayerNorm(dim)
        self.max_len = max_len
        self._pos_table = sinusoidal_positions(max_len, dim)
        self._pos_cache = {}

    def positional_slice(self, steps, dtype=np.float64):
        """The ``(1, steps, dim)`` positional slice, cached per (dtype, length).

        Both execution engines read positions through this cache: the
        Tensor path requests float64 (its compute dtype), the fused
        runtime the dtype of its precision policy — so neither re-slices
        (or re-casts) the table per forward.  Raises ``ValueError`` when
        ``steps`` exceeds ``max_len``.
        """
        if steps > self.max_len:
            raise ValueError(
                "sequence length %d exceeds max_len %d" % (steps, self.max_len))
        key = (np.dtype(dtype).str, steps)
        cached = self._pos_cache.get(key)
        if cached is None:
            cached = np.ascontiguousarray(self._pos_table[None, :steps, :],
                                          dtype=dtype)
            self._pos_cache[key] = cached
        return cached

    def forward(self, x, mask=None):
        batch, steps, _ = x.shape
        x = x + Tensor(self.positional_slice(steps))
        for layer in self.layers:
            x = layer(x, key_padding_mask=mask)
        x = self.final_norm(x)
        if mask is None:
            pooled = x.mean(axis=1)
        else:
            mask_arr = np.asarray(mask, dtype=np.float64)
            weights = mask_arr / np.maximum(mask_arr.sum(axis=1, keepdims=True), 1.0)
            pooled = (x * Tensor(weights[:, :, None])).sum(axis=1)
        return x, pooled
