"""Random sampling without replacement — Table 2 baseline (1).

Generates a *non-contiguous* sub-sequence by drawing random events without
replacement while preserving their in-sequence order (the strategy of
Yao et al., 2020 adapted to event sequences).  Scrambles local structure,
which is the hypothesised reason it loses to random slices.
"""

from __future__ import annotations

import numpy as np

from .base import AugmentationStrategy

__all__ = ["RandomSamples"]


class RandomSamples(AugmentationStrategy):
    """Order-preserving random subsets of events."""

    def sample(self, sequence, rng):
        total = len(sequence)
        if total < 1:
            return []
        subsets = []
        for _ in range(self.num_samples):
            candidate = int(rng.integers(1, total + 1))
            if not self.min_length <= candidate <= self.max_length:
                continue
            chosen = np.sort(rng.choice(total, size=candidate, replace=False))
            subsets.append(sequence.take(chosen))
        return subsets
