"""Random disjoint slices — Table 2 baseline (2).

Splits the sequence into ``k`` non-overlapping contiguous segments at
random boundaries (the generation of Ma et al., 2020).  Motivated by the
concern that overlapping slices could be "memoised" by the encoder; the
paper finds the concern unfounded — overlap helps.
"""

from __future__ import annotations

import numpy as np

from .base import AugmentationStrategy

__all__ = ["DisjointSlices"]


class DisjointSlices(AugmentationStrategy):
    """Random partition of the sequence into contiguous segments."""

    def sample(self, sequence, rng):
        total = len(sequence)
        if total < self.num_samples:
            # Cannot cut k non-empty segments; fall back to single segments.
            return [sequence.slice(0, total)] if total >= 1 else []
        cuts = np.sort(
            rng.choice(np.arange(1, total), size=self.num_samples - 1, replace=False)
        )
        bounds = np.concatenate([[0], cuts, [total]])
        segments = []
        for start, stop in zip(bounds[:-1], bounds[1:]):
            length = stop - start
            if length < self.min_length or length > self.max_length:
                continue
            segments.append(sequence.slice(int(start), int(stop)))
        return segments
