"""Random slices — Algorithm 1 of the paper (the CoLES strategy).

For each of ``k`` attempts: draw a candidate length ``T_i`` uniformly from
``[1, T]``; keep it only if ``m <= T_i <= M``; then draw the start position
uniformly and emit the contiguous slice.  Contiguity preserves the local
burst structure of the event stream, which is why this strategy wins
Table 2.
"""

from __future__ import annotations

from .base import AugmentationStrategy

__all__ = ["RandomSlices"]


class RandomSlices(AugmentationStrategy):
    """Algorithm 1: random contiguous slices with rejection on length."""

    def sample(self, sequence, rng):
        total = len(sequence)
        if total < 1:
            return []
        slices = []
        for _ in range(self.num_samples):
            candidate = int(rng.integers(1, total + 1))  # uniform on [1, T]
            if not self.min_length <= candidate <= self.max_length:
                continue
            start = int(rng.integers(0, total - candidate + 1))
            slices.append(sequence.slice(start, start + candidate))
        return slices

    def sample_guaranteed(self, sequence, rng):
        """Like :meth:`sample` but clamps lengths so short sequences still
        yield ``num_samples`` views (used when every entity must appear).
        """
        total = len(sequence)
        if total < 1:
            return []
        low = min(self.min_length, total)
        high = min(self.max_length, total)
        slices = []
        for _ in range(self.num_samples):
            candidate = int(rng.integers(low, high + 1))
            start = int(rng.integers(0, total - candidate + 1))
            slices.append(sequence.slice(start, start + candidate))
        return slices
