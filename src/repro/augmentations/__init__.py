"""Sub-sequence augmentation strategies (Section 3.2 / Table 2)."""

from .base import AugmentationStrategy
from .disjoint import DisjointSlices
from .samples import RandomSamples
from .slices import RandomSlices

__all__ = ["AugmentationStrategy", "RandomSlices", "RandomSamples", "DisjointSlices"]

STRATEGIES = {
    "random_slices": RandomSlices,
    "random_samples": RandomSamples,
    "random_disjoint": DisjointSlices,
}
