"""Augmentation strategies: surrogate sub-sequence generators (Section 3.2).

A strategy turns one observed sequence into ``k`` sub-sequences that act as
different "views" of the same latent entity for contrastive learning.  The
three strategies below are exactly the ones compared in Table 2 of the
paper.
"""

from __future__ import annotations

__all__ = ["AugmentationStrategy"]


class AugmentationStrategy:
    """Interface: ``sample(sequence, rng) -> list[EventSequence]``.

    Implementations may return fewer than ``num_samples`` sub-sequences when
    the input is too short for the configured length bounds (Algorithm 1
    discards out-of-range draws).
    """

    def __init__(self, min_length, max_length, num_samples):
        if min_length < 1:
            raise ValueError("min_length must be >= 1")
        if max_length < min_length:
            raise ValueError("max_length must be >= min_length")
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        self.min_length = min_length
        self.max_length = max_length
        self.num_samples = num_samples

    def sample(self, sequence, rng):
        raise NotImplementedError

    def __repr__(self):
        return "%s(min=%d, max=%d, k=%d)" % (
            type(self).__name__, self.min_length, self.max_length, self.num_samples,
        )
