"""Inference: batch embedding of datasets and incremental updates.

Section 4.3.1 of the paper describes the deployment pipeline: embeddings
are computed once and then *incrementally* refreshed as new transactions
arrive — recurrent encoders allow ``c_{t+k}`` to be computed from ``c_t``
and the new events only.

Since the runtime refactor this module is a thin façade over
:mod:`repro.runtime`: every repro encoder — recurrent *and* transformer
— serves through the fused graph-free kernels with a length-sorted
batch plan; only custom encoders outside those families fall back to
the differentiable Tensor path under ``no_grad``.  Both paths agree to
< 1e-10 (float64).
"""

from __future__ import annotations

import numpy as np

from ..data.batches import collate
from ..encoders.seq_encoder import RnnSeqEncoder, TransformerSeqEncoder
from ..nn import no_grad
from ..runtime import EmbeddingStore, FusedEncoderRuntime
from ..serving import EmbeddingService

__all__ = ["embed_dataset", "IncrementalEmbedder", "serve"]


def _embed_dataset_tensor(encoder, dataset, batch_size):
    """Reference path: eval-mode autograd forward, naive batch order."""
    encoder.eval()
    embeddings = np.zeros((len(dataset), encoder.output_dim))
    with no_grad():
        for start in range(0, len(dataset), batch_size):
            chunk = dataset.sequences[start:start + batch_size]
            batch = collate(chunk, dataset.schema)
            embeddings[start:start + len(chunk)] = encoder.embed(batch).data
    return embeddings


def _embed_dataset_fused(encoder, dataset, batch_size, precision, workers):
    """Hot path: fused kernels over a globally length-sorted batch plan."""
    if isinstance(encoder, FusedEncoderRuntime):
        runtime = encoder
    else:
        kwargs = {}
        if precision is not None:
            kwargs["precision"] = precision
        if workers is not None:
            kwargs["workers"] = workers
        runtime = FusedEncoderRuntime(encoder, **kwargs)
    return runtime.embed_dataset(dataset, batch_size=batch_size)


def embed_dataset(encoder, dataset, batch_size=64, runtime="auto",
                  precision=None, workers=None):
    """Embed every sequence; returns ``(N, d)`` float array.

    ``runtime`` selects the execution path:

    - ``"auto"`` (default): fused kernels for every repro encoder
      (recurrent and transformer), Tensor path for custom encoders;
    - ``"fused"``: require the fused runtime (TypeError for encoders the
      fused kernels do not cover);
    - ``"tensor"``: force the differentiable path (used by equivalence
      tests and benchmarks).

    ``precision`` and ``workers`` configure the fused runtime's dtype
    policy and bucket-parallel worker count (None: the runtime defaults).
    The Tensor path is the float64 reference and ignores both.
    """
    if runtime not in ("auto", "fused", "tensor"):
        raise ValueError("unknown runtime %r" % runtime)
    if runtime == "tensor":
        return _embed_dataset_tensor(encoder, dataset, batch_size)
    if runtime == "fused" or isinstance(
        encoder, (RnnSeqEncoder, TransformerSeqEncoder, FusedEncoderRuntime)
    ):
        return _embed_dataset_fused(encoder, dataset, batch_size,
                                    precision, workers)
    return _embed_dataset_tensor(encoder, dataset, batch_size)


def serve(encoder, dataset=None, schema=None, **service_kwargs):
    """Stand up an online :class:`~repro.serving.EmbeddingService`.

    The serving entry point of the deployment story: give it a trained
    recurrent encoder and (optionally) the historical dataset to
    bulk-load, and it returns a ready service — sharded state,
    micro-batched ingestion, hot-embedding cache.

    ``schema`` defaults to ``dataset.schema``; keyword arguments
    (``num_shards``, ``cache_capacity``, ``flush_events``, ``batch_size``,
    ``precision``, ``workers``, and the storage knobs ``backend``,
    ``codec``, ``backend_dir``) pass through to
    :class:`~repro.serving.EmbeddingService` — e.g.
    ``serve(encoder, dataset, backend="memmap", backend_dir=path,
    codec="int8")`` stands up an out-of-core, quantized-at-rest service.
    """
    if schema is None:
        if dataset is None:
            raise ValueError("serve() needs a schema (or a dataset to "
                             "take it from)")
        schema = dataset.schema
    service = EmbeddingService(encoder, schema, **service_kwargs)
    if dataset is not None:
        service.bulk_load(dataset)
    return service


class IncrementalEmbedder:
    """Streaming embedding refresh for one encoder; the paper's ETL client.

    A thin wrapper around :class:`repro.runtime.EmbeddingStore` kept for
    API stability: ``update`` folds new events into the stored recurrent
    state and returns the refreshed embedding, bit-equal to a full
    recompute.  Transformers cannot reuse prior computation and are
    rejected up front (the store itself would only fail at ``update``).
    """

    def __init__(self, encoder, precision=None):
        self.store = EmbeddingStore(encoder, precision=precision)
        if not self.store.runtime.is_recurrent:
            raise TypeError(
                "incremental inference requires a recurrent encoder "
                "(got %s)" % type(encoder).__name__
            )
        self.encoder = self.store.runtime.encoder
        self.encoder.eval()  # seed-API behavior: embedders serve in eval mode

    def known_entities(self):
        return self.store.known_entities()

    def update(self, entity_id, events, schema):
        """Fold new ``events`` (an :class:`EventSequence`) into the state."""
        return self.store.update(entity_id, events, schema)

    def embedding(self, entity_id):
        """Current embedding of the entity (unit-normalised if configured)."""
        return self.store.embedding(entity_id)
