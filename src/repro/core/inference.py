"""Inference: batch embedding of datasets and incremental updates.

Section 4.3.1 of the paper describes the deployment pipeline: embeddings
are computed once and then *incrementally* refreshed as new transactions
arrive — recurrent encoders allow ``c_{t+k}`` to be computed from ``c_t``
and the new events only.  :class:`IncrementalEmbedder` implements exactly
that ETL pattern, and the tests assert bit-equality with full recompute.
"""

from __future__ import annotations

import numpy as np

from ..data.batches import collate
from ..data.sequences import EventSequence
from ..encoders.seq_encoder import RnnSeqEncoder
from ..nn import no_grad
from ..nn import functional as F

__all__ = ["embed_dataset", "IncrementalEmbedder"]


def embed_dataset(encoder, dataset, batch_size=64):
    """Embed every sequence; returns ``(N, d)`` float array.

    Runs in eval mode under ``no_grad`` — inference only.
    """
    encoder.eval()
    embeddings = np.zeros((len(dataset), encoder.output_dim))
    with no_grad():
        for start in range(0, len(dataset), batch_size):
            chunk = dataset.sequences[start:start + batch_size]
            batch = collate(chunk, dataset.schema)
            embeddings[start:start + len(chunk)] = encoder.embed(batch).data
    return embeddings


class IncrementalEmbedder:
    """Maintains per-entity recurrent state for streaming embedding updates.

    The paper deploys GRU encoders because a single state vector suffices
    for incremental recomputation; we additionally support LSTM encoders
    by carrying the (hidden, cell) pair.  Transformers cannot reuse prior
    computation and are rejected.
    """

    def __init__(self, encoder):
        if not isinstance(encoder, RnnSeqEncoder):
            raise TypeError(
                "incremental inference requires a recurrent encoder "
                "(got %s)" % type(encoder).__name__
            )
        self.encoder = encoder
        self.encoder.eval()
        self._states = {}
        self._last_times = {}

    @property
    def _is_lstm(self):
        return self.encoder.cell == "lstm"

    def known_entities(self):
        return sorted(self._states)

    def _initial_state(self):
        if self._is_lstm:
            return (self.encoder.rnn.initial_state(1),
                    self.encoder.rnn.initial_cell(1))
        return self.encoder.rnn.initial_state(1)

    def update(self, entity_id, events, schema):
        """Fold new ``events`` (an :class:`EventSequence`) into the state.

        Returns the refreshed embedding for the entity.  The previous
        chunk's last timestamp is carried over so the boundary time-delta
        feature matches a full recompute exactly.
        """
        if len(events) == 0:
            raise ValueError("update requires at least one new event")
        batch = collate([events], schema)
        prev_time = self._last_times.get(entity_id)
        prev_times = None if prev_time is None else np.array([prev_time])
        with no_grad():
            z = self.encoder.trx_encoder(batch, prev_times=prev_times)
            state = self._states.get(entity_id)
            if state is None:
                state = self._initial_state()
            for t in range(z.shape[1]):
                state = self.encoder.rnn.step(z[:, t, :], state)
        self._states[entity_id] = state
        self._last_times[entity_id] = float(
            events.fields[schema.time_field][-1]
        )
        return self.embedding(entity_id)

    def embedding(self, entity_id):
        """Current embedding of the entity (unit-normalised if configured)."""
        if entity_id not in self._states:
            raise KeyError("unknown entity %r" % entity_id)
        state = self._states[entity_id]
        hidden = state[0] if self._is_lstm else state
        with no_grad():
            if self.encoder.normalize:
                return F.l2_normalize(hidden).data[0].copy()
        return hidden.data[0].copy()
