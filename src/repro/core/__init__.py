"""CoLES core: the paper's primary contribution."""

from .batching import augment_batch, coles_batches
from .coles import CoLES
from .inference import IncrementalEmbedder, embed_dataset, serve
from .quantization import (
    QuantizedEmbeddings,
    pack_uint4,
    quantize_embeddings,
    unpack_uint4,
)
from .trainer import ContrastiveTrainer, TrainConfig

__all__ = [
    "CoLES",
    "coles_batches",
    "augment_batch",
    "ContrastiveTrainer",
    "TrainConfig",
    "embed_dataset",
    "IncrementalEmbedder",
    "serve",
    "quantize_embeddings",
    "QuantizedEmbeddings",
    "pack_uint4",
    "unpack_uint4",
]
