"""Generic contrastive training loop used by CoLES (Figure 1, Phase 1)."""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..nn import Adam, clip_grad_norm
from .batching import coles_batches

__all__ = ["TrainConfig", "ContrastiveTrainer"]


@dataclass
class TrainConfig:
    """Hyper-parameters of the self-supervised training phase (Table 1)."""

    num_epochs: int = 10
    batch_size: int = 16  # entities per batch (N)
    learning_rate: float = 0.002
    weight_decay: float = 0.0
    clip_norm: float = 5.0
    seed: int = 0
    verbose: bool = False
    # Length-bucketing shuffle window (in batches) for the batch planner;
    # None keeps the fully random order.
    bucket_window: int | None = None
    # Execution engine for the encoder's forward+backward:
    # "auto"   — fused for every repro encoder, recurrent and transformer
    #            (resolved per encoder by repro.runtime.resolve_engine);
    # "tensor" — the autograd Tensor graph (works for every encoder);
    # "fused"  — graph-free numpy (repro.runtime.training): hand-derived
    # BPTT for GRU/LSTM, the attention reverse pass for transformers;
    # gradient-equivalent to < 1e-8 and several times faster.
    engine: str = "auto"
    # Compute dtype of the fused engine: "float64" (default — the
    # engine-parity reference, identical trajectories to the Tensor
    # path) or "float32" (mixed precision: float32 compute/gradients,
    # float64 master weights).  The Tensor engine ignores it.
    precision: str = "float64"

    def __post_init__(self):
        if self.num_epochs < 1:
            raise ValueError("num_epochs must be >= 1")
        if self.batch_size < 2:
            raise ValueError("batch_size must be >= 2 (negatives needed)")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.engine not in ("auto", "tensor", "fused"):
            raise ValueError(
                "unknown engine %r (use 'auto', 'tensor' or 'fused')"
                % self.engine
            )
        if self.precision not in ("float32", "float64"):
            raise ValueError(
                "unknown precision %r (use 'float32' or 'float64')"
                % self.precision
            )


@dataclass
class EpochStats:
    """Per-epoch training telemetry."""

    epoch: int
    mean_loss: float
    num_batches: int
    seconds: float


class ContrastiveTrainer:
    """Optimises an encoder under a metric-learning loss on augmented views.

    Parameters
    ----------
    encoder:
        A :class:`~repro.encoders.SeqEncoder`; its ``embed`` output feeds
        the loss.
    loss_fn:
        Callable ``(embeddings, groups, rng) -> scalar Tensor``.
    strategy:
        Sub-sequence augmentation strategy (Algorithm 1 by default, set by
        the caller).
    """

    def __init__(self, encoder, loss_fn, strategy, config=None):
        from ..runtime.training import FusedTrainStep, resolve_engine

        self.encoder = encoder
        self.loss_fn = loss_fn
        self.strategy = strategy
        self.config = config or TrainConfig()
        self.history = []
        # "auto" resolves to fused for every repro encoder family.  The
        # resolved engine is kept for introspection.
        self.engine = resolve_engine(self.config.engine, encoder)
        if self.engine == "fused":
            self._fused_step = FusedTrainStep(encoder,
                                              precision=self.config.precision)
        else:
            self._fused_step = None

    def fit(self, dataset):
        """Run the self-supervised phase; returns the epoch history."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        optimizer = Adam(self.encoder.parameters(), lr=config.learning_rate,
                         weight_decay=config.weight_decay)
        self.encoder.train()
        for epoch in range(config.num_epochs):
            losses = []
            started = time.perf_counter()
            for batch in coles_batches(dataset, self.strategy,
                                       config.batch_size, rng,
                                       bucket_window=config.bucket_window):
                loss = self.train_step(batch, optimizer, rng)
                losses.append(loss)
            stats = EpochStats(
                epoch=epoch,
                mean_loss=float(np.mean(losses)) if losses else float("nan"),
                num_batches=len(losses),
                seconds=time.perf_counter() - started,
            )
            self.history.append(stats)
            if config.verbose:
                print(
                    "epoch %3d  loss %.4f  (%d batches, %.1fs)"
                    % (epoch, stats.mean_loss, stats.num_batches, stats.seconds)
                )
        self.encoder.eval()
        return self.history

    def train_step(self, batch, optimizer, rng):
        """One optimisation step on a pre-built batch; returns the loss.

        Under ``engine="fused"`` the encoder's forward+backward runs
        through :class:`~repro.runtime.FusedTrainStep` (hand-derived
        BPTT, no Tensor graph) and only the loss itself — a function of
        the small ``(B, H)`` embedding matrix — goes through autograd via
        the loss-gradient interface.  Both engines produce the same
        gradients to < 1e-8, so clipping and the optimiser see identical
        inputs either way.
        """
        if self._fused_step is not None:
            from ..runtime.training import loss_gradient

            cache = self._fused_step.forward(batch)
            value, d_embeddings = loss_gradient(
                self.loss_fn, cache.embeddings, batch.seq_ids, rng=rng)
            optimizer.zero_grad()
            self._fused_step.backward(cache, d_embeddings)
        else:
            embeddings = self.encoder.embed(batch)
            loss = self.loss_fn(embeddings, batch.seq_ids, rng=rng)
            optimizer.zero_grad()
            loss.backward()
            value = loss.item()
        if self.config.clip_norm:
            clip_grad_norm(self.encoder.parameters(), self.config.clip_norm)
        optimizer.step()
        return value
