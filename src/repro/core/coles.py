"""CoLES: the public facade of the method (Sections 3.2–3.4).

Wires together the three ingredients named at the end of Section 3.4 — the
event-sequence encoder, the positive/negative pair generation strategy and
the contrastive loss — behind a small fit/embed API:

    >>> model = CoLES(schema, hidden_size=64)
    >>> model.fit(train_dataset)
    >>> embeddings = model.embed(test_dataset)   # (N, 64) unit vectors
"""

from __future__ import annotations

import numpy as np

from ..augmentations import STRATEGIES
from ..encoders import build_encoder
from ..losses import LOSSES, SAMPLERS, ContrastiveLoss
from ..nn import load_state, save_state
from .inference import embed_dataset
from .trainer import ContrastiveTrainer, TrainConfig

__all__ = ["CoLES"]


class CoLES:
    """Contrastive Learning for Event Sequences.

    Parameters
    ----------
    schema:
        The dataset's :class:`~repro.data.EventSchema`.
    hidden_size:
        Embedding dimensionality d (Table 1 uses 100–1024; scaled here).
    encoder_type:
        ``gru`` (paper default), ``lstm`` or ``transformer`` (Table 3).
    loss:
        Loss name from :data:`repro.losses.LOSSES` or a loss instance
        (Table 4; default contrastive with margin 0.5).
    sampler:
        Negative sampler name from :data:`repro.losses.SAMPLERS` or an
        instance (Table 5; default hard negative mining).
    strategy:
        Augmentation strategy name from
        :data:`repro.augmentations.STRATEGIES` or an instance (Table 2;
        default random slices, Algorithm 1).
    min_length / max_length / num_samples:
        Algorithm 1 hyper-parameters (m, M, k); Table 1 uses k=5.
    """

    def __init__(self, schema, hidden_size=64, encoder_type="gru",
                 loss="contrastive", sampler="hard", strategy="random_slices",
                 min_length=10, max_length=100, num_samples=5, margin=0.5,
                 neg_per_anchor=5, seed=0):
        self.schema = schema
        self.hidden_size = hidden_size
        self.encoder_type = encoder_type
        self.seed = seed
        rng = np.random.default_rng(seed)
        self.encoder = build_encoder(schema, hidden_size, encoder_type,
                                     normalize=True, rng=rng)

        if isinstance(sampler, str):
            sampler = SAMPLERS[sampler](neg_per_anchor=neg_per_anchor)
        if isinstance(loss, str):
            if loss == "contrastive":
                loss = ContrastiveLoss(margin=margin, sampler=sampler)
            else:
                loss = LOSSES[loss](sampler=sampler) if "sampler" in _init_args(
                    LOSSES[loss]
                ) else LOSSES[loss]()
        self.loss_fn = loss

        if isinstance(strategy, str):
            strategy = STRATEGIES[strategy](min_length, max_length, num_samples)
        self.strategy = strategy
        self.trainer = None

    # ------------------------------------------------------------------
    def fit(self, dataset, num_epochs=10, batch_size=16, learning_rate=0.002,
            verbose=False, engine="auto"):
        """Phase 1: self-supervised training on (possibly unlabeled) data.

        The default ``engine="auto"`` trains recurrent encoders through
        the graph-free BPTT runtime (:mod:`repro.runtime.training`) —
        gradient-equivalent to the autograd engine to < 1e-8 and several
        times faster — and transformers through the autograd tensor
        engine.  Pass ``engine="tensor"`` or ``"fused"`` to pin one.
        """
        config = TrainConfig(
            num_epochs=num_epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            seed=self.seed,
            verbose=verbose,
            engine=engine,
        )
        self.trainer = ContrastiveTrainer(self.encoder, self.loss_fn,
                                          self.strategy, config)
        self.trainer.fit(dataset)
        return self

    @property
    def history(self):
        return [] if self.trainer is None else self.trainer.history

    # ------------------------------------------------------------------
    def embed(self, dataset, batch_size=64):
        """Phase 2a input: embeddings as features for a downstream model."""
        return embed_dataset(self.encoder, dataset, batch_size=batch_size)

    # ------------------------------------------------------------------
    def fine_tune(self, dataset, num_classes=None, num_epochs=10,
                  batch_size=32, learning_rate=0.002,
                  encoder_learning_rate=None, engine="auto"):
        """Phase 2b: attach a softmax head and train jointly on labels.

        Returns the fitted
        :class:`~repro.baselines.supervised.SequenceClassifier`; the
        encoder weights are updated in place (the classifier shares them).
        Like :meth:`fit`, the default ``engine="auto"`` runs recurrent
        encoders through the fused graph-free runtime (the cross-entropy
        + head backward is hand-derived) and transformers through the
        tensor engine; ``encoder_learning_rate`` trains the pre-trained
        encoder more gently than the fresh head when set.
        """
        from ..baselines.supervised import FineTuneConfig, SequenceClassifier

        labeled = dataset.labeled()
        if num_classes is None:
            num_classes = int(np.max(labeled.label_array())) + 1
        classifier = SequenceClassifier(self.encoder,
                                        num_classes=max(num_classes, 2),
                                        seed=self.seed)
        classifier.fit(
            labeled,
            FineTuneConfig(num_epochs=num_epochs, batch_size=batch_size,
                           learning_rate=learning_rate,
                           encoder_learning_rate=encoder_learning_rate,
                           seed=self.seed, engine=engine),
        )
        return classifier

    # ------------------------------------------------------------------
    def save(self, path):
        """Persist encoder weights to an npz file."""
        save_state(self.encoder, path)

    def load(self, path):
        """Restore encoder weights saved by :meth:`save`."""
        load_state(self.encoder, path)
        return self


def _init_args(cls):
    import inspect

    return inspect.signature(cls.__init__).parameters
