"""CoLES batch generation (Section 3.3).

``N`` entities are drawn per batch and ``K`` sub-sequences generated for
each via the augmentation strategy; sub-sequences of the same entity form
positive pairs, cross-entity ones negatives.  The collated
:class:`~repro.data.PaddedBatch` carries the entity id of every view in
``seq_ids``, which the losses use as group labels.
"""

from __future__ import annotations

import numpy as np

from ..data.batches import collate
from ..data.bucketing import plan_batches

__all__ = ["coles_batches", "augment_batch"]


def augment_batch(sequences, schema, strategy, rng, min_views=2):
    """Generate views for a list of entities and collate them.

    Entities yielding fewer than ``min_views`` sub-sequences (possible
    under Algorithm 1's rejection step) are topped up with clamped slices
    when the strategy supports it, otherwise dropped.  Returns None when
    fewer than two entities survive (no negative pairs possible).
    """
    views = []
    for seq in sequences:
        pieces = strategy.sample(seq, rng)
        if len(pieces) < min_views and hasattr(strategy, "sample_guaranteed"):
            pieces = strategy.sample_guaranteed(seq, rng)
        pieces = [p for p in pieces if len(p) >= 1]
        if len(pieces) >= min_views:
            views.extend(pieces)
    if not views:
        return None
    if len(np.unique([v.seq_id for v in views])) < 2:
        return None
    return collate(views, schema)


def coles_batches(dataset, strategy, batch_size, rng, drop_last=False,
                  bucket_window=None):
    """Yield one epoch of CoLES training batches.

    Parameters
    ----------
    dataset:
        :class:`~repro.data.SequenceDataset` (labels are ignored — the
        method is self-supervised).
    strategy:
        An :class:`~repro.augmentations.AugmentationStrategy`.
    batch_size:
        Number of *entities* per batch (sub-sequence count is
        ``batch_size * K`` as in Section 4.0.4).
    bucket_window:
        When set (in batches), entities are length-bucketed within shuffle
        windows by the planner in :mod:`repro.data.bucketing`, so the K
        views of batch-mates pad far less.  Positive-pair semantics are
        unchanged: each batch still holds all views of its N entities, and
        negatives still come from the other entities in the batch.
    """
    if bucket_window is not None:
        chunks = plan_batches(dataset.lengths(), batch_size, rng=rng,
                              shuffle=True, window_batches=bucket_window,
                              drop_last=drop_last)
    else:
        order = np.arange(len(dataset))
        rng.shuffle(order)
        chunks = [order[start:start + batch_size]
                  for start in range(0, len(order), batch_size)]
        if drop_last and chunks and len(chunks[-1]) < batch_size:
            chunks.pop()
    for chunk in chunks:
        if len(chunk) < 2:
            continue
        batch = augment_batch([dataset[i] for i in chunk], dataset.schema,
                              strategy, rng)
        if batch is not None:
            yield batch
