"""CoLES batch generation (Section 3.3).

``N`` entities are drawn per batch and ``K`` sub-sequences generated for
each via the augmentation strategy; sub-sequences of the same entity form
positive pairs, cross-entity ones negatives.  The collated
:class:`~repro.data.PaddedBatch` carries the entity id of every view in
``seq_ids``, which the losses use as group labels.
"""

from __future__ import annotations

import numpy as np

from ..data.batches import collate

__all__ = ["coles_batches", "augment_batch"]


def augment_batch(sequences, schema, strategy, rng, min_views=2):
    """Generate views for a list of entities and collate them.

    Entities yielding fewer than ``min_views`` sub-sequences (possible
    under Algorithm 1's rejection step) are topped up with clamped slices
    when the strategy supports it, otherwise dropped.  Returns None when
    fewer than two entities survive (no negative pairs possible).
    """
    views = []
    for seq in sequences:
        pieces = strategy.sample(seq, rng)
        if len(pieces) < min_views and hasattr(strategy, "sample_guaranteed"):
            pieces = strategy.sample_guaranteed(seq, rng)
        pieces = [p for p in pieces if len(p) >= 1]
        if len(pieces) >= min_views:
            views.extend(pieces)
    if not views:
        return None
    if len(np.unique([v.seq_id for v in views])) < 2:
        return None
    return collate(views, schema)


def coles_batches(dataset, strategy, batch_size, rng, drop_last=False):
    """Yield one epoch of CoLES training batches.

    Parameters
    ----------
    dataset:
        :class:`~repro.data.SequenceDataset` (labels are ignored — the
        method is self-supervised).
    strategy:
        An :class:`~repro.augmentations.AugmentationStrategy`.
    batch_size:
        Number of *entities* per batch (sub-sequence count is
        ``batch_size * K`` as in Section 4.0.4).
    """
    order = np.arange(len(dataset))
    rng.shuffle(order)
    for start in range(0, len(order), batch_size):
        chunk = order[start:start + batch_size]
        if drop_last and len(chunk) < batch_size:
            break
        if len(chunk) < 2:
            continue
        batch = augment_batch([dataset[i] for i in chunk], dataset.schema,
                              strategy, rng)
        if batch is not None:
            yield batch
