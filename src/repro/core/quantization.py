"""Embedding quantization (Section 4.3.1).

The paper compresses production embeddings by mapping single-precision
values into 16 levels (uint4): a 256-dim embedding shrinks from 1KB to
128 bytes.  We implement symmetric per-dimension linear quantization with
the same default of 16 levels, plus packing of two 4-bit codes per byte.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QuantizedEmbeddings", "quantize_embeddings", "pack_uint4", "unpack_uint4"]


@dataclass
class QuantizedEmbeddings:
    """Quantized matrix plus the parameters needed to dequantize."""

    codes: np.ndarray       # (N, d) uint8, values in [0, levels)
    minimums: np.ndarray    # (d,) per-dimension minimum
    scales: np.ndarray      # (d,) per-dimension step size
    levels: int

    def dequantize(self):
        """Reconstruct float embeddings (lossy)."""
        return self.minimums + self.codes.astype(np.float64) * self.scales

    def packed_bytes(self):
        """Storage size in bytes when 4-bit codes are packed two-per-byte."""
        if self.levels > 16:
            raise ValueError("packing requires <= 16 levels")
        n, d = self.codes.shape
        return n * ((d + 1) // 2)


def quantize_embeddings(embeddings, levels=16):
    """Per-dimension linear quantization into ``levels`` codes."""
    if levels < 2 or levels > 256:
        raise ValueError("levels must be in [2, 256]")
    embeddings = np.asarray(embeddings, dtype=np.float64)
    if embeddings.ndim != 2:
        raise ValueError("expected a 2-D embedding matrix")
    minimums = embeddings.min(axis=0)
    maximums = embeddings.max(axis=0)
    spans = np.maximum(maximums - minimums, 1e-12)
    scales = spans / (levels - 1)
    codes = np.round((embeddings - minimums) / scales)
    codes = np.clip(codes, 0, levels - 1).astype(np.uint8)
    return QuantizedEmbeddings(codes=codes, minimums=minimums, scales=scales,
                               levels=levels)


def pack_uint4(codes):
    """Pack an even-width matrix of 4-bit codes two-per-byte."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.max(initial=0) > 15:
        raise ValueError("codes exceed 4 bits")
    n, d = codes.shape
    if d % 2:
        codes = np.concatenate([codes, np.zeros((n, 1), dtype=np.uint8)], axis=1)
    return (codes[:, 0::2] << 4) | codes[:, 1::2]


def unpack_uint4(packed, width):
    """Inverse of :func:`pack_uint4`; ``width`` is the original dimension."""
    packed = np.asarray(packed, dtype=np.uint8)
    high = (packed >> 4) & 0x0F
    low = packed & 0x0F
    out = np.empty((packed.shape[0], packed.shape[1] * 2), dtype=np.uint8)
    out[:, 0::2] = high
    out[:, 1::2] = low
    return out[:, :width]
