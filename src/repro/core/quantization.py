"""Embedding quantization (Section 4.3.1).

The paper compresses production embeddings by mapping single-precision
values into 16 levels (uint4): a 256-dim embedding shrinks from 1KB to
128 bytes.  We implement symmetric per-dimension linear quantization with
the same default of 16 levels, plus packing of two 4-bit codes per byte.

This module is the numeric core of the at-rest
:class:`~repro.runtime.QuantizedCodec`: the serving state backends
(:mod:`repro.runtime.backends`) quantize per-shard state blocks through
these functions and keep the per-dimension minimum/scale metadata next to
the codes.  It follows the precision policy of the fused runtime:
float32 input quantizes in float32 (no silent up-cast), and
:meth:`QuantizedEmbeddings.dequantize` reconstructs in a caller-chosen
dtype instead of forcing float64.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QuantizedEmbeddings", "quantize_embeddings", "pack_uint4", "unpack_uint4"]


@dataclass
class QuantizedEmbeddings:
    """Quantized matrix plus the parameters needed to dequantize."""

    codes: np.ndarray       # (N, d) uint8, values in [0, levels)
    minimums: np.ndarray    # (d,) per-dimension minimum
    scales: np.ndarray      # (d,) per-dimension step size
    levels: int

    def dequantize(self, dtype=np.float64):
        """Reconstruct float embeddings (lossy) in ``dtype``.

        ``dtype`` follows the runtime precision policy: the default
        (float64) preserves the historical behaviour, ``np.float32``
        reconstructs directly in the serving compute dtype without a
        float64 intermediate.
        """
        dtype = np.dtype(dtype)
        return (self.minimums.astype(dtype, copy=False)
                + self.codes.astype(dtype) * self.scales.astype(dtype,
                                                                copy=False))

    def quantization_error(self):
        """Symmetric per-dimension worst-case reconstruction error.

        Linear quantization rounds each value to the nearest of
        ``levels`` grid points, so the reconstruction error is bounded by
        half a step in either direction: ``|x - dequantize(x)| <=
        scales / 2`` per dimension.  The at-rest codecs and their
        property tests use this bound as the documented drift tolerance.
        """
        return self.scales / 2.0

    def packed_bytes(self):
        """Storage size in bytes when 4-bit codes are packed two-per-byte."""
        if self.levels > 16:
            raise ValueError("packing requires <= 16 levels")
        n, d = self.codes.shape
        return n * ((d + 1) // 2)


def quantize_embeddings(embeddings, *, levels=16):
    """Per-dimension linear quantization into ``levels`` codes.

    ``levels`` is keyword-only (``levels=16`` is the paper's uint4
    production setting; 256 is the int8 state codec).  Float32 input is
    quantized in float32 — minimums and scales keep the input dtype, so
    the serving path never up-casts behind the caller's back; any other
    dtype is promoted to float64 as before.
    """
    if levels < 2 or levels > 256:
        raise ValueError("levels must be in [2, 256]")
    embeddings = np.asarray(embeddings)
    if embeddings.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        embeddings = embeddings.astype(np.float64)
    if embeddings.ndim != 2:
        raise ValueError("expected a 2-D embedding matrix")
    minimums = embeddings.min(axis=0)
    maximums = embeddings.max(axis=0)
    spans = np.maximum(maximums - minimums, 1e-12)
    scales = spans / (levels - 1)
    codes = np.round((embeddings - minimums) / scales)
    codes = np.clip(codes, 0, levels - 1).astype(np.uint8)
    return QuantizedEmbeddings(codes=codes, minimums=minimums, scales=scales,
                               levels=levels)


def pack_uint4(codes):
    """Pack an even-width matrix of 4-bit codes two-per-byte."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.max(initial=0) > 15:
        raise ValueError("codes exceed 4 bits")
    n, d = codes.shape
    if d % 2:
        codes = np.concatenate([codes, np.zeros((n, 1), dtype=np.uint8)], axis=1)
    return (codes[:, 0::2] << 4) | codes[:, 1::2]


def unpack_uint4(packed, width):
    """Inverse of :func:`pack_uint4`; ``width`` is the original dimension."""
    packed = np.asarray(packed, dtype=np.uint8)
    high = (packed >> 4) & 0x0F
    low = packed & 0x0F
    out = np.empty((packed.shape[0], packed.shape[1] * 2), dtype=np.uint8)
    out[:, 0::2] = high
    out[:, 1::2] = low
    return out[:, :width]
