"""LRU cache of hot embeddings with staleness invalidation.

Production read traffic is heavily skewed: a small set of active entities
absorbs most queries.  :class:`EmbeddingCache` keeps their *head* outputs
(the post-normalisation embeddings) so repeat queries skip the store
entirely; ingestion invalidates an entity's entry the moment its state
advances, so a hit is always fresh.  Entries are frozen read-only copies
and every method is thread-safe, so the cache can sit between concurrent
query threads and a background ingest flusher.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

__all__ = ["EmbeddingCache"]


class EmbeddingCache:
    """Bounded LRU mapping entity id -> embedding vector.

    ``capacity=0`` disables caching (every ``get`` misses, ``put`` is a
    no-op) — the service keeps one code path either way.  All methods
    take one internal lock, so concurrent readers and a writer never
    tear the LRU order or the counters.
    """

    def __init__(self, capacity=1024):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self):
        return len(self._entries)

    def __contains__(self, entity_id):
        return entity_id in self._entries

    def get(self, entity_id):
        """The cached ``(d,)`` embedding, or None on a miss.

        The returned array is **read-only** (``writeable=False``): it is
        the cache's own stored copy, handed out without copying on every
        hit, so an accidental caller mutation raises instead of silently
        corrupting all later hits.  Callers that need a writable vector
        copy it.
        """
        with self._lock:
            entry = self._entries.get(entity_id)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(entity_id)
            self.hits += 1
            return entry

    def put(self, entity_id, embedding):
        """Insert/refresh an entry, evicting the least recently used.

        ``embedding`` is the entity's ``(d,)`` vector; the cache keeps a
        private copy in the embedding's own (policy) dtype, frozen
        read-only because :meth:`get` hands the same array to every hit.
        """
        if self.capacity == 0:
            return
        # reprolint: disable=RP001 -- defensive copy preserves the
        # embedding's policy dtype by construction.
        entry = np.array(embedding, copy=True)
        entry.flags.writeable = False
        with self._lock:
            if entity_id in self._entries:
                self._entries.move_to_end(entity_id)
            self._entries[entity_id] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, entity_ids):
        """Drop entries whose state advanced; returns how many were live."""
        dropped = 0
        with self._lock:
            for entity_id in entity_ids:
                if self._entries.pop(entity_id, None) is not None:
                    dropped += 1
            self.invalidations += dropped
        return dropped

    def clear(self):
        """Drop every entry (counters are kept — they describe lifetime)."""
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self):
        """Lifetime fraction of lookups served from cache (0.0 when idle)."""
        lookups = self.hits + self.misses
        return 0.0 if lookups == 0 else self.hits / lookups

    def stats(self):
        """Counters snapshot: size/capacity, hits, misses, evictions, ..."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
